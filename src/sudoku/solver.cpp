#include "sudoku/solver.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace sudoku {

namespace {

struct SearchCtx {
  Pick pick;
  SolveStats* stats;
  std::mt19937_64* rng = nullptr;  // non-null: shuffle candidate order
};

/// The paper's solve():
///   if (!isStuck(board, opts) && !isCompleted(board)) {
///     i,j = findMinTrues(opts);           // or findFirst
///     mem_board = board; mem_opts = opts;
///     for (k = 1; k <= 9 && !isCompleted(board); k++)
///       if (mem_opts[i,j,k-1]) {
///         board, opts = addNumber(i, j, k, mem_board, mem_opts);
///         board, opts = solve(board, opts);
///       }
///   }
///   return board, opts;
SolveResult solve_rec(BoardArray board, OptsArray opts, SearchCtx& ctx, int depth) {
  if (ctx.stats != nullptr) {
    ++ctx.stats->nodes;
    ctx.stats->max_depth = std::max(ctx.stats->max_depth, depth);
  }
  if (is_completed(board)) {
    return SolveResult{std::move(board), std::move(opts), true};
  }
  if (is_stuck(board, opts)) {
    return SolveResult{std::move(board), std::move(opts), false};
  }
  const auto pos = ctx.pick == Pick::FirstEmpty ? find_first(board)
                                                : find_min_trues(board, opts);
  if (!pos) {
    return SolveResult{std::move(board), std::move(opts), false};
  }
  const auto [i, j] = *pos;
  const int N = board_size(board);
  const BoardArray mem_board = board;
  const OptsArray mem_opts = opts;

  std::vector<int> order(static_cast<std::size_t>(N));
  std::iota(order.begin(), order.end(), 1);
  if (ctx.rng != nullptr) {
    std::shuffle(order.begin(), order.end(), *ctx.rng);
  }

  SolveResult last{std::move(board), std::move(opts), false};
  for (const int k : order) {
    if (last.completed) {
      break;  // the paper's loop guard !isCompleted(board)
    }
    if (mem_opts[{i, j, k - 1}]) {
      if (ctx.stats != nullptr) {
        ++ctx.stats->placements;
      }
      auto [b, o] = add_number(i, j, k, mem_board, mem_opts);
      last = solve_rec(std::move(b), std::move(o), ctx, depth + 1);
    }
  }
  return last;
}

int count_rec(const BoardArray& board, const OptsArray& opts, int limit, Pick pick) {
  if (is_completed(board)) {
    return 1;
  }
  if (is_stuck(board, opts)) {
    return 0;
  }
  const auto pos =
      pick == Pick::FirstEmpty ? find_first(board) : find_min_trues(board, opts);
  if (!pos) {
    return 0;
  }
  const auto [i, j] = *pos;
  const int N = board_size(board);
  int found = 0;
  for (int k = 1; k <= N && found < limit; ++k) {
    if (opts[{i, j, k - 1}]) {
      auto [b, o] = add_number(i, j, k, board, opts);
      found += count_rec(b, o, limit - found, pick);
    }
  }
  return found;
}

}  // namespace

SolveResult solve(BoardArray board, OptsArray opts, Pick pick, SolveStats* stats) {
  SearchCtx ctx{pick, stats, nullptr};
  return solve_rec(std::move(board), std::move(opts), ctx, 0);
}

SolveResult solve_board(const BoardArray& board, Pick pick, SolveStats* stats) {
  auto [b, o] = compute_opts(board);
  return solve(std::move(b), std::move(o), pick, stats);
}

int count_solutions(const BoardArray& board, int limit, Pick pick) {
  auto [b, o] = compute_opts(board);
  return count_rec(b, o, limit, pick);
}

SolveResult solve_random(BoardArray board, OptsArray opts, std::mt19937_64& rng,
                         SolveStats* stats) {
  SearchCtx ctx{Pick::MinOptions, stats, &rng};
  return solve_rec(std::move(board), std::move(opts), ctx, 0);
}

}  // namespace sudoku
