#include "sudoku/rules.hpp"

#include "sacpp/with_loop.hpp"

namespace sudoku {

OptsArray initial_opts(int N) {
  return OptsArray(sac::Shape{N, N, N}, true);
}

std::pair<BoardArray, OptsArray> add_number(int i, int j, int k, BoardArray board,
                                            OptsArray opts) {
  const int N = board_size(board);
  const int n = board_box(board);
  if (i < 0 || i >= N || j < 0 || j >= N || k < 1 || k > N) {
    throw SudokuError("addNumber(" + std::to_string(i) + "," + std::to_string(j) +
                      "," + std::to_string(k) + ") out of range for N=" +
                      std::to_string(N));
  }
  // board[i,j] = k;
  board.set({i, j}, k);
  // k = k-1; is = (i/3)*3; js = (j/3)*3;   (3 generalises to n)
  const std::int64_t k0 = k - 1;
  const std::int64_t is = (static_cast<std::int64_t>(i) / n) * n;
  const std::int64_t js = (static_cast<std::int64_t>(j) / n) * n;
  const std::int64_t I = i;
  const std::int64_t J = j;
  // The paper's four-generator modarray-with-loop, verbatim:
  //   ([i,j,0] <= iv <= [i,j,8])          : false;   -- all options at (i,j)
  //   ([i,0,k] <= iv <= [i,8,k])          : false;   -- k in row i
  //   ([0,j,k] <= iv <= [8,j,k])          : false;   -- k in column j
  //   ([is,js,k] <= iv <= [is+2,js+2,k])  : false;   -- k in the box
  opts = sac::With<bool>()
             .gen_incl_val({I, J, 0}, {I, J, N - 1}, false)
             .gen_incl_val({I, 0, k0}, {I, N - 1, k0}, false)
             .gen_incl_val({0, J, k0}, {N - 1, J, k0}, false)
             .gen_incl_val({is, js, k0}, {is + n - 1, js + n - 1, k0}, false)
             .modarray(std::move(opts));
  return {std::move(board), std::move(opts)};
}

std::pair<BoardArray, OptsArray> compute_opts(BoardArray board) {
  const int N = board_size(board);
  OptsArray opts = initial_opts(N);
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      const int k = board[{i, j}];
      if (k != 0) {
        auto [b, o] = add_number(i, j, k, std::move(board), std::move(opts));
        board = std::move(b);
        opts = std::move(o);
      }
    }
  }
  return {std::move(board), std::move(opts)};
}

int options_at(const OptsArray& opts, int i, int j) {
  const std::int64_t N = opts.shape().extent(2);
  const std::int64_t I = i;
  const std::int64_t J = j;
  // SaC: fold-with-loop over the option vector of one cell. Kept in the
  // paper's per-element form; the row is one contiguous run, which the
  // compiled fold engine walks without building index vectors per element.
  return sac::With<int>()
      .gen({I, J, 0}, {I + 1, J + 1, N},
           [&](const sac::Index& iv) { return opts[iv] ? 1 : 0; })
      .fold([](int a, int b) { return a + b; }, 0);
}

bool is_stuck(const BoardArray& board, const OptsArray& opts) {
  const std::int64_t N = board_size(board);
  // Disjunctive fold: some empty cell has no options left.
  return sac::With<bool>()
      .gen({0, 0}, {N, N},
           [&](const sac::Index& iv) {
             if (board[iv] != 0) {
               return false;
             }
             return options_at(opts, static_cast<int>(iv[0]),
                               static_cast<int>(iv[1])) == 0;
           })
      .fold([](bool a, bool b) { return a || b; }, false);
}

std::pair<BoardArray, OptsArray> propagate_singles(BoardArray board, OptsArray opts) {
  const int N = board_size(board);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < N; ++i) {
      for (int j = 0; j < N; ++j) {
        if (board[{i, j}] != 0 || options_at(opts, i, j) != 1) {
          continue;
        }
        for (int k = 1; k <= N; ++k) {
          if (opts[{i, j, k - 1}]) {
            auto [b, o] = add_number(i, j, k, std::move(board), std::move(opts));
            board = std::move(b);
            opts = std::move(o);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return {std::move(board), std::move(opts)};
}

std::optional<std::pair<int, int>> find_first(const BoardArray& board) {
  const int N = board_size(board);
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      if (board[{i, j}] == 0) {
        return std::make_pair(i, j);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::pair<int, int>> find_min_trues(const BoardArray& board,
                                                  const OptsArray& opts) {
  const std::int64_t N = board_size(board);
  // SaC-style: materialise the per-cell option counts with a
  // genarray-with-loop (filled cells get a sentinel), then locate the
  // minimum.
  const sac::Array<int> counts =
      sac::With<int>()
          .gen({0, 0}, {N, N},
               [&](const sac::Index& iv) {
                 if (board[iv] != 0) {
                   return static_cast<int>(N) + 1;  // sentinel: not free
                 }
                 return options_at(opts, static_cast<int>(iv[0]),
                                   static_cast<int>(iv[1]));
               })
          .genarray(sac::Shape{N, N}, static_cast<int>(N) + 1);
  int best = static_cast<int>(N) + 1;
  std::optional<std::pair<int, int>> pos;
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      const int c = counts[{i, j}];
      if (c < best) {
        best = c;
        pos = std::make_pair(i, j);
      }
    }
  }
  return pos;
}

}  // namespace sudoku
