#include "sudoku/nets.hpp"

#include "snet/value.hpp"

namespace sudoku {

snet::Net fig1_net() {
  using namespace snet;
  return compute_opts_box() >> star(solve_one_level_box(), "{<done>}");
}

snet::Net fig2_net() {
  using namespace snet;
  return compute_opts_box() >> filter("{} -> {<k>=1}") >>
         star(split(solve_one_level_k_box(), "k"), "{<done>}");
}

snet::Net fig3_net(Fig3Params params) {
  using namespace snet;
  if (params.throttle < 1) {
    throw SudokuError("fig3 throttle must be >= 1");
  }
  // [{<k>} -> {<k> = <k> % m}]
  FilterSpec throttle(
      Pattern(RecordType::of({}, {"k"})),
      {FilterSpec::Output{{FilterSpec::Item{
          FilterSpec::Item::Kind::SetTag, tag_label("k"), {},
          TagExpr::tag("k") % TagExpr::lit(params.throttle)}}}});
  // {<level>} if <level> > T
  Pattern exit(RecordType::of({}, {"level"}),
               TagExpr::tag("level") > TagExpr::lit(params.level_threshold));
  return compute_opts_box() >> filter("{} -> {<k>=1}") >>
         star(snet::filter(std::move(throttle)) >>
                  split(solve_one_level_kl_box(), "k"),
              std::move(exit)) >>
         solve_box();
}

snet::Net fig2_propagated_net() {
  using namespace snet;
  // Boards completed by deduction bypass solveOneLevel on a parallel
  // branch (best-match routing sends {board, opts} left, {board, <done>}
  // right) and leave via the star's tap at the next stage.
  const auto stage = [] {
    return propagate_box() >>
           parallel(solve_one_level_k_box(),
                    filter("{board, <done>} -> {board, <done>}"));
  };
  return compute_opts_box() >> propagate_box() >> filter("{} -> {<k>=1}") >>
         star(split(stage(), "k"), "{<done>}");
}

snet::Record board_record(const BoardArray& board) {
  snet::Record r;
  r.set_field("board", snet::make_value(board));
  return r;
}

std::vector<snet::Record> run_board(const snet::Net& net, const BoardArray& board,
                                    snet::Options opts) {
  snet::Network network(net, std::move(opts));
  network.input().inject(board_record(board));
  return network.output().collect();
}

std::vector<BoardArray> solutions_in(const std::vector<snet::Record>& records) {
  std::vector<BoardArray> out;
  for (const auto& r : records) {
    if (!r.has_field("board")) {
      continue;
    }
    const auto& b = snet::value_as<BoardArray>(r.field("board"));
    if (is_valid_solution(b)) {
      out.push_back(b);
    }
  }
  return out;
}

std::optional<BoardArray> solve_with_net(const snet::Net& net,
                                         const BoardArray& board,
                                         snet::Options opts) {
  const auto records = run_board(net, board, std::move(opts));
  auto sols = solutions_in(records);
  if (sols.empty()) {
    return std::nullopt;
  }
  return std::move(sols.front());
}

}  // namespace sudoku
