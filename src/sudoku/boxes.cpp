#include "sudoku/boxes.hpp"

#include "sudoku/rules.hpp"
#include "sudoku/solver.hpp"

namespace sudoku {

namespace {

/// The shared body of all solveOneLevel variants (Fig. 1 listing):
///   if (!isStuck(board, opts) && !isCompleted(board)) {
///     i,j = findMinTrues(opts);
///     for (k = 1; k <= 9 && !isCompleted(board); k++)
///       if (mem_opts[i,j,k-1]) {
///         board, opts = addNumber(i, j, k, mem_board, mem_opts);
///         ... snet_out(...) ...
///       }
///   }
/// `emit(b, o, k, completed)` performs the variant-specific snet_out.
template <class Emit>
void solve_one_level_body(const snet::BoxInput& in, const Emit& emit) {
  const auto& board = in.get<BoardArray>("board");
  const auto& opts = in.get<OptsArray>("opts");
  if (is_stuck(board, opts) || is_completed(board)) {
    return;  // no emission: the branch dies (stuck) — or see boxes.hpp.
  }
  const auto pos = find_min_trues(board, opts);
  if (!pos) {
    return;
  }
  const auto [i, j] = *pos;
  const int N = board_size(board);
  bool completed = false;
  for (int k = 1; k <= N && !completed; ++k) {
    if (opts[{i, j, k - 1}]) {
      auto [b, o] = add_number(i, j, k, board, opts);
      completed = is_completed(b);
      emit(std::move(b), std::move(o), k, completed);
    }
  }
}

}  // namespace

snet::Net compute_opts_box() {
  return snet::box("computeOpts", "(board) -> (board, opts)",
                   [](const snet::BoxInput& in, snet::BoxOutput& out) {
                     auto [b, o] = compute_opts(in.get<BoardArray>("board"));
                     out.out(1, std::move(b), std::move(o));
                   });
}

snet::Net solve_one_level_box() {
  return snet::box(
      "solveOneLevel", "(board, opts) -> (board, opts) | (board, <done>)",
      [](const snet::BoxInput& in, snet::BoxOutput& out) {
        solve_one_level_body(in, [&](BoardArray b, OptsArray o, int /*k*/,
                                     bool completed) {
          if (completed) {
            out.out(2, std::move(b), std::int64_t{1});
          } else {
            out.out(1, std::move(b), std::move(o));
          }
        });
      });
}

snet::Net solve_one_level_k_box() {
  return snet::box(
      "solveOneLevel", "(board, opts) -> (board, opts, <k>) | (board, <done>)",
      [](const snet::BoxInput& in, snet::BoxOutput& out) {
        solve_one_level_body(in, [&](BoardArray b, OptsArray o, int k,
                                     bool completed) {
          if (completed) {
            out.out(2, std::move(b), std::int64_t{1});
          } else {
            out.out(1, std::move(b), std::move(o), static_cast<std::int64_t>(k));
          }
        });
      });
}

snet::Net solve_one_level_kl_box() {
  return snet::box(
      "solveOneLevel", "(board, opts) -> (board, opts, <k>, <level>)",
      [](const snet::BoxInput& in, snet::BoxOutput& out) {
        solve_one_level_body(in, [&](BoardArray b, OptsArray o, int k,
                                     bool /*completed*/) {
          const std::int64_t lvl = level(b);
          out.out(1, std::move(b), std::move(o), static_cast<std::int64_t>(k), lvl);
        });
      });
}

snet::Net solve_box() {
  return snet::box("solve", "(board, opts) -> (board, opts)",
                   [](const snet::BoxInput& in, snet::BoxOutput& out) {
                     SolveResult res = solve(in.get<BoardArray>("board"),
                                             in.get<OptsArray>("opts"));
                     out.out(1, std::move(res.board), std::move(res.opts));
                   });
}

snet::Net propagate_box() {
  // Deduction may complete the board outright; such boards must leave the
  // replicator through the <done> tap rather than re-enter solveOneLevel
  // (whose isCompleted guard would silently drop them).
  return snet::box("propagate", "(board, opts) -> (board, opts) | (board, <done>)",
                   [](const snet::BoxInput& in, snet::BoxOutput& out) {
                     auto [b, o] = propagate_singles(in.get<BoardArray>("board"),
                                                     in.get<OptsArray>("opts"));
                     if (is_completed(b)) {
                       out.out(2, std::move(b), std::int64_t{1});
                     } else {
                       out.out(1, std::move(b), std::move(o));
                     }
                   });
}

snet::Net solve_board_box() {
  return snet::box("solveBoard", "(board) -> (board, <done>) | (board)",
                   [](const snet::BoxInput& in, snet::BoxOutput& out) {
                     SolveResult res = solve_board(in.get<BoardArray>("board"));
                     if (res.completed) {
                       out.out(1, std::move(res.board), std::int64_t{1});
                     } else {
                       out.out(2, std::move(res.board));
                     }
                   });
}

}  // namespace sudoku
