#include "sudoku/corpus.hpp"

namespace sudoku {

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = {
      // A 4×4 (n=2) warm-up with a forced, unique solution.
      {"mini4", "1.3."
                ".4.2"
                "2.4."
                ".3.1", 2},
      // Widely circulated easy puzzle (appears in many solver tutorials).
      {"easy", "530070000"
               "600195000"
               "098000060"
               "800060003"
               "400803001"
               "700020006"
               "060000280"
               "000419005"
               "000080079", 3},
      // Moderate difficulty.
      {"medium", "000260701"
                 "680070090"
                 "190004500"
                 "820100040"
                 "004602900"
                 "050003028"
                 "009300074"
                 "040050036"
                 "703018000", 3},
      // Sparse puzzle (26 givens) — deeper search tree.
      {"hard", "000000907"
               "000420180"
               "000705026"
               "100904000"
               "050000040"
               "000507009"
               "920108000"
               "034059000"
               "507000000", 3},
      // "AI Escargot"-class hard instance (23 givens).
      {"escargot", "100007090"
                   "030020008"
                   "009600500"
                   "005300900"
                   "010080002"
                   "600004000"
                   "300000010"
                   "040000007"
                   "007000300", 3},
  };
  return entries;
}

BoardArray corpus_board(const std::string& name) {
  for (const auto& e : corpus()) {
    if (e.name == name) {
      return board_from_string(e.cells);
    }
  }
  throw SudokuError("no corpus puzzle named '" + name + "'");
}

}  // namespace sudoku
