#include "sudoku/board.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <vector>

#include "sacpp/with_loop.hpp"

namespace sudoku {

BoardArray empty_board(int n) {
  if (n < 2) {
    throw SudokuError("box size must be >= 2, got " + std::to_string(n));
  }
  const std::int64_t N = static_cast<std::int64_t>(n) * n;
  return BoardArray(sac::Shape{N, N}, 0);
}

int board_size(const BoardArray& board) {
  if (board.dim() != 2 || board.shape().extent(0) != board.shape().extent(1)) {
    throw SudokuError("board must be a square matrix, got shape " +
                      board.shape().to_string());
  }
  const auto N = board.shape().extent(0);
  const auto n = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(N))));
  if (n * n != N) {
    throw SudokuError("board side " + std::to_string(N) + " is not a perfect square");
  }
  return static_cast<int>(N);
}

int board_box(const BoardArray& board) {
  const int N = board_size(board);
  return static_cast<int>(std::llround(std::sqrt(static_cast<double>(N))));
}

BoardArray board_from_string(const std::string& text) {
  // Primary format: one character per cell. Fallback (needed for N > 9,
  // where cells are multi-digit): whitespace-separated integers — used
  // when the per-character cell count is not a perfect square.
  std::vector<int> cells;
  bool char_format = true;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '.' ||
        std::isdigit(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    throw SudokuError(std::string("unexpected character '") + c + "' in board");
  }
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    cells.push_back(c == '.' ? 0 : c - '0');
  }
  {
    const auto count = static_cast<std::int64_t>(cells.size());
    const auto side =
        static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(count))));
    if (count == 0 || side * side != count) {
      char_format = false;
    }
  }
  if (!char_format) {
    cells.clear();
    std::istringstream is(text);
    int v = 0;
    while (is >> v) {
      cells.push_back(v);
    }
  }
  const auto count = static_cast<std::int64_t>(cells.size());
  const auto N = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(count))));
  if (N == 0 || N * N != count) {
    throw SudokuError("board text has " + std::to_string(count) +
                      " cells, not a square count");
  }
  BoardArray board(sac::Shape{N, N}, std::move(cells));
  board_size(board);  // validates N is a perfect square as well
  if (!is_consistent(board)) {
    throw SudokuError("board text violates sudoku rules");
  }
  return board;
}

std::string board_to_string(const BoardArray& board) {
  const int N = board_size(board);
  const int n = board_box(board);
  const int width = N > 9 ? 3 : 2;
  std::ostringstream os;
  for (int i = 0; i < N; ++i) {
    if (i > 0 && i % n == 0) {
      for (int c = 0; c < N * width + (n - 1) * 2 - 1; ++c) {
        os << '-';
      }
      os << '\n';
    }
    for (int j = 0; j < N; ++j) {
      if (j > 0 && j % n == 0) {
        os << "| ";
      }
      const int v = board[{i, j}];
      std::string cell = v == 0 ? "." : std::to_string(v);
      while (static_cast<int>(cell.size()) < width - 1) {
        cell = " " + cell;
      }
      os << cell << ' ';
    }
    os << '\n';
  }
  return os.str();
}

std::string board_to_line(const BoardArray& board) {
  const int N = board_size(board);
  std::ostringstream os;
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      const int v = board[{i, j}];
      if (N <= 9) {
        os << (v == 0 ? '.' : static_cast<char>('0' + v));
      } else {
        os << v << ' ';
      }
    }
  }
  return os.str();
}

bool is_completed(const BoardArray& board) {
  const std::int64_t N = board_size(board);
  // SaC: a fold-with-loop conjunction over the whole board.
  return sac::With<bool>()
      .gen({0, 0}, {N, N}, [&](const sac::Index& iv) { return board[iv] != 0; })
      .fold([](bool a, bool b) { return a && b; }, true);
}

int level(const BoardArray& board) {
  const std::int64_t N = board_size(board);
  return sac::With<int>()
      .gen({0, 0}, {N, N},
           [&](const sac::Index& iv) { return board[iv] != 0 ? 1 : 0; })
      .fold([](int a, int b) { return a + b; }, 0);
}

bool is_consistent(const BoardArray& board) {
  const int N = board_size(board);
  const int n = board_box(board);
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      const int v = board[{i, j}];
      if (v == 0) {
        continue;
      }
      if (v < 1 || v > N) {
        return false;
      }
      for (int t = 0; t < N; ++t) {
        if (t != j && board[{i, t}] == v) {
          return false;
        }
        if (t != i && board[{t, j}] == v) {
          return false;
        }
      }
      const int is = (i / n) * n;
      const int js = (j / n) * n;
      for (int a = is; a < is + n; ++a) {
        for (int b = js; b < js + n; ++b) {
          if ((a != i || b != j) && board[{a, b}] == v) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

bool is_valid_solution(const BoardArray& board) {
  return is_completed(board) && is_consistent(board);
}

bool solves(const BoardArray& puzzle, const BoardArray& solution) {
  if (puzzle.shape() != solution.shape() || !is_valid_solution(solution)) {
    return false;
  }
  const int N = board_size(puzzle);
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      const int given = puzzle[{i, j}];
      if (given != 0 && solution[{i, j}] != given) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace sudoku
