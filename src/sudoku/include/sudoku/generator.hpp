#ifndef SNETSAC_SUDOKU_GENERATOR_HPP
#define SNETSAC_SUDOKU_GENERATOR_HPP

/// \file generator.hpp
/// Workload generation. The paper motivates the coordination layer with
/// "bigger puzzles" (n² × n² boards); its authors had hand-picked sudokus.
/// We substitute a reproducible generator: solve an empty board with a
/// randomised candidate order to obtain a full grid, then remove cells —
/// optionally preserving solution uniqueness ("all well-constructed
/// sudokus have a unique solution").

#include <cstdint>

#include "sudoku/board.hpp"

namespace sudoku {

struct GenOptions {
  int n = 3;                  ///< box size; board side is n².
  int clues = 30;             ///< target number of givens to keep.
  std::uint64_t seed = 42;    ///< RNG seed (fully reproducible).
  bool ensure_unique = true;  ///< keep removing only while unique.
};

/// A random complete (solved) board of box size n.
BoardArray random_full_board(int n, std::uint64_t seed);

/// A puzzle per \p options. With ensure_unique, the result may keep more
/// than `clues` givens if further removal would admit multiple solutions.
BoardArray generate(const GenOptions& options);

}  // namespace sudoku

#endif
