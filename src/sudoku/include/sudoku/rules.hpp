#ifndef SNETSAC_SUDOKU_RULES_HPP
#define SNETSAC_SUDOKU_RULES_HPP

/// \file rules.hpp
/// The paper's Section 3 SaC functions, generalised to n²×n².
///
/// The central operation is `addNumber`: place number k at (i, j) and
/// falsify every option the three sudoku rules eliminate — one
/// modarray-with-loop with four generators, transcribed directly from the
/// paper (lines 6–11 of the listing).

#include <optional>
#include <utility>

#include "sudoku/board.hpp"

namespace sudoku {

/// All-true options array for an N×N board.
OptsArray initial_opts(int N);

/// The paper's `addNumber(i, j, k, board, opts)`; k is 1-based.
/// Returns the modified (board, opts) pair.
std::pair<BoardArray, OptsArray> add_number(int i, int j, int k, BoardArray board,
                                            OptsArray opts);

/// "An initialisation phase which adds the pre-determined numbers":
/// computes the options array for a given board by repeatedly calling
/// addNumber — this is exactly the computeOpts box of Fig. 1.
std::pair<BoardArray, OptsArray> compute_opts(BoardArray board);

/// A free position exists whose options are exhausted (the search cannot
/// proceed through it): the paper's `isStuck`.
bool is_stuck(const BoardArray& board, const OptsArray& opts);

/// First empty position in row-major order: the paper's `findFirst`.
std::optional<std::pair<int, int>> find_first(const BoardArray& board);

/// Free position with the minimum number of remaining options: the
/// paper's `findMinTrues`, which keeps "the potential need for
/// back-tracking as small as possible".
std::optional<std::pair<int, int>> find_min_trues(const BoardArray& board,
                                                  const OptsArray& opts);

/// Number of remaining options at (i, j).
int options_at(const OptsArray& opts, int i, int j);

/// Extension (not in the paper): constraint propagation by naked singles —
/// repeatedly places every free cell that has exactly one remaining option
/// until a fixpoint. Pure deduction: never guesses, preserves the solution
/// set. Used by the `propagate` box for the ablation study in
/// bench_ablation.
std::pair<BoardArray, OptsArray> propagate_singles(BoardArray board, OptsArray opts);

}  // namespace sudoku

#endif
