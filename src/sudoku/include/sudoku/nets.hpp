#ifndef SNETSAC_SUDOKU_NETS_HPP
#define SNETSAC_SUDOKU_NETS_HPP

/// \file nets.hpp
/// The three networks of Section 5, as topology expressions:
///
///  Fig. 1:  computeOpts .. (solveOneLevel ** {<done>})
///  Fig. 2:  computeOpts .. [{} -> {<k>=1}]
///                       .. ((solveOneLevel !! <k>) ** {<done>})
///  Fig. 3:  computeOpts .. [{} -> {<k>=1}]
///                       .. (([{<k>} -> {<k>=<k>%m}] .. (solveOneLevel !! <k>))
///                           ** ({<level>} if <level> > T))
///                       .. solve
///
/// plus helpers to run a board through a network and extract solutions.

#include <optional>
#include <vector>

#include "snet/network.hpp"
#include "sudoku/boxes.hpp"

namespace sudoku {

/// Fig. 1: pipelined search. Unfolds into at most (#empty cells + 1)
/// serial replicas.
snet::Net fig1_net();

/// Fig. 2: full unfolding. "No more than 9 replicas of the solveOneLevel
/// box will be created [per stage] as the value of k is always between 0
/// and 8. This guarantees a maximum of 9×81 = 729 solveOneLevel boxes."
snet::Net fig2_net();

struct Fig3Params {
  /// Parallel width cap m of the `{<k>} -> {<k>=<k>%m}` throttle filter
  /// ("implicitly limits the parallel unfolding to a maximum of 4
  /// instances" for m = 4).
  int throttle = 4;
  /// Serial depth cap T of the `{<level>} if <level> > T` exit guard.
  /// The paper uses 40 for 9×9 boards (N² = 81).
  int level_threshold = 40;
};

/// Fig. 3: throttled unfolding with the sequential solve box at the end.
snet::Net fig3_net(Fig3Params params = {});

/// Extension of Fig. 2 (ablation): a `propagate` box inside the serial
/// replicator performs naked-singles deduction before every branching
/// level, shrinking the search tree the coordination layer has to unfold:
///   computeOpts .. propagate .. [{}->{<k>=1}]
///               .. ((propagate-after-split solveOneLevel !! <k>) ** {<done>})
snet::Net fig2_propagated_net();

/// Wraps a board into the injection record `{board}`.
snet::Record board_record(const BoardArray& board);

/// Runs a single board through \p net and collects all outputs.
std::vector<snet::Record> run_board(const snet::Net& net, const BoardArray& board,
                                    snet::Options opts = {});

/// Extracts completed boards from network output records (records with a
/// `board` field whose board is a valid solution).
std::vector<BoardArray> solutions_in(const std::vector<snet::Record>& records);

/// Convenience: run + extract; nullopt if the network found no solution.
std::optional<BoardArray> solve_with_net(const snet::Net& net,
                                         const BoardArray& board,
                                         snet::Options opts = {});

}  // namespace sudoku

#endif
