#ifndef SNETSAC_SUDOKU_SOLVER_HPP
#define SNETSAC_SUDOKU_SOLVER_HPP

/// \file solver.hpp
/// The paper's sequential recursive solver (Section 3): "a recursive call
/// embedded into a for-loop which realises the back-tracking of the
/// search. For each valid option at a given position i,j, we successively
/// try to solve the given board until it is completed." Returns "the first
/// solution it finds or, if no solution exists, the board where the
/// algorithm got stuck."

#include <cstdint>
#include <random>

#include "sudoku/rules.hpp"

namespace sudoku {

/// Position selection strategy: the paper first uses findFirst, then
/// replaces it with findMinTrues "to keep the potential need for
/// back-tracking as small as possible".
enum class Pick { FirstEmpty, MinOptions };

struct SolveStats {
  std::uint64_t nodes = 0;       // solve() invocations
  std::uint64_t placements = 0;  // addNumber calls
  int max_depth = 0;
};

struct SolveResult {
  BoardArray board;
  OptsArray opts;
  bool completed = false;
};

/// Solves (board, opts); opts must be consistent with board (use
/// compute_opts). Mirrors the paper's `solve` exactly.
SolveResult solve(BoardArray board, OptsArray opts, Pick pick = Pick::MinOptions,
                  SolveStats* stats = nullptr);

/// Convenience: computes options first.
SolveResult solve_board(const BoardArray& board, Pick pick = Pick::MinOptions,
                        SolveStats* stats = nullptr);

/// Counts solutions, stopping at \p limit (used for uniqueness checks).
int count_solutions(const BoardArray& board, int limit,
                    Pick pick = Pick::MinOptions);

/// Randomised variant used by the puzzle generator: candidate numbers are
/// tried in a shuffled order so an empty board solves to a random grid.
SolveResult solve_random(BoardArray board, OptsArray opts, std::mt19937_64& rng,
                         SolveStats* stats = nullptr);

}  // namespace sudoku

#endif
