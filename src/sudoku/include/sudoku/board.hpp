#ifndef SNETSAC_SUDOKU_BOARD_HPP
#define SNETSAC_SUDOKU_BOARD_HPP

/// \file board.hpp
/// Sudoku boards on top of the SaC array layer.
///
/// A board of box size n is an n²×n² integer matrix (0 = empty); the
/// paper's 9×9 game is n = 3. "Sudokus can be played on any board of size
/// n² × n²; parallelisation becomes essential for bigger puzzles"
/// (paper, Section 3 footnote) — everything here is generalised over n.
///
/// The *options* array is the paper's central data structure: an
/// N×N×N boolean array where opts[i,j,k] records whether number k+1 may
/// still be placed at position (i,j).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sacpp/array.hpp"

namespace sudoku {

using BoardArray = sac::Array<int>;
using OptsArray = sac::Array<bool>;

class SudokuError : public std::runtime_error {
 public:
  explicit SudokuError(const std::string& what) : std::runtime_error(what) {}
};

/// An empty n²×n² board.
BoardArray empty_board(int n);

/// Side length N of the board (throws unless the board is a square rank-2
/// array whose side is a perfect square).
int board_size(const BoardArray& board);

/// Box size n (sqrt of the side length).
int board_box(const BoardArray& board);

/// Parses a board. Two formats:
///  * for N <= 9: one character per cell, row-major; digits 1..9 are
///    givens, '0' or '.' empty; whitespace/newlines ignored.
///  * for any N: whitespace-separated integers, 0 = empty.
/// The expected side length is inferred from the cell count.
BoardArray board_from_string(const std::string& text);

/// Pretty grid rendering with box separators.
std::string board_to_string(const BoardArray& board);

/// Compact single-line rendering (inverse of board_from_string for N<=9).
std::string board_to_line(const BoardArray& board);

/// All cells filled (no zeroes).
bool is_completed(const BoardArray& board);

/// Number of placed cells — the paper's Fig. 3 `<level>` tag.
int level(const BoardArray& board);

/// Every value in range and no row/column/box rule violated (empty cells
/// allowed).
bool is_consistent(const BoardArray& board);

/// Completed *and* consistent.
bool is_valid_solution(const BoardArray& board);

/// True when \p solution is a valid solution that extends \p puzzle (all
/// givens preserved).
bool solves(const BoardArray& puzzle, const BoardArray& solution);

}  // namespace sudoku

#endif
