#ifndef SNETSAC_SUDOKU_CORPUS_HPP
#define SNETSAC_SUDOKU_CORPUS_HPP

/// \file corpus.hpp
/// A small embedded puzzle corpus for tests, examples and benchmarks —
/// well-known public-domain 9×9 puzzles of graded difficulty plus a 4×4
/// warm-up board. All have unique solutions.

#include <string>
#include <vector>

#include "sudoku/board.hpp"

namespace sudoku {

struct CorpusEntry {
  std::string name;
  std::string cells;  ///< board_from_string format
  int n;              ///< box size
};

/// All embedded puzzles.
const std::vector<CorpusEntry>& corpus();

/// Lookup by name; throws SudokuError when absent.
BoardArray corpus_board(const std::string& name);

}  // namespace sudoku

#endif
