#ifndef SNETSAC_SUDOKU_BOXES_HPP
#define SNETSAC_SUDOKU_BOXES_HPP

/// \file boxes.hpp
/// The S-Net boxes of Section 5: SaC solver functions lifted to stream
/// components. Box signatures follow the paper's figures.
///
/// One deviation, documented in DESIGN.md: the paper's Fig. 1 listing
/// prints `snet_out(1, board, opts)` on the *completed* branch although
/// the figure's signature makes variant 1 the continuation variant
/// `{board, opts}` and variant 2 the completion variant `{board, <done>}`.
/// Taken literally, a completed board would never match the exit pattern
/// `{<done>}` and the network would never produce a solution; we implement
/// the evidently intended mapping (completed -> variant with `<done>`).

#include "snet/net.hpp"
#include "sudoku/board.hpp"

namespace sudoku {

/// Fig. 1 `computeOpts`: `{board} -> {board, opts}` — initialises the
/// options array by repeatedly calling addNumber.
snet::Net compute_opts_box();

/// Fig. 1 `solveOneLevel`:
/// `{board, opts} -> {board, opts} | {board, <done>}` — places one number
/// at the selected position and emits one record per viable candidate.
snet::Net solve_one_level_box();

/// Fig. 2 `solveOneLevel` with the split tag:
/// `{board, opts} -> {board, opts, <k>} | {board, <done>}` — "we simply
/// output the SaC-variable k along with the board and the options".
snet::Net solve_one_level_k_box();

/// Fig. 3 `solveOneLevel` with level reporting:
/// `{board, opts} -> {board, opts, <k>, <level>}` — `<level>` carries "the
/// number of numbers placed already, rather than a boolean flag".
/// Completed boards have level N² and therefore leave through the
/// `<level> > threshold` exit guard.
snet::Net solve_one_level_kl_box();

/// Fig. 3 trailing `solve`: `{board, opts} -> {board, opts}` — "calls the
/// full solver function from Section 3" on boards leaving the replicator
/// uncompleted.
snet::Net solve_box();

/// Convenience (not in the paper): a single box running the whole
/// sequential pipeline `{board} -> {board, <done>} | {board}` — solves the
/// board outright, tagging solved outputs.
snet::Net solve_board_box();

/// Extension box: `{board, opts} -> {board, opts}` — naked-singles
/// constraint propagation (see rules.hpp). Dropping it in front of the
/// replicators shrinks the search tree without changing solutions.
snet::Net propagate_box();

}  // namespace sudoku

#endif
