#include "sudoku/generator.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "sudoku/rules.hpp"
#include "sudoku/solver.hpp"

namespace sudoku {

BoardArray random_full_board(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const BoardArray empty = empty_board(n);
  auto [board, opts] = compute_opts(empty);
  SolveResult res = solve_random(std::move(board), std::move(opts), rng);
  if (!res.completed) {
    throw SudokuError("random_full_board failed (n=" + std::to_string(n) + ")");
  }
  return std::move(res.board);
}

BoardArray generate(const GenOptions& options) {
  std::mt19937_64 rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  BoardArray board = random_full_board(options.n, options.seed);
  const int N = board_size(board);
  const int total = N * N;
  if (options.clues < 0 || options.clues > total) {
    throw SudokuError("clue target out of range");
  }

  std::vector<int> order(static_cast<std::size_t>(total));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  int remaining = total;
  for (const int cell : order) {
    if (remaining <= options.clues) {
      break;
    }
    const int i = cell / N;
    const int j = cell % N;
    const int saved = board[{i, j}];
    if (saved == 0) {
      continue;
    }
    board.set({i, j}, 0);
    if (options.ensure_unique && count_solutions(board, 2) != 1) {
      board.set({i, j}, saved);  // removal would break uniqueness
      continue;
    }
    --remaining;
  }
  return board;
}

}  // namespace sudoku
