#include "runtime/sim_executor.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace snetsac::runtime {

namespace {

/// splitmix64: tiny, well-mixed, and trivially seedable — schedule
/// decisions must depend on nothing but the seed.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SimExecutor::SimExecutor(Options opts)
    : opts_(std::move(opts)), rng_state_(opts_.seed ^ 0xd1b54a32d192ed03ULL) {
  if (opts_.strategy == Strategy::kPct) {
    // Scatter the priority-change points over the first 1024 decisions
    // (runs are short; a point past the end simply never fires).
    change_steps_.reserve(opts_.pct_change_points);
    for (unsigned i = 0; i < opts_.pct_change_points; ++i) {
      change_steps_.push_back(next_rand() % 1024);
    }
    std::sort(change_steps_.begin(), change_steps_.end());
  }
}

std::uint64_t SimExecutor::next_rand() { return splitmix64(rng_state_); }

void SimExecutor::submit(std::function<void()> task) {
  Pending p;
  p.fn = std::move(task);
  p.id = next_task_id_++;
  // PCT: a task's priority is fixed at creation; the change points are
  // the only later perturbation. Shift keeps it clear of the demotion
  // band (demoted tasks get small values counting down from 1).
  p.priority = (next_rand() >> 8) + 1024;
  pending_.push_back(std::move(p));
}

std::size_t SimExecutor::pick() {
  const std::size_t n = pending_.size();
  std::size_t idx = 0;
  switch (opts_.strategy) {
    case Strategy::kRandom:
      idx = static_cast<std::size_t>(next_rand() % n);
      break;
    case Strategy::kReplay: {
      const std::uint32_t raw = replay_pos_ < opts_.replay.size()
                                    ? opts_.replay[replay_pos_]
                                    : 0U;
      ++replay_pos_;
      idx = std::min<std::size_t>(raw, n - 1);
      break;
    }
    case Strategy::kPct: {
      const bool change = std::binary_search(change_steps_.begin(),
                                             change_steps_.end(), step_count_);
      auto argmax = [&] {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
          if (pending_[i].priority > pending_[best].priority) {
            best = i;
          }
        }
        return best;
      };
      idx = argmax();
      if (change) {
        // Priority-change point: demote the task about to run below every
        // live priority — the schedule perturbation PCT's depth guarantee
        // comes from — and run whatever surfaces instead.
        pending_[idx].priority = low_priority_ == 0 ? 1023 : --low_priority_;
        if (low_priority_ == 0) {
          low_priority_ = 1023;
        }
        idx = argmax();
      }
      break;
    }
  }
  choices_.push_back(static_cast<std::uint32_t>(idx));
  options_seen_.push_back(static_cast<std::uint32_t>(n));
  return idx;
}

bool SimExecutor::step() {
  if (pending_.empty()) {
    return false;
  }
  const std::size_t idx = pick();
  Pending task = std::move(pending_[idx]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
  trace_.push_back(TraceEntry{step_count_, task.id,
                              choices_.back(), options_seen_.back()});
  ++step_count_;
  task.fn();
  if (after_task_) {
    after_task_();
  }
  return true;
}

void SimExecutor::drain() {
  while (step()) {
  }
}

void SimExecutor::help_until(Mutex& mu, CondVar& cv,
                             const std::function<bool()>& done) {
  (void)cv;  // nobody sleeps in simulation: progress is always a task run
  for (;;) {
    {
      UniqueLock lock(mu);
      if (done()) {
        return;
      }
    }
    if (!step()) {
      wedged("a help_until join predicate");
    }
  }
}

void SimExecutor::wedged(const char* waiting_on) {
  std::ostringstream os;
  os << "no pending task can ever satisfy " << waiting_on
     << " — a deadlock or lost wakeup (seed " << opts_.seed << ", "
     << step_count_ << " steps taken)\n"
     << format_trace();
  invariant_failure("progress (no deadlock / lost wakeup)", os.str());
}

std::string SimExecutor::format_trace() const {
  std::ostringstream os;
  os << "schedule trace (" << trace_.size() << " decisions):\n";
  for (const TraceEntry& e : trace_) {
    os << "  step " << e.step << ": task " << e.task_id << " (choice "
       << e.chosen << " of " << e.pending << " pending)\n";
  }
  return os.str();
}

}  // namespace snetsac::runtime
