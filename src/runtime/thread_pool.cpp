#include "runtime/thread_pool.hpp"

#include <utility>

namespace snetsac::runtime {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = threads == 0 ? 1U : threads;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::uint64_t ThreadPool::tasks_executed() const {
  const std::lock_guard lock(mu_);
  return executed_;
}

void ThreadPool::worker_loop() {
  // Graceful shutdown drains the queue: submitted work is never dropped.
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++executed_;
    }
    task();
  }
}

}  // namespace snetsac::runtime
