#include "runtime/executor.hpp"

#include <chrono>
#include <utility>

#include "runtime/env.hpp"

namespace snetsac::runtime {

namespace {

/// Worker identity of the current thread, if any. Lets submit() target the
/// worker's own deque and help_until() know it may run tasks inline.
struct WorkerTls {
  Executor* exec = nullptr;
  unsigned index = 0;
};

thread_local WorkerTls tls_worker;

/// Whether the task currently executing on this thread was stolen.
thread_local bool tls_task_stolen = false;

/// Cheap per-thread xorshift for victim selection; no global state.
std::uint64_t next_rand() {
  thread_local std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

Executor::Executor(unsigned threads) {
  // Lock order (checked builds): every S-Net mutex ranks below the
  // executor's own locks — a task body may submit (inject_mu_) or wake
  // sleepers (park_mu_) while holding protocol locks, never vice versa.
  inject_mu_.set_order(60, "executor.inject_mu");
  park_mu_.set_order(70, "executor.park_mu");
  const unsigned count = threads == 0 ? 1U : threads;
  queues_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<ChaseLevDeque<TaskFn*>>());
  }
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  stopping_.store(true);
  {
    // Taking park_mu_ orders the flag against a worker deciding to sleep.
    const MutexLock lock(park_mu_);
  }
  park_cv_.notify_all();
  threads_.clear();  // jthread joins; workers exit only once drained
  // The drain protocol leaves every deque empty; sweeping here is a leak
  // guard, not a correctness path.
  for (auto& q : queues_) {
    while (TaskFn* leftover = q->pop()) {
      delete leftover;
    }
  }
}

void Executor::submit(std::function<void()> task) {
  const WorkerTls& t = tls_worker;
  if (t.exec == this) {
    // Owner push: lock-free, no CAS on the fast path.
    queues_[t.index]->push(new TaskFn(std::move(task)));
  } else {
    const MutexLock lock(inject_mu_);
    inject_.push_back(std::move(task));
  }
  work_epoch_.fetch_add(1);  // seq_cst: must be visible before sleeper check
  if (sleepers_.load() > 0) {
    // Lock/unlock pairs the notify with a sleeper that passed its epoch
    // re-check but has not yet entered wait().
    { const MutexLock lock(park_mu_); }
    park_cv_.notify_one();
  }
}

bool Executor::on_worker_thread() const { return tls_worker.exec == this; }

bool Executor::current_task_stolen() { return tls_task_stolen; }

bool Executor::pop_task(unsigned self, TaskFn& out, bool& stolen) {
  stolen = false;
  // 1. Own deque, newest first: the task most likely still in cache, and
  //    the one a nested join is most likely waiting on. Owner pop is
  //    lock-free (one CAS only when racing a thief for the last element).
  if (TaskFn* own = queues_[self]->pop()) {
    out = std::move(*own);
    delete own;
    return true;
  }
  // 2. Injector queue, oldest first (external submission order).
  {
    const MutexLock lock(inject_mu_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  // 3. Steal FIFO from a random victim, scanning every deque once. A
  //    steal that loses its CAS (ABORT) is retried on the same victim —
  //    the element went to the winner, but the deque may still hold a
  //    backlog, and misreading it as empty could park this worker while
  //    runnable work sits queued. An empty-handed return therefore means
  //    every deque was observed genuinely empty during the scan.
  const unsigned n = static_cast<unsigned>(queues_.size());
  const unsigned start = static_cast<unsigned>(next_rand() % n);
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) {
      continue;
    }
    bool lost_race = false;
    do {
      if (TaskFn* loot = queues_[v]->steal(&lost_race)) {
        out = std::move(*loot);
        delete loot;
        steals_.fetch_add(1, std::memory_order_relaxed);
        stolen = true;
        return true;
      }
    } while (lost_race);
  }
  return false;
}

bool Executor::try_run_one(unsigned self) {
  TaskFn task;
  bool stolen = false;
  if (!pop_task(self, task, stolen)) {
    return false;
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  const bool prev = tls_task_stolen;  // nested help_until runs inner tasks
  tls_task_stolen = stolen;
  task();
  tls_task_stolen = prev;
  return true;
}

void Executor::worker_loop(unsigned index) {
  tls_worker = WorkerTls{this, index};
  std::uint64_t seen_epoch = work_epoch_.load();
  for (;;) {
    if (try_run_one(index)) {
      continue;
    }
    UniqueLock lock(park_mu_);
    sleepers_.fetch_add(1);  // seq_cst: registered before the final check
    const std::uint64_t now = work_epoch_.load();
    if (now != seen_epoch || stopping_.load()) {
      // A submit raced our scan (rescan), or we are shutting down (one
      // last scan decides whether the drain is complete).
      sleepers_.fetch_sub(1);
      if (now == seen_epoch && stopping_.load()) {
        return;  // scan found nothing and nothing new arrived: drained
      }
      seen_epoch = now;
      continue;
    }
    park_cv_.wait(lock, [&] {
      return stopping_.load() || work_epoch_.load() != seen_epoch;
    });
    sleepers_.fetch_sub(1);
    seen_epoch = work_epoch_.load();
  }
}

void Executor::help_until(Mutex& mu, CondVar& cv,
                          const std::function<bool()>& done) {
  if (!on_worker_thread()) {
    UniqueLock lock(mu);
    cv.wait(lock, done);
    return;
  }
  const unsigned self = tls_worker.index;
  for (;;) {
    {
      UniqueLock lock(mu);
      if (done()) {
        return;
      }
    }
    if (try_run_one(self)) {
      continue;
    }
    // Nothing runnable anywhere: the tasks the join waits on are being
    // executed by other workers. Sleep briefly rather than spin; the
    // timeout also covers joins whose completion path under-notifies.
    UniqueLock lock(mu);
    if (done()) {
      return;
    }
    cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

Executor& Executor::global() {
  static Executor exec(default_executor_threads());
  return exec;
}

}  // namespace snetsac::runtime
