#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/annotations.hpp"

namespace snetsac::runtime {

namespace {

/// Shared completion state for one fork-join region. Chunk tasks signal
/// here; the issuing thread helps or waits. Kept in a shared_ptr so stray
/// tasks can never outlive the state they touch.
struct JoinState {
  Mutex mu;
  CondVar cv;
  std::size_t remaining SNETSAC_GUARDED_BY(mu) = 0;
  std::exception_ptr error SNETSAC_GUARDED_BY(mu);

  void finish_one(std::exception_ptr err) {
    bool last = false;
    {
      const MutexLock lock(mu);
      if (err && !error) {
        error = err;
      }
      last = --remaining == 0;
    }
    if (last) {
      cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for_chunks(Executor& exec, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         unsigned max_tasks) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t extent = end - begin;
  const unsigned workers = max_tasks == 0 ? exec.size() + 1 : max_tasks;
  const std::int64_t wanted = std::min<std::int64_t>(workers, (extent + grain - 1) / grain);
  if (wanted <= 1) {
    body(begin, end);
    return;
  }
  const std::int64_t chunk = (extent + wanted - 1) / wanted;

  struct Range {
    std::int64_t lo;
    std::int64_t hi;
  };
  std::vector<Range> ranges;
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    ranges.push_back({lo, std::min(lo + chunk, end)});
  }

  auto state = std::make_shared<JoinState>();
  state->remaining = ranges.size();

  // All but the first chunk go to the executor; the calling thread runs
  // chunk 0 itself so even a single-threaded executor makes progress.
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    const Range r = ranges[i];
    exec.submit([state, r, &body] {
      std::exception_ptr err;
      try {
        body(r.lo, r.hi);
      } catch (...) {
        err = std::current_exception();
      }
      state->finish_one(err);
    });
  }
  {
    std::exception_ptr err;
    try {
      body(ranges[0].lo, ranges[0].hi);
    } catch (...) {
      err = std::current_exception();
    }
    state->finish_one(err);
  }

  // Cooperative join: a worker keeps executing tasks (its own freshly
  // pushed chunks first) instead of blocking a pool slot; an external
  // thread waits on the condition variable as before.
  exec.help_until(state->mu, state->cv, [&] {
    state->mu.assert_held();  // wait predicates run under the lock
    return state->remaining == 0;
  });
  const MutexLock lock(state->mu);
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace snetsac::runtime
