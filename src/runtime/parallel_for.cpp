#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace snetsac::runtime {

namespace {

/// Shared completion state for one fork-join region. Chunk tasks signal
/// here; the issuing thread waits. Kept in a shared_ptr so stray tasks can
/// never outlive the state they touch.
struct JoinState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr err) {
    const std::lock_guard lock(mu);
    if (err && !error) {
      error = err;
    }
    if (--remaining == 0) {
      cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for_chunks(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         unsigned max_tasks) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t extent = end - begin;
  const unsigned workers = max_tasks == 0 ? pool.size() + 1 : max_tasks;
  const std::int64_t wanted = std::min<std::int64_t>(workers, (extent + grain - 1) / grain);
  if (wanted <= 1) {
    body(begin, end);
    return;
  }
  const std::int64_t chunk = (extent + wanted - 1) / wanted;

  struct Range {
    std::int64_t lo;
    std::int64_t hi;
  };
  std::vector<Range> ranges;
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    ranges.push_back({lo, std::min(lo + chunk, end)});
  }

  auto state = std::make_shared<JoinState>();
  state->remaining = ranges.size();

  // All but the first chunk go to the pool; the calling thread runs chunk 0
  // itself so a single-threaded pool still makes progress.
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    const Range r = ranges[i];
    pool.submit([state, r, &body] {
      std::exception_ptr err;
      try {
        body(r.lo, r.hi);
      } catch (...) {
        err = std::current_exception();
      }
      state->finish_one(err);
    });
  }
  {
    std::exception_ptr err;
    try {
      body(ranges[0].lo, ranges[0].hi);
    } catch (...) {
      err = std::current_exception();
    }
    state->finish_one(err);
  }

  std::unique_lock lock(state->mu);
  state->cv.wait(lock, [&] { return state->remaining == 0; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace snetsac::runtime
