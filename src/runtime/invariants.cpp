#include "runtime/invariants.hpp"

#include <cstdio>

#if SNETSAC_CHECKED
#include <iterator>
#include <vector>
#endif

namespace snetsac::runtime {

[[noreturn]] void invariant_failure(const char* law,
                                    const std::string& detail) {
  std::string msg = "protocol invariant violated: ";
  msg += law;
  if (!detail.empty()) {
    msg += " — ";
    msg += detail;
  }
  std::fprintf(stderr, "[snetsac] %s\n", msg.c_str());
  std::fflush(stderr);
  throw ProtocolInvariantError(msg);
}

#if SNETSAC_CHECKED

namespace checked {
namespace {

struct HeldLock {
  const void* mu;
  unsigned rank;
  const char* name;
};

// Static-duration objects (the default executor pool) lock mutexes from
// atexit destructors, which glibc runs *after* this thread's TLS
// destructors — by then the held stack's storage is gone. The flag is a
// destructor-free POD thread_local, so it stays readable through exit;
// once the stack's own destructor flips it, the registry goes inert for
// the remainder of teardown instead of writing freed memory.
thread_local bool tls_torn_down = false;

struct HeldStack {
  std::vector<HeldLock> locks;
  ~HeldStack() { tls_torn_down = true; }
};

std::vector<HeldLock>& held_stack() {
  thread_local HeldStack stack;
  return stack.locks;
}

bool registry_inert() { return tls_torn_down; }

}  // namespace

void note_lock_attempt(const void* mu, unsigned rank, const char* name) {
  if (registry_inert()) {
    return;
  }
  auto& stack = held_stack();
  for (const auto& held : stack) {
    if (held.mu == mu) {
      std::ostringstream os;
      os << "mutex '" << name << "' (" << mu
         << ") re-acquired by the thread already holding it";
      invariant_failure("no recursive acquisition", os.str());
    }
    // Rank 0 mutexes are outside the declared order (leaf locks whose
    // critical sections take no further locks); only ranked-vs-ranked
    // inversions are cycles in the declared order.
    if (rank != 0 && held.rank != 0 && held.rank >= rank) {
      std::ostringstream os;
      os << "acquiring '" << name << "' (rank " << rank << ") while holding '"
         << held.name << "' (rank " << held.rank
         << ") — lock order is by ascending rank; this inversion is half of "
            "a deadlock cycle";
      invariant_failure("lock-order (ascending rank)", os.str());
    }
  }
}

void note_locked(const void* mu, unsigned rank, const char* name) {
  if (registry_inert()) {
    return;
  }
  held_stack().push_back(HeldLock{mu, rank, name});
}

void note_unlocked(const void* mu) {
  if (registry_inert()) {
    return;
  }
  auto& stack = held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  std::ostringstream os;
  os << "mutex " << mu << " released by a thread that does not hold it";
  invariant_failure("release only held locks", os.str());
}

void assert_thread_holds(const void* mu, const char* name) {
  if (registry_inert()) {
    return;
  }
  if (!thread_holds(mu)) {
    std::ostringstream os;
    os << "capability '" << name << "' (" << mu
       << ") asserted held but this thread does not hold it";
    invariant_failure("assert_held", os.str());
  }
}

bool thread_holds(const void* mu) {
  if (registry_inert()) {
    // Teardown-time queries can only say "unknown"; holding is the
    // answer that keeps assert_held callers on the non-throwing path.
    return true;
  }
  for (const auto& held : held_stack()) {
    if (held.mu == mu) {
      return true;
    }
  }
  return false;
}

}  // namespace checked

#endif  // SNETSAC_CHECKED

}  // namespace snetsac::runtime
