#ifndef SNETSAC_RUNTIME_THREAD_POOL_HPP
#define SNETSAC_RUNTIME_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// A fixed-size worker pool. Both layers of the reproduced system sit on
/// top of this: the SaC layer uses it through `parallel_for` for
/// data-parallel with-loop execution, and the S-Net layer uses a dedicated
/// instance to run box/combinator entities (tasks, not threads — CP.4).

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snetsac::runtime {

class ThreadPool {
 public:
  /// Spawns \p threads workers. A count of 0 is promoted to 1.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Tasks must not block
  /// indefinitely on other tasks (the pool is fixed-size).
  void submit(std::function<void()> task);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Number of tasks submitted over the pool's lifetime (observability).
  std::uint64_t tasks_executed() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace snetsac::runtime

#endif
