#ifndef SNETSAC_RUNTIME_THREAD_POOL_HPP
#define SNETSAC_RUNTIME_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// Compatibility facade over the unified work-stealing Executor.
///
/// Earlier revisions gave each layer its own mutex+condvar pool; both now
/// share one Executor (see executor.hpp). ThreadPool remains for clients
/// and tests that want a private, fixed-size pool with the historical
/// submit/size/tasks_executed surface — it simply owns an Executor.

#include <cstdint>
#include <functional>

#include "runtime/executor.hpp"

namespace snetsac::runtime {

class ThreadPool {
 public:
  /// Spawns \p threads workers. A count of 0 is promoted to 1.
  explicit ThreadPool(unsigned threads) : exec_(threads) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Tasks must not block
  /// indefinitely on other tasks except through Executor::help_until.
  void submit(std::function<void()> task) { exec_.submit(std::move(task)); }

  unsigned size() const { return exec_.size(); }

  /// Number of tasks executed over the pool's lifetime (observability).
  std::uint64_t tasks_executed() const { return exec_.tasks_executed(); }

  /// The underlying executor (work stealing, cooperative joins).
  Executor& executor() { return exec_; }

 private:
  Executor exec_;
};

}  // namespace snetsac::runtime

#endif
