#ifndef SNETSAC_RUNTIME_ANNOTATIONS_HPP
#define SNETSAC_RUNTIME_ANNOTATIONS_HPP

/// \file annotations.hpp
/// Clang thread-safety annotations plus the annotated synchronisation
/// primitives the runtime and S-Net layers build on.
///
/// The concurrency substrate (credit/backpressure, per-session deferral,
/// DRR dispatch, the executor's parking lot) keeps its lock discipline in
/// prose today; this header makes it *compiler-checked*:
///
///  * under clang, `-Wthread-safety` (CI runs `-Werror=thread-safety`)
///    statically verifies every access to a `SNETSAC_GUARDED_BY` field
///    happens with the right capability held — a misuse is a build
///    failure, not a rare TSan interleaving;
///  * under any other compiler the macros expand to nothing, so g++
///    builds are untouched;
///  * under `SNETSAC_CHECKED` (see invariants.hpp) the same wrappers gain
///    a *dynamic* lock-order registry: ranked mutexes abort the process
///    of acquiring out of order (the cycle that deadlocks once a year in
///    production dies in the first schedcheck seed instead).
///
/// The std primitives carry no annotations, so the annotated story needs
/// thin wrappers: `Mutex` (capability), `MutexLock`/`UniqueLock` (scoped
/// capabilities), `CondVar` (waits on a UniqueLock), and `ThreadRole` — a
/// virtual capability for data that is not protected by any mutex but by
/// the *protocol* guarantee that at most one worker runs a given entity at
/// a time (the Entity state machine). Acquiring the role is free; the
/// point is that clang now proves every touch of worker-only state happens
/// inside a quantum.

#include <mutex>
#include <condition_variable>

#include "runtime/invariants.hpp"

// -------------------------------------------------------------- attributes

#if defined(__clang__) && !defined(SNETSAC_NO_THREAD_SAFETY_ANALYSIS_MACROS)
#define SNETSAC_TSA(x) __attribute__((x))
#else
#define SNETSAC_TSA(x)  // no-op off clang
#endif

#define SNETSAC_CAPABILITY(x) SNETSAC_TSA(capability(x))
#define SNETSAC_SCOPED_CAPABILITY SNETSAC_TSA(scoped_lockable)
#define SNETSAC_GUARDED_BY(x) SNETSAC_TSA(guarded_by(x))
#define SNETSAC_PT_GUARDED_BY(x) SNETSAC_TSA(pt_guarded_by(x))
#define SNETSAC_REQUIRES(...) SNETSAC_TSA(requires_capability(__VA_ARGS__))
#define SNETSAC_ACQUIRE(...) SNETSAC_TSA(acquire_capability(__VA_ARGS__))
#define SNETSAC_RELEASE(...) SNETSAC_TSA(release_capability(__VA_ARGS__))
#define SNETSAC_TRY_ACQUIRE(...) SNETSAC_TSA(try_acquire_capability(__VA_ARGS__))
#define SNETSAC_EXCLUDES(...) SNETSAC_TSA(locks_excluded(__VA_ARGS__))
#define SNETSAC_ASSERT_CAPABILITY(x) SNETSAC_TSA(assert_capability(x))
#define SNETSAC_RETURN_CAPABILITY(x) SNETSAC_TSA(lock_returned(x))
#define SNETSAC_NO_TSA SNETSAC_TSA(no_thread_safety_analysis)

namespace snetsac::runtime {

// ------------------------------------------------------------------- Mutex

/// An annotated std::mutex. In checked builds it also participates in the
/// dynamic lock-order registry: `set_order(rank, name)` declares its
/// position in the global acquisition order (lower ranks acquire first),
/// and any thread that locks it while holding a same-or-higher rank aborts
/// with both names — a cycle between out_mu_/dispatch_mu_/inbox mutexes
/// cannot survive a single exercised interleaving.
class SNETSAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SNETSAC_ACQUIRE() {
#if SNETSAC_CHECKED
    checked::note_lock_attempt(this, rank_, name_);
#endif
    mu_.lock();
#if SNETSAC_CHECKED
    checked::note_locked(this, rank_, name_);
#endif
  }

  void unlock() SNETSAC_RELEASE() {
#if SNETSAC_CHECKED
    checked::note_unlocked(this);
#endif
    mu_.unlock();
  }

  /// Static assertion hand-off for code clang cannot follow (a wait
  /// predicate evaluated inside std::condition_variable::wait, a callback
  /// invoked under a caller's lock): tells the analysis — and, in checked
  /// builds, dynamically verifies — that the calling thread holds this
  /// mutex.
  void assert_held() const SNETSAC_ASSERT_CAPABILITY(this) {
#if SNETSAC_CHECKED
    checked::assert_thread_holds(this, name_);
#endif
  }

  /// Declares this mutex's position in the global lock order (checked
  /// builds only; a rank of 0 opts out of order checking). Call once,
  /// before the mutex is shared.
  void set_order(unsigned rank, const char* name) {
#if SNETSAC_CHECKED
    rank_ = rank;
    name_ = name;
#else
    (void)rank;
    (void)name;
#endif
  }

  /// The wrapped mutex, for std::condition_variable interop (UniqueLock).
  std::mutex& native() { return mu_; }

  /// Declared order position (0 when unranked or in unchecked builds).
  unsigned order_rank() const {
#if SNETSAC_CHECKED
    return rank_;
#else
    return 0;
#endif
  }
  const char* order_name() const {
#if SNETSAC_CHECKED
    return name_;
#else
    return "mutex";
#endif
  }

 private:
  std::mutex mu_;
#if SNETSAC_CHECKED
  unsigned rank_ = 0;
  const char* name_ = "mutex";
#endif
};

// ------------------------------------------------------------- MutexLock

/// std::lock_guard over Mutex, visible to the analysis.
class SNETSAC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SNETSAC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SNETSAC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// ------------------------------------------------------------- UniqueLock

/// std::unique_lock over Mutex: relockable scoped capability, and the
/// handle a CondVar waits on. The condition variable's internal
/// release/re-acquire is invisible to the analysis (and to the checked
/// registry) by design — the lock is held again before wait() returns, so
/// the capability state is accurate at every point client code runs.
class SNETSAC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SNETSAC_ACQUIRE(mu)
      : mu_(mu), lock_(mu.native(), std::defer_lock) {
    acquire_tracked();
  }

  ~UniqueLock() SNETSAC_RELEASE() {
    if (lock_.owns_lock()) {
      release_tracked();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() SNETSAC_ACQUIRE() { acquire_tracked(); }
  void unlock() SNETSAC_RELEASE() { release_tracked(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// For CondVar only.
  std::unique_lock<std::mutex>& native() { return lock_; }
  Mutex& mutex() { return mu_; }

 private:
  void acquire_tracked() SNETSAC_NO_TSA {
#if SNETSAC_CHECKED
    checked::note_lock_attempt(&mu_, mu_.order_rank(), mu_.order_name());
#endif
    lock_.lock();
#if SNETSAC_CHECKED
    checked::note_locked(&mu_, mu_.order_rank(), mu_.order_name());
#endif
  }

  void release_tracked() SNETSAC_NO_TSA {
#if SNETSAC_CHECKED
    checked::note_unlocked(&mu_);
#endif
    lock_.unlock();
  }

  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

// ---------------------------------------------------------------- CondVar

/// Annotated condition variable over `Mutex`/`UniqueLock`. Predicates are
/// evaluated by the std machinery with the lock held; a predicate that
/// reads guarded state should open with `mu.assert_held()` so the analysis
/// (which treats the lambda as a free function) knows the capability is in
/// fact held — and so checked builds verify it dynamically.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Pred>
  void wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& d,
                Pred pred) {
    return cv_.wait_for(lock.native(), d, std::move(pred));
  }

  template <class Rep, class Period>
  void wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& d) {
    cv_.wait_for(lock.native(), d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ------------------------------------------------------------- ThreadRole

/// A virtual capability for *protocol-serialised* state: data touched by
/// at most one thread at a time not because a mutex says so but because a
/// state machine does (an Entity's quantum: the idle/queued/running CAS
/// handshake guarantees a single runner). Acquire/release are free; the
/// value is that clang now proves worker-only fields (`batch_`, the
/// emission buffers, the deferred map) are only touched inside a quantum,
/// and checked builds verify the same claim dynamically.
class SNETSAC_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void acquire() SNETSAC_ACQUIRE() {
#if SNETSAC_CHECKED
    // note_lock_attempt's recursive-acquisition check catches same-thread
    // re-entry into a quantum frame (an entity running itself again
    // through a nested drain).
    checked::note_lock_attempt(this, 0, "role");
    checked::note_locked(this, 0, "role");
#endif
  }

  void release() SNETSAC_RELEASE() {
#if SNETSAC_CHECKED
    checked::note_unlocked(this);
#endif
  }

  /// See Mutex::assert_held — the hand-off for virtual overrides invoked
  /// from inside a quantum (on_record and friends), where annotating every
  /// override signature is brittler than asserting at entry.
  void assert_held() const SNETSAC_ASSERT_CAPABILITY(this) {
#if SNETSAC_CHECKED
    checked::assert_thread_holds(this, "role");
#endif
  }
};

/// Scoped ThreadRole holder (run_quantum's frame).
class SNETSAC_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(ThreadRole& role) SNETSAC_ACQUIRE(role) : role_(role) {
    role_.acquire();
  }
  ~RoleGuard() SNETSAC_RELEASE() { role_.release(); }

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace snetsac::runtime

#endif
