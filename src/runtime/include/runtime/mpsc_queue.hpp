#ifndef SNETSAC_RUNTIME_MPSC_QUEUE_HPP
#define SNETSAC_RUNTIME_MPSC_QUEUE_HPP

/// \file mpsc_queue.hpp
/// Multi-producer single-consumer queue used as the inbox of every S-Net
/// runtime entity. Many upstream streams may feed the same inbox — that is
/// exactly the non-deterministic merge of the paper's parallel combinator:
/// "any record produced proceeds as soon as possible".
///
/// The consumer side is only ever touched by the scheduler worker that is
/// currently running the owning entity, so a mutex-protected deque is both
/// simple and adequate (Core Guidelines CP.1/CP.2: correctness first; the
/// queue is the *only* shared state, and the lock is held for O(1) work).

#include <algorithm>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace snetsac::runtime {

template <class T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Pushes an element; returns true when the queue was empty beforehand
  /// (the caller uses this to decide whether the consumer must be woken).
  bool push(T value) {
    const std::lock_guard lock(mu_);
    const bool was_empty = items_.empty();
    items_.push_back(std::move(value));
    return was_empty;
  }

  /// Batched pop: moves up to \p max_n oldest elements into \p out
  /// (appending), taking the lock once for the whole batch. Returns the
  /// number of elements moved. This is the consumer's fast path — an
  /// entity quantum drains its inbox with one lock acquisition instead of
  /// one per message.
  std::size_t drain_into(std::vector<T>& out, std::size_t max_n) {
    const std::lock_guard lock(mu_);
    const std::size_t n = std::min(max_n, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return n;
  }

  /// Pops the oldest element if present.
  std::optional<T> try_pop() {
    const std::lock_guard lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  bool empty() const {
    const std::lock_guard lock(mu_);
    return items_.empty();
  }

  std::size_t size() const {
    const std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace snetsac::runtime

#endif
