#ifndef SNETSAC_RUNTIME_MPSC_QUEUE_HPP
#define SNETSAC_RUNTIME_MPSC_QUEUE_HPP

/// \file mpsc_queue.hpp
/// Multi-producer single-consumer queue used as the inbox of every S-Net
/// runtime entity. Many upstream streams may feed the same inbox — that is
/// exactly the non-deterministic merge of the paper's parallel combinator:
/// "any record produced proceeds as soon as possible".
///
/// The queue has an optional *bounded* mode (`set_capacity`): producers can
/// ask whether a push crossed the bound (`PushResult::congested`), reject a
/// push outright (`try_push`), or register a credit waiter that fires once
/// the consumer drains the queue back below the release watermark
/// (`wait_for_credit` / `take_released`). The bound is a soft one by
/// design: an unconditional `push` always succeeds — a producer that is
/// mid-record finishes its emissions and *then* suspends — so overshoot is
/// bounded by the emissions of one record per producer, never unbounded.
///
/// The consumer side is only ever touched by the scheduler worker that is
/// currently running the owning entity, so a mutex-protected contiguous
/// ring (vector + head index) is both simple and adequate (Core Guidelines
/// CP.1/CP.2: correctness first; the queue is the *only* shared state, and
/// the lock is held for O(1) amortised work). The vector storage exists for
/// the batched paths: a full `drain_into` is an O(1) buffer swap, and
/// `push_all` is a contiguous move — no per-element deque block churn.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/annotations.hpp"

namespace snetsac::runtime {

template <class T>
class MpscQueue {
 public:
  struct PushResult {
    bool was_empty = false;  // the consumer may need waking
    bool congested = false;  // the producer should back off
    /// Compatibility with the historical `bool push` (was-empty) contract.
    explicit operator bool() const { return was_empty; }
  };

  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enables bounded mode: \p cap elements (0 = unbounded). The release
  /// watermark is cap/2 — credit waiters fire only once the consumer has
  /// drained half the bound, so producers do not thrash at the boundary.
  void set_capacity(std::size_t cap) {
    const MutexLock lock(mu_);
    capacity_ = cap;
  }

  std::size_t capacity() const {
    const MutexLock lock(mu_);
    return capacity_;
  }

  /// Pushes an element unconditionally (see file comment: the bound is
  /// soft for in-flight producers). Reports both whether the queue was
  /// empty beforehand and whether it is now at/over capacity.
  PushResult push(T value) {
    const MutexLock lock(mu_);
    PushResult res;
    res.was_empty = len() == 0;
    items_.push_back(std::move(value));
    res.congested = capacity_ != 0 && len() >= capacity_;
    return res;
  }

  /// Batched push, the producer-side sibling of `drain_into`: moves every
  /// element of \p values into the queue under one lock acquisition and
  /// clears \p values. Like `push` the bound is soft — the batch always
  /// lands in full (a producer flushing its emission buffer must not have
  /// to unpick a half-accepted quantum) — and the result reports
  /// emptiness before the batch and congestion after it, so the caller
  /// wakes the consumer once and backs off once per batch instead of per
  /// record.
  PushResult push_all(std::vector<T>& values) {
    PushResult res;
    if (values.empty()) {
      const MutexLock lock(mu_);
      res.was_empty = len() == 0;
      res.congested = capacity_ != 0 && len() >= capacity_;
      return res;
    }
    {
      const MutexLock lock(mu_);
      res.was_empty = len() == 0;
      if (res.was_empty && items_.capacity() < values.capacity()) {
        // Empty queue: adopt the batch buffer outright — the producer's
        // emission buffer and the inbox trade places instead of copying.
        items_.clear();
        head_ = 0;
        items_.swap(values);
      } else {
        items_.insert(items_.end(), std::make_move_iterator(values.begin()),
                      std::make_move_iterator(values.end()));
      }
      res.congested = capacity_ != 0 && len() >= capacity_;
    }
    values.clear();
    return res;
  }

  /// Bounded push: refuses (and leaves \p value untouched) when the queue
  /// is at capacity. This is the hard edge of the bound, used by client
  /// injection (`InputPort::try_inject`) rather than by in-flight records.
  bool try_push(T& value) {
    const MutexLock lock(mu_);
    if (capacity_ != 0 && len() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(value));
    return true;
  }

  /// Batched pop: moves up to \p max_n oldest elements into \p out
  /// (appending), taking the lock once for the whole batch. Returns the
  /// number of elements moved. This is the consumer's fast path — an
  /// entity quantum drains its inbox with one lock acquisition instead of
  /// one per message. Call `take_released` afterwards to collect credit
  /// waiters the drain made runnable.
  std::size_t drain_into(std::vector<T>& out, std::size_t max_n) {
    const MutexLock lock(mu_);
    const std::size_t n = std::min(max_n, len());
    if (n == 0) {
      return 0;
    }
    if (out.empty() && head_ == 0 && n == items_.size()) {
      // Full drain into an empty batch buffer: swap, O(1).
      out.swap(items_);
      return n;
    }
    out.insert(out.end(), std::make_move_iterator(items_.begin() + head_),
               std::make_move_iterator(items_.begin() + head_ + n));
    advance(n);
    return n;
  }

  /// Pops the oldest element if present.
  std::optional<T> try_pop() {
    const MutexLock lock(mu_);
    if (len() == 0) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_[head_]));
    advance(1);
    return out;
  }

  /// Single-lock pop-and-release: pops the oldest element (if any) and, in
  /// the same critical section, moves out credit waiters the pop made
  /// runnable (the `take_released` watermark rule). The consumer's
  /// per-record fast path — the S-Net input dispatcher pops one staged
  /// record per DRR grant and must not pay a second lock acquisition to
  /// check the credit list each time. Waiters are invoked by the caller
  /// outside the lock.
  std::optional<T> try_pop_collect(std::vector<std::function<void()>>& released) {
    const MutexLock lock(mu_);
    if (len() == 0) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_[head_]));
    advance(1);
    if (!waiters_.empty() && (capacity_ == 0 || len() <= capacity_ / 2)) {
      released.insert(released.end(), std::make_move_iterator(waiters_.begin()),
                      std::make_move_iterator(waiters_.end()));
      waiters_.clear();
    }
    return out;
  }

  bool empty() const {
    const MutexLock lock(mu_);
    return len() == 0;
  }

  std::size_t size() const {
    const MutexLock lock(mu_);
    return len();
  }

  /// True when bounded and currently at/over capacity.
  bool congested() const {
    const MutexLock lock(mu_);
    return capacity_ != 0 && len() >= capacity_;
  }

  /// Credit protocol, producer side: registers \p cb to be fired once the
  /// consumer drains the queue to the release watermark. Returns false —
  /// without registering — when credit is already available (unbounded, or
  /// below capacity): the caller should simply proceed/retry instead of
  /// waiting. At most one firing per registration.
  bool wait_for_credit(std::function<void()> cb) {
    const MutexLock lock(mu_);
    if (capacity_ == 0 || len() < capacity_) {
      return false;
    }
    waiters_.push_back(std::move(cb));
    return true;
  }

  /// Credit protocol, consumer side: moves out every registered waiter
  /// when the queue has drained to the release watermark (cap/2). The
  /// caller invokes them *outside* the lock — a waiter typically
  /// re-enqueues a suspended entity into the scheduler.
  void take_released(std::vector<std::function<void()>>& out) {
    const MutexLock lock(mu_);
    if (waiters_.empty() || (capacity_ != 0 && len() > capacity_ / 2)) {
      return;
    }
    out.insert(out.end(), std::make_move_iterator(waiters_.begin()),
               std::make_move_iterator(waiters_.end()));
    waiters_.clear();
  }

  /// Diagnostic for the invariant layer: true when credit waiters are
  /// registered although the queue is at/below the release watermark — a
  /// drain happened and nobody collected the released waiters, i.e. a
  /// producer will sleep forever on credit that already exists. Only
  /// meaningful at a quiescent point (between consumer steps): mid-drain
  /// the consumer simply has not called take_released *yet*.
  bool lost_wakeup_suspected() const {
    const MutexLock lock(mu_);
    return !waiters_.empty() && (capacity_ == 0 || len() <= capacity_ / 2);
  }

  /// Registered-but-unfired credit waiters (observability/invariants).
  std::size_t waiter_count() const {
    const MutexLock lock(mu_);
    return waiters_.size();
  }

  /// Declares the internal mutex's position in the global lock order
  /// (checked builds; see Mutex::set_order).
  void set_lock_order(unsigned rank, const char* name) {
    mu_.set_order(rank, name);
  }

 private:
  std::size_t len() const SNETSAC_REQUIRES(mu_) { return items_.size() - head_; }

  /// Consumes \p n elements from the front; resets the buffer once fully
  /// drained so the dead prefix of moved-from slots never grows past one
  /// producer burst.
  void advance(std::size_t n) SNETSAC_REQUIRES(mu_) {
    head_ += n;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
  }

  mutable Mutex mu_;
  std::vector<T> items_ SNETSAC_GUARDED_BY(mu_);   // live elements: items_[head_..)
  std::size_t head_ SNETSAC_GUARDED_BY(mu_) = 0;   // consumed prefix
  std::size_t capacity_ SNETSAC_GUARDED_BY(mu_) = 0;  // 0 = unbounded
  std::vector<std::function<void()>> waiters_ SNETSAC_GUARDED_BY(mu_);
};

}  // namespace snetsac::runtime

#endif
