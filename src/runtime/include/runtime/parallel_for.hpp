#ifndef SNETSAC_RUNTIME_PARALLEL_FOR_HPP
#define SNETSAC_RUNTIME_PARALLEL_FOR_HPP

/// \file parallel_for.hpp
/// Blocking fork-join helpers on top of ThreadPool. This is the execution
/// engine behind SaC's implicit data parallelism: a with-loop's index space
/// is partitioned into contiguous chunks distributed over the pool, exactly
/// like SaC's multithreaded code generation distributes with-loop ranges.

#include <cstdint>
#include <exception>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace snetsac::runtime {

/// Runs `body(lo, hi)` over disjoint chunks covering [begin, end).
/// The calling thread participates; the call returns once every chunk has
/// finished. The first exception thrown by any chunk is rethrown here.
/// `grain` is the minimum chunk width (>= 1); chunk count never exceeds
/// `max_tasks` (0 means pool size).
void parallel_for_chunks(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         unsigned max_tasks = 0);

/// Element-wise convenience wrapper: `body(i)` for every i in [begin, end).
template <class F>
void parallel_for_each(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                       std::int64_t grain, F&& body) {
  parallel_for_chunks(pool, begin, end, grain,
                      [&body](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i) {
                          body(i);
                        }
                      });
}

}  // namespace snetsac::runtime

#endif
