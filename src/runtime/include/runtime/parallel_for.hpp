#ifndef SNETSAC_RUNTIME_PARALLEL_FOR_HPP
#define SNETSAC_RUNTIME_PARALLEL_FOR_HPP

/// \file parallel_for.hpp
/// Fork-join helpers on top of the unified Executor. This is the execution
/// engine behind SaC's implicit data parallelism: a with-loop's index space
/// is partitioned into contiguous chunks distributed over the workers,
/// exactly like SaC's multithreaded code generation distributes with-loop
/// ranges.
///
/// The join is *cooperative*: when the caller is itself an executor worker
/// (a with-loop opened inside an S-Net box quantum), it does not block a
/// pool slot — it executes queued tasks, preferring its own chunks, until
/// the region completes (Executor::help_until). Nested data parallelism on
/// a fixed-size pool therefore cannot deadlock and never oversubscribes.

#include <cstdint>
#include <exception>
#include <functional>

#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"

namespace snetsac::runtime {

/// Runs `body(lo, hi)` over disjoint chunks covering [begin, end).
/// The calling thread participates; the call returns once every chunk has
/// finished. The first exception thrown by any chunk is rethrown here.
/// `grain` is the minimum chunk width (>= 1); chunk count never exceeds
/// `max_tasks` (0 means executor size + 1).
void parallel_for_chunks(Executor& exec, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         unsigned max_tasks = 0);

/// ThreadPool compatibility overload; forwards to the pool's executor.
inline void parallel_for_chunks(ThreadPool& pool, std::int64_t begin,
                                std::int64_t end, std::int64_t grain,
                                const std::function<void(std::int64_t, std::int64_t)>& body,
                                unsigned max_tasks = 0) {
  parallel_for_chunks(pool.executor(), begin, end, grain, body, max_tasks);
}

/// Element-wise convenience wrapper: `body(i)` for every i in [begin, end).
template <class Pool, class F>
void parallel_for_each(Pool& pool, std::int64_t begin, std::int64_t end,
                       std::int64_t grain, F&& body) {
  parallel_for_chunks(pool, begin, end, grain,
                      [&body](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i) {
                          body(i);
                        }
                      });
}

}  // namespace snetsac::runtime

#endif
