#ifndef SNETSAC_RUNTIME_ENV_HPP
#define SNETSAC_RUNTIME_ENV_HPP

/// \file env.hpp
/// Small helpers for reading configuration from environment variables.
/// Used to pick default worker counts for both the SaC data-parallel layer
/// (`SAC_THREADS`) and the S-Net coordination layer (`SNET_WORKERS`).

#include <cstdint>
#include <string>

namespace snetsac::runtime {

/// Reads an integer environment variable; returns \p fallback when unset,
/// empty or unparsable. Negative values are clamped to \p fallback.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Number of hardware threads, never less than 1.
unsigned hardware_threads();

/// Default worker count for the data-parallel (SaC) layer:
/// `SAC_THREADS` env var, else hardware concurrency.
unsigned default_sac_threads();

/// Default worker count for the coordination (S-Net) layer:
/// `SNET_WORKERS` env var, else hardware concurrency.
unsigned default_snet_workers();

}  // namespace snetsac::runtime

#endif
