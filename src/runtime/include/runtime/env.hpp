#ifndef SNETSAC_RUNTIME_ENV_HPP
#define SNETSAC_RUNTIME_ENV_HPP

/// \file env.hpp
/// Small helpers for reading configuration from environment variables.
/// Used to pick default worker counts for both the SaC data-parallel layer
/// (`SAC_THREADS`) and the S-Net coordination layer (`SNET_WORKERS`).

#include <cstdint>
#include <string>

namespace snetsac::runtime {

/// Reads an integer environment variable; returns \p fallback when unset,
/// empty or unparsable. Negative values are clamped to \p fallback.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Number of hardware threads, never less than 1.
unsigned hardware_threads();

/// Default worker count for the data-parallel (SaC) layer:
/// `SAC_THREADS` env var, else hardware concurrency.
unsigned default_sac_threads();

/// Default worker count for the coordination (S-Net) layer:
/// `SNET_WORKERS` env var, else hardware concurrency. Under the unified
/// executor this is a *concurrency cap* on entity quanta, not a thread
/// count (see default_executor_threads()).
unsigned default_snet_workers();

/// Size of the process-wide unified executor that serves both layers.
/// Compatibility rule (documented in docs/ARCHITECTURE.md): the new
/// `SNETSAC_THREADS` wins when set; otherwise the larger of `SNET_WORKERS`
/// and `SAC_THREADS` when either is set — the single pool must be able to
/// serve whichever layer asked for more, and the two legacy variables no
/// longer add up to SNET_WORKERS + SAC_THREADS OS threads; otherwise
/// hardware concurrency.
unsigned default_executor_threads();

}  // namespace snetsac::runtime

#endif
