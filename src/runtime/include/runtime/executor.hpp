#ifndef SNETSAC_RUNTIME_EXECUTOR_HPP
#define SNETSAC_RUNTIME_EXECUTOR_HPP

/// \file executor.hpp
/// The unified work-stealing executor both layers of the system run on.
///
/// Historically the SaC layer (`parallel_for` with-loop chunks) and the
/// S-Net layer (entity quanta) each owned a mutex+condvar thread pool.
/// Running a data-parallel with-loop inside a box therefore oversubscribed
/// the machine (SNET_WORKERS + SAC_THREADS threads) and serialised all
/// dispatch through two global locks. This executor replaces both:
///
///  * one worker thread per core (see `default_executor_threads()`),
///  * a lock-free Chase–Lev deque per worker (chase_lev.hpp) — the owner
///    pushes/pops LIFO at the bottom without locks or (in the common case)
///    CAS; thieves steal FIFO from the top of a random victim, arbitrated
///    by a single CAS,
///  * an injector queue for submissions from non-worker threads,
///  * an epoch-stamped parking lot so idle workers sleep instead of
///    spinning, with the classic Dekker-style sleeper/epoch handshake to
///    rule out lost wakeups,
///  * `help_until`: the cooperative join primitive. A task that forks
///    subtasks (a with-loop splitting into chunks inside a box quantum)
///    does not block its worker; the worker executes queued tasks —
///    its own chunks first, then anything stealable — until the join
///    condition holds. This is what makes nested parallelism safe on a
///    fixed-size pool: no worker ever sleeps while runnable work exists,
///    so a fork inside a task cannot deadlock.
///
/// A task is just a closure: an S-Net entity quantum, a with-loop chunk,
/// or anything a client submits. Tasks must not block indefinitely on
/// other tasks except via `help_until`.
///
/// `ExecutorIface` is the seam the S-Net scheduler and network program
/// against: the production work-stealing pool implements it, and so does
/// `SimExecutor` (sim_executor.hpp) — the seedable single-threaded
/// scheduler the schedcheck harness uses to explore interleavings
/// deterministically. Clients that only need "run this closure, join on
/// that condition" take an ExecutorIface&.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/chase_lev.hpp"

namespace snetsac::runtime {

/// The executor contract: submit closures, cooperatively join. Virtual so
/// the deterministic SimExecutor can slot in behind the S-Net scheduler
/// without the protocol code knowing which world it runs in.
class ExecutorIface {
 public:
  virtual ~ExecutorIface() = default;

  /// Enqueues a task for asynchronous execution.
  virtual void submit(std::function<void()> task) = 0;

  /// Cooperative join: makes progress (runs queued tasks, or waits) until
  /// `done()` returns true. `done()` is always evaluated under \p mu;
  /// whatever makes it true must notify \p cv. A predicate that reads
  /// mu-guarded state should open with `mu.assert_held()` so the clang
  /// thread-safety analysis (which treats the lambda as a free function)
  /// accepts the access — checked builds verify the claim dynamically.
  virtual void help_until(Mutex& mu, CondVar& cv,
                          const std::function<bool()>& done) = 0;

  /// True when the calling thread is a worker of this executor (i.e. it
  /// may execute queued tasks inline inside help_until).
  virtual bool on_worker_thread() const = 0;

  virtual unsigned size() const = 0;

  /// True for schedule-exploration executors that serialise all tasks and
  /// want every scheduling decision surfaced (the S-Net scheduler disables
  /// quantum tail-chaining when this is set, so each quantum is a distinct
  /// yield point the strategy can reorder).
  virtual bool deterministic() const { return false; }
};

class Executor : public ExecutorIface {
 public:
  /// Spawns \p threads workers. A count of 0 is promoted to 1.
  explicit Executor(unsigned threads);

  /// Drains every queued task, then joins the workers. Submitted work is
  /// never dropped (tasks may keep spawning tasks during the drain).
  ~Executor() override;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task. Called from a worker of this executor, the task
  /// lands on that worker's own deque (LIFO, cache-warm); from any other
  /// thread it lands on the shared injector queue.
  void submit(std::function<void()> task) override;

  /// Cooperative join: runs queued tasks until `done()` returns true.
  ///
  /// From a worker thread of this executor the caller *helps*: it pops its
  /// own deque, the injector and other workers' deques between checks of
  /// `done()`, and only sleeps (briefly, on \p cv under \p mu) when no
  /// task is runnable anywhere. From a non-worker thread this degenerates
  /// to a plain condition-variable wait.
  void help_until(Mutex& mu, CondVar& cv,
                  const std::function<bool()>& done) override;

  /// True when the calling thread is one of this executor's workers.
  bool on_worker_thread() const override;

  unsigned size() const override { return static_cast<unsigned>(queues_.size()); }

  /// Tasks run over the executor's lifetime (observability).
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Tasks obtained by stealing from another worker's deque.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// True while a task is executing on this thread *and* that task was
  /// obtained by stealing from another worker's deque. Lets clients (the
  /// S-Net scheduler) attribute pool-level steals to their own workload —
  /// the per-network counters in `NetworkStats`.
  static bool current_task_stolen();

  /// The process-wide executor shared by the SaC with-loop engine and
  /// every S-Net network. Sized by `default_executor_threads()` on first
  /// use. One pool, one set of threads — layering happens in the tasks,
  /// not in the threading substrate.
  static Executor& global();

 private:
  /// Tasks live on the heap while queued: the Chase–Lev ring holds raw
  /// pointers (its elements must be trivially copyable words).
  using TaskFn = std::function<void()>;

  void worker_loop(unsigned index);
  /// Pops one runnable task (own deque → injector → steal); empty-handed
  /// returns false. \p self is the calling worker's shard index; \p stolen
  /// reports whether the task came off another worker's deque.
  bool pop_task(unsigned self, TaskFn& out, bool& stolen);
  bool try_run_one(unsigned self);

  std::vector<std::unique_ptr<ChaseLevDeque<TaskFn*>>> queues_;

  Mutex inject_mu_;
  std::deque<std::function<void()>> inject_ SNETSAC_GUARDED_BY(inject_mu_);

  // Parking lot. `work_epoch_` is bumped by every submit; a worker only
  // sleeps after re-reading the epoch while registered as a sleeper, so a
  // concurrent submit either sees the sleeper (and notifies) or the
  // sleeper sees the new epoch (and rescans). The wait predicate reads
  // atomics only — nothing is guarded by park_mu_; the lock exists purely
  // to sequence the sleeper/notifier handshake.
  Mutex park_mu_;
  CondVar park_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};

  std::vector<std::jthread> threads_;
};

}  // namespace snetsac::runtime

#endif
