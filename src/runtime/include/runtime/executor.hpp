#ifndef SNETSAC_RUNTIME_EXECUTOR_HPP
#define SNETSAC_RUNTIME_EXECUTOR_HPP

/// \file executor.hpp
/// The unified work-stealing executor both layers of the system run on.
///
/// Historically the SaC layer (`parallel_for` with-loop chunks) and the
/// S-Net layer (entity quanta) each owned a mutex+condvar thread pool.
/// Running a data-parallel with-loop inside a box therefore oversubscribed
/// the machine (SNET_WORKERS + SAC_THREADS threads) and serialised all
/// dispatch through two global locks. This executor replaces both:
///
///  * one worker thread per core (see `default_executor_threads()`),
///  * a lock-free Chase–Lev deque per worker (chase_lev.hpp) — the owner
///    pushes/pops LIFO at the bottom without locks or (in the common case)
///    CAS; thieves steal FIFO from the top of a random victim, arbitrated
///    by a single CAS,
///  * an injector queue for submissions from non-worker threads,
///  * an epoch-stamped parking lot so idle workers sleep instead of
///    spinning, with the classic Dekker-style sleeper/epoch handshake to
///    rule out lost wakeups,
///  * `help_until`: the cooperative join primitive. A task that forks
///    subtasks (a with-loop splitting into chunks inside a box quantum)
///    does not block its worker; the worker executes queued tasks —
///    its own chunks first, then anything stealable — until the join
///    condition holds. This is what makes nested parallelism safe on a
///    fixed-size pool: no worker ever sleeps while runnable work exists,
///    so a fork inside a task cannot deadlock.
///
/// A task is just a closure: an S-Net entity quantum, a with-loop chunk,
/// or anything a client submits. Tasks must not block indefinitely on
/// other tasks except via `help_until`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/chase_lev.hpp"

namespace snetsac::runtime {

class Executor {
 public:
  /// Spawns \p threads workers. A count of 0 is promoted to 1.
  explicit Executor(unsigned threads);

  /// Drains every queued task, then joins the workers. Submitted work is
  /// never dropped (tasks may keep spawning tasks during the drain).
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task. Called from a worker of this executor, the task
  /// lands on that worker's own deque (LIFO, cache-warm); from any other
  /// thread it lands on the shared injector queue.
  void submit(std::function<void()> task);

  /// Cooperative join: runs queued tasks until `done()` returns true.
  ///
  /// From a worker thread of this executor the caller *helps*: it pops its
  /// own deque, the injector and other workers' deques between checks of
  /// `done()`, and only sleeps (briefly, on \p cv under \p mu) when no
  /// task is runnable anywhere. From a non-worker thread this degenerates
  /// to a plain condition-variable wait. `done()` is always evaluated
  /// under \p mu; whatever makes it true must notify \p cv.
  void help_until(std::mutex& mu, std::condition_variable& cv,
                  const std::function<bool()>& done);

  /// True when the calling thread is one of this executor's workers.
  bool on_worker_thread() const;

  unsigned size() const { return static_cast<unsigned>(queues_.size()); }

  /// Tasks run over the executor's lifetime (observability).
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Tasks obtained by stealing from another worker's deque.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// True while a task is executing on this thread *and* that task was
  /// obtained by stealing from another worker's deque. Lets clients (the
  /// S-Net scheduler) attribute pool-level steals to their own workload —
  /// the per-network counters in `NetworkStats`.
  static bool current_task_stolen();

  /// The process-wide executor shared by the SaC with-loop engine and
  /// every S-Net network. Sized by `default_executor_threads()` on first
  /// use. One pool, one set of threads — layering happens in the tasks,
  /// not in the threading substrate.
  static Executor& global();

 private:
  /// Tasks live on the heap while queued: the Chase–Lev ring holds raw
  /// pointers (its elements must be trivially copyable words).
  using TaskFn = std::function<void()>;

  void worker_loop(unsigned index);
  /// Pops one runnable task (own deque → injector → steal); empty-handed
  /// returns false. \p self is the calling worker's shard index; \p stolen
  /// reports whether the task came off another worker's deque.
  bool pop_task(unsigned self, TaskFn& out, bool& stolen);
  bool try_run_one(unsigned self);

  std::vector<std::unique_ptr<ChaseLevDeque<TaskFn*>>> queues_;

  std::mutex inject_mu_;
  std::deque<std::function<void()>> inject_;

  // Parking lot. `work_epoch_` is bumped by every submit; a worker only
  // sleeps after re-reading the epoch while registered as a sleeper, so a
  // concurrent submit either sees the sleeper (and notifies) or the
  // sleeper sees the new epoch (and rescans).
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};

  std::vector<std::jthread> threads_;
};

}  // namespace snetsac::runtime

#endif
