#ifndef SNETSAC_RUNTIME_CHASE_LEV_HPP
#define SNETSAC_RUNTIME_CHASE_LEV_HPP

/// \file chase_lev.hpp
/// Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005) with
/// the C11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP
/// 2013, "Correct and Efficient Work-Stealing for Weak Memory Models").
///
/// Ownership contract:
///  * exactly one *owner* thread calls push()/pop(), lock- and CAS-free in
///    the common case (one CAS only on the last-element race);
///  * any number of *thief* threads call steal(), arbitrated by a CAS on
///    `top`. A steal may return nullptr spuriously when it loses the race
///    for an element that another thread removed — the element is then
///    owned by the winner, never lost.
///
/// Memory-ordering contract (the part reviews should check against the
/// paper): the owner's pop publishes its speculative `bottom` decrement
/// with a seq_cst fence before reading `top`; a thief reads `top`
/// (acquire), issues a seq_cst fence, then reads `bottom` (acquire). These
/// two fences order the owner's decrement against the thief's CAS so both
/// can never claim the same element. push publishes the slot write with a
/// release fence before advancing `bottom`; steal's acquire load of
/// `bottom` + acquire load of the buffer pointer make the slot contents
/// visible before the CAS commits the claim.
///
/// Elements are raw pointers (the deque never owns them). The ring buffer
/// grows on demand; retired buffers are kept until destruction because a
/// thief may still be reading through a stale buffer pointer — its CAS
/// then decides whether the value it read was current.

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

// ThreadSanitizer does not model std::atomic_thread_fence (documented
// limitation): the owner's publish sequence — slot write, release fence,
// relaxed bottom store — is correct on real hardware but invisible to the
// analyzer, which then reports the thief's read through a stolen pointer
// as racing the producer's writes. TSan builds strengthen the bottom
// store to release: the same happens-before edge, expressed per-operation.
#if defined(__SANITIZE_THREAD__)
#define SNETSAC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SNETSAC_TSAN_BUILD 1
#endif
#endif
#ifndef SNETSAC_TSAN_BUILD
#define SNETSAC_TSAN_BUILD 0
#endif

namespace snetsac::runtime {

template <class T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "elements must be raw pointers");

 public:
  explicit ChaseLevDeque(std::int64_t capacity = 64)
      : buffer_(new Buffer(capacity)) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Frees the buffers only — any elements still queued are the caller's
  /// to reclaim (pop until nullptr first).
  ~ChaseLevDeque() { delete buffer_.load(std::memory_order_relaxed); }

  /// Owner only: enqueue at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, kBottomPublishOrder);
  }

  /// Owner only: dequeue at the bottom (LIFO); nullptr when empty.
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it via the same CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    }
    return item;
  }

  /// Any thread: dequeue at the top (FIFO). nullptr when empty *or* when
  /// the claiming CAS lost a race (ABORT in the paper — the element went
  /// to the winner, but others may remain). \p lost_race, when provided,
  /// distinguishes the two so callers can retry the victim instead of
  /// misreading a contended deque as drained.
  T steal(bool* lost_race = nullptr) {
    if (lost_race != nullptr) {
      *lost_race = false;
    }
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) {
      return nullptr;
    }
    Buffer* a = buffer_.load(std::memory_order_acquire);
    T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      if (lost_race != nullptr) {
        *lost_race = true;
      }
      return nullptr;  // lost the race; the element belongs to the winner
    }
    return item;
  }

  /// Approximate (racy) size; exact only when quiescent or owner-called.
  std::int64_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  /// Relaxed on hardware (the release fence in push orders the publish);
  /// release under TSan so the analyzer sees the edge (see file comment).
  static constexpr std::memory_order kBottomPublishOrder =
      SNETSAC_TSAN_BUILD ? std::memory_order_release : std::memory_order_relaxed;

  /// Power-of-two ring of atomic slots; indices are absolute (monotone),
  /// wrapped by the mask on access.
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(round_up(cap)), mask(capacity - 1),
          slots(new std::atomic<T>[static_cast<std::size_t>(capacity)]) {}

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T x) {
      slots[static_cast<std::size_t>(i & mask)].store(x,
                                                      std::memory_order_relaxed);
    }

    static std::int64_t round_up(std::int64_t v) {
      std::int64_t p = 8;
      while (p < v) {
        p <<= 1;
      }
      return p;
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  /// Owner only. The old buffer is retired, not freed: a thief holding the
  /// stale pointer may still call get() on it, and the elements reachable
  /// there are exactly the ones copied (same absolute indices) — its CAS
  /// on `top` decides whether the value it read was still current.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->put(i, old->get(i));
    }
    buffer_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only
};

}  // namespace snetsac::runtime

#endif
