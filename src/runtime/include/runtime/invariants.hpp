#ifndef SNETSAC_RUNTIME_INVARIANTS_HPP
#define SNETSAC_RUNTIME_INVARIANTS_HPP

/// \file invariants.hpp
/// The checked-build invariant layer (`-DSNETSAC_CHECKED=ON`).
///
/// Three facilities, all zero-cost when SNETSAC_CHECKED is off:
///
///  1. `ProtocolInvariantError` — the exception every protocol-invariant
///     violation raises. Always compiled (tests and tools catch it in
///     any build flavour); only the *inline* per-operation checks are
///     gated behind SNETSAC_CHECKED.
///  2. `SNETSAC_INVARIANT(cond, expr)` — per-operation conservation
///     checks sprinkled through the hot protocol paths (credit account
///     arithmetic, live counters, det release order). Compiles away
///     entirely unless SNETSAC_CHECKED.
///  3. `checked::` — the dynamic lock-order registry behind the
///     annotated Mutex (annotations.hpp): a thread-local stack of held
///     locks with declared ranks; acquiring a ranked mutex while holding
///     a same-or-higher rank is a cycle waiting for its second thread,
///     and fails immediately with both names.
///
/// Violations *throw* (after printing to stderr) rather than calling
/// std::abort: schedcheck catches the error, prints the failing seed and
/// yield-point trace, and keeps sweeping; an uncaught violation still
/// terminates the process with the diagnostic visible.

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace snetsac::runtime {

/// A protocol invariant did not hold: credit accounting drifted, a
/// counter went negative, a wakeup was lost, or locks were taken out of
/// order. Carries a human-readable description of the law and the state
/// that broke it.
class ProtocolInvariantError : public std::logic_error {
 public:
  explicit ProtocolInvariantError(const std::string& what)
      : std::logic_error(what) {}
};

/// Formats + prints the violation to stderr, then throws
/// ProtocolInvariantError. Out-of-line so the macro below stays cheap at
/// the call site. Always compiled: Network::check_protocol_invariants and
/// MpscQueue's lost-wakeup query report through it in every build flavour.
[[noreturn]] void invariant_failure(const char* law, const std::string& detail);

#if SNETSAC_CHECKED

namespace checked {

/// Called before blocking on a ranked mutex: verifies no same-or-higher
/// ranked lock is already held by this thread (rank 0 = unranked, exempt
/// from order checking but still tracked for assert_thread_holds).
void note_lock_attempt(const void* mu, unsigned rank, const char* name);

/// Called after the mutex is held; pushes it on this thread's held stack.
void note_locked(const void* mu, unsigned rank, const char* name);

/// Called before the mutex is released; pops it from the held stack.
void note_unlocked(const void* mu);

/// Dynamic counterpart of SNETSAC_ASSERT_CAPABILITY: fails unless this
/// thread currently holds `mu`.
void assert_thread_holds(const void* mu, const char* name);

/// True if this thread holds `mu` (query form, used by invariant checks
/// that are themselves conditional).
bool thread_holds(const void* mu);

}  // namespace checked

#define SNETSAC_INVARIANT(cond, detail_expr)                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream snetsac_inv_os_;                                 \
      snetsac_inv_os_ << detail_expr;                                     \
      ::snetsac::runtime::invariant_failure(#cond, snetsac_inv_os_.str());\
    }                                                                     \
  } while (0)

#else  // !SNETSAC_CHECKED

#define SNETSAC_INVARIANT(cond, detail_expr) \
  do {                                       \
  } while (0)

#endif  // SNETSAC_CHECKED

}  // namespace snetsac::runtime

#endif
