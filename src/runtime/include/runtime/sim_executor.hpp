#ifndef SNETSAC_RUNTIME_SIM_EXECUTOR_HPP
#define SNETSAC_RUNTIME_SIM_EXECUTOR_HPP

/// \file sim_executor.hpp
/// A seedable, deterministic schedule-exploration executor.
///
/// The production Executor explores whatever interleavings the OS
/// scheduler happens to produce; TSan observes those and no others. The
/// SimExecutor turns scheduling into a *controlled input*: every task
/// (entity quantum, injected client step) goes into one pending set, all
/// execution is serialised onto the calling thread, and at each step a
/// strategy — seeded PCT-style randomized priorities, uniform random, or
/// exact replay — picks which pending task runs next. Two runs with the
/// same seed execute the identical schedule; a protocol violation found
/// at seed N is reproducible forever by rerunning seed N.
///
/// Yield points are the task boundaries: the S-Net scheduler disables
/// quantum tail-chaining when `deterministic()` is true, so every entity
/// quantum — and therefore every enqueue, drain, stall, credit release
/// and defer/flush transition, each of which ends or starts a quantum —
/// is a distinct scheduling decision the strategy can reorder.
///
/// `help_until` is the pump: the (single) client thread runs pending
/// tasks until its join condition holds. If the pending set empties while
/// the condition is still false, no future task can ever satisfy it —
/// that is a deadlock or a lost wakeup, and the executor throws
/// ProtocolInvariantError carrying the full decision trace.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/invariants.hpp"

namespace snetsac::runtime {

class SimExecutor final : public ExecutorIface {
 public:
  enum class Strategy {
    kPct,     ///< randomized priorities + a few priority-change points
    kRandom,  ///< uniform random pick among pending tasks
    kReplay,  ///< follow Options::replay choices, then first-pending
  };

  struct Options {
    std::uint64_t seed = 1;
    Strategy strategy = Strategy::kPct;
    /// PCT: how many priority-change points to scatter over the run
    /// (d in the PCT paper; depth d+1 bugs need d change points).
    unsigned pct_change_points = 3;
    /// Replay: the choice at each decision step (index into the pending
    /// set); steps beyond the vector pick index 0. Taken from a previous
    /// run's choice_log() — the DFS driver's frontier.
    std::vector<std::uint32_t> replay;
  };

  /// One scheduling decision: at decision step `step`, task `task_id` was
  /// picked out of `pending` runnable tasks (choice index `chosen`).
  struct TraceEntry {
    std::uint64_t step;
    std::uint64_t task_id;
    std::uint32_t chosen;
    std::uint32_t pending;
  };

  explicit SimExecutor(Options opts);

  void submit(std::function<void()> task) override;
  void help_until(Mutex& mu, CondVar& cv,
                  const std::function<bool()>& done) override;
  /// Always true: all code runs on the one simulated "worker", so every
  /// blocking client path routes through help_until and becomes a pump.
  bool on_worker_thread() const override { return true; }
  unsigned size() const override { return 1; }
  bool deterministic() const override { return true; }

  /// Runs one pending task chosen by the strategy; false when none are
  /// pending. Re-entrant: a task may pump nested help_until joins.
  bool step();

  /// Drains the pending set to empty (e.g. after a scenario completes,
  /// to retire cleanup pokes before destruction).
  void drain();

  /// Invoked after every task returns (at every yield point), with no
  /// simulated locks held — the hook for Network::check_protocol_invariants.
  void set_after_task(std::function<void()> hook) { after_task_ = std::move(hook); }

  /// The scheduling decisions taken so far, oldest first.
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// The (chosen, n_options) log in replay format: feeding this back via
  /// Options::replay reproduces the schedule exactly; the DFS driver
  /// increments the deepest incrementable entry to visit a sibling.
  const std::vector<std::uint32_t>& choice_log() const { return choices_; }
  const std::vector<std::uint32_t>& option_counts() const { return options_seen_; }

  std::uint64_t steps_executed() const { return step_count_; }
  std::size_t pending() const { return pending_.size(); }

  /// Human-readable decision trace ("step 12: task 7 (choice 1/3)...").
  std::string format_trace() const;

 private:
  struct Pending {
    std::function<void()> fn;
    std::uint64_t id;
    std::uint64_t priority;  // PCT: higher runs first
  };

  std::uint64_t next_rand();
  std::size_t pick();
  [[noreturn]] void wedged(const char* waiting_on);

  Options opts_;
  std::uint64_t rng_state_;
  std::vector<Pending> pending_;
  std::uint64_t next_task_id_ = 0;
  std::uint64_t step_count_ = 0;
  std::uint64_t low_priority_ = 0;  // PCT demotion counter (counts down)
  std::vector<std::uint64_t> change_steps_;  // PCT priority-change points
  std::size_t replay_pos_ = 0;
  std::vector<TraceEntry> trace_;
  std::vector<std::uint32_t> choices_;
  std::vector<std::uint32_t> options_seen_;
  std::function<void()> after_task_;
};

}  // namespace snetsac::runtime

#endif
