#include "runtime/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace snetsac::runtime {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || parsed < 0) {
    return fallback;
  }
  return static_cast<std::int64_t>(parsed);
}

unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

unsigned default_sac_threads() {
  const auto v = env_int("SAC_THREADS", static_cast<std::int64_t>(hardware_threads()));
  return v == 0 ? 1U : static_cast<unsigned>(v);
}

unsigned default_snet_workers() {
  const auto v = env_int("SNET_WORKERS", static_cast<std::int64_t>(hardware_threads()));
  return v == 0 ? 1U : static_cast<unsigned>(v);
}

unsigned default_executor_threads() {
  const auto unified = env_int("SNETSAC_THREADS", 0);
  if (unified > 0) {
    return static_cast<unsigned>(unified);
  }
  // Legacy rule: both layers now share one pool, so take the larger of the
  // two historical knobs when either is set (0 doubles as "unset").
  const auto snet = env_int("SNET_WORKERS", 0);
  const auto sacc = env_int("SAC_THREADS", 0);
  const auto legacy = std::max(snet, sacc);
  if (legacy > 0) {
    return static_cast<unsigned>(legacy);
  }
  return hardware_threads();
}

}  // namespace snetsac::runtime
