#include "snet/tagexpr.hpp"

#include <functional>
#include <sstream>

namespace snet {

struct TagExpr::Node {
  Op op;
  std::int64_t value = 0;                 // Lit
  Label label{};                          // Tag
  std::shared_ptr<const Node> lhs, rhs;   // operands
};

TagExpr TagExpr::lit(std::int64_t v) {
  auto n = std::make_shared<Node>();
  n->op = Op::Lit;
  n->value = v;
  return TagExpr(std::move(n));
}

TagExpr TagExpr::tag(std::string_view name) { return tag(tag_label(name)); }

TagExpr TagExpr::tag(Label label) {
  if (label.kind != LabelKind::Tag) {
    throw TagExprError("tag expression may only reference tags, got " +
                       label_display(label));
  }
  auto n = std::make_shared<Node>();
  n->op = Op::Tag;
  n->label = label;
  return TagExpr(std::move(n));
}

TagExpr TagExpr::unary(Op op, TagExpr operand) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(operand.node_);
  return TagExpr(std::move(n));
}

TagExpr TagExpr::binary(Op op, TagExpr lhs, TagExpr rhs) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = std::move(lhs.node_);
  n->rhs = std::move(rhs.node_);
  return TagExpr(std::move(n));
}

namespace {

std::int64_t eval_div(std::int64_t a, std::int64_t b, const char* what) {
  if (b == 0) {
    throw TagExprError(std::string("tag expression ") + what + " by zero");
  }
  return what[0] == 'd' ? a / b : a % b;
}

}  // namespace

struct TagExprEval {
  static std::int64_t run(const TagExpr::Node& n, const Record& r) {
    using Op = TagExpr::Op;
    switch (n.op) {
      case Op::Lit:
        return n.value;
      case Op::Tag:
        if (!r.has_tag(n.label)) {
          throw TagExprError("record " + r.to_string() + " lacks tag " +
                             label_display(n.label) + " referenced by expression");
        }
        return r.tag(n.label);
      case Op::Neg:
        return -run(*n.lhs, r);
      case Op::Not:
        return run(*n.lhs, r) == 0 ? 1 : 0;
      default:
        break;
    }
    const std::int64_t a = run(*n.lhs, r);
    // Short-circuit logic.
    if (n.op == Op::And) {
      return (a != 0 && run(*n.rhs, r) != 0) ? 1 : 0;
    }
    if (n.op == Op::Or) {
      return (a != 0 || run(*n.rhs, r) != 0) ? 1 : 0;
    }
    const std::int64_t b = run(*n.rhs, r);
    switch (n.op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Div: return eval_div(a, b, "division");
      case Op::Mod: return eval_div(a, b, "modulo");
      case Op::Eq:  return a == b ? 1 : 0;
      case Op::Ne:  return a != b ? 1 : 0;
      case Op::Lt:  return a < b ? 1 : 0;
      case Op::Le:  return a <= b ? 1 : 0;
      case Op::Gt:  return a > b ? 1 : 0;
      case Op::Ge:  return a >= b ? 1 : 0;
      default:
        throw TagExprError("corrupt tag expression");
    }
  }

  static void collect(const TagExpr::Node& n, std::vector<Label>& out) {
    if (n.op == TagExpr::Op::Tag) {
      out.push_back(n.label);
    }
    if (n.lhs) {
      collect(*n.lhs, out);
    }
    if (n.rhs) {
      collect(*n.rhs, out);
    }
  }

  static void render(const TagExpr::Node& n, std::ostream& os) {
    using Op = TagExpr::Op;
    const auto bin = [&](const char* sym) {
      os << '(';
      render(*n.lhs, os);
      os << ' ' << sym << ' ';
      render(*n.rhs, os);
      os << ')';
    };
    switch (n.op) {
      case Op::Lit: os << n.value; return;
      case Op::Tag: os << label_display(n.label); return;
      case Op::Neg: os << "-("; render(*n.lhs, os); os << ')'; return;
      case Op::Not: os << "!("; render(*n.lhs, os); os << ')'; return;
      case Op::Add: bin("+"); return;
      case Op::Sub: bin("-"); return;
      case Op::Mul: bin("*"); return;
      case Op::Div: bin("/"); return;
      case Op::Mod: bin("%"); return;
      case Op::Eq:  bin("=="); return;
      case Op::Ne:  bin("!="); return;
      case Op::Lt:  bin("<"); return;
      case Op::Le:  bin("<="); return;
      case Op::Gt:  bin(">"); return;
      case Op::Ge:  bin(">="); return;
      case Op::And: bin("&&"); return;
      case Op::Or:  bin("||"); return;
    }
  }
};

std::int64_t TagExpr::eval(const Record& r) const { return TagExprEval::run(*node_, r); }

std::vector<Label> TagExpr::referenced_tags() const {
  std::vector<Label> out;
  TagExprEval::collect(*node_, out);
  return out;
}

std::string TagExpr::to_string() const {
  std::ostringstream os;
  TagExprEval::render(*node_, os);
  return os.str();
}

TagExpr operator+(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Add, std::move(a), std::move(b)); }
TagExpr operator-(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Sub, std::move(a), std::move(b)); }
TagExpr operator*(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Mul, std::move(a), std::move(b)); }
TagExpr operator/(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Div, std::move(a), std::move(b)); }
TagExpr operator%(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Mod, std::move(a), std::move(b)); }
TagExpr operator-(TagExpr a) { return TagExpr::unary(TagExpr::Op::Neg, std::move(a)); }
TagExpr operator==(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Eq, std::move(a), std::move(b)); }
TagExpr operator!=(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Ne, std::move(a), std::move(b)); }
TagExpr operator<(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Lt, std::move(a), std::move(b)); }
TagExpr operator<=(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Le, std::move(a), std::move(b)); }
TagExpr operator>(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Gt, std::move(a), std::move(b)); }
TagExpr operator>=(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Ge, std::move(a), std::move(b)); }
TagExpr operator&&(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::And, std::move(a), std::move(b)); }
TagExpr operator||(TagExpr a, TagExpr b) { return TagExpr::binary(TagExpr::Op::Or, std::move(a), std::move(b)); }
TagExpr operator!(TagExpr a) { return TagExpr::unary(TagExpr::Op::Not, std::move(a)); }

}  // namespace snet
