#include "snet/copyplan.hpp"

#include <algorithm>

namespace snet::detail {

namespace {

CopyPlan::Op* find_op(std::vector<CopyPlan::Op>& ops, Label dest) {
  // Output specs are a handful of labels; linear search beats a map here
  // and keeps insertion order (declarations before inherits) trivial.
  for (CopyPlan::Op& op : ops) {
    if (op.dest == dest) {
      return &op;
    }
  }
  return nullptr;
}

void sort_ops(std::vector<CopyPlan::Op>& ops) {
  std::sort(ops.begin(), ops.end(),
            [](const CopyPlan::Op& a, const CopyPlan::Op& b) { return a.dest < b.dest; });
}

}  // namespace

void CopyPlanBuilder::declare_field(Label dest, CopyPlan::Src src,
                                    std::uint32_t idx) {
  if (CopyPlan::Op* existing = find_op(fields_, dest)) {
    existing->src = src;  // last writer wins, like a repeated set_field
    existing->idx = idx;
    return;
  }
  fields_.push_back(CopyPlan::Op{dest, src, idx, 0});
}

void CopyPlanBuilder::declare_tag(Label dest, CopyPlan::Src src,
                                  std::uint32_t idx, std::int64_t cval) {
  if (CopyPlan::Op* existing = find_op(tags_, dest)) {
    existing->src = src;
    existing->idx = idx;
    existing->cval = cval;
    return;
  }
  tags_.push_back(CopyPlan::Op{dest, src, idx, cval});
}

void CopyPlanBuilder::inherit_field(Label dest, std::uint32_t slot) {
  if (find_op(fields_, dest) != nullptr) {
    return;  // the specifier already produced this label
  }
  fields_.push_back(CopyPlan::Op{dest, CopyPlan::Src::kInField, slot, 0});
}

void CopyPlanBuilder::inherit_tag(Label dest, std::uint32_t slot) {
  if (find_op(tags_, dest) != nullptr) {
    return;
  }
  tags_.push_back(CopyPlan::Op{dest, CopyPlan::Src::kInTag, slot, 0});
}

CopyPlan CopyPlanBuilder::finish() {
  CopyPlan plan;
  plan.fields = std::move(fields_);
  plan.tags = std::move(tags_);
  sort_ops(plan.fields);
  sort_ops(plan.tags);
  std::vector<Label> labels;
  labels.reserve(plan.fields.size() + plan.tags.size());
  for (const CopyPlan::Op& op : plan.fields) {
    labels.push_back(op.dest);
  }
  for (const CopyPlan::Op& op : plan.tags) {
    labels.push_back(op.dest);
  }
  plan.shape = ShapeRegistry::instance().intern(std::move(labels));
  return plan;
}

bool plan_is_identity(const CopyPlan& plan, const Record& in) {
  if (plan.shape.id != in.shape() || plan.fields.size() != in.fields().size() ||
      plan.tags.size() != in.tags().size()) {
    return false;
  }
  // Equal shapes mean equal sorted label layouts, so op i writes slot i;
  // identity additionally requires each slot to read from its own index.
  for (std::size_t i = 0; i < plan.fields.size(); ++i) {
    const CopyPlan::Op& op = plan.fields[i];
    if (op.src != CopyPlan::Src::kInField || op.idx != i) {
      return false;
    }
  }
  for (std::size_t i = 0; i < plan.tags.size(); ++i) {
    const CopyPlan::Op& op = plan.tags[i];
    if (op.src != CopyPlan::Src::kInTag || op.idx != i) {
      return false;
    }
  }
  return true;
}

}  // namespace snet::detail
