#include "snet/wire.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>

#include <unistd.h>

#include "sacpp/array.hpp"
#include "snet/detscope.hpp"
#include "snet/session.hpp"

namespace snet::wire {

// The format is little-endian on the wire; the encoder memcpy-appends
// native integers, which is only correct on a little-endian host. Every
// deployment target of this runtime (x86-64, AArch64 Linux) is LE; a
// big-endian port would swap in the put/get helpers below, not change the
// format.
static_assert(std::endian::native == std::endian::little,
              "wire.cpp assumes a little-endian host");

namespace {

// ------------------------------------------------------------ constants

constexpr char kMagic[8] = {'S', 'N', 'E', 'T', 'W', 'I', 'R', 'E'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 12;  // magic + version + flags

// Chunk tags (see docs/WIRE_FORMAT.md). Unknown tags are skippable by
// construction — every chunk is length-prefixed.
enum ChunkTag : std::uint8_t {
  kShapeDef = 0x01,
  kCodecDef = 0x02,
  kScopeDef = 0x03,
  kRecord = 0x04,
  kGroup = 0x05,
  kEnd = 0x7F,
};

constexpr std::size_t kChunkHeaderSize = 5;  // u8 tag + u32 length

// "record belongs to no session" (a null session_state()). Id 0 is taken:
// the default session is a real SessionState with id 0.
constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;

// ----------------------------------------------------------- primitives

template <class T>
void put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_bytes(std::string& out, const void* p, std::size_t n) {
  if (n != 0) {  // an empty buffer may hand us data() == nullptr
    out.append(static_cast<const char*>(p), n);
  }
}

void put_chunk(std::string& out, std::uint8_t tag, const std::string& payload) {
  if (payload.size() > 0xFFFFFFFFull) {
    throw WireError("chunk payload exceeds the 4 GiB frame bound");
  }
  put<std::uint8_t>(out, tag);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

/// Bounds-checked read cursor over one chunk payload (or array payload).
/// Every under-run throws a WireError naming what was being read.
struct Cursor {
  const char* p;
  const char* end;
  const char* context;

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  void need(std::size_t n, const char* item) const {
    if (remaining() < n) {
      throw WireError(std::string("truncated ") + context + ": " + item +
                      " needs " + std::to_string(n) + " bytes, " +
                      std::to_string(remaining()) + " left");
    }
  }

  template <class T>
  T get(const char* item) {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T), item);
    T v;
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    return v;
  }

  std::string get_string(std::size_t n, const char* item) {
    need(n, item);
    std::string s(p, n);
    p += n;
    return s;
  }

  void done() const {
    if (p != end) {
      throw WireError(std::string("malformed ") + context + ": " +
                      std::to_string(remaining()) + " trailing bytes");
    }
  }
};

/// A shape's labels in wire-canonical order: fields before tags, each
/// group sorted by name bytes. Interned label *ids* are process-local
/// (assigned in interning order), so the wire must not depend on them —
/// name order makes the same logical record encode to the same bytes in
/// every process.
std::vector<Label> canonical_labels(ShapeId id) {
  auto labels = ShapeRegistry::instance().labels(id);
  std::sort(labels.begin(), labels.end(), [](Label a, Label b) {
    if (a.kind != b.kind) {
      return a.kind < b.kind;
    }
    return label_name(a) < label_name(b);
  });
  return labels;
}

// --------------------------------------------------------------- codecs

template <class T>
struct ElemTraits;
template <>
struct ElemTraits<int> {
  static_assert(sizeof(int) == 4, "wire codec array:i32 assumes 32-bit int");
};
template <>
struct ElemTraits<double> {
  static_assert(sizeof(double) == 8);
};
template <>
struct ElemTraits<bool> {};  // stored as one byte (sac::detail::storage_t)

template <class T>
void encode_array(const sac::Array<T>& a, std::string& out) {
  (void)sizeof(ElemTraits<T>);
  const sac::Shape& shape = a.shape();
  if (shape.rank() > 255) {
    throw WireError("array rank " + std::to_string(shape.rank()) +
                    " exceeds the wire bound of 255");
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(shape.rank()));
  for (int axis = 0; axis < shape.rank(); ++axis) {
    put<std::int64_t>(out, shape.extent(axis));
  }
  const auto& buf = a.data();
  using Storage = typename sac::Array<T>::storage_type;
  const std::uint64_t nbytes =
      static_cast<std::uint64_t>(buf.size()) * sizeof(Storage);
  put<std::uint64_t>(out, nbytes);
  put_bytes(out, buf.data(), static_cast<std::size_t>(nbytes));
}

template <class T>
sac::Array<T> decode_array(const char* data, std::size_t size) {
  Cursor cur{data, data + size, "array payload"};
  const auto rank = cur.get<std::uint8_t>("rank");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    d = cur.get<std::int64_t>("extent");
    if (d < 0) {
      throw WireError("array extent " + std::to_string(d) + " is negative");
    }
  }
  sac::Shape shape(std::move(dims));
  const auto nbytes = cur.get<std::uint64_t>("element buffer length");
  using Storage = typename sac::Array<T>::storage_type;
  // Rank-0 scalars store one element, like the in-memory representation.
  const std::uint64_t count =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          shape.is_scalar() ? 1 : shape.element_count(), 0));
  if (nbytes != count * sizeof(Storage)) {
    throw WireError("array element buffer is " + std::to_string(nbytes) +
                    " bytes, shape " + shape.to_string() + " needs " +
                    std::to_string(count * sizeof(Storage)));
  }
  cur.need(static_cast<std::size_t>(nbytes), "element buffer");
  typename sac::Array<T>::buffer_type buf(static_cast<std::size_t>(count));
  if (nbytes != 0) {  // data() of a 0-extent buffer may be nullptr
    std::memcpy(buf.data(), cur.p, static_cast<std::size_t>(nbytes));
  }
  cur.p += nbytes;
  cur.done();
  return sac::Array<T>(std::move(shape), std::move(buf));
}

template <class T, class Enc, class Dec>
Codec typed_codec(std::string name, Enc encode, Dec decode) {
  return Codec{std::move(name), std::type_index(typeid(T)),
               [encode](const std::any& a, std::string& out) {
                 encode(*std::any_cast<T>(&a), out);
               },
               [decode](const char* data, std::size_t size) -> Value {
                 return make_value<T>(decode(data, size));
               }};
}

}  // namespace

// -------------------------------------------------------- CodecRegistry

struct CodecRegistry::Impl {
  mutable std::shared_mutex mu;
  std::vector<std::unique_ptr<Codec>> codecs;
  std::unordered_map<std::type_index, const Codec*> by_type;
  std::map<std::string, const Codec*, std::less<>> by_name;
};

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry* reg = new CodecRegistry();  // leaked, like shapes
  return *reg;
}

CodecRegistry::CodecRegistry() : impl_(new Impl()) {
  add(typed_codec<std::int64_t>(
      "scalar:i64",
      [](std::int64_t v, std::string& out) { put<std::int64_t>(out, v); },
      [](const char* d, std::size_t n) {
        Cursor cur{d, d + n, "scalar:i64 payload"};
        auto v = cur.get<std::int64_t>("value");
        cur.done();
        return v;
      }));
  add(typed_codec<int>(
      "scalar:i32", [](int v, std::string& out) { put<std::int32_t>(out, v); },
      [](const char* d, std::size_t n) {
        Cursor cur{d, d + n, "scalar:i32 payload"};
        auto v = cur.get<std::int32_t>("value");
        cur.done();
        return static_cast<int>(v);
      }));
  add(typed_codec<double>(
      "scalar:f64", [](double v, std::string& out) { put<double>(out, v); },
      [](const char* d, std::size_t n) {
        Cursor cur{d, d + n, "scalar:f64 payload"};
        auto v = cur.get<double>("value");
        cur.done();
        return v;
      }));
  add(typed_codec<std::string>(
      "scalar:str",
      [](const std::string& v, std::string& out) { out += v; },
      [](const char* d, std::size_t n) { return std::string(d, n); }));
  add(typed_codec<sac::Array<int>>("array:i32", encode_array<int>,
                                   decode_array<int>));
  add(typed_codec<sac::Array<double>>("array:f64", encode_array<double>,
                                      decode_array<double>));
  add(typed_codec<sac::Array<bool>>("array:b8", encode_array<bool>,
                                    decode_array<bool>));
}

void CodecRegistry::add(Codec codec) {
  const std::unique_lock lock(impl_->mu);
  if (impl_->by_name.count(codec.name) != 0) {
    throw WireError("codec '" + codec.name + "' is already registered");
  }
  if (impl_->by_type.count(codec.type) != 0) {
    throw WireError("a codec for payload type " +
                    std::string(codec.type.name()) +
                    " is already registered");
  }
  impl_->codecs.push_back(std::make_unique<Codec>(std::move(codec)));
  const Codec* c = impl_->codecs.back().get();
  impl_->by_type.emplace(c->type, c);
  impl_->by_name.emplace(c->name, c);
}

const Codec* CodecRegistry::by_type(std::type_index type) const {
  const std::shared_lock lock(impl_->mu);
  auto it = impl_->by_type.find(type);
  return it == impl_->by_type.end() ? nullptr : it->second;
}

const Codec* CodecRegistry::by_name(std::string_view name) const {
  const std::shared_lock lock(impl_->mu);
  auto it = impl_->by_name.find(name);
  return it == impl_->by_name.end() ? nullptr : it->second;
}

// ------------------------------------------------------------- encoding

namespace detail {

/// Stream-local decode tables: index → meaning, in definition order.
struct ReadTables {
  struct ShapeEntry {
    std::vector<Label> labels;  // wire-canonical order
    ShapeRef ref;
  };
  std::vector<ShapeEntry> shapes;
  std::vector<const Codec*> codecs;
  std::vector<std::string> scope_names;
};

/// Stream-local encode state: assigns dense indices to shapes, codecs and
/// det scopes on first use and emits their definition chunks. Optionally
/// mirrors every definition into a ReadTables so an in-process reader
/// (SpillStore) can decode without re-parsing its own definitions.
class Encoder {
 public:
  explicit Encoder(ReadTables* mirror = nullptr) : mirror_(mirror) {}

  /// Encodes the record *body* into \p body, appending any definition
  /// chunks the body newly depends on to \p defs.
  void record_body(const Record& r, std::string& defs, std::string& body) {
    const std::uint32_t si = shape_index(r.shape(), defs);
    put<std::uint32_t>(body, si);

    SessionState* session = r.session_state();
    std::uint32_t sid = kNoSession;
    if (session != nullptr) {
      sid = session->id();
      if (sid == kNoSession) {
        throw WireError("session id collides with the no-session sentinel");
      }
      sessions_[sid] = session;
    }
    put<std::uint32_t>(body, sid);

    const auto& det = r.det_stack();
    if (det.size() > 0xFFFF) {
      throw WireError("det stack depth " + std::to_string(det.size()) +
                      " exceeds the wire bound of 65535");
    }
    put<std::uint16_t>(body, static_cast<std::uint16_t>(det.size()));
    for (const DetStamp& stamp : det) {
      put<std::uint32_t>(body, scope_index(stamp.scope, defs));
      put<std::uint64_t>(body, stamp.seq);
    }

    for (const Label label : shape_labels(si)) {
      if (label.kind == LabelKind::Tag) {
        put<std::int64_t>(body, r.tag(label));
        continue;
      }
      const Value& v = r.field(label);
      if (!v || !v->has_value()) {
        throw WireError("field '" + label_name(label) +
                        "' holds no value; cannot encode");
      }
      const Codec* codec = CodecRegistry::instance().by_type(v->type());
      if (codec == nullptr) {
        throw WireError("no codec registered for field '" +
                        label_name(label) + "' payload type " +
                        v->type().name());
      }
      put<std::uint16_t>(body, codec_index(codec, defs));
      std::string payload;
      codec->encode(*v, payload);
      if (payload.size() > 0xFFFFFFFFull) {
        throw WireError("field '" + label_name(label) +
                        "' payload exceeds the 4 GiB frame bound");
      }
      put<std::uint32_t>(body, static_cast<std::uint32_t>(payload.size()));
      body += payload;
    }
  }

  void record_chunk(const Record& r, std::string& out) {
    std::string defs;
    std::string body;
    record_body(r, defs, body);
    out += defs;
    put_chunk(out, kRecord, body);
  }

  /// Definition chunks into \p defs, the group chunk itself into \p chunk.
  void group_chunk(std::uint64_t key, const std::vector<Record>& records,
                   std::string& defs, std::string& chunk) {
    if (records.size() > 0xFFFFFFFFull) {
      throw WireError("group record count exceeds the u32 bound");
    }
    std::string payload;
    put<std::uint64_t>(payload, key);
    put<std::uint32_t>(payload, static_cast<std::uint32_t>(records.size()));
    for (const Record& r : records) {
      std::string body;
      record_body(r, defs, body);
      if (body.size() > 0xFFFFFFFFull) {
        throw WireError("group record body exceeds the 4 GiB frame bound");
      }
      put<std::uint32_t>(payload, static_cast<std::uint32_t>(body.size()));
      payload += body;
    }
    put_chunk(chunk, kGroup, payload);
  }

  // In-process side tables for pointer-exact restore (SpillStore).
  DetScope* scope_ptr(std::uint32_t index) const {
    return index < scope_ptrs_.size() ? scope_ptrs_[index] : nullptr;
  }
  SessionState* session_ptr(std::uint32_t id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
  }

 private:
  std::uint32_t shape_index(ShapeId shape, std::string& defs) {
    auto it = shapes_.find(shape);
    if (it != shapes_.end()) {
      return it->second;
    }
    auto labels = canonical_labels(shape);
    std::string payload;
    put<std::uint32_t>(payload, static_cast<std::uint32_t>(labels.size()));
    for (const Label label : labels) {
      const std::string& name = label_name(label);
      if (name.size() > 0xFFFF) {
        throw WireError("label name longer than 65535 bytes");
      }
      put<std::uint8_t>(payload, static_cast<std::uint8_t>(label.kind));
      put<std::uint16_t>(payload, static_cast<std::uint16_t>(name.size()));
      payload += name;
    }
    put_chunk(defs, kShapeDef, payload);
    const auto index = static_cast<std::uint32_t>(shapes_.size());
    shapes_.emplace(shape, index);
    shape_labels_.push_back(std::move(labels));
    if (mirror_ != nullptr) {
      mirror_->shapes.push_back(
          {shape_labels_.back(), ShapeRef{shape, ShapeRegistry::instance().mask(shape)}});
    }
    return index;
  }

  const std::vector<Label>& shape_labels(std::uint32_t index) const {
    return shape_labels_[index];
  }

  std::uint16_t codec_index(const Codec* codec, std::string& defs) {
    auto it = codecs_.find(codec);
    if (it != codecs_.end()) {
      return it->second;
    }
    std::string payload;
    put<std::uint16_t>(payload, static_cast<std::uint16_t>(codec->name.size()));
    payload += codec->name;
    put_chunk(defs, kCodecDef, payload);
    if (codecs_.size() > 0xFFFF) {
      throw WireError("stream defines more than 65536 codecs");
    }
    const auto index = static_cast<std::uint16_t>(codecs_.size());
    codecs_.emplace(codec, index);
    if (mirror_ != nullptr) {
      mirror_->codecs.push_back(codec);
    }
    return index;
  }

  std::uint32_t scope_index(DetScope* scope, std::string& defs) {
    auto it = scopes_.find(scope);
    if (it != scopes_.end()) {
      return it->second;
    }
    const std::string& name = scope->name();
    std::string payload;
    put<std::uint16_t>(payload, static_cast<std::uint16_t>(
                                    std::min<std::size_t>(name.size(), 0xFFFF)));
    payload += name.substr(0, 0xFFFF);
    put_chunk(defs, kScopeDef, payload);
    const auto index = static_cast<std::uint32_t>(scopes_.size());
    scopes_.emplace(scope, index);
    scope_ptrs_.push_back(scope);
    if (mirror_ != nullptr) {
      mirror_->scope_names.push_back(name);
    }
    return index;
  }

  ReadTables* mirror_;
  std::unordered_map<ShapeId, std::uint32_t> shapes_;
  std::vector<std::vector<Label>> shape_labels_;  // parallel to shape index
  std::unordered_map<const Codec*, std::uint16_t> codecs_;
  std::unordered_map<DetScope*, std::uint32_t> scopes_;
  std::vector<DetScope*> scope_ptrs_;
  std::unordered_map<std::uint32_t, SessionState*> sessions_;
};

}  // namespace detail

namespace {

void put_header(std::string& out) {
  put_bytes(out, kMagic, sizeof kMagic);
  put<std::uint16_t>(out, kVersion);
  put<std::uint16_t>(out, 0);  // flags: none defined in version 1
}

// ------------------------------------------------------------- decoding

using detail::ReadTables;

/// Decodes one record body against the stream's tables.
Record decode_record_body(const char* data, std::size_t size,
                          const ReadTables& tables,
                          const Resolvers& resolvers) {
  Cursor cur{data, data + size, "record body"};
  const auto shape_index = cur.get<std::uint32_t>("shape index");
  if (shape_index >= tables.shapes.size()) {
    throw WireError("record references undefined shape index " +
                    std::to_string(shape_index) + " (stream defines " +
                    std::to_string(tables.shapes.size()) + ")");
  }
  const ReadTables::ShapeEntry& entry = tables.shapes[shape_index];

  const auto session_id = cur.get<std::uint32_t>("session id");
  SessionState* session = nullptr;
  if (session_id != kNoSession && resolvers.session) {
    session = resolvers.session(session_id);
  }
  // No resolver: a cross-process reader drops session identity — the
  // record is re-stamped when it crosses an InputPort again.

  const auto det_count = cur.get<std::uint16_t>("det stamp count");
  std::vector<DetStamp> det;
  det.reserve(det_count);
  for (std::uint16_t i = 0; i < det_count; ++i) {
    const auto scope_index = cur.get<std::uint32_t>("det scope index");
    const auto seq = cur.get<std::uint64_t>("det sequence");
    if (scope_index >= tables.scope_names.size()) {
      throw WireError("det stamp references undefined scope index " +
                      std::to_string(scope_index));
    }
    if (!resolvers.scope) {
      throw WireError(
          "stream carries det stamps but the reader has no scope resolver "
          "(scope '" + tables.scope_names[scope_index] + "')");
    }
    DetScope* scope =
        resolvers.scope(scope_index, tables.scope_names[scope_index]);
    if (scope == nullptr) {
      throw WireError("scope resolver returned null for scope '" +
                      tables.scope_names[scope_index] + "'");
    }
    det.push_back(DetStamp{scope, seq});
  }

  std::vector<std::pair<Label, Value>> fields;
  std::vector<std::pair<Label, std::int64_t>> tags;
  for (const Label label : entry.labels) {
    if (label.kind == LabelKind::Tag) {
      tags.emplace_back(label, cur.get<std::int64_t>("tag value"));
      continue;
    }
    const auto codec_index = cur.get<std::uint16_t>("codec index");
    if (codec_index >= tables.codecs.size()) {
      throw WireError("field '" + label_name(label) +
                      "' references undefined codec index " +
                      std::to_string(codec_index));
    }
    const auto len = cur.get<std::uint32_t>("field payload length");
    cur.need(len, "field payload");
    const Codec* codec = tables.codecs[codec_index];
    Value v;
    try {
      v = codec->decode(cur.p, len);
    } catch (const WireError&) {
      throw;
    } catch (const std::exception& e) {
      throw WireError("codec '" + codec->name + "' failed to decode field '" +
                      label_name(label) + "': " + e.what());
    }
    cur.p += len;
    fields.emplace_back(label, std::move(v));
  }
  cur.done();

  // Wire order is canonical (by name); the in-memory invariant is sorted
  // by interned label. Re-sort — cheap, label count is small.
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(tags.begin(), tags.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Record r = Record::assemble(std::move(fields), std::move(tags), entry.ref);
  r.det_stack() = std::move(det);
  r.set_session(session);
  return r;
}

/// Parses one definition chunk into the tables. Returns false when the
/// tag is not a definition chunk.
bool apply_definition(std::uint8_t tag, const std::string& payload,
                      ReadTables& tables) {
  switch (tag) {
    case kShapeDef: {
      Cursor cur{payload.data(), payload.data() + payload.size(),
                 "shape definition"};
      const auto count = cur.get<std::uint32_t>("label count");
      std::vector<Label> labels;
      labels.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto kind = cur.get<std::uint8_t>("label kind");
        if (kind > 1) {
          throw WireError("unknown label kind " + std::to_string(kind) +
                          " in shape definition");
        }
        const auto len = cur.get<std::uint16_t>("label name length");
        const std::string name = cur.get_string(len, "label name");
        labels.push_back(kind == 0 ? field_label(name) : tag_label(name));
      }
      cur.done();
      const ShapeRef ref = ShapeRegistry::instance().intern(labels);
      tables.shapes.push_back({std::move(labels), ref});
      return true;
    }
    case kCodecDef: {
      Cursor cur{payload.data(), payload.data() + payload.size(),
                 "codec definition"};
      const auto len = cur.get<std::uint16_t>("codec name length");
      const std::string name = cur.get_string(len, "codec name");
      cur.done();
      const Codec* codec = CodecRegistry::instance().by_name(name);
      if (codec == nullptr) {
        throw WireError("stream uses unknown codec '" + name +
                        "' — register it before decoding");
      }
      tables.codecs.push_back(codec);
      return true;
    }
    case kScopeDef: {
      Cursor cur{payload.data(), payload.data() + payload.size(),
                 "scope definition"};
      const auto len = cur.get<std::uint16_t>("scope name length");
      std::string name = cur.get_string(len, "scope name");
      cur.done();
      tables.scope_names.push_back(std::move(name));
      return true;
    }
    default:
      return false;
  }
}

void check_header(std::istream& in) {
  char buf[kHeaderSize];
  in.read(buf, sizeof buf);
  if (in.gcount() != static_cast<std::streamsize>(sizeof buf)) {
    throw WireError("truncated stream: header needs 12 bytes");
  }
  if (std::memcmp(buf, kMagic, sizeof kMagic) != 0) {
    throw WireError("bad magic: not a SNETWIRE stream");
  }
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::memcpy(&version, buf + 8, 2);
  std::memcpy(&flags, buf + 10, 2);
  if (version != kVersion) {
    throw WireError("unsupported wire version " + std::to_string(version) +
                    " (reader supports " + std::to_string(kVersion) + ")");
  }
  if (flags != 0) {
    throw WireError("unknown header flags 0x" + std::to_string(flags) +
                    "; refusing to guess");
  }
}

}  // namespace

// ----------------------------------------------------------- WireWriter

WireWriter::WireWriter(std::ostream& out)
    : out_(out), enc_(std::make_unique<detail::Encoder>()) {
  std::string header;
  put_header(header);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out_) {
    throw WireError("failed to write stream header");
  }
}

WireWriter::~WireWriter() { out_.flush(); }

namespace {
std::uint64_t write_all(std::ostream& out, const std::string& buf) {
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) {
    throw WireError("stream write failed (" + std::to_string(buf.size()) +
                    " bytes)");
  }
  return buf.size();
}
}  // namespace

void WireWriter::record(const Record& r) {
  if (finished_) {
    throw WireError("record() after finish()");
  }
  std::string buf;
  enc_->record_chunk(r, buf);
  bytes_written_ = bytes_written_ + write_all(out_, buf);
  ++records_;
}

std::uint64_t WireWriter::group(std::uint64_t key,
                                const std::vector<Record>& records) {
  if (finished_) {
    throw WireError("group() after finish()");
  }
  std::string defs;
  std::string chunk;
  enc_->group_chunk(key, records, defs, chunk);
  bytes_written_ += write_all(out_, defs);
  const std::uint64_t offset = kHeaderSize + bytes_written_;
  bytes_written_ += write_all(out_, chunk);
  records_ += records.size();
  return offset;
}

void WireWriter::finish() {
  if (finished_) {
    return;
  }
  std::string buf;
  put_chunk(buf, kEnd, std::string());
  bytes_written_ += write_all(out_, buf);
  out_.flush();
  finished_ = true;
}

// ----------------------------------------------------------- WireReader

WireReader::WireReader(std::istream& in, Resolvers resolvers)
    : in_(in),
      tables_(std::make_unique<detail::ReadTables>()),
      resolvers_(std::move(resolvers)) {}

WireReader::~WireReader() = default;

namespace {

/// One chunk read from the stream, or nothing at a clean chunk boundary.
struct RawChunk {
  std::uint8_t tag = 0;
  std::string payload;
  std::uint64_t offset = 0;  // of the chunk header; 0 if unseekable
};

std::optional<RawChunk> read_chunk(std::istream& in) {
  RawChunk chunk;
  const auto pos = in.tellg();
  chunk.offset = pos == std::streampos(-1)
                     ? 0
                     : static_cast<std::uint64_t>(std::streamoff(pos));
  char hdr[kChunkHeaderSize];
  in.read(hdr, sizeof hdr);
  const auto got = in.gcount();
  if (got == 0) {
    // Chunk boundary: end of data so far. Clear eofbit so a growing
    // stream can be polled again.
    in.clear();
    if (pos != std::streampos(-1)) {
      in.seekg(pos);
    }
    return std::nullopt;
  }
  if (got < static_cast<std::streamsize>(sizeof hdr)) {
    throw WireError("truncated chunk header: got " + std::to_string(got) +
                    " of 5 bytes");
  }
  chunk.tag = static_cast<std::uint8_t>(hdr[0]);
  std::uint32_t len = 0;
  std::memcpy(&len, hdr + 1, 4);
  chunk.payload.resize(len);
  if (len != 0) {
    in.read(chunk.payload.data(), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      throw WireError("truncated chunk payload: tag 0x" +
                      std::to_string(chunk.tag) + " declares " +
                      std::to_string(len) + " bytes, got " +
                      std::to_string(in.gcount()));
    }
  }
  return chunk;
}

}  // namespace

std::optional<Record> WireReader::next() {
  if (pending_pos_ < pending_.size()) {
    Record r = std::move(pending_[pending_pos_++]);
    if (pending_pos_ == pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
    }
    return r;
  }
  if (clean_end_) {
    return std::nullopt;
  }
  if (!header_done_) {
    check_header(in_);
    header_done_ = true;
  }
  for (;;) {
    auto chunk = read_chunk(in_);
    if (!chunk) {
      return std::nullopt;
    }
    if (apply_definition(chunk->tag, chunk->payload, *tables_)) {
      continue;
    }
    switch (chunk->tag) {
      case kRecord:
        return decode_record_body(chunk->payload.data(),
                                  chunk->payload.size(), *tables_,
                                  resolvers_);
      case kGroup: {
        Cursor cur{chunk->payload.data(),
                   chunk->payload.data() + chunk->payload.size(),
                   "group frame"};
        const auto key = cur.get<std::uint64_t>("group key");
        const auto count = cur.get<std::uint32_t>("group record count");
        groups_.push_back(GroupInfo{key, chunk->offset, count});
        pending_.clear();
        pending_pos_ = 0;
        pending_.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto len = cur.get<std::uint32_t>("group record length");
          cur.need(len, "group record body");
          pending_.push_back(
              decode_record_body(cur.p, len, *tables_, resolvers_));
          cur.p += len;
        }
        cur.done();
        if (pending_.empty()) {
          continue;  // empty frame, keep scanning
        }
        return pending_[pending_pos_++];
      }
      case kEnd:
        if (!chunk->payload.empty()) {
          throw WireError("end-of-stream chunk carries a payload");
        }
        clean_end_ = true;
        return std::nullopt;
      default:
        // Forward compatibility: unknown chunk tags are length-prefixed
        // and skippable by design.
        continue;
    }
  }
}

void WireReader::scan() {
  if (!header_done_) {
    check_header(in_);
    header_done_ = true;
  }
  while (!clean_end_) {
    auto chunk = read_chunk(in_);
    if (!chunk) {
      return;
    }
    if (apply_definition(chunk->tag, chunk->payload, *tables_)) {
      continue;
    }
    if (chunk->tag == kGroup) {
      Cursor cur{chunk->payload.data(),
                 chunk->payload.data() + chunk->payload.size(),
                 "group frame"};
      const auto key = cur.get<std::uint64_t>("group key");
      const auto count = cur.get<std::uint32_t>("group record count");
      groups_.push_back(GroupInfo{key, chunk->offset, count});
    } else if (chunk->tag == kEnd) {
      clean_end_ = true;
    }
    // Record bodies (and unknown tags) are skipped without decoding.
  }
}

std::vector<Record> WireReader::read_group(const GroupInfo& info) {
  in_.clear();
  const auto saved = in_.tellg();
  if (saved == std::streampos(-1)) {
    throw WireError("read_group requires a seekable stream");
  }
  in_.seekg(static_cast<std::streamoff>(info.offset));
  auto chunk = read_chunk(in_);
  in_.seekg(saved);
  if (!chunk || chunk->tag != kGroup) {
    throw WireError("offset " + std::to_string(info.offset) +
                    " does not hold a group frame");
  }
  Cursor cur{chunk->payload.data(),
             chunk->payload.data() + chunk->payload.size(), "group frame"};
  const auto key = cur.get<std::uint64_t>("group key");
  if (key != info.key) {
    throw WireError("group frame key mismatch: stream has " +
                    std::to_string(key) + ", index says " +
                    std::to_string(info.key));
  }
  const auto count = cur.get<std::uint32_t>("group record count");
  std::vector<Record> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len = cur.get<std::uint32_t>("group record length");
    cur.need(len, "group record body");
    out.push_back(decode_record_body(cur.p, len, *tables_, resolvers_));
    cur.p += len;
  }
  cur.done();
  return out;
}

std::vector<Record> read_all(std::istream& in, Resolvers resolvers) {
  WireReader reader(in, std::move(resolvers));
  std::vector<Record> out;
  while (auto r = reader.next()) {
    out.push_back(std::move(*r));
  }
  if (!reader.at_clean_end()) {
    throw WireError(
        "stream ended without the end-of-stream marker (truncated or still "
        "being written)");
  }
  return out;
}

std::string encode_standalone(const Record& r) {
  std::ostringstream os(std::ios::binary);
  WireWriter w(os);
  w.record(r);
  w.finish();
  return std::move(os).str();
}

// ------------------------------------------------------------ SpillStore

struct SpillStore::Impl {
  explicit Impl(std::string d) : dir(std::move(d)), enc(&tables) {}

  std::string dir;

  /// Leaf in the lock order (like DetScope::mu_): nothing is acquired
  /// while held — encoding, file I/O and the side tables all live inside.
  mutable snetsac::runtime::Mutex mu;
  std::fstream file SNETSAC_GUARDED_BY(mu);
  std::filesystem::path path SNETSAC_GUARDED_BY(mu);
  bool open SNETSAC_GUARDED_BY(mu) = false;
  std::uint64_t end_offset SNETSAC_GUARDED_BY(mu) = 0;
  detail::ReadTables tables SNETSAC_GUARDED_BY(mu);
  // Guarded by mu in practice; unannotated because restore()'s resolver
  // lambdas read it and the static analysis cannot see the caller's lock
  // through a std::function boundary.
  detail::Encoder enc;

  std::atomic<std::int64_t> on_disk{0};
  std::atomic<std::uint64_t> bytes{0};

  void ensure_open() SNETSAC_REQUIRES(mu) {
    if (open) {
      return;
    }
    namespace fs = std::filesystem;
    static std::atomic<unsigned> counter{0};
    const fs::path base = dir.empty() ? fs::temp_directory_path()
                                      : fs::path(dir);
    fs::create_directories(base);
    path = base / ("snetsac-spill-" + std::to_string(::getpid()) + "-" +
                   std::to_string(counter.fetch_add(1)) + ".swire");
    file.open(path, std::ios::in | std::ios::out | std::ios::trunc |
                        std::ios::binary);
    if (!file) {
      throw WireError("cannot create spill file " + path.string());
    }
    // A spill file is a valid wire stream (header + def/record chunks), so
    // `snetrec dump` can inspect one post mortem.
    std::string header;
    put_header(header);
    file.write(header.data(), static_cast<std::streamsize>(header.size()));
    end_offset = header.size();
    open = true;
  }
};

SpillStore::SpillStore(std::string dir)
    : impl_(std::make_unique<Impl>(std::move(dir))) {}

SpillStore::~SpillStore() {
  const snetsac::runtime::MutexLock lock(impl_->mu);
  if (impl_->open) {
    impl_->file.close();
    std::error_code ec;
    std::filesystem::remove(impl_->path, ec);  // best effort
  }
}

SpillFrame SpillStore::spill(const Record& r) {
  const snetsac::runtime::MutexLock lock(impl_->mu);
  impl_->ensure_open();
  std::string defs;
  std::string body;
  impl_->enc.record_body(r, defs, body);
  if (body.size() > 0xFFFFFFFFull) {
    throw WireError("spilled record body exceeds the 4 GiB frame bound");
  }
  std::string buf = std::move(defs);
  put_chunk(buf, kRecord, body);

  impl_->file.clear();
  impl_->file.seekp(static_cast<std::streamoff>(impl_->end_offset));
  impl_->file.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  // Flushed per record so the file is always a walkable wire stream for
  // outside readers (snetrec dump during a hang, post-mortem after a
  // crash) — an unflushed tail would truncate mid-chunk.
  impl_->file.flush();
  if (!impl_->file) {
    throw WireError("spill write failed at offset " +
                    std::to_string(impl_->end_offset));
  }
  const SpillFrame frame{
      impl_->end_offset + (buf.size() - body.size()),
      static_cast<std::uint32_t>(body.size())};
  impl_->end_offset += buf.size();
  impl_->bytes.fetch_add(buf.size(), std::memory_order_relaxed);
  impl_->on_disk.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

Record SpillStore::restore(const SpillFrame& frame) {
  const snetsac::runtime::MutexLock lock(impl_->mu);
  if (!impl_->open) {
    throw WireError("restore() on a spill store that never spilled");
  }
  std::string body(frame.length, '\0');
  impl_->file.clear();
  impl_->file.seekg(static_cast<std::streamoff>(frame.offset));
  impl_->file.read(body.data(), static_cast<std::streamsize>(frame.length));
  if (impl_->file.gcount() != static_cast<std::streamsize>(frame.length)) {
    throw WireError("spill read failed at offset " +
                    std::to_string(frame.offset));
  }
  Resolvers resolvers;
  resolvers.scope = [this](std::uint32_t index, const std::string& name) {
    DetScope* scope = impl_->enc.scope_ptr(index);
    if (scope == nullptr) {
      throw WireError("spill restore: unknown scope index " +
                      std::to_string(index) + " ('" + name + "')");
    }
    return scope;
  };
  resolvers.session = [this](std::uint32_t id) {
    return impl_->enc.session_ptr(id);
  };
  Record r =
      decode_record_body(body.data(), body.size(), impl_->tables, resolvers);
  impl_->on_disk.fetch_sub(1, std::memory_order_relaxed);
  return r;
}

std::int64_t SpillStore::on_disk() const {
  return impl_->on_disk.load(std::memory_order_relaxed);
}

std::uint64_t SpillStore::bytes_written() const {
  return impl_->bytes.load(std::memory_order_relaxed);
}

}  // namespace snet::wire
