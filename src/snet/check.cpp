#include "snet/check.hpp"

#include <algorithm>

namespace snet {

bool accepts_variant(const MultiType& input, const RecordType& produced) {
  return std::any_of(input.variants().begin(), input.variants().end(),
                     [&](const RecordType& w) { return w.included_in(produced); });
}

namespace {

void add_unique(std::vector<RecordType>& vs, const RecordType& v) {
  if (std::find(vs.begin(), vs.end(), v) == vs.end()) {
    vs.push_back(v);
  }
}

}  // namespace

MultiType required_input(const Net& n) {
  if (!n) {
    throw TypeCheckError("null network expression");
  }
  switch (n->kind) {
    case NetNode::Kind::Box:
      return n->sig.input_type();
    case NetNode::Kind::Filter:
      return MultiType({n->filter->pattern().type});
    case NetNode::Kind::Serial:
      return required_input(n->left);
    case NetNode::Kind::Parallel:
      return required_input(n->left).union_with(required_input(n->right));
    case NetNode::Kind::Star: {
      // The declared input is the replica's input. Records that already
      // match the exit pattern are tapped out before the first replica at
      // run time whatever their type, but declaring the bare exit type as
      // an *input variant* would manufacture record types (e.g. a board-less
      // `{<done>}`) that downstream components cannot be expected to accept.
      return required_input(n->child);
    }
    case NetNode::Kind::Split: {
      std::vector<RecordType> in;
      const MultiType child_in = required_input(n->child);
      for (auto v : child_in.variants()) {
        v.add(n->split_tag);
        in.push_back(std::move(v));
      }
      return MultiType(std::move(in));
    }
    case NetNode::Kind::Sync: {
      MultiType in;
      for (const auto& p : n->sync_patterns) {
        in.add(p.type);
      }
      return in;
    }
  }
  throw TypeCheckError("corrupt network node");
}

MultiType propagate(const Net& n, const MultiType& incoming) {
  switch (n->kind) {
    case NetNode::Kind::Box: {
      const RecordType consumed = n->sig.input.type();
      std::vector<RecordType> out;
      for (const auto& v : incoming.variants()) {
        if (!consumed.included_in(v)) {
          throw TypeCheckError("box " + n->name + " with input type " +
                               consumed.to_string() +
                               " cannot accept records of type " + v.to_string());
        }
        const RecordType excess = v.minus(consumed);
        for (const auto& o : n->sig.outputs) {
          add_unique(out, o.type().union_with(excess));
        }
      }
      return MultiType(std::move(out));
    }
    case NetNode::Kind::Filter: {
      const RecordType& pat = n->filter->pattern().type;
      std::vector<RecordType> out;
      for (const auto& v : incoming.variants()) {
        if (!pat.included_in(v)) {
          throw TypeCheckError("filter " + n->filter->to_string() +
                               " cannot accept records of type " + v.to_string());
        }
        const RecordType excess = v.minus(pat);
        const MultiType declared = n->filter->output_type();
        for (const auto& ov : declared.variants()) {
          add_unique(out, ov.union_with(excess));
        }
      }
      return MultiType(std::move(out));
    }
    case NetNode::Kind::Serial:
      return propagate(n->right, propagate(n->left, incoming));
    case NetNode::Kind::Parallel: {
      const MultiType left_in = required_input(n->left);
      const MultiType right_in = required_input(n->right);
      std::vector<RecordType> to_left;
      std::vector<RecordType> to_right;
      for (const auto& v : incoming.variants()) {
        // The type-level MultiType::match_score — the shared primitive the
        // ParallelRouter's record-level decision mirrors, so the static
        // tie verdict cannot drift from the runtime one.
        const int ls = left_in.match_score(v);
        const int rs = right_in.match_score(v);
        if (ls < 0 && rs < 0) {
          throw TypeCheckError("parallel combinator `" + describe(n) +
                               "`: records of type " + v.to_string() +
                               " match neither branch");
        }
        // A tie routes non-deterministically: the variant may reach both.
        if (ls >= rs) {
          add_unique(to_left, v);
        }
        if (rs >= ls) {
          add_unique(to_right, v);
        }
      }
      MultiType out;
      if (!to_left.empty()) {
        out = out.union_with(propagate(n->left, MultiType(std::move(to_left))));
      }
      if (!to_right.empty()) {
        out = out.union_with(propagate(n->right, MultiType(std::move(to_right))));
      }
      return out;
    }
    case NetNode::Kind::Star: {
      // Closure over the unfolding: a variant either taps out (matches the
      // exit pattern's type — definitely, when there is no guard; possibly,
      // when a guard is present) or enters the replica chain.
      std::vector<RecordType> exits;
      std::vector<RecordType> seen;
      std::vector<RecordType> frontier = incoming.variants();
      const MultiType child_in = required_input(n->child);
      while (!frontier.empty()) {
        std::vector<RecordType> to_child;
        for (const auto& v : frontier) {
          if (std::find(seen.begin(), seen.end(), v) != seen.end()) {
            continue;
          }
          seen.push_back(v);
          const bool may_exit = n->exit.type.included_in(v);
          const bool must_exit = may_exit && !n->exit.guard.has_value();
          if (may_exit) {
            add_unique(exits, v);
          }
          if (!must_exit) {
            if (!accepts_variant(child_in, v)) {
              throw TypeCheckError(
                  "serial replication `" + describe(n) + "`: records of type " +
                  v.to_string() + " neither (unconditionally) match exit pattern " +
                  n->exit.to_string() + " nor re-enter the replica (input type " +
                  child_in.to_string() + ")");
            }
            add_unique(to_child, v);
          }
        }
        frontier.clear();
        if (!to_child.empty()) {
          const MultiType produced = propagate(n->child, MultiType(std::move(to_child)));
          frontier = produced.variants();
        }
      }
      if (exits.empty()) {
        throw TypeCheckError("serial replication `" + describe(n) +
                             "`: no record can ever match the exit pattern " +
                             n->exit.to_string());
      }
      return MultiType(std::move(exits));
    }
    case NetNode::Kind::Split: {
      for (const auto& v : incoming.variants()) {
        if (!v.contains(n->split_tag)) {
          throw TypeCheckError("parallel replication `" + describe(n) +
                               "`: records of type " + v.to_string() +
                               " lack the replication tag " +
                               label_display(n->split_tag));
        }
      }
      return propagate(n->child, incoming);
    }
    case NetNode::Kind::Sync: {
      // Pass-through variants plus the merged record (lower bound: the
      // union of all pattern labels with any triggering variant).
      RecordType merged;
      for (const auto& p : n->sync_patterns) {
        merged = merged.union_with(p.type);
      }
      MultiType out = incoming;
      for (const auto& v : incoming.variants()) {
        out.add(merged.union_with(v));
      }
      return out;
    }
  }
  throw TypeCheckError("corrupt network node");
}

NetSignature infer(const Net& net) {
  const MultiType in = required_input(net);
  const MultiType out = propagate(net, in);
  return NetSignature{in, out};
}

}  // namespace snet
