#include "snet/simcheck.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "snet/network.hpp"
#include "snet/value.hpp"

namespace snet::simcheck {

namespace {

using Sim = snetsac::runtime::SimExecutor;

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

int x_of(const Record& r) { return value_as<int>(r.field(field_label("x"))); }

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
    out.out(1, in.field("x"));
  });
}

/// `(x) -> (x)` box emitting \p n copies per input — the producer whose
/// mid-quantum emissions overrun a bounded downstream inbox.
Net fanout(const std::string& name, int n) {
  return box(name, "(x) -> (x)", [n](const BoxInput& in, BoxOutput& out) {
    for (int k = 0; k < n; ++k) {
      out.out(1, in.field("x"));
    }
  });
}

/// Scenario expectation failure: routed through invariant_failure so the
/// driver reports wrong *outputs* exactly like violated conservation laws
/// (same exception, same seed-carrying trace from the caller).
void expect(bool ok, const std::string& what) {
  if (!ok) {
    snetsac::runtime::invariant_failure("scenario expectation", what);
  }
}

/// Re-checks the network's conservation laws at every yield point (after
/// every task the SimExecutor runs), and clears the hook before the
/// Network it captures is destroyed. Declare right after the Network and
/// before any Session so unwinding tears down in a safe order.
class HookGuard {
 public:
  HookGuard(Sim& sim, const Network& net) : sim_(sim) {
    sim_.set_after_task([&net] { net.check_protocol_invariants(false); });
  }
  ~HookGuard() { sim_.set_after_task(nullptr); }

  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;

 private:
  Sim& sim_;
};

Options sim_options(Sim& sim, unsigned quantum) {
  Options o;
  // `workers` is the scheduler's concurrency *window*, not a thread
  // count: execution is still serialised onto this thread, but with a
  // window of 4 several entity quanta are pending in the SimExecutor at
  // once — the branching factor the strategies reorder. A window of 1
  // would collapse every schedule to the same sequence.
  o.workers = 4;
  o.quantum = quantum;
  o.executor = &sim;
  // The scenarios use deliberately adversarial configs (caps the config
  // lint rightly flags, e.g. a det_capacity a synchrocell can never fire
  // under); re-verifying the topology thousands of times per sweep would
  // only spam the report.
  o.verify = VerifyMode::Off;
  return o;
}

// ------------------------------------------------------------- scenarios

/// A fanout box overruns a bounded downstream inbox mid-quantum: the
/// producer must stall at a message boundary, park, and resume when the
/// consumer drains — under every interleaving, with nothing lost or
/// duplicated.
void scenario_stall_mid_batch(Sim& sim) {
  Options o = sim_options(sim, /*quantum=*/4);
  o.inbox_capacity = 2;
  Network net(fanout("fan", 4) >> ident("sink"), std::move(o));
  const HookGuard hook(sim, net);
  Session s = net.open_session();
  constexpr int kRecords = 6;
  for (int i = 0; i < kRecords; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  const auto out = s.output().collect();
  expect(out.size() == kRecords * 4U,
         "stall-mid-batch lost records: got " + std::to_string(out.size()) +
             " of " + std::to_string(kRecords * 4));
  net.wait();
  net.check_protocol_invariants(true);
}

/// A session's output credit account fills while records are already in
/// flight: the overflow defers on the per-session key at the output
/// entity, and each client pop releases credit that must flush exactly
/// the next deferred record — per-session FIFO preserved.
void scenario_deferred_flush(Sim& sim) {
  Options o = sim_options(sim, /*quantum=*/1);
  o.output_capacity = 2;
  Network net(ident("id"), std::move(o));
  const HookGuard hook(sim, net);
  Session s = net.open_session();
  constexpr int kRecords = 6;
  // Nothing runs until a blocking call pumps, so every inject passes the
  // credit gate while the account is still empty — the records then hit
  // the bound *inside* the network, exercising deferral, not the gate.
  for (int i = 0; i < kRecords; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  for (int i = 0; i < kRecords; ++i) {
    const auto r = s.output().next();
    expect(r.has_value(), "output ended after " + std::to_string(i) + " of " +
                              std::to_string(kRecords) + " records");
    expect(x_of(*r) == i, "deferred flush reordered the stream: got " +
                              std::to_string(x_of(*r)) + " at position " +
                              std::to_string(i));
  }
  expect(!s.output().next().has_value(), "records duplicated past the close");
  net.wait();
  net.check_protocol_invariants(true);
}

/// A deterministic parallel region whose branches the strategy reorders
/// freely: the collector buffers out-of-order groups past the per-session
/// cap, spills, and throttles the session's admission — and the released
/// stream must still be exactly the injection order.
void scenario_det_spill(Sim& sim) {
  Options o = sim_options(sim, /*quantum=*/1);
  o.det_capacity = 2;
  o.det_overflow = OverflowPolicy::Spill;
  Network net(parallel_det(ident("L"), ident("R")), std::move(o));
  const HookGuard hook(sim, net);
  Session s = net.open_session();
  constexpr int kRecords = 10;
  for (int i = 0; i < kRecords; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  const auto out = s.output().collect();
  expect(out.size() == static_cast<std::size_t>(kRecords),
         "det spill lost records: got " + std::to_string(out.size()));
  for (int i = 0; i < kRecords; ++i) {
    const int got = x_of(out[static_cast<std::size_t>(i)]);
    expect(got == i, "det spill broke ordering: got " + std::to_string(got) +
                         " at position " + std::to_string(i));
  }
  net.wait();
  net.check_protocol_invariants(true);
}

/// FailFast overflow in a synchrocell: the second *stored* record blows
/// the cap-of-one, the offending session must error (and only it), the
/// evicted slot's accounting must unwind, and the network must quiesce.
void scenario_sync_failfast(Sim& sim) {
  Options o = sim_options(sim, /*quantum=*/1);
  o.det_capacity = 1;
  o.det_overflow = OverflowPolicy::FailFast;
  Network net(sync({"{a}", "{b}", "{c}"}), std::move(o));
  const HookGuard hook(sim, net);
  Session hog = net.open_session();
  Session bystander = net.open_session();
  Record ra;
  ra.set_field(field_label("a"), make_value(1));
  hog.input().inject(std::move(ra));
  Record rb;
  rb.set_field(field_label("b"), make_value(2));
  hog.input().inject(std::move(rb));
  hog.close();
  bool overflowed = false;
  try {
    hog.output().collect();
  } catch (const SessionOverflowError&) {
    overflowed = true;
  }
  expect(overflowed, "FailFast cap never raised SessionOverflowError");
  // The bystander's record carries none of a/b/c, so the cell is the
  // identity for it — and it must be untouched by the hog's failure.
  bystander.input().inject(int_rec(7));
  bystander.close();
  const auto out = bystander.output().collect();
  expect(out.size() == 1 && x_of(out[0]) == 7,
         "innocent session damaged by another session's fail-fast");
  net.wait();
  net.check_protocol_invariants(true);
}

/// A hot session floods the bounded staging queue while a heavier meek
/// session submits a finite batch: DRR must keep both streams complete
/// and per-session ordered, refusals must leave records intact, and the
/// throttle/credit wakes must never be lost.
void scenario_drr_flood(Sim& sim) {
  Options o = sim_options(sim, /*quantum=*/1);
  o.inbox_capacity = 2;  // small staging queues: the DRR arbitrates
  Network net(ident("grind"), std::move(o));
  const HookGuard hook(sim, net);
  Session hot = net.open_session();  // weight 1
  SessionOptions heavy;
  heavy.weight = 4;
  Session meek = net.open_session(heavy);
  constexpr int kHot = 16;
  constexpr int kMeek = 6;
  int hot_in = 0;
  std::size_t hot_out = 0;
  int meek_in = 0;
  while (hot_in < kHot) {
    Record r = int_rec(hot_in);
    if (hot.input().try_inject(r)) {
      ++hot_in;
      if (meek_in < kMeek && hot_in % 3 == 0) {
        meek.input().inject(int_rec(1000 + meek_in));
        ++meek_in;
      }
      continue;
    }
    // Refused: the record must be intact, and something must be in
    // flight — otherwise the refusal itself is a lost-credit bug.
    expect(x_of(r) == hot_in, "try_inject damaged the refused record");
    expect(hot_out < static_cast<std::size_t>(hot_in),
           "try_inject refused with nothing in flight");
    expect(hot.output().next().has_value(), "flood output ended early");
    ++hot_out;
  }
  while (meek_in < kMeek) {
    meek.input().inject(int_rec(1000 + meek_in));
    ++meek_in;
  }
  hot.close();
  meek.close();
  hot_out += hot.output().collect().size();
  expect(hot_out == static_cast<std::size_t>(kHot),
         "flood session lost records: got " +
                              std::to_string(hot_out) + " of " +
                              std::to_string(kHot));
  const auto meek_out = meek.output().collect();
  expect(meek_out.size() == static_cast<std::size_t>(kMeek),
         "meek session lost records under flood");
  for (int i = 0; i < kMeek; ++i) {
    expect(x_of(meek_out[static_cast<std::size_t>(i)]) == 1000 + i,
           "DRR reordered the meek session's stream");
  }
  net.wait();
  net.check_protocol_invariants(true);
}

struct Scenario {
  const char* name;
  void (*fn)(Sim&);
};

constexpr Scenario kScenarios[] = {
    {"stall-mid-batch", scenario_stall_mid_batch},
    {"deferred-flush", scenario_deferred_flush},
    {"det-spill", scenario_det_spill},
    {"sync-failfast", scenario_sync_failfast},
    {"drr-flood", scenario_drr_flood},
};

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Scenario& s : kScenarios) {
      v.emplace_back(s.name);
    }
    return v;
  }();
  return names;
}

RunResult run_scenario(const std::string& name,
                       const snetsac::runtime::SimExecutor::Options& opts) {
  for (const Scenario& s : kScenarios) {
    if (name == s.name) {
      Sim sim(opts);
      try {
        s.fn(sim);
      } catch (const snetsac::runtime::ProtocolInvariantError& e) {
        // Violations raised outside the executor (a conservation check, a
        // wrong scenario output) don't carry the decision trace the wedge
        // path embeds — attach it so every failure is replayable.
        std::string msg = e.what();
        if (msg.find("schedule trace") == std::string::npos) {
          msg += "\n" + sim.format_trace();
        }
        throw snetsac::runtime::ProtocolInvariantError(msg);
      }
      // Teardown discipline: a task still pending after ~Network would
      // reference a dead network — running it later is use-after-free,
      // so surface the leak as a violation instead.
      expect(sim.pending() == 0,
             "tasks left pending after network teardown");
      RunResult r;
      r.steps = sim.steps_executed();
      r.choices = sim.choice_log();
      r.option_counts = sim.option_counts();
      return r;
    }
  }
  std::ostringstream os;
  os << "unknown scenario '" << name << "' (have:";
  for (const Scenario& s : kScenarios) {
    os << ' ' << s.name;
  }
  os << ')';
  throw std::invalid_argument(os.str());
}

}  // namespace snet::simcheck
