#include "snet/labels.hpp"

#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace snet {

namespace {

/// Process-wide intern table, one per label kind (a field and a tag may
/// share a name and remain distinct labels).
class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  std::int32_t intern(LabelKind kind, std::string_view name) {
    if (name.empty()) {
      throw std::invalid_argument("empty label name");
    }
    const auto k = static_cast<std::size_t>(kind);
    {
      const std::shared_lock lock(mu_);
      const auto it = ids_[k].find(std::string(name));
      if (it != ids_[k].end()) {
        return it->second;
      }
    }
    const std::unique_lock lock(mu_);
    const auto [it, inserted] =
        ids_[k].emplace(std::string(name), static_cast<std::int32_t>(names_[k].size()));
    if (inserted) {
      names_[k].push_back(it->first);
    }
    return it->second;
  }

  const std::string& name(Label label) const {
    const std::shared_lock lock(mu_);
    return names_[static_cast<std::size_t>(label.kind)].at(
        static_cast<std::size_t>(label.id));
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::int32_t> ids_[2];
  std::vector<std::string> names_[2];
};

}  // namespace

Label field_label(std::string_view name) {
  return Label{LabelKind::Field, Registry::instance().intern(LabelKind::Field, name)};
}

Label tag_label(std::string_view name) {
  return Label{LabelKind::Tag, Registry::instance().intern(LabelKind::Tag, name)};
}

const std::string& label_name(Label label) { return Registry::instance().name(label); }

std::string label_display(Label label) {
  if (label.kind == LabelKind::Tag) {
    return "<" + label_name(label) + ">";
  }
  return label_name(label);
}

}  // namespace snet
