#include "snet/detscope.hpp"

#include <stdexcept>

#include "snet/entity.hpp"

namespace snet {

std::uint64_t DetScope::open_group() {
  const snetsac::runtime::MutexLock lock(mu_);
  const std::uint64_t seq = next_++;
  // Starts at zero: the entry entity's send() immediately bumps it for the
  // stamped record itself.
  pending_.emplace(seq, 0);
  return seq;
}

void DetScope::adjust(std::uint64_t seq, std::int64_t delta) {
  if (delta == 0) {
    return;
  }
  bool completed = false;
  {
    const snetsac::runtime::MutexLock lock(mu_);
    const auto it = pending_.find(seq);
    if (it == pending_.end()) {
      // Invariant: any record carrying a stamp keeps its group's pending
      // count >= 1 until the record is consumed, so adjustments can never
      // target a drained group.
      throw std::logic_error("det scope " + name_ +
                             ": adjustment on drained group");
    }
    it->second += delta;
    if (it->second == 0) {
      pending_.erase(it);
      completed = true;
    }
  }
  if (completed && collector_ != nullptr) {
    collector_->deliver(Message::poke());
  }
}

bool DetScope::complete(std::uint64_t seq) const {
  const snetsac::runtime::MutexLock lock(mu_);
  return seq < next_ && pending_.find(seq) == pending_.end();
}

std::uint64_t DetScope::groups_opened() const {
  const snetsac::runtime::MutexLock lock(mu_);
  return next_;
}

}  // namespace snet
