#include "snet/shapes.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace snet {

namespace {

/// Transition-cache key: op(1) | kind(1) | label id(30) | shape(32).
/// Label ids are dense per kind and realistically far below 2^30.
std::uint64_t transition_key(ShapeId from, Label label, bool add) {
  return (static_cast<std::uint64_t>(add) << 63) |
         (static_cast<std::uint64_t>(label.kind) << 62) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(label.id)) << 32) |
         from;
}

std::uint64_t subset_key(ShapeId sub, ShapeId super) {
  return (static_cast<std::uint64_t>(sub) << 32) | super;
}

struct LabelVecHash {
  std::size_t operator()(const std::vector<Label>& labels) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Label l : labels) {
      h ^= (static_cast<std::uint64_t>(l.kind) << 32) |
           static_cast<std::uint32_t>(l.id);
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Per-thread caches of immutable registry facts. Never invalidated:
/// a transition or subset verdict, once computed, holds forever.
struct TlsCaches {
  std::unordered_map<std::uint64_t, ShapeRef> transitions;
  std::unordered_map<std::uint64_t, bool> subsets;
};

TlsCaches& tls_caches() {
  thread_local TlsCaches caches;
  return caches;
}

}  // namespace

struct ShapeRegistry::Impl {
  mutable std::shared_mutex mu;
  /// Stable storage: infos are never mutated after insertion, and the
  /// unique_ptr indirection keeps pointers valid across vector growth.
  struct Info {
    std::vector<Label> labels;  // sorted, unique
    std::uint64_t mask = 0;
  };
  std::vector<std::unique_ptr<Info>> shapes;
  std::unordered_map<std::vector<Label>, ShapeId, LabelVecHash> ids;

  /// Reads an info pointer; valid forever once obtained (append-only).
  const Info* info(ShapeId id) const {
    const std::shared_lock lock(mu);
    return shapes.at(id).get();
  }
};

ShapeRegistry::ShapeRegistry() : impl_(new Impl) {
  // Reserve id 0 for the empty shape so default-constructed records carry
  // a valid shape without touching the registry.
  auto empty = std::make_unique<Impl::Info>();
  impl_->ids.emplace(std::vector<Label>{}, 0);
  impl_->shapes.push_back(std::move(empty));
}

ShapeRegistry& ShapeRegistry::instance() {
  static ShapeRegistry* reg = new ShapeRegistry;  // leaked: see header
  return *reg;
}

ShapeRef ShapeRegistry::intern(std::vector<Label> labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  {
    const std::shared_lock lock(impl_->mu);
    const auto it = impl_->ids.find(labels);
    if (it != impl_->ids.end()) {
      return ShapeRef{it->second, impl_->shapes[it->second]->mask};
    }
  }
  const std::unique_lock lock(impl_->mu);
  const auto it = impl_->ids.find(labels);
  if (it != impl_->ids.end()) {
    return ShapeRef{it->second, impl_->shapes[it->second]->mask};
  }
  auto info = std::make_unique<Impl::Info>();
  info->labels = labels;
  for (const Label l : info->labels) {
    info->mask |= label_bit(l);
  }
  const auto id = static_cast<ShapeId>(impl_->shapes.size());
  const std::uint64_t mask = info->mask;
  impl_->shapes.push_back(std::move(info));
  impl_->ids.emplace(std::move(labels), id);
  return ShapeRef{id, mask};
}

ShapeRef ShapeRegistry::with(ShapeId from, Label label) {
  auto& cache = tls_caches().transitions;
  const std::uint64_t key = transition_key(from, label, /*add=*/true);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  std::vector<Label> ls = labels(from);
  const auto pos = std::lower_bound(ls.begin(), ls.end(), label);
  if (pos == ls.end() || *pos != label) {
    ls.insert(pos, label);
  }
  const ShapeRef ref = intern(std::move(ls));
  cache.emplace(key, ref);
  return ref;
}

ShapeRef ShapeRegistry::without(ShapeId from, Label label) {
  auto& cache = tls_caches().transitions;
  const std::uint64_t key = transition_key(from, label, /*add=*/false);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  std::vector<Label> ls = labels(from);
  const auto pos = std::lower_bound(ls.begin(), ls.end(), label);
  if (pos != ls.end() && *pos == label) {
    ls.erase(pos);
  }
  const ShapeRef ref = intern(std::move(ls));
  cache.emplace(key, ref);
  return ref;
}

bool ShapeRegistry::subset(ShapeId sub, ShapeId super) {
  if (sub == super || sub == 0) {
    return true;
  }
  auto& cache = tls_caches().subsets;
  const std::uint64_t key = subset_key(sub, super);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  const Impl::Info* a = impl_->info(sub);
  const Impl::Info* b = impl_->info(super);
  const bool verdict = std::includes(b->labels.begin(), b->labels.end(),
                                     a->labels.begin(), a->labels.end());
  cache.emplace(key, verdict);
  return verdict;
}

std::vector<Label> ShapeRegistry::labels(ShapeId id) const {
  return impl_->info(id)->labels;
}

std::uint64_t ShapeRegistry::mask(ShapeId id) const { return impl_->info(id)->mask; }

std::size_t ShapeRegistry::size() const {
  const std::shared_lock lock(impl_->mu);
  return impl_->shapes.size();
}

}  // namespace snet
