#include "snet/scheduler.hpp"

#include "snet/entity.hpp"

namespace snet {

Scheduler::Scheduler(unsigned workers, unsigned quantum)
    : quantum_(quantum == 0 ? 1U : quantum) {
  const unsigned count = workers == 0 ? 1U : workers;
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::enqueue(Entity* entity) {
  {
    const std::lock_guard lock(mu_);
    ready_.push_back(entity);
  }
  cv_.notify_one();
}

void Scheduler::stop() {
  {
    const std::lock_guard lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  threads_.clear();  // jthread dtor joins
}

std::uint64_t Scheduler::quanta_executed() const {
  const std::lock_guard lock(mu_);
  return quanta_;
}

void Scheduler::worker_loop() {
  for (;;) {
    Entity* entity = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (stopping_) {
        return;
      }
      entity = ready_.front();
      ready_.pop_front();
      ++quanta_;
    }
    entity->run_quantum(quantum_);
  }
}

}  // namespace snet
