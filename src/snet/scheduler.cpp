#include "snet/scheduler.hpp"

#include <vector>

#include "snet/entity.hpp"

namespace snet {

using snetsac::runtime::MutexLock;

Scheduler::Scheduler(snetsac::runtime::ExecutorIface& exec,
                     unsigned max_concurrency, unsigned quantum)
    : exec_(exec),
      limit_(max_concurrency == 0 ? 1U : max_concurrency),
      quantum_(quantum == 0 ? 1U : quantum) {
  mu_.set_order(40, "scheduler.mu");
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::fill_locked(std::vector<Entity*>& batch) {
  // Reserves a window slot AND a lifetime pin per dispatched entity; the
  // matching releases happen in run_one.
  while (!stopping_ && slots_ < limit_ && !ready_.empty()) {
    batch.push_back(ready_.front());
    ready_.pop_front();
    ++slots_;
    ++active_;
    ++quanta_;
  }
}

void Scheduler::submit_batch(const std::vector<Entity*>& batch) {
  // The batch's active_ reservations (taken under mu_ before this call)
  // keep the scheduler alive across these submits: stop() cannot return
  // while active_ > 0.
  for (Entity* e : batch) {
    exec_.submit([this, e] { run_one(e); });
  }
}

void Scheduler::enqueue(Entity* entity, bool urgent) {
  std::vector<Entity*> batch;
  {
    const MutexLock lock(mu_);
    if (stopping_) {
      return;  // teardown: pending entities are dropped, as before
    }
    if (urgent) {
      ready_.push_front(entity);
    } else {
      ready_.push_back(entity);
    }
    fill_locked(batch);
  }
  submit_batch(batch);
}

void Scheduler::run_one(Entity* entity) {
  // Tail-chaining: after a quantum, continue inline with the oldest ready
  // entity instead of bouncing every link of a sequential chain through
  // the executor (the common S-Net shape: a record walking a pipeline).
  // Bounded so a busy network still yields the worker; everything beyond
  // the inline continuation is submitted for other workers to pick up.
  // Under a deterministic (schedule-exploration) executor chaining is
  // disabled outright: every quantum must surface as its own task so the
  // strategy can interleave it against the rest of the pending set.
  const int kMaxChain = exec_.deterministic() ? 0 : 64;
  // Attribute the executor-level steal (if any) to this network. Only the
  // dispatched task itself can have been stolen; tail-chained entities run
  // inline on the same worker.
  if (snetsac::runtime::Executor::current_task_stolen()) {
    steals_.fetch_add(1, std::memory_order_relaxed);
  }
  Entity* current = entity;
  int chained = 0;
  while (current != nullptr) {
    // run_quantum never throws (entity errors are routed to Network::fail),
    // so the bookkeeping below is unconditionally reached.
    current->run_quantum(quantum_);
    std::vector<Entity*> batch;
    Entity* next = nullptr;
    {
      const MutexLock lock(mu_);
      // Release the window slot *before* refilling: the finishing task
      // must take dispatch responsibility for whatever is ready, even when
      // quanta dispatched earlier have not released their slots yet (they
      // refilled before we existed and will not look again).
      --slots_;
      fill_locked(batch);
      if (!batch.empty() && ++chained <= kMaxChain) {
        next = batch.front();
        batch.erase(batch.begin());
      }
      // Release our lifetime pin. The pins fill_locked reserved for batch
      // and next keep the scheduler alive past this critical section, so
      // active_ can only drain to zero when there is nothing left to do —
      // and then stop() may destroy the scheduler the moment we unlock.
      if (--active_ == 0) {
        idle_cv_.notify_all();
      }
    }
    if (!batch.empty()) {
      submit_batch(batch);  // safe: the batch's own pins hold the scheduler
    }
    current = next;  // safe: next's pin holds the scheduler
  }
}

void Scheduler::stop() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
    ready_.clear();  // teardown drops not-yet-dispatched entities, as before
  }
  // Wait for in-flight quanta. help_until keeps executing tasks when we
  // are on an executor worker (e.g. a network destroyed inside a box), so
  // the quanta we wait for can still be run. Idempotent: a second call
  // sees active_ == 0 and returns immediately.
  exec_.help_until(mu_, idle_cv_, [&] {
    mu_.assert_held();
    return active_ == 0;
  });
}

std::uint64_t Scheduler::quanta_executed() const {
  const MutexLock lock(mu_);
  return quanta_;
}

}  // namespace snet
