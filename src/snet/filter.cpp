#include "snet/filter.hpp"

#include <sstream>

#include "snet/parse.hpp"
#include "snet/text.hpp"

namespace snet {

FilterSpec::FilterSpec(Pattern pattern, std::vector<Output> outputs)
    : pattern_(std::move(pattern)), outputs_(std::move(outputs)) {
  validate();
}

FilterSpec FilterSpec::parse(const std::string& text) {
  text::Cursor cur(text::tokenize(text));
  cur.accept(text::Tok::LBracket);  // surrounding [ ] optional
  FilterSpec spec = parse::filter_body(cur);
  cur.accept(text::Tok::RBracket);
  if (!cur.done()) {
    throw text::ParseError("trailing input after filter", cur.peek().pos);
  }
  return spec;
}

void FilterSpec::validate() const {
  const auto in_pattern = [&](Label l) { return pattern_.type.contains(l); };
  for (const auto& out : outputs_) {
    for (const auto& item : out.items) {
      switch (item.kind) {
        case Item::Kind::CopyField:
          if (!in_pattern(item.target)) {
            throw FilterError("filter copies field " + label_display(item.target) +
                              " not present in pattern " + pattern_.type.to_string());
          }
          break;
        case Item::Kind::BindField:
          if (!in_pattern(item.source)) {
            throw FilterError("filter binding " + label_display(item.target) + " = " +
                              label_display(item.source) +
                              " references a field outside pattern " +
                              pattern_.type.to_string());
          }
          break;
        case Item::Kind::CopyTag:
          // A bare tag: copies when in the pattern, defaults to zero
          // otherwise ("tag values are set to zero by default").
          break;
        case Item::Kind::SetTag:
          for (const Label l : item.expr.referenced_tags()) {
            if (!in_pattern(l)) {
              throw FilterError("filter tag expression for " +
                                label_display(item.target) + " references " +
                                label_display(l) + " outside pattern " +
                                pattern_.type.to_string());
            }
          }
          break;
      }
    }
  }
}

std::vector<Record> FilterSpec::apply(const Record& in) const {
  if (!pattern_.matches(in)) {
    throw FilterError("record " + in.to_string() + " does not match filter pattern " +
                      pattern_.to_string());
  }
  return apply_matched(in);
}

std::vector<Record> FilterSpec::apply_matched(const Record& in) const {
  std::vector<Record> produced;
  produced.reserve(outputs_.size());
  for (const auto& out_spec : outputs_) {
    Record out;
    for (const auto& item : out_spec.items) {
      switch (item.kind) {
        case Item::Kind::CopyField:
          out.set_field(item.target, in.field(item.target));
          break;
        case Item::Kind::BindField:
          out.set_field(item.target, in.field(item.source));
          break;
        case Item::Kind::CopyTag:
          out.set_tag(item.target,
                      in.has_tag(item.target) ? in.tag(item.target) : 0);
          break;
        case Item::Kind::SetTag:
          out.set_tag(item.target, item.expr.eval(in));
          break;
      }
    }
    // Flow inheritance: labels of the input record outside the pattern
    // re-attach unless the specifier already produced that label.
    for (const auto& [label, value] : in.fields()) {
      if (!pattern_.type.contains(label) && !out.has_field(label)) {
        out.set_field(label, value);
      }
    }
    for (const auto& [label, value] : in.tags()) {
      if (!pattern_.type.contains(label) && !out.has_tag(label)) {
        out.set_tag(label, value);
      }
    }
    out.inherit_meta(in);
    produced.push_back(std::move(out));
  }
  return produced;
}

MultiType FilterSpec::output_type() const {
  std::vector<RecordType> variants;
  variants.reserve(outputs_.size());
  for (const auto& out : outputs_) {
    RecordType t;
    for (const auto& item : out.items) {
      t.add(item.target);
    }
    variants.push_back(std::move(t));
  }
  return MultiType(std::move(variants));
}

std::string FilterSpec::to_string() const {
  std::ostringstream os;
  os << '[' << pattern_.to_string() << " -> ";
  bool first_out = true;
  for (const auto& out : outputs_) {
    os << (first_out ? "" : "; ") << '{';
    bool first = true;
    for (const auto& item : out.items) {
      os << (first ? "" : ", ");
      first = false;
      switch (item.kind) {
        case Item::Kind::CopyField:
          os << label_name(item.target);
          break;
        case Item::Kind::BindField:
          os << label_name(item.target) << '=' << label_name(item.source);
          break;
        case Item::Kind::CopyTag:
          os << label_display(item.target);
          break;
        case Item::Kind::SetTag:
          os << label_display(item.target) << '=' << item.expr.to_string();
          break;
      }
    }
    os << '}';
    first_out = false;
  }
  os << ']';
  return os.str();
}

}  // namespace snet
