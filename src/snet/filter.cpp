#include "snet/filter.hpp"

#include <sstream>

#include "snet/parse.hpp"
#include "snet/text.hpp"

namespace snet {

FilterSpec::FilterSpec(Pattern pattern, std::vector<Output> outputs)
    : pattern_(std::move(pattern)), outputs_(std::move(outputs)) {
  validate();
}

FilterSpec FilterSpec::parse(const std::string& text) {
  text::Cursor cur(text::tokenize(text));
  cur.accept(text::Tok::LBracket);  // surrounding [ ] optional
  FilterSpec spec = parse::filter_body(cur);
  cur.accept(text::Tok::RBracket);
  if (!cur.done()) {
    throw text::ParseError("trailing input after filter", cur.peek().pos);
  }
  return spec;
}

void FilterSpec::validate() const {
  const auto in_pattern = [&](Label l) { return pattern_.type.contains(l); };
  for (const auto& out : outputs_) {
    for (const auto& item : out.items) {
      switch (item.kind) {
        case Item::Kind::CopyField:
          if (!in_pattern(item.target)) {
            throw FilterError("filter copies field " + label_display(item.target) +
                              " not present in pattern " + pattern_.type.to_string());
          }
          break;
        case Item::Kind::BindField:
          if (!in_pattern(item.source)) {
            throw FilterError("filter binding " + label_display(item.target) + " = " +
                              label_display(item.source) +
                              " references a field outside pattern " +
                              pattern_.type.to_string());
          }
          break;
        case Item::Kind::CopyTag:
          // A bare tag: copies when in the pattern, defaults to zero
          // otherwise ("tag values are set to zero by default").
          break;
        case Item::Kind::SetTag:
          for (const Label l : item.expr.referenced_tags()) {
            if (!in_pattern(l)) {
              throw FilterError("filter tag expression for " +
                                label_display(item.target) + " references " +
                                label_display(l) + " outside pattern " +
                                pattern_.type.to_string());
            }
          }
          break;
      }
    }
  }
}

std::vector<Record> FilterSpec::apply(const Record& in) const {
  if (!pattern_.matches(in)) {
    throw FilterError("record " + in.to_string() + " does not match filter pattern " +
                      pattern_.to_string());
  }
  return apply_matched(in);
}

std::vector<Record> FilterSpec::apply_matched(const Record& in) const {
  std::vector<Record> produced;
  produced.reserve(outputs_.size());
  for (const auto& out_spec : outputs_) {
    Record out;
    for (const auto& item : out_spec.items) {
      switch (item.kind) {
        case Item::Kind::CopyField:
          out.set_field(item.target, in.field(item.target));
          break;
        case Item::Kind::BindField:
          out.set_field(item.target, in.field(item.source));
          break;
        case Item::Kind::CopyTag:
          out.set_tag(item.target,
                      in.has_tag(item.target) ? in.tag(item.target) : 0);
          break;
        case Item::Kind::SetTag:
          out.set_tag(item.target, item.expr.eval(in));
          break;
      }
    }
    // Flow inheritance: labels of the input record outside the pattern
    // re-attach unless the specifier already produced that label.
    for (const auto& [label, value] : in.fields()) {
      if (!pattern_.type.contains(label) && !out.has_field(label)) {
        out.set_field(label, value);
      }
    }
    for (const auto& [label, value] : in.tags()) {
      if (!pattern_.type.contains(label) && !out.has_tag(label)) {
        out.set_tag(label, value);
      }
    }
    out.inherit_meta(in);
    produced.push_back(std::move(out));
  }
  return produced;
}

FilterSpec::Compiled FilterSpec::compile(const Record& in) const {
  // Slot positions are a property of the input *shape*: records with the
  // same ShapeId keep fields_/tags_ sorted identically, so indices found
  // against this representative record hold for every record of the shape.
  const auto field_slot = [&](Label l) {
    for (std::size_t i = 0; i < in.fields().size(); ++i) {
      if (in.fields()[i].first == l) {
        return static_cast<std::uint32_t>(i);
      }
    }
    throw FilterError("filter compile: record " + in.to_string() +
                      " lacks pattern field " + label_display(l));
  };
  const auto tag_slot = [&](Label l) {
    for (std::size_t i = 0; i < in.tags().size(); ++i) {
      if (in.tags()[i].first == l) {
        return static_cast<std::uint32_t>(i);
      }
    }
    throw FilterError("filter compile: record " + in.to_string() +
                      " lacks pattern tag " + label_display(l));
  };
  Compiled compiled;
  compiled.outputs.reserve(outputs_.size());
  for (const auto& out_spec : outputs_) {
    detail::CopyPlanBuilder b;
    for (std::size_t i = 0; i < out_spec.items.size(); ++i) {
      const Item& item = out_spec.items[i];
      switch (item.kind) {
        case Item::Kind::CopyField:
          b.declare_field(item.target, detail::CopyPlan::Src::kInField,
                          field_slot(item.target));
          break;
        case Item::Kind::BindField:
          b.declare_field(item.target, detail::CopyPlan::Src::kInField,
                          field_slot(item.source));
          break;
        case Item::Kind::CopyTag:
          // Present in this shape: a slot copy. Absent: the zero default
          // ("tag values are set to zero by default"), compiled to a
          // constant for the shape.
          if (in.has_tag(item.target)) {
            b.declare_tag(item.target, detail::CopyPlan::Src::kInTag,
                          tag_slot(item.target));
          } else {
            b.declare_tag(item.target, detail::CopyPlan::Src::kConst, 0, 0);
          }
          break;
        case Item::Kind::SetTag:
          // The expression reads live tag values; only its landing slot is
          // compiled. idx points back into this output's item list.
          b.declare_tag(item.target, detail::CopyPlan::Src::kExt,
                        static_cast<std::uint32_t>(i));
          break;
      }
    }
    // Flow inheritance, resolved per shape instead of per record.
    for (std::size_t i = 0; i < in.fields().size(); ++i) {
      const Label l = in.fields()[i].first;
      if (!pattern_.type.contains(l)) {
        b.inherit_field(l, static_cast<std::uint32_t>(i));
      }
    }
    for (std::size_t i = 0; i < in.tags().size(); ++i) {
      const Label l = in.tags()[i].first;
      if (!pattern_.type.contains(l)) {
        b.inherit_tag(l, static_cast<std::uint32_t>(i));
      }
    }
    detail::CopyPlan plan = b.finish();
    plan.identity = detail::plan_is_identity(plan, in);
    compiled.outputs.push_back(std::move(plan));
  }
  return compiled;
}

std::vector<Record> FilterSpec::apply_planned(const Record& in,
                                              const Compiled& plans) const {
  std::vector<Record> produced;
  produced.reserve(plans.outputs.size());
  for (std::size_t i = 0; i < plans.outputs.size(); ++i) {
    const auto& items = outputs_[i].items;
    produced.push_back(detail::apply_copy_plan(
        plans.outputs[i], in,
        [&](std::uint32_t) -> Value {
          // Filters have no external field sources; a plan op claiming one
          // is a compile bug.
          throw FilterError("filter plan: unexpected external field source");
        },
        [&](std::uint32_t idx) { return items[idx].expr.eval(in); }));
  }
  return produced;
}

MultiType FilterSpec::output_type() const {
  std::vector<RecordType> variants;
  variants.reserve(outputs_.size());
  for (const auto& out : outputs_) {
    RecordType t;
    for (const auto& item : out.items) {
      t.add(item.target);
    }
    variants.push_back(std::move(t));
  }
  return MultiType(std::move(variants));
}

std::string FilterSpec::to_string() const {
  std::ostringstream os;
  os << '[' << pattern_.to_string() << " -> ";
  bool first_out = true;
  for (const auto& out : outputs_) {
    os << (first_out ? "" : "; ") << '{';
    bool first = true;
    for (const auto& item : out.items) {
      os << (first ? "" : ", ");
      first = false;
      switch (item.kind) {
        case Item::Kind::CopyField:
          os << label_name(item.target);
          break;
        case Item::Kind::BindField:
          os << label_name(item.target) << '=' << label_name(item.source);
          break;
        case Item::Kind::CopyTag:
          os << label_display(item.target);
          break;
        case Item::Kind::SetTag:
          os << label_display(item.target) << '=' << item.expr.to_string();
          break;
      }
    }
    os << '}';
    first_out = false;
  }
  os << ']';
  return os.str();
}

}  // namespace snet
