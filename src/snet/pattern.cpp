#include "snet/pattern.hpp"

#include "snet/parse.hpp"
#include "snet/text.hpp"

namespace snet {

Pattern Pattern::parse(const std::string& text) {
  text::Cursor cur(text::tokenize(text));
  Pattern p = parse::pattern(cur);
  if (!cur.done()) {
    throw text::ParseError("trailing input after pattern", cur.peek().pos);
  }
  return p;
}

}  // namespace snet
