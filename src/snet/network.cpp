#include "snet/network.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "runtime/invariants.hpp"
#include "snet/entities.hpp"
#include "snet/verify.hpp"
#include "snet/wire.hpp"

namespace snet {

using snetsac::runtime::MutexLock;
using snetsac::runtime::UniqueLock;

std::size_t NetworkStats::count_containing(std::string_view needle) const {
  return static_cast<std::size_t>(
      std::count_if(entities.begin(), entities.end(), [&](const EntityStats& e) {
        return e.name.find(needle) != std::string::npos;
      }));
}

std::uint64_t NetworkStats::records_in_containing(std::string_view needle) const {
  std::uint64_t total = 0;
  for (const auto& e : entities) {
    if (e.name.find(needle) != std::string::npos) {
      total += e.records_in;
    }
  }
  return total;
}

Network::Network(Net topology, Options opts)
    : topology_(std::move(topology)),
      opts_(std::move(opts)),
      exec_(opts_.executor != nullptr
                ? *opts_.executor
                : static_cast<snetsac::runtime::ExecutorIface&>(
                      snetsac::runtime::Executor::global())) {
  if (!topology_) {
    throw std::invalid_argument("null topology");
  }
  // Declared lock order (checked builds verify it dynamically): entity
  // registry, then dispatch listing, then the output/session lock, then
  // the input-credit handshake; staging/inbox queues (50) and the
  // executor's internals (60/70) rank above all of them. Any acquisition
  // against ascending rank is half of a deadlock cycle and aborts the
  // first schedule that exercises it.
  reg_mu_.set_order(5, "network.reg_mu");
  dispatch_mu_.set_order(10, "network.dispatch_mu");
  out_mu_.set_order(20, "network.out_mu");
  in_mu_.set_order(30, "network.in_mu");
  // The shape-flow verifier runs before fail-fast inference so a broken
  // topology surfaces its *complete* report (inference stops at the first
  // violation; the verifier collects them all, plus the liveness and
  // config diagnostics inference cannot express).
  if (opts_.verify != VerifyMode::Off) {
    VerifyOptions vo;
    vo.det_capacity = opts_.det_capacity;
    vo.det_fail_fast = opts_.det_overflow == OverflowPolicy::FailFast;
    vo.output_capacity = opts_.output_capacity;
    vo.inbox_capacity = opts_.inbox_capacity;
    VerifyReport report = snet::verify(topology_, vo);
    if (!report.empty()) {
      if (opts_.verify == VerifyMode::Strict) {
        throw VerifyError(std::move(report));
      }
      std::fprintf(stderr, "snet verify: %s\n%s",
                   describe(topology_).c_str(), report.to_string().c_str());
    }
  }
  signature_ = infer(topology_);  // always infer; doubles as a null check
  if (!opts_.type_check) {
    // Inference already ran; the flag only controls whether a mismatch is
    // fatal. Keep it simple: inference throws either way. (Documented.)
  }
  // All networks (and all with-loops) share the process-wide executor by
  // default; opts_.workers survives as this network's concurrency cap.
  // Schedcheck scenarios substitute a deterministic SimExecutor here.
  sched_ = std::make_unique<Scheduler>(exec_, opts_.workers, opts_.quantum);
  if (opts_.det_overflow == OverflowPolicy::Spill && opts_.spill_to_disk &&
      opts_.det_capacity > 0) {
    // The store is cheap to hold: no file exists until the first overflow.
    spill_store_ = std::make_unique<wire::SpillStore>(opts_.spill_dir);
  }
  out_entity_ = adopt(std::make_unique<detail::OutputEntity>(*this));
  entry_ = instantiate(topology_, out_entity_, "net");
  dispatch_ = adopt(std::make_unique<detail::InputDispatchEntity>(*this, entry_));
}

Network::~Network() {
  // Stop workers before tearing down entities they might touch.
  sched_->stop();
}

SessionState* Network::new_session_state(std::uint32_t id, SessionOptions opts) {
  if (opts.output_capacity == 0) {
    opts.output_capacity = opts_.output_capacity;  // 0 = inherit the default
  }
  auto state = std::make_unique<SessionState>(*this, id, opts);
  SessionState* raw = state.get();
  {
    const MutexLock lock(out_mu_);
    sessions_.emplace(id, std::move(state));
    ++sessions_opened_;
  }
  open_sessions_.fetch_add(1, std::memory_order_acq_rel);
  return raw;
}

SessionState* Network::default_state() {
  // The default session (id 0) backs input()/output() and the deprecated
  // single-funnel shims. Created lazily so a client that only ever
  // open_session()s never owes it a close before wait().
  SessionState* s = default_session_.load(std::memory_order_acquire);
  if (s != nullptr) {
    return s;
  }
  SessionOptions so;
  so.output_capacity = opts_.output_capacity;
  auto state = std::make_unique<SessionState>(*this, 0, so);
  {
    const MutexLock lock(out_mu_);
    s = default_session_.load(std::memory_order_relaxed);
    if (s != nullptr) {
      return s;  // another thread won the race
    }
    s = state.get();
    sessions_.emplace(0U, std::move(state));
    ++sessions_opened_;
    default_session_.store(s, std::memory_order_release);
  }
  open_sessions_.fetch_add(1, std::memory_order_acq_rel);
  return s;
}

InputPort& Network::input() { return default_state()->input(); }

OutputPort& Network::output() { return default_state()->output(); }

Session Network::open_session(SessionOptions opts) {
  return Session(*this,
                 *new_session_state(
                     next_session_id_.fetch_add(1, std::memory_order_relaxed),
                     opts));
}

// ------------------------------------------------- input dispatch listing

void Network::dispatch_list(SessionState* s) {
  bool fresh = false;
  {
    const MutexLock lock(dispatch_mu_);
    s->assert_dispatch_locked();
    if (!s->listed_) {
      s->listed_ = true;
      listed_count_.fetch_add(1, std::memory_order_acq_rel);
      dispatch_ready_.push_back(s);
      fresh = true;
    }
  }
  if (fresh) {
    dispatch_->poke();
  }
}

void Network::dispatch_wake(SessionState* s) {
  {
    const MutexLock lock(dispatch_mu_);
    s->assert_dispatch_locked();
    if (!s->listed_) {
      s->listed_ = true;
      listed_count_.fetch_add(1, std::memory_order_acq_rel);
      dispatch_ready_.push_back(s);
    }
  }
  dispatch_->poke();
}

void Network::dispatch_take_ready(std::deque<SessionState*>& out) {
  const MutexLock lock(dispatch_mu_);
  out.insert(out.end(), dispatch_ready_.begin(), dispatch_ready_.end());
  dispatch_ready_.clear();
}

bool Network::dispatch_delist(SessionState* s) {
  // One critical section: the emptiness check and the listed_ flip must
  // not be separated — (a) a producer's staging push is totally ordered
  // against our empty() by the queue's own mutex, so either we see its
  // record (stay listed) or it sees listed_ == false afterwards and
  // re-lists with a poke: no staged record can strand; and (b) every
  // dispatcher touch of *s happens while s is listed (ring membership ⟺
  // listed_), which is what lets port_release reclaim an unlisted,
  // drained session without racing a use after free.
  const MutexLock lock(dispatch_mu_);
  s->assert_dispatch_locked();
  if (!s->staging_.empty()) {
    return false;  // the caller keeps the session on its active ring
  }
  s->listed_ = false;
  const std::int64_t listed =
      listed_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  SNETSAC_INVARIANT(listed >= 0,
                    "listed-session count went negative (" << listed
                        << ") delisting session " << s->id());
  return true;
}

// ------------------------------------------------------ inject (per-port)

void Network::await_output_account(SessionState& s) {
  if (s.out_cap_ == 0) {
    return;
  }
  // All predicate state is either atomic or guarded by out_mu_ (sink_),
  // and both wait paths evaluate it under the lock — the asserts are the
  // hand-off that tells the analysis so (and verify it in checked builds).
  const auto pred = [&] {
    out_mu_.assert_held();
    s.assert_output_locked();
    return failed_.load(std::memory_order_acquire) || s.errored() ||
           s.abandoned() || static_cast<bool>(s.sink_) ||
           s.out_account_.load(std::memory_order_relaxed) <
               static_cast<std::int64_t>(s.out_cap_);
  };
  {
    UniqueLock lock(out_mu_);
    if (!pred()) {
      // The session's un-consumed output is at its credit bound: the
      // inject waits for the client to pop. This is the per-session
      // analogue of write(2) against a full pipe — and the whole point:
      // only *this* tenant waits, nobody else's stream is touched.
      s.credit_waits_.fetch_add(1, std::memory_order_relaxed);
      if (!exec_.on_worker_thread()) {
        out_cv_.wait(lock, pred);
      } else {
        lock.unlock();
        exec_.help_until(out_mu_, out_cv_, pred);
      }
    }
  }
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      const MutexLock lock(out_mu_);
      err = error_;
    }
    std::rethrow_exception(err);
  }
  if (s.errored()) {
    std::exception_ptr err;
    {
      const MutexLock lock(out_mu_);
      s.assert_output_locked();
      err = s.error_;
    }
    std::rethrow_exception(err);
  }
}

void Network::port_inject(SessionState& s, Record r) {
  if (s.closed_.load(std::memory_order_acquire)) {
    throw std::logic_error("inject after close_input");
  }
  if (s.errored()) {
    const MutexLock lock(out_mu_);
    s.assert_output_locked();
    std::rethrow_exception(s.error_);
  }
  // Per-session output credit gate: a slow reader blocks its own producer
  // here instead of wedging the shared output entity downstream.
  await_output_account(s);
  r.set_session(&s);
  injected_.fetch_add(1, std::memory_order_relaxed);
  // The live increment precedes visibility downstream — a blocked inject
  // holds its record "live", so the network cannot quiesce under it.
  live_add(&s, 1);
  // Fast path: while no session anywhere has staged backlog (and this one
  // is not throttled), there is no admission order to arbitrate — deliver
  // straight to the entry and skip the staging/DRR detour entirely. The
  // entry refusing (bounded inbox full) falls through to staging, which
  // lists the session and turns the DRR on for everyone.
  if (listed_count_.load(std::memory_order_acquire) == 0 && !s.throttled() &&
      s.staging_.empty()) {
    Message m = Message::record(std::move(r));
    if (entry_->try_deliver(m)) {
      return;
    }
    r = std::move(m.rec);
  }
  if (!s.staging_.try_push(r)) {
    // This session's staging queue is full: wait for staging credit (the
    // dispatcher forwarding our backlog). On an executor worker (a box
    // injecting into a nested network) help_until executes queued tasks
    // instead of blocking the pool slot. A network failure — or this
    // session failing fast — wakes the wait too (both bump the epoch):
    // a dead pipeline may never release credit, so a blocked inject must
    // rethrow rather than hang.
    for (;;) {
      if (failed_.load(std::memory_order_acquire)) {
        live_sub(&s, 1);  // the record never became visible downstream
        std::exception_ptr err;
        {
          const MutexLock lock(out_mu_);
          err = error_;
        }
        std::rethrow_exception(err);
      }
      if (s.errored()) {
        live_sub(&s, 1);
        std::exception_ptr err;
        {
          const MutexLock lock(out_mu_);
          s.assert_output_locked();
          err = s.error_;
        }
        std::rethrow_exception(err);
      }
      std::uint64_t epoch;
      {
        const MutexLock lock(in_mu_);
        epoch = in_credit_epoch_;
      }
      const bool registered = s.staging_.wait_for_credit([this] {
        {
          const MutexLock lock(in_mu_);
          ++in_credit_epoch_;
        }
        in_cv_.notify_all();
      });
      if (registered) {
        exec_.help_until(in_mu_, in_cv_, [&] {
          in_mu_.assert_held();
          return in_credit_epoch_ != epoch;
        });
      }
      if (s.staging_.try_push(r)) {
        break;
      }
    }
  }
  dispatch_list(&s);
}

void Network::port_inject_all(SessionState& s, std::vector<Record> records) {
  if (records.empty()) {
    return;
  }
  // Bulk fast path: when there is nothing to arbitrate or gate — batching
  // on, no session listed for DRR, this session unthrottled with an empty
  // staging queue, unbounded entry inbox (nothing to refuse) and no
  // output credit account (nothing to await per record) — the whole
  // vector is stamped, counted and delivered under one inbox lock. Any
  // gate present falls back to the per-record path, which enforces it.
  if (opts_.batching && opts_.inbox_capacity == 0 && s.out_cap_ == 0 &&
      !s.closed_.load(std::memory_order_acquire) && !s.errored() &&
      listed_count_.load(std::memory_order_acquire) == 0 && !s.throttled() &&
      s.staging_.empty()) {
    const auto n = static_cast<std::int64_t>(records.size());
    std::vector<Message> msgs;
    msgs.reserve(records.size());
    for (Record& r : records) {
      r.set_session(&s);
      msgs.push_back(Message::record(std::move(r)));
    }
    injected_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    live_add(&s, n);
    entry_->deliver_all(msgs);
    return;
  }
  for (Record& r : records) {
    port_inject(s, std::move(r));
  }
}

bool Network::port_try_inject(SessionState& s, Record& r) {
  if (s.closed_.load(std::memory_order_acquire)) {
    throw std::logic_error("inject after close_input");
  }
  if (s.errored()) {
    const MutexLock lock(out_mu_);
    s.assert_output_locked();
    std::rethrow_exception(s.error_);
  }
  if (s.out_cap_ != 0 &&
      s.out_account_.load(std::memory_order_acquire) >=
          static_cast<std::int64_t>(s.out_cap_)) {
    // Output credit exhausted — "full" for a non-blocking caller, unless
    // a sink consumes directly (checked under the lock to be exact).
    const MutexLock lock(out_mu_);
    s.assert_output_locked();
    if (!s.sink_ && !s.abandoned() &&
        s.out_account_.load(std::memory_order_relaxed) >=
            static_cast<std::int64_t>(s.out_cap_)) {
      return false;
    }
  }
  r.set_session(&s);
  live_add(&s, 1);
  if (listed_count_.load(std::memory_order_acquire) == 0 && !s.throttled() &&
      s.staging_.empty()) {
    Message m = Message::record(std::move(r));
    if (entry_->try_deliver(m)) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    r = std::move(m.rec);
  }
  if (!s.staging_.try_push(r)) {
    live_sub(&s, 1);
    r.set_session(nullptr);  // hand the record back untouched
    return false;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  dispatch_list(&s);
  return true;
}

void Network::port_close(SessionState& s) {
  if (!s.closed_.exchange(true, std::memory_order_acq_rel)) {
    open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // A session that was already drained must wake its output waiters (and
  // wait() waiters watching for whole-network quiescence).
  {
    const MutexLock lock(out_mu_);
  }
  out_cv_.notify_all();
}

// ---------------------------------------------------------- output (demux)

Record Network::pop_output_locked(SessionState& s, std::vector<Entity*>& resumed,
                                  bool& crossed) {
  s.assert_output_locked();
  Record r = std::move(s.buffer_.front());
  s.buffer_.pop_front();
  const std::int64_t before =
      s.out_account_.fetch_sub(1, std::memory_order_relaxed);
  SNETSAC_INVARIANT(before >= 1, "session " << s.id()
                                            << " output account underflow: pop "
                                               "with account "
                                            << before);
  if (!s.out_waiters_.empty() &&
      (s.out_cap_ == 0 || s.buffer_.size() <= s.out_cap_ / 2)) {
    // The waiters deferred records on the (entity, session) credit key; a
    // poke (done by the caller, outside the lock) makes their next quantum
    // retry them. It is not a wholesale stall, so this is a nudge, not a
    // resume.
    resumed.swap(s.out_waiters_);
  }
  // Wake the session's gated injects only when this pop actually crossed
  // the credit bound (account cap → cap-1); pops above or below the
  // boundary cannot change the gate predicate, and an unconditional
  // notify would wake every blocked inject, next() and wait() caller per
  // consumed record.
  crossed = s.out_cap_ != 0 && before == static_cast<std::int64_t>(s.out_cap_);
  return r;
}

std::size_t Network::port_drain(SessionState& s, std::vector<Record>& out) {
  if (!opts_.batching) {
    // Scalar ablation mode: collect() degrades to the pre-batch client
    // path, one port_next (lock + credit release) per record.
    return 0;
  }
  std::vector<Entity*> resumed;
  std::size_t n = 0;
  bool gated = false;
  {
    const MutexLock lock(out_mu_);
    s.assert_output_locked();
    n = s.buffer_.size();
    if (n == 0) {
      return 0;
    }
    const std::int64_t before = s.out_account_.fetch_sub(
        static_cast<std::int64_t>(n), std::memory_order_relaxed);
    SNETSAC_INVARIANT(
        before >= static_cast<std::int64_t>(n),
        "session " << s.id() << " output account underflow: drained " << n
                   << " with account " << before);
    // Whole-span release: wake gated injects whenever the account *was* at
    // or over the bound (the bulk pop may open the gate; a spurious wake
    // re-checks the predicate under the lock).
    gated = s.out_cap_ != 0 && before >= static_cast<std::int64_t>(s.out_cap_);
    for (Record& r : s.buffer_) {
      out.push_back(std::move(r));
    }
    s.buffer_.clear();
    if (!s.out_waiters_.empty()) {
      resumed.swap(s.out_waiters_);  // buffer empty: below any watermark
    }
  }
  if (gated) {
    out_cv_.notify_all();
  }
  for (Entity* e : resumed) {
    e->poke();
  }
  return n;
}

std::optional<Record> Network::port_next(SessionState& s) {
  const auto session_done = [&] {
    return s.closed_.load(std::memory_order_acquire) &&
           s.live_.load(std::memory_order_acquire) == 0;
  };
  const auto ready = [&] {
    out_mu_.assert_held();
    s.assert_output_locked();
    return error_ || s.error_ || !s.buffer_.empty() || session_done();
  };
  if (!exec_.on_worker_thread()) {
    // Client thread: classic single-lock wait-and-pop. The pop's wakeups
    // (credit-bound notify, deferred-producer pokes) run after the lock is
    // dropped — callbacks never run under out_mu_.
    std::optional<Record> r;
    std::vector<Entity*> resumed;
    bool crossed = false;
    {
      UniqueLock lock(out_mu_);
      out_cv_.wait(lock, ready);
      if (error_) {
        std::rethrow_exception(error_);
      }
      if (s.error_) {
        std::rethrow_exception(s.error_);
      }
      if (!s.buffer_.empty()) {
        r = pop_output_locked(s, resumed, crossed);
      }
    }
    if (crossed) {
      out_cv_.notify_all();
    }
    for (Entity* e : resumed) {
      e->poke();
    }
    return r;  // nullopt ⟺ session closed and drained
  }
  // Executor worker (a box draining a nested network): wait cooperatively —
  // execute queued tasks, including this network's own quanta, instead of
  // blocking the pool slot. Loops because the lock is released between the
  // wait and the pop: a concurrent consumer may take the output we were
  // woken for.
  for (;;) {
    exec_.help_until(out_mu_, out_cv_, ready);
    std::optional<Record> r;
    bool done = false;
    std::vector<Entity*> resumed;
    bool crossed = false;
    {
      UniqueLock lock(out_mu_);
      if (error_) {
        std::rethrow_exception(error_);
      }
      if (s.error_) {
        std::rethrow_exception(s.error_);
      }
      if (!s.buffer_.empty()) {
        r = pop_output_locked(s, resumed, crossed);
      } else if (session_done()) {
        done = true;
      }
    }
    if (crossed) {
      out_cv_.notify_all();
    }
    for (Entity* e : resumed) {
      e->poke();
    }
    if (r.has_value()) {
      return r;
    }
    if (done) {
      return std::nullopt;
    }
  }
}

void Network::port_on_output(SessionState& s, std::function<void(Record)> callback) {
  // Flush-then-install loop: the sink is only installed once the buffer
  // is observed empty under the lock, so a record pushed concurrently is
  // either buffered (and flushed by a later iteration, in order) or
  // delivered directly strictly after the flush completed — the callback
  // sees every record exactly once, in session order, serialised.
  std::vector<Entity*> resumed;
  for (;;) {
    std::deque<Record> pending;
    {
      const MutexLock lock(out_mu_);
      s.assert_output_locked();
      if (s.sink_) {
        // Install-once: push_output calls through the stored sink
        // without copying it, which is only safe if it never changes.
        throw std::logic_error("on_output already installed for this session");
      }
      if (s.buffer_.empty()) {
        s.sink_ = std::move(callback);
        resumed.swap(s.out_waiters_);
        break;
      }
      pending.swap(s.buffer_);
      s.out_account_.fetch_sub(static_cast<std::int64_t>(pending.size()),
                               std::memory_order_relaxed);
    }
    for (auto& r : pending) {
      callback(std::move(r));
    }
  }
  // A sink disables the credit account for this session: wake injects
  // gated on it, and have the output entity replay any deferred records
  // into the sink (push mode accepts unconditionally).
  out_cv_.notify_all();
  for (Entity* e : resumed) {
    e->poke();
  }
  if (s.parked_.load(std::memory_order_acquire) > 0) {
    out_entity_->poke();
  }
}

// ------------------------------------------ deprecated single-funnel shims

void Network::inject(Record r) { port_inject(*default_state(), std::move(r)); }

void Network::close_input() { port_close(*default_state()); }

std::optional<Record> Network::next_output() {
  return port_next(*default_state());
}

std::vector<Record> Network::collect() {
  SessionState* s = default_state();
  port_close(*s);
  std::vector<Record> all;
  while (auto r = port_next(*s)) {
    all.push_back(std::move(*r));
  }
  return all;
}

// -------------------------------------------------------------------------

void Network::wait() {
  exec_.help_until(out_mu_, out_cv_, [&] {
    out_mu_.assert_held();
    return error_ || done_locked();
  });
  const MutexLock lock(out_mu_);
  if (error_) {
    std::rethrow_exception(error_);
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  {
    const MutexLock lock(reg_mu_);
    s.entities.reserve(entities_.size());
    for (const auto& e : entities_) {
      s.entities.push_back(EntityStats{e->name(), e->records_in(), e->records_out()});
    }
  }
  s.injected = injected_.load();
  {
    const MutexLock lock(out_mu_);
    s.produced = produced_;
    s.sessions = sessions_opened_;  // cumulative, survives reclamation
    s.session_stats.reserve(sessions_.size());
    for (const auto& [id, state] : sessions_) {
      state->assert_output_locked();
      SessionStats row;
      row.id = id;
      row.weight = state->weight();
      row.errored = state->errored();
      row.live = state->live_.load(std::memory_order_relaxed);
      row.output_account = state->out_account_.load(std::memory_order_relaxed);
      row.produced = state->produced_;
      row.forwarded = state->forwarded_.load(std::memory_order_relaxed);
      row.dispatch_turns = state->drr_turns_.load(std::memory_order_relaxed);
      row.credit_waits = state->credit_waits_.load(std::memory_order_relaxed);
      row.output_stalls = state->output_parks_.load(std::memory_order_relaxed);
      row.spilled = state->spilled_.load(std::memory_order_relaxed);
      s.session_stats.push_back(row);
    }
  }
  std::sort(s.session_stats.begin(), s.session_stats.end(),
            [](const SessionStats& a, const SessionStats& b) { return a.id < b.id; });
  s.peak_live = peak_live_.load();
  s.quanta = sched_->quanta_executed();
  s.steals = sched_->steals();
  s.suspensions = suspensions_.load(std::memory_order_relaxed);
  s.det_buffered = det_buffered_.load(std::memory_order_relaxed);
  s.det_buffered_peak = det_buffered_peak_.load(std::memory_order_relaxed);
  if (spill_store_ != nullptr) {
    s.spill_on_disk = spill_store_->on_disk();
    s.spill_bytes = spill_store_->bytes_written();
  }
  return s;
}

void Network::det_buffer_add(std::int64_t n) {
  const std::int64_t now =
      det_buffered_.fetch_add(n, std::memory_order_relaxed) + n;
  std::int64_t peak = det_buffered_peak_.load(std::memory_order_relaxed);
  while (now > peak && !det_buffered_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Network::det_buffer_sub(std::int64_t n) {
  const std::int64_t now =
      det_buffered_.fetch_sub(n, std::memory_order_relaxed) - n;
  SNETSAC_INVARIANT(now >= 0,
                    "interior buffering gauge went negative: " << now);
}

void Network::live_add(SessionState* session, std::int64_t n) {
  if (session != nullptr) {
    session->live_.fetch_add(n, std::memory_order_acq_rel);
  }
  const std::int64_t now = live_.fetch_add(n, std::memory_order_acq_rel) + n;
  SNETSAC_INVARIANT(now >= n, "network live counter was negative before add: "
                                  << now - n);
  std::int64_t peak = peak_live_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_live_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void Network::live_sub(SessionState* session, std::int64_t n) {
  bool session_drained = false;
  if (session != nullptr) {
    // The decrement to zero is the *last* touch of the session state: a
    // drained session may be reclaimed by a concurrent handle release
    // the moment live hits 0, so no closed_/etc. reads after fetch_sub.
    // The notify below is unconditional on drain-to-zero; waiters
    // re-check closed/live under out_mu_ (spurious wakeups are cheap,
    // and the close path notifies too — between them every transition
    // of "closed && live == 0" is covered).
    const std::int64_t after =
        session->live_.fetch_sub(n, std::memory_order_acq_rel) - n;
    SNETSAC_INVARIANT(after >= 0,
                      "session live counter went negative: " << after);
    session_drained = after == 0;
  }
  const std::int64_t now = live_.fetch_sub(n, std::memory_order_acq_rel) - n;
  SNETSAC_INVARIANT(now >= 0, "network live counter went negative: " << now);
  const bool network_drained =
      now == 0 && open_sessions_.load(std::memory_order_acquire) == 0;
  if (session_drained || network_drained) {
    const MutexLock lock(out_mu_);
    out_cv_.notify_all();
  }
}

Network::PushOutcome Network::push_output(Record& r, Entity* producer,
                                          bool from_deferred) {
  SessionState* const stamped = r.session_state();
  SessionState* s = stamped;
  if (s == nullptr) {
    s = default_state();  // records that never crossed a port
  }
  bool has_sink = false;
  {
    const MutexLock lock(out_mu_);
    s->assert_output_locked();
    const auto retire_deferred = [&] {
      if (from_deferred) {
        const std::int64_t parked =
            s->parked_.fetch_sub(1, std::memory_order_relaxed) - 1;
        s->out_account_.fetch_sub(1, std::memory_order_relaxed);
        SNETSAC_INVARIANT(parked >= 0, "session " << s->id()
                                                  << " parked counter went "
                                                     "negative: "
                                                  << parked);
      }
    };
    if (s->abandoned() || s->errored()) {
      // Released or failed fast mid-flight: nobody can ever consume this
      // session's output, so drop it rather than hold its credit.
      retire_deferred();
      return PushOutcome::kAccepted;
    }
    has_sink = static_cast<bool>(s->sink_);
    if (!has_sink) {
      if (stamped != nullptr && s->out_cap_ != 0 &&
          s->buffer_.size() >= s->out_cap_) {
        // Account exhausted. Refusal and waiter registration are one
        // critical section: the client cannot pop-and-release between
        // them, so the producer's poke can never be lost. Unstamped
        // records (never crossed a port — no injector to gate) are
        // exempt and buffer unconditionally.
        if (!from_deferred) {
          s->parked_.fetch_add(1, std::memory_order_relaxed);
          s->out_account_.fetch_add(1, std::memory_order_relaxed);
          s->output_parks_.fetch_add(1, std::memory_order_relaxed);
        }
        if (std::find(s->out_waiters_.begin(), s->out_waiters_.end(), producer) ==
            s->out_waiters_.end()) {
          s->out_waiters_.push_back(producer);
        }
        return PushOutcome::kNoCredit;
      }
      ++produced_;
      ++s->produced_;
      s->buffer_.push_back(std::move(r));
      if (from_deferred) {
        const std::int64_t parked =
            s->parked_.fetch_sub(1, std::memory_order_relaxed) - 1;
        // account unchanged: the park charge becomes the buffer charge
        SNETSAC_INVARIANT(parked >= 0, "session " << s->id()
                                                  << " parked counter went "
                                                     "negative: "
                                                  << parked);
      } else {
        s->out_account_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      ++produced_;
      ++s->produced_;
      retire_deferred();
    }
  }
  if (has_sink) {
    // Invoked through the stored sink outside the lock — safe without a
    // per-record copy because a sink is install-once (port_on_output
    // rejects re-installation), the install was observed under out_mu_,
    // and the record in hand keeps the session state alive (live > 0
    // until the output entity's consume decrement). Serialised: only the
    // single worker currently running the output entity reaches here.
    s->deliver_to_sink(std::move(r));
  } else {
    out_cv_.notify_all();
  }
  return PushOutcome::kAccepted;
}

void Network::push_output_batch(std::vector<Record>& records, Entity* producer,
                                std::vector<Record>& refused) {
  // Unstamped records (never crossed a port) resolve to the default
  // session *before* the critical section: default_state() takes out_mu_
  // itself on first use.
  SessionState* fallback = nullptr;
  for (const Record& r : records) {
    if (r.session_state() == nullptr) {
      fallback = default_state();
      break;
    }
  }
  // Sink deliveries happen outside the lock (in batch order): the sink is
  // install-once and only the single worker running the output entity
  // reaches here, same argument as the scalar path.
  std::vector<std::pair<SessionState*, Record>> sink_calls;
  // Sessions refused earlier in this batch: later records of the same
  // session must refuse too, or they would overtake the deferred ones.
  std::vector<SessionState*> refused_sessions;
  bool any_buffered = false;
  {
    const MutexLock lock(out_mu_);
    for (Record& r : records) {
      SessionState* const stamped = r.session_state();
      SessionState* const s = stamped != nullptr ? stamped : fallback;
      s->assert_output_locked();
      if (s->abandoned() || s->errored()) {
        continue;  // dropped: nobody can ever consume this session's output
      }
      if (s->sink_) {
        ++produced_;
        ++s->produced_;
        sink_calls.emplace_back(s, std::move(r));
        continue;
      }
      const bool cascade =
          std::find(refused_sessions.begin(), refused_sessions.end(), s) !=
          refused_sessions.end();
      if (cascade || (stamped != nullptr && s->out_cap_ != 0 &&
                      s->buffer_.size() >= s->out_cap_)) {
        // Same accounting as the scalar refusal (park charge + waiter
        // registration, atomic with the refusal under out_mu_); the caller
        // turns the returned records into (entity, session) deferrals.
        s->parked_.fetch_add(1, std::memory_order_relaxed);
        s->out_account_.fetch_add(1, std::memory_order_relaxed);
        s->output_parks_.fetch_add(1, std::memory_order_relaxed);
        if (std::find(s->out_waiters_.begin(), s->out_waiters_.end(),
                      producer) == s->out_waiters_.end()) {
          s->out_waiters_.push_back(producer);
        }
        if (!cascade) {
          refused_sessions.push_back(s);
        }
        refused.push_back(std::move(r));
        continue;
      }
      ++produced_;
      ++s->produced_;
      s->buffer_.push_back(std::move(r));
      s->out_account_.fetch_add(1, std::memory_order_relaxed);
      any_buffered = true;
    }
  }
  for (auto& [s, rec] : sink_calls) {
    s->deliver_to_sink(std::move(rec));
  }
  if (any_buffered) {
    out_cv_.notify_all();
  }
  records.clear();
}

void Network::note_deferred_output(SessionState* s) {
  const MutexLock lock(out_mu_);
  s->parked_.fetch_add(1, std::memory_order_relaxed);
  s->out_account_.fetch_add(1, std::memory_order_relaxed);
  s->output_parks_.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------- interior (det/sync) account

bool Network::interior_admit(SessionState* s) {
  if (s == nullptr || opts_.det_capacity == 0) {
    return true;
  }
  const std::int64_t now = s->interior_.fetch_add(1, std::memory_order_acq_rel) + 1;
  SNETSAC_INVARIANT(now >= 1, "session " << s->id()
                                         << " interior account was negative "
                                            "before admit: "
                                         << now - 1);
  return now <= static_cast<std::int64_t>(opts_.det_capacity);
}

void Network::interior_release(SessionState* s, std::int64_t n) {
  if (s == nullptr || opts_.det_capacity == 0) {
    return;
  }
  const std::int64_t now = s->interior_.fetch_sub(n, std::memory_order_acq_rel) - n;
  SNETSAC_INVARIANT(now >= 0, "session " << s->id()
                                         << " interior account went negative: "
                                         << now);
  if (now <= static_cast<std::int64_t>(opts_.det_capacity / 2) &&
      s->throttled_.exchange(false, std::memory_order_acq_rel)) {
    dispatch_wake(s);  // resume the session's input dispatch
  }
}

void Network::spill_session(SessionState* s) {
  if (s == nullptr) {
    return;
  }
  s->spilled_.fetch_add(1, std::memory_order_relaxed);
  s->throttled_.store(true, std::memory_order_release);
  // Throttle/drain race: if the interior already drained past the
  // watermark between our overflow observation and the store above, undo —
  // a throttled session with an empty interior would never be re-listed.
  if (s->interior_.load(std::memory_order_acquire) <=
          static_cast<std::int64_t>(opts_.det_capacity / 2) &&
      s->throttled_.exchange(false, std::memory_order_acq_rel)) {
    dispatch_wake(s);
  }
}

void Network::fail_session(SessionState* s, std::exception_ptr err) {
  if (s == nullptr) {
    fail(err);  // unstamped records have no session to isolate
    return;
  }
  std::vector<Entity*> resumed;
  bool flush_deferred = false;
  {
    const MutexLock lock(out_mu_);
    s->assert_output_locked();
    if (!s->error_) {
      s->error_ = err;
    }
    s->errored_.store(true, std::memory_order_release);
    const std::int64_t after = s->out_account_.fetch_sub(
                                   static_cast<std::int64_t>(s->buffer_.size()),
                                   std::memory_order_relaxed) -
                               static_cast<std::int64_t>(s->buffer_.size());
    SNETSAC_INVARIANT(after >= 0, "session " << s->id()
                                             << " output account went negative "
                                                "discarding its buffer: "
                                             << after);
    s->buffer_.clear();
    resumed.swap(s->out_waiters_);
    flush_deferred = s->parked_.load(std::memory_order_relaxed) > 0;
  }
  out_cv_.notify_all();
  // Wake injects blocked on staging credit; they observe errored() and
  // rethrow instead of hanging on a session that will never drain.
  {
    const MutexLock lock(in_mu_);
    ++in_credit_epoch_;
  }
  in_cv_.notify_all();
  for (Entity* e : resumed) {
    e->poke();
  }
  if (flush_deferred) {
    out_entity_->poke();  // deferred records drain into the drop path
  }
  dispatch_wake(s);  // the dispatcher drops the session's staged records
  poke_sync_entities();  // evict any slots the dead session left behind
}

void Network::poke_sync_entities() {
  std::vector<Entity*> cells;
  {
    const MutexLock lock(reg_mu_);
    cells = sync_entities_;
  }
  for (Entity* e : cells) {
    e->poke();
  }
}

void Network::port_release(SessionState& s) {
  port_close(s);  // idempotent; decrements open_sessions_ once
  const std::uint32_t id = s.id();
  s.abandoned_.store(true, std::memory_order_release);
  // Lock order: dispatch_mu_ before out_mu_ (ranks 10 < 20). A session
  // still on the dispatcher's radar must not be reclaimed under it;
  // listed_ implies staged records in every steady state (and a
  // transiently listed empty session merely defers reclamation to network
  // teardown).
  bool listed;
  {
    const MutexLock lock(dispatch_mu_);
    s.assert_dispatch_locked();
    listed = s.listed_;
  }
  std::vector<Entity*> resumed;
  bool reclaimed = false;
  bool flush_deferred = false;
  {
    const MutexLock lock(out_mu_);
    s.assert_output_locked();
    s.out_account_.fetch_sub(static_cast<std::int64_t>(s.buffer_.size()),
                             std::memory_order_relaxed);
    s.buffer_.clear();  // unconsumed output is discarded
    resumed.swap(s.out_waiters_);
    flush_deferred = s.parked_.load(std::memory_order_relaxed) > 0;
    // Eager reclamation is only safe while the interior-cap machinery is
    // off: un-throttle and fail-fast wakes (dispatch_wake from
    // interior_release / spill_session / fail_session) cache the raw
    // session pointer beyond the record lifetime that normally guards
    // it, so with det_capacity > 0 a released state persists until
    // network teardown instead (small, drained, harmless).
    if (opts_.det_capacity == 0 && !listed &&
        s.live_.load(std::memory_order_acquire) == 0) {
      // Fully drained: reclaim. live == 0 guarantees no record carries
      // the pointer and no consumer will touch the state again (see
      // live_sub); nothing is staged (staged records are live) and the
      // dispatcher has let go.
      sessions_.erase(id);  // frees s — do not touch it below
      reclaimed = true;
      if (default_session_.load(std::memory_order_relaxed) == &s) {
        default_session_.store(nullptr, std::memory_order_release);
      }
    }
    // Else: records still in flight keep the state alive; they drain
    // into the abandoned-drop path and the small state persists until
    // network teardown.
  }
  out_cv_.notify_all();
  for (Entity* e : resumed) {
    e->poke();
  }
  if (!reclaimed) {
    if (flush_deferred) {
      out_entity_->poke();  // deferred records drain into the drop path
    }
    dispatch_wake(&s);  // the dispatcher drops any staged records
    poke_sync_entities();  // evict any slots the released session holds
  }
}

void Network::fail(std::exception_ptr err) {
  {
    const MutexLock lock(out_mu_);
    if (!error_) {
      error_ = err;
    }
  }
  failed_.store(true, std::memory_order_release);
  out_cv_.notify_all();
  // Wake producers blocked on staging credit (see port_inject): a failed
  // pipeline may never drain, and they must observe the error.
  {
    const MutexLock lock(in_mu_);
    ++in_credit_epoch_;
  }
  in_cv_.notify_all();
}

// ---------------------------------------------------- protocol invariants

void Network::check_protocol_invariants(bool expect_quiescent) const {
  using snetsac::runtime::invariant_failure;
  const std::int64_t live = live_.load(std::memory_order_acquire);
  const std::int64_t open = open_sessions_.load(std::memory_order_acquire);
  if (live < 0) {
    invariant_failure("live-record counter non-negative",
                      "network live counter is " + std::to_string(live));
  }
  if (open < 0) {
    invariant_failure("open-session counter non-negative",
                      "open_sessions is " + std::to_string(open));
  }
  if (expect_quiescent && (live != 0 || open != 0)) {
    invariant_failure(
        "quiescence only at true zero",
        "expected a quiescent network but live=" + std::to_string(live) +
            " open_sessions=" + std::to_string(open));
  }
  {
    const MutexLock lock(out_mu_);
    for (const auto& [id, state] : sessions_) {
      state->assert_output_locked();
      const std::string where = "session " + std::to_string(id) + ": ";
      const std::int64_t account =
          state->out_account_.load(std::memory_order_acquire);
      const std::int64_t parked = state->parked_.load(std::memory_order_acquire);
      const std::int64_t slive = state->live_.load(std::memory_order_acquire);
      const std::int64_t interior =
          state->interior_.load(std::memory_order_acquire);
      const auto buffered = static_cast<std::int64_t>(state->buffer_.size());
      if (slive < 0) {
        invariant_failure("live-record counter non-negative",
                          where + "live=" + std::to_string(slive));
      }
      if (interior < 0) {
        invariant_failure("interior (det/sync) account non-negative",
                          where + "interior=" + std::to_string(interior));
      }
      if (parked < 0) {
        invariant_failure("parked (deferred output) counter non-negative",
                          where + "parked=" + std::to_string(parked));
      }
      if (account < 0) {
        invariant_failure("output credit account non-negative",
                          where + "account=" + std::to_string(account));
      }
      // The conservation law of the output credit protocol: every charge
      // against the account is either a buffered record awaiting the
      // client or a record parked (deferred) at the output entity. Holds
      // under out_mu_ at every instant — all three quantities mutate in
      // the same critical sections — including for abandoned/errored
      // sessions (their discard paths retire buffer and park charges
      // symmetrically).
      if (account != buffered + parked) {
        invariant_failure(
            "output credit conservation (account == buffered + parked)",
            where + "account=" + std::to_string(account) + " buffered=" +
                std::to_string(buffered) + " parked=" + std::to_string(parked));
      }
      if (expect_quiescent && slive != 0) {
        invariant_failure("quiescence only at true zero",
                          where + "live=" + std::to_string(slive) +
                              " in a supposedly quiescent network");
      }
      // Lost-wakeup law: a credit waiter registered on a staging queue
      // that has drained to (or below) the release watermark was never
      // notified — the wakeup its registration guaranteed is gone. Valid
      // at safe points only: mid-drain the collector has not fired yet.
      if (state->staging_.lost_wakeup_suspected()) {
        invariant_failure(
            "no lost wakeup on staging credit",
            where + std::to_string(state->staging_.waiter_count()) +
                " credit waiter(s) registered below the release watermark");
      }
    }
  }
  // Same lost-wakeup law for the interior inbox credit: a producer parked
  // on a consumer's inbox that has drained below the watermark will never
  // be poked again.
  std::vector<Entity*> ents;
  {
    const MutexLock lock(reg_mu_);
    ents.reserve(entities_.size());
    for (const auto& e : entities_) {
      ents.push_back(e.get());
    }
  }
  for (const Entity* e : ents) {
    if (e->inbox_lost_wakeup_suspected()) {
      invariant_failure("no lost wakeup on inbox credit",
                        "entity " + e->name() +
                            ": producer(s) parked below the release watermark");
    }
  }
}

void Network::trace_record(const Entity& target, const Record& r) {
  opts_.trace(target.name(), r);
}

Entity* Network::adopt(std::unique_ptr<Entity> entity) {
  const MutexLock lock(reg_mu_);
  entities_.push_back(std::move(entity));
  return entities_.back().get();
}

Entity* Network::instantiate(const Net& node, Entity* successor,
                             const std::string& prefix) {
  using detail::BoxEntity;
  using detail::DetCollectorEntity;
  using detail::DetEntryEntity;
  using detail::FilterEntity;
  using detail::ParallelEntity;
  using detail::SplitEntity;
  using detail::StarStageEntity;
  using detail::SyncEntity;

  switch (node->kind) {
    case NetNode::Kind::Box:
      return adopt(std::make_unique<BoxEntity>(*this, prefix + "/box:" + node->name,
                                               node, successor));
    case NetNode::Kind::Filter:
      return adopt(
          std::make_unique<FilterEntity>(*this, prefix + "/filter", node, successor));
    case NetNode::Kind::Serial: {
      Entity* right = instantiate(node->right, successor, prefix);
      return instantiate(node->left, right, prefix);
    }
    case NetNode::Kind::Parallel: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(adopt(
            std::make_unique<DetCollectorEntity>(*this, prefix + "/par-coll",
                                                 successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/par-entry",
                                                   coll->scope())));
      }
      // Nested non-deterministic parallels flatten into one N-ary
      // dispatcher: best-match over the union of branches picks the same
      // winner as the binary cascade (a combined branch's score is the max
      // over its variants, and argmax is associative), so `A | B | C`
      // costs one routing decision and one hop instead of a chain of
      // binary ones. Det parallels keep their own entry/collector bracket
      // and are instantiated as opaque branches.
      // Scalar ablation mode keeps the binary dispatcher cascade the
      // pre-batch runtime built.
      std::vector<ParallelEntity::Branch> branches;
      const std::function<void(const Net&, const std::string&)> add_branch =
          [&](const Net& n, const std::string& pfx) {
            if (n->kind == NetNode::Kind::Parallel && !n->det &&
                opts_.batching) {
              add_branch(n->left, pfx + "/parL");
              add_branch(n->right, pfx + "/parR");
              return;
            }
            branches.push_back(ParallelEntity::Branch{
                required_input(n), instantiate(n, merge_target, pfx)});
          };
      add_branch(node->left, prefix + "/parL");
      add_branch(node->right, prefix + "/parR");
      Entity* dispatcher = adopt(std::make_unique<ParallelEntity>(
          *this, prefix + "/par", std::move(branches)));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Star: {
      Entity* exit_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/star-coll",
                                                       successor)));
        exit_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/star-entry",
                                                   coll->scope())));
      }
      Entity* stage0 = adopt(std::make_unique<StarStageEntity>(
          *this, prefix + "/star", node, exit_target, 0));
      if (det_entry != nullptr) {
        det_entry->set_target(stage0);
        return det_entry;
      }
      return stage0;
    }
    case NetNode::Kind::Split: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/split-coll",
                                                       successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/split-entry",
                                                   coll->scope())));
      }
      Entity* dispatcher = adopt(std::make_unique<SplitEntity>(
          *this, prefix + "/split", node, merge_target));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Sync: {
      Entity* cell = adopt(
          std::make_unique<SyncEntity>(*this, prefix + "/sync", node, successor));
      {
        const MutexLock lock(reg_mu_);
        sync_entities_.push_back(cell);
      }
      return cell;
    }
  }
  throw std::logic_error("corrupt topology node");
}

}  // namespace snet
