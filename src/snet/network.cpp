#include "snet/network.hpp"

#include <algorithm>

#include "snet/entities.hpp"

namespace snet {

std::size_t NetworkStats::count_containing(std::string_view needle) const {
  return static_cast<std::size_t>(
      std::count_if(entities.begin(), entities.end(), [&](const EntityStats& e) {
        return e.name.find(needle) != std::string::npos;
      }));
}

std::uint64_t NetworkStats::records_in_containing(std::string_view needle) const {
  std::uint64_t total = 0;
  for (const auto& e : entities) {
    if (e.name.find(needle) != std::string::npos) {
      total += e.records_in;
    }
  }
  return total;
}

Network::Network(Net topology, Options opts)
    : topology_(std::move(topology)), opts_(std::move(opts)) {
  if (!topology_) {
    throw std::invalid_argument("null topology");
  }
  signature_ = infer(topology_);  // always infer; doubles as a null check
  if (!opts_.type_check) {
    // Inference already ran; the flag only controls whether a mismatch is
    // fatal. Keep it simple: inference throws either way. (Documented.)
  }
  // All networks (and all with-loops) share the process-wide executor;
  // opts_.workers survives as this network's concurrency cap.
  sched_ = std::make_unique<Scheduler>(snetsac::runtime::Executor::global(),
                                       opts_.workers, opts_.quantum);
  Entity* out = adopt(std::make_unique<detail::OutputEntity>(*this));
  entry_ = instantiate(topology_, out, "net");
}

Network::~Network() {
  // Stop workers before tearing down entities they might touch.
  sched_->stop();
}

SessionState* Network::new_session_state(std::uint32_t id) {
  auto state = std::make_unique<SessionState>(*this, id);
  SessionState* raw = state.get();
  {
    const std::lock_guard lock(out_mu_);
    sessions_.emplace(id, std::move(state));
    ++sessions_opened_;
  }
  open_sessions_.fetch_add(1, std::memory_order_acq_rel);
  return raw;
}

SessionState* Network::default_state() {
  // The default session (id 0) backs input()/output() and the deprecated
  // single-funnel shims. Created lazily so a client that only ever
  // open_session()s never owes it a close before wait().
  SessionState* s = default_session_.load(std::memory_order_acquire);
  if (s != nullptr) {
    return s;
  }
  auto state = std::make_unique<SessionState>(*this, 0);
  {
    const std::lock_guard lock(out_mu_);
    s = default_session_.load(std::memory_order_relaxed);
    if (s != nullptr) {
      return s;  // another thread won the race
    }
    s = state.get();
    sessions_.emplace(0U, std::move(state));
    ++sessions_opened_;
    default_session_.store(s, std::memory_order_release);
  }
  open_sessions_.fetch_add(1, std::memory_order_acq_rel);
  return s;
}

InputPort& Network::input() { return default_state()->input(); }

OutputPort& Network::output() { return default_state()->output(); }

Session Network::open_session() {
  return Session(
      *this,
      *new_session_state(next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

void Network::port_inject(SessionState& s, Record r) {
  if (s.closed_.load(std::memory_order_acquire)) {
    throw std::logic_error("inject after close_input");
  }
  r.set_session(&s);
  injected_.fetch_add(1, std::memory_order_relaxed);
  // The live increment precedes visibility downstream — a blocked inject
  // holds its record "live", so the network cannot quiesce under it.
  live_add(&s, 1);
  Message m = Message::record(std::move(r));
  if (entry_->try_deliver(m)) {
    return;
  }
  // Bounded entry inbox is full: wait for credit. On an executor worker
  // (a box injecting into a nested network) help_until executes queued
  // tasks instead of blocking the pool slot. A network failure wakes the
  // wait too (fail() bumps the epoch): a dead pipeline may never release
  // entry credit, so a blocked inject must rethrow rather than hang.
  auto& exec = snetsac::runtime::Executor::global();
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) {
      live_sub(&s, 1);  // the record never became visible downstream
      std::exception_ptr err;
      {
        const std::lock_guard lock(out_mu_);
        err = error_;
      }
      std::rethrow_exception(err);
    }
    std::uint64_t epoch;
    {
      const std::lock_guard lock(in_mu_);
      epoch = in_credit_epoch_;
    }
    const bool registered = entry_->await_inbox_credit_cb([this] {
      {
        const std::lock_guard lock(in_mu_);
        ++in_credit_epoch_;
      }
      in_cv_.notify_all();
    });
    if (registered) {
      exec.help_until(in_mu_, in_cv_, [&] { return in_credit_epoch_ != epoch; });
    }
    if (entry_->try_deliver(m)) {
      return;
    }
  }
}

bool Network::port_try_inject(SessionState& s, Record& r) {
  if (s.closed_.load(std::memory_order_acquire)) {
    throw std::logic_error("inject after close_input");
  }
  r.set_session(&s);
  live_add(&s, 1);
  Message m = Message::record(std::move(r));
  if (entry_->try_deliver(m)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  live_sub(&s, 1);
  r = std::move(m.rec);  // hand the record back untouched
  return false;
}

void Network::port_close(SessionState& s) {
  if (!s.closed_.exchange(true, std::memory_order_acq_rel)) {
    open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // A session that was already drained must wake its output waiters (and
  // wait() waiters watching for whole-network quiescence).
  {
    const std::lock_guard lock(out_mu_);
  }
  out_cv_.notify_all();
}

Record Network::pop_output_locked(SessionState& s,
                                  std::unique_lock<std::mutex>& lock) {
  Record r = std::move(s.buffer_.front());
  s.buffer_.pop_front();
  std::vector<Entity*> resumed;
  if (!s.out_waiters_.empty() &&
      (opts_.output_capacity == 0 ||
       s.buffer_.size() <= opts_.output_capacity / 2)) {
    resumed.swap(s.out_waiters_);
  }
  lock.unlock();
  for (Entity* e : resumed) {
    e->resume_from_stall();
  }
  return r;
}

std::optional<Record> Network::port_next(SessionState& s) {
  auto& exec = snetsac::runtime::Executor::global();
  const auto session_done = [&] {
    return s.closed_.load(std::memory_order_acquire) &&
           s.live_.load(std::memory_order_acquire) == 0;
  };
  const auto ready = [&] {
    return error_ || !s.buffer_.empty() || session_done();
  };
  if (!exec.on_worker_thread()) {
    // Client thread: classic single-lock wait-and-pop.
    std::unique_lock lock(out_mu_);
    out_cv_.wait(lock, ready);
    if (error_) {
      std::rethrow_exception(error_);
    }
    if (!s.buffer_.empty()) {
      return pop_output_locked(s, lock);
    }
    return std::nullopt;
  }
  // Executor worker (a box draining a nested network): wait cooperatively —
  // execute queued tasks, including this network's own quanta, instead of
  // blocking the pool slot. Loops because the lock is released between the
  // wait and the pop: a concurrent consumer may take the output we were
  // woken for.
  for (;;) {
    exec.help_until(out_mu_, out_cv_, ready);
    std::unique_lock lock(out_mu_);
    if (error_) {
      std::rethrow_exception(error_);
    }
    if (!s.buffer_.empty()) {
      return pop_output_locked(s, lock);
    }
    if (session_done()) {
      return std::nullopt;
    }
  }
}

void Network::port_on_output(SessionState& s, std::function<void(Record)> callback) {
  // Flush-then-install loop: the sink is only installed once the buffer
  // is observed empty under the lock, so a record pushed concurrently is
  // either buffered (and flushed by a later iteration, in order) or
  // delivered directly strictly after the flush completed — the callback
  // sees every record exactly once, in session order, serialised.
  std::vector<Entity*> resumed;
  for (;;) {
    std::deque<Record> pending;
    {
      const std::lock_guard lock(out_mu_);
      if (s.sink_) {
        // Install-once: push_output calls through the stored sink
        // without copying it, which is only safe if it never changes.
        throw std::logic_error("on_output already installed for this session");
      }
      if (s.buffer_.empty()) {
        s.sink_ = std::move(callback);
        resumed.swap(s.out_waiters_);
        break;
      }
      pending.swap(s.buffer_);
    }
    for (auto& r : pending) {
      callback(std::move(r));
    }
  }
  for (Entity* e : resumed) {
    e->resume_from_stall();
  }
}

// ------------------------------------------ deprecated single-funnel shims

void Network::inject(Record r) { port_inject(*default_state(), std::move(r)); }

void Network::close_input() { port_close(*default_state()); }

std::optional<Record> Network::next_output() {
  return port_next(*default_state());
}

std::vector<Record> Network::collect() {
  SessionState* s = default_state();
  port_close(*s);
  std::vector<Record> all;
  while (auto r = port_next(*s)) {
    all.push_back(std::move(*r));
  }
  return all;
}

// -------------------------------------------------------------------------

void Network::wait() {
  snetsac::runtime::Executor::global().help_until(
      out_mu_, out_cv_, [&] { return error_ || done_locked(); });
  std::unique_lock lock(out_mu_);
  if (error_) {
    std::rethrow_exception(error_);
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  {
    const std::lock_guard lock(reg_mu_);
    s.entities.reserve(entities_.size());
    for (const auto& e : entities_) {
      s.entities.push_back(EntityStats{e->name(), e->records_in(), e->records_out()});
    }
  }
  s.injected = injected_.load();
  {
    const std::lock_guard lock(out_mu_);
    s.produced = produced_;
    s.sessions = sessions_opened_;  // cumulative, survives reclamation
  }
  s.peak_live = peak_live_.load();
  s.quanta = sched_->quanta_executed();
  s.steals = sched_->steals();
  s.suspensions = suspensions_.load(std::memory_order_relaxed);
  return s;
}

void Network::live_add(SessionState* session, std::int64_t n) {
  if (session != nullptr) {
    session->live_.fetch_add(n, std::memory_order_acq_rel);
  }
  const std::int64_t now = live_.fetch_add(n, std::memory_order_acq_rel) + n;
  std::int64_t peak = peak_live_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_live_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void Network::live_sub(SessionState* session, std::int64_t n) {
  bool session_drained = false;
  if (session != nullptr) {
    // The decrement to zero is the *last* touch of the session state: a
    // drained session may be reclaimed by a concurrent handle release
    // the moment live hits 0, so no closed_/etc. reads after fetch_sub.
    // The notify below is unconditional on drain-to-zero; waiters
    // re-check closed/live under out_mu_ (spurious wakeups are cheap,
    // and the close path notifies too — between them every transition
    // of "closed && live == 0" is covered).
    session_drained = session->live_.fetch_sub(n, std::memory_order_acq_rel) - n == 0;
  }
  const std::int64_t now = live_.fetch_sub(n, std::memory_order_acq_rel) - n;
  const bool network_drained =
      now == 0 && open_sessions_.load(std::memory_order_acquire) == 0;
  if (session_drained || network_drained) {
    const std::lock_guard lock(out_mu_);
    out_cv_.notify_all();
  }
}

bool Network::push_output(Record r) {
  SessionState* s = r.session_state();
  if (s == nullptr) {
    s = default_state();  // records that never crossed a port
  }
  bool has_sink = false;
  bool congested = false;
  {
    const std::lock_guard lock(out_mu_);
    if (s->abandoned_) {
      // Released mid-flight: nobody can ever consume this session's
      // output, so drop it rather than congest the shared output entity.
      return true;
    }
    ++produced_;
    ++s->produced_;
    has_sink = static_cast<bool>(s->sink_);
    if (!has_sink) {
      s->buffer_.push_back(std::move(r));
      congested = opts_.output_capacity != 0 &&
                  s->buffer_.size() >= opts_.output_capacity;
    }
  }
  if (has_sink) {
    // Invoked through the stored sink outside the lock — safe without a
    // per-record copy because a sink is install-once (port_on_output
    // rejects re-installation), the install was observed under out_mu_,
    // and the record in hand keeps the session state alive (live > 0
    // until the output entity's consume decrement). Serialised: only the
    // single worker currently running the output entity reaches here.
    s->sink_(std::move(r));
  } else {
    out_cv_.notify_all();
  }
  return !congested;
}

bool Network::await_output_credit(std::uint32_t session_id, Entity* producer) {
  const std::lock_guard lock(out_mu_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return false;  // session reclaimed since the push: credit forever
  }
  SessionState& s = *it->second;
  if (opts_.output_capacity == 0 || s.abandoned_ || s.sink_ ||
      s.buffer_.size() < opts_.output_capacity) {
    return false;
  }
  s.out_waiters_.push_back(producer);
  return true;
}

void Network::port_release(SessionState& s) {
  port_close(s);  // idempotent; decrements open_sessions_ once
  const std::uint32_t id = s.id();
  std::vector<Entity*> resumed;
  {
    const std::lock_guard lock(out_mu_);
    s.abandoned_ = true;
    s.buffer_.clear();  // unconsumed output is discarded
    resumed.swap(s.out_waiters_);
    if (s.live_.load(std::memory_order_acquire) == 0) {
      // Fully drained: reclaim. live == 0 guarantees no record carries
      // the pointer and no consumer will touch the state again (see
      // live_sub); stall gates re-resolve by id under this same lock.
      sessions_.erase(id);  // frees s — do not touch it below
      if (default_session_.load(std::memory_order_relaxed) == &s) {
        default_session_.store(nullptr, std::memory_order_release);
      }
    }
    // Else: records still in flight keep the state alive; they drain
    // into the abandoned-drop path above and the small state persists
    // until network teardown.
  }
  for (Entity* e : resumed) {
    e->resume_from_stall();
  }
}

void Network::fail(std::exception_ptr err) {
  {
    const std::lock_guard lock(out_mu_);
    if (!error_) {
      error_ = err;
    }
  }
  failed_.store(true, std::memory_order_release);
  out_cv_.notify_all();
  // Wake producers blocked on entry credit (see port_inject): a failed
  // pipeline may never drain, and they must observe the error.
  {
    const std::lock_guard lock(in_mu_);
    ++in_credit_epoch_;
  }
  in_cv_.notify_all();
}

void Network::trace_record(const Entity& target, const Record& r) {
  opts_.trace(target.name(), r);
}

Entity* Network::adopt(std::unique_ptr<Entity> entity) {
  const std::lock_guard lock(reg_mu_);
  entities_.push_back(std::move(entity));
  return entities_.back().get();
}

Entity* Network::instantiate(const Net& node, Entity* successor,
                             const std::string& prefix) {
  using detail::BoxEntity;
  using detail::DetCollectorEntity;
  using detail::DetEntryEntity;
  using detail::FilterEntity;
  using detail::ParallelEntity;
  using detail::SplitEntity;
  using detail::StarStageEntity;
  using detail::SyncEntity;

  switch (node->kind) {
    case NetNode::Kind::Box:
      return adopt(std::make_unique<BoxEntity>(*this, prefix + "/box:" + node->name,
                                               node, successor));
    case NetNode::Kind::Filter:
      return adopt(
          std::make_unique<FilterEntity>(*this, prefix + "/filter", node, successor));
    case NetNode::Kind::Serial: {
      Entity* right = instantiate(node->right, successor, prefix);
      return instantiate(node->left, right, prefix);
    }
    case NetNode::Kind::Parallel: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(adopt(
            std::make_unique<DetCollectorEntity>(*this, prefix + "/par-coll",
                                                 successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/par-entry",
                                                   coll->scope())));
      }
      std::vector<ParallelEntity::Branch> branches;
      branches.push_back(ParallelEntity::Branch{
          required_input(node->left),
          instantiate(node->left, merge_target, prefix + "/parL")});
      branches.push_back(ParallelEntity::Branch{
          required_input(node->right),
          instantiate(node->right, merge_target, prefix + "/parR")});
      Entity* dispatcher = adopt(std::make_unique<ParallelEntity>(
          *this, prefix + "/par", std::move(branches)));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Star: {
      Entity* exit_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/star-coll",
                                                       successor)));
        exit_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/star-entry",
                                                   coll->scope())));
      }
      Entity* stage0 = adopt(std::make_unique<StarStageEntity>(
          *this, prefix + "/star", node, exit_target, 0));
      if (det_entry != nullptr) {
        det_entry->set_target(stage0);
        return det_entry;
      }
      return stage0;
    }
    case NetNode::Kind::Split: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/split-coll",
                                                       successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/split-entry",
                                                   coll->scope())));
      }
      Entity* dispatcher = adopt(std::make_unique<SplitEntity>(
          *this, prefix + "/split", node, merge_target));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Sync:
      return adopt(
          std::make_unique<SyncEntity>(*this, prefix + "/sync", node, successor));
  }
  throw std::logic_error("corrupt topology node");
}

}  // namespace snet
