#include "snet/network.hpp"

#include <algorithm>

#include "snet/entities.hpp"

namespace snet {

std::size_t NetworkStats::count_containing(std::string_view needle) const {
  return static_cast<std::size_t>(
      std::count_if(entities.begin(), entities.end(), [&](const EntityStats& e) {
        return e.name.find(needle) != std::string::npos;
      }));
}

std::uint64_t NetworkStats::records_in_containing(std::string_view needle) const {
  std::uint64_t total = 0;
  for (const auto& e : entities) {
    if (e.name.find(needle) != std::string::npos) {
      total += e.records_in;
    }
  }
  return total;
}

Network::Network(Net topology, Options opts)
    : topology_(std::move(topology)), opts_(std::move(opts)) {
  if (!topology_) {
    throw std::invalid_argument("null topology");
  }
  signature_ = infer(topology_);  // always infer; doubles as a null check
  if (!opts_.type_check) {
    // Inference already ran; the flag only controls whether a mismatch is
    // fatal. Keep it simple: inference throws either way. (Documented.)
  }
  // All networks (and all with-loops) share the process-wide executor;
  // opts_.workers survives as this network's concurrency cap.
  sched_ = std::make_unique<Scheduler>(snetsac::runtime::Executor::global(),
                                       opts_.workers, opts_.quantum);
  Entity* out = adopt(std::make_unique<detail::OutputEntity>(*this));
  entry_ = instantiate(topology_, out, "net");
}

Network::~Network() {
  // Stop workers before tearing down entities they might touch.
  sched_->stop();
}

void Network::inject(Record r) {
  if (closed_.load()) {
    throw std::logic_error("inject after close_input");
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  live_add(1);
  entry_->deliver(Message::record(std::move(r)));
}

void Network::close_input() {
  closed_.store(true);
  // A network that was already quiescent must wake waiters.
  out_cv_.notify_all();
}

std::optional<Record> Network::next_output() {
  auto& exec = snetsac::runtime::Executor::global();
  const auto ready = [&] { return error_ || !outputs_.empty() || done_locked(); };
  if (!exec.on_worker_thread()) {
    // Client thread: classic single-lock wait-and-pop.
    std::unique_lock lock(out_mu_);
    out_cv_.wait(lock, ready);
    if (error_) {
      std::rethrow_exception(error_);
    }
    if (!outputs_.empty()) {
      Record r = std::move(outputs_.front());
      outputs_.pop_front();
      return r;
    }
    return std::nullopt;
  }
  // Executor worker (a box running a nested network): wait cooperatively —
  // execute queued tasks, including this network's own quanta, instead of
  // blocking the pool slot. Loops because the lock is released between the
  // wait and the pop: a concurrent consumer may take the output we were
  // woken for.
  for (;;) {
    exec.help_until(out_mu_, out_cv_, ready);
    std::unique_lock lock(out_mu_);
    if (error_) {
      std::rethrow_exception(error_);
    }
    if (!outputs_.empty()) {
      Record r = std::move(outputs_.front());
      outputs_.pop_front();
      return r;
    }
    if (done_locked()) {
      return std::nullopt;
    }
  }
}

std::vector<Record> Network::collect() {
  if (!closed_.load()) {
    close_input();
  }
  std::vector<Record> all;
  while (auto r = next_output()) {
    all.push_back(std::move(*r));
  }
  return all;
}

void Network::wait() {
  snetsac::runtime::Executor::global().help_until(
      out_mu_, out_cv_, [&] { return error_ || done_locked(); });
  std::unique_lock lock(out_mu_);
  if (error_) {
    std::rethrow_exception(error_);
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  {
    const std::lock_guard lock(reg_mu_);
    s.entities.reserve(entities_.size());
    for (const auto& e : entities_) {
      s.entities.push_back(EntityStats{e->name(), e->records_in(), e->records_out()});
    }
  }
  s.injected = injected_.load();
  {
    const std::lock_guard lock(out_mu_);
    s.produced = produced_;
  }
  s.peak_live = peak_live_.load();
  s.quanta = sched_->quanta_executed();
  s.steals = sched_->steals();
  return s;
}

void Network::live_add(std::int64_t n) {
  const std::int64_t now = live_.fetch_add(n, std::memory_order_acq_rel) + n;
  std::int64_t peak = peak_live_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_live_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void Network::live_sub(std::int64_t n) {
  const std::int64_t now = live_.fetch_sub(n, std::memory_order_acq_rel) - n;
  if (now == 0 && closed_.load()) {
    const std::lock_guard lock(out_mu_);
    out_cv_.notify_all();
  }
}

void Network::push_output(Record r) {
  {
    const std::lock_guard lock(out_mu_);
    outputs_.push_back(std::move(r));
    ++produced_;
  }
  out_cv_.notify_all();
}

void Network::fail(std::exception_ptr err) {
  {
    const std::lock_guard lock(out_mu_);
    if (!error_) {
      error_ = err;
    }
  }
  out_cv_.notify_all();
}

void Network::trace_record(const Entity& target, const Record& r) {
  opts_.trace(target.name(), r);
}

Entity* Network::adopt(std::unique_ptr<Entity> entity) {
  const std::lock_guard lock(reg_mu_);
  entities_.push_back(std::move(entity));
  return entities_.back().get();
}

Entity* Network::instantiate(const Net& node, Entity* successor,
                             const std::string& prefix) {
  using detail::BoxEntity;
  using detail::DetCollectorEntity;
  using detail::DetEntryEntity;
  using detail::FilterEntity;
  using detail::ParallelEntity;
  using detail::SplitEntity;
  using detail::StarStageEntity;
  using detail::SyncEntity;

  switch (node->kind) {
    case NetNode::Kind::Box:
      return adopt(std::make_unique<BoxEntity>(*this, prefix + "/box:" + node->name,
                                               node, successor));
    case NetNode::Kind::Filter:
      return adopt(
          std::make_unique<FilterEntity>(*this, prefix + "/filter", node, successor));
    case NetNode::Kind::Serial: {
      Entity* right = instantiate(node->right, successor, prefix);
      return instantiate(node->left, right, prefix);
    }
    case NetNode::Kind::Parallel: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(adopt(
            std::make_unique<DetCollectorEntity>(*this, prefix + "/par-coll",
                                                 successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/par-entry",
                                                   coll->scope())));
      }
      std::vector<ParallelEntity::Branch> branches;
      branches.push_back(ParallelEntity::Branch{
          required_input(node->left),
          instantiate(node->left, merge_target, prefix + "/parL")});
      branches.push_back(ParallelEntity::Branch{
          required_input(node->right),
          instantiate(node->right, merge_target, prefix + "/parR")});
      Entity* dispatcher = adopt(std::make_unique<ParallelEntity>(
          *this, prefix + "/par", std::move(branches)));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Star: {
      Entity* exit_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/star-coll",
                                                       successor)));
        exit_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/star-entry",
                                                   coll->scope())));
      }
      Entity* stage0 = adopt(std::make_unique<StarStageEntity>(
          *this, prefix + "/star", node, exit_target, 0));
      if (det_entry != nullptr) {
        det_entry->set_target(stage0);
        return det_entry;
      }
      return stage0;
    }
    case NetNode::Kind::Split: {
      Entity* merge_target = successor;
      DetEntryEntity* det_entry = nullptr;
      if (node->det) {
        auto* coll = static_cast<DetCollectorEntity*>(
            adopt(std::make_unique<DetCollectorEntity>(*this, prefix + "/split-coll",
                                                       successor)));
        merge_target = coll;
        det_entry = static_cast<DetEntryEntity*>(
            adopt(std::make_unique<DetEntryEntity>(*this, prefix + "/split-entry",
                                                   coll->scope())));
      }
      Entity* dispatcher = adopt(std::make_unique<SplitEntity>(
          *this, prefix + "/split", node, merge_target));
      if (det_entry != nullptr) {
        det_entry->set_target(dispatcher);
        return det_entry;
      }
      return dispatcher;
    }
    case NetNode::Kind::Sync:
      return adopt(
          std::make_unique<SyncEntity>(*this, prefix + "/sync", node, successor));
  }
  throw std::logic_error("corrupt topology node");
}

}  // namespace snet
