#include "snet/lang.hpp"

#include "snet/parse.hpp"

namespace snet::lang {

using text::Cursor;
using text::Tok;

Bindings& Bindings::bind_box(std::string name, BoxFn fn) {
  boxes_[std::move(name)] = std::move(fn);
  return *this;
}

Bindings& Bindings::bind_net(std::string name, Net net) {
  nets_[std::move(name)] = std::move(net);
  return *this;
}

const BoxFn* Bindings::find_box(const std::string& name) const {
  const auto it = boxes_.find(name);
  return it == boxes_.end() ? nullptr : &it->second;
}

const Net* Bindings::find_net(const std::string& name) const {
  const auto it = nets_.find(name);
  return it == nets_.end() ? nullptr : &it->second;
}

namespace {

/// Elaborating parser: resolves names against local declarations first,
/// then the caller's bindings.
class Parser {
 public:
  Parser(Cursor& cur, const Bindings& bindings) : cur_(cur), bindings_(bindings) {}

  ParsedNetwork program() {
    ParsedNetwork out;
    if (cur_.at(Tok::KwNet)) {
      out = netdef();
    } else {
      out.name = "";
      out.topology = expr();
    }
    if (!cur_.done()) {
      throw LangError("trailing input after network program (offset " +
                      std::to_string(cur_.peek().pos) + ")");
    }
    return out;
  }

 private:
  ParsedNetwork netdef() {
    cur_.expect(Tok::KwNet, "network definition");
    const std::string name = cur_.expect(Tok::Ident, "network name").text;
    cur_.expect(Tok::LBrace, "network body");
    // Local scope: declarations shadow outer bindings.
    std::map<std::string, Net> saved = locals_;
    while (!cur_.at(Tok::KwConnect)) {
      if (cur_.at(Tok::KwBox)) {
        box_decl();
      } else if (cur_.at(Tok::KwNet)) {
        const ParsedNetwork sub = netdef();
        locals_[sub.name] = sub.topology;
      } else {
        throw LangError("expected 'box', 'net' or 'connect' in network body, found " +
                        text::tok_name(cur_.peek().kind) + " (offset " +
                        std::to_string(cur_.peek().pos) + ")");
      }
    }
    cur_.expect(Tok::KwConnect, "network body");
    Net topology = expr();
    cur_.expect(Tok::Semi, "connect clause");
    cur_.expect(Tok::RBrace, "network body");
    locals_ = std::move(saved);
    return ParsedNetwork{name, std::move(topology)};
  }

  void box_decl() {
    cur_.expect(Tok::KwBox, "box declaration");
    const std::string name = cur_.expect(Tok::Ident, "box name").text;
    cur_.expect(Tok::LParen, "box signature");
    Signature sig = parse::signature(cur_);
    cur_.expect(Tok::RParen, "box signature");
    cur_.expect(Tok::Semi, "box declaration");
    const BoxFn* fn = bindings_.find_box(name);
    if (fn == nullptr) {
      throw LangError("no implementation bound for box '" + name + "'");
    }
    locals_[name] = box(name, std::move(sig), *fn);
  }

  Net expr() {
    Net lhs = serial_expr();
    for (;;) {
      if (cur_.accept(Tok::BarBar)) {
        lhs = parallel(std::move(lhs), serial_expr());
      } else if (cur_.accept(Tok::Bar)) {
        lhs = parallel_det(std::move(lhs), serial_expr());
      } else {
        return lhs;
      }
    }
  }

  Net serial_expr() {
    Net lhs = postfix();
    while (cur_.accept(Tok::DotDot)) {
      lhs = serial(std::move(lhs), postfix());
    }
    return lhs;
  }

  Net postfix() {
    Net n = primary();
    for (;;) {
      if (cur_.accept(Tok::StarStar)) {
        n = star(std::move(n), parse::pattern(cur_));
      } else if (cur_.accept(Tok::Star)) {
        n = star_det(std::move(n), parse::pattern(cur_));
      } else if (cur_.accept(Tok::BangBang)) {
        n = split(std::move(n), cur_.expect(Tok::Tag, "replication tag").text);
      } else if (cur_.accept(Tok::Bang)) {
        n = split_det(std::move(n), cur_.expect(Tok::Tag, "replication tag").text);
      } else {
        return n;
      }
    }
  }

  Net primary() {
    if (cur_.at(Tok::Ident)) {
      const std::string name = cur_.advance().text;
      const auto it = locals_.find(name);
      if (it != locals_.end()) {
        return it->second;
      }
      if (const Net* n = bindings_.find_net(name)) {
        return *n;
      }
      throw LangError("unknown network operand '" + name +
                      "' (declare a box or bind a net)");
    }
    if (cur_.accept(Tok::LParen)) {
      Net n = expr();
      cur_.expect(Tok::RParen, "parenthesised network");
      return n;
    }
    if (cur_.accept(Tok::LBracket)) {
      if (cur_.accept(Tok::Bar)) {
        // Synchrocell [| {a}, {b} |]
        std::vector<Pattern> patterns;
        patterns.push_back(parse::pattern(cur_));
        while (cur_.accept(Tok::Comma)) {
          patterns.push_back(parse::pattern(cur_));
        }
        cur_.expect(Tok::Bar, "synchrocell");
        cur_.expect(Tok::RBracket, "synchrocell");
        return sync_patterns(std::move(patterns));
      }
      FilterSpec spec = parse::filter_body(cur_);
      cur_.expect(Tok::RBracket, "filter");
      return filter(std::move(spec));
    }
    throw LangError("expected a network operand, found " +
                    text::tok_name(cur_.peek().kind) + " (offset " +
                    std::to_string(cur_.peek().pos) + ")");
  }

  Cursor& cur_;
  const Bindings& bindings_;
  std::map<std::string, Net> locals_;
};

}  // namespace

ParsedNetwork parse_network_named(const std::string& source, const Bindings& bindings) {
  Cursor cur(text::tokenize(source));
  Parser parser(cur, bindings);
  return parser.program();
}

Net parse_network(const std::string& source, const Bindings& bindings) {
  return parse_network_named(source, bindings).topology;
}

}  // namespace snet::lang
