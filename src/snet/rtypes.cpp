#include "snet/rtypes.hpp"

#include <algorithm>
#include <sstream>

namespace snet {

namespace {
void sort_unique(std::vector<Label>& labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
}
}  // namespace

void RecordType::reintern() {
  const ShapeRef ref = ShapeRegistry::instance().intern(labels_);
  shape_ = ref.id;
  mask_ = ref.mask;
}

RecordType::RecordType(std::initializer_list<Label> labels) : labels_(labels) {
  sort_unique(labels_);
  reintern();
}

RecordType::RecordType(std::vector<Label> labels) : labels_(std::move(labels)) {
  sort_unique(labels_);
  reintern();
}

RecordType RecordType::of(std::initializer_list<std::string_view> fields,
                          std::initializer_list<std::string_view> tags) {
  std::vector<Label> labels;
  labels.reserve(fields.size() + tags.size());
  for (const auto name : fields) {
    labels.push_back(field_label(name));
  }
  for (const auto name : tags) {
    labels.push_back(tag_label(name));
  }
  return RecordType(std::move(labels));
}

bool RecordType::contains(Label label) const {
  return std::binary_search(labels_.begin(), labels_.end(), label);
}

bool RecordType::included_in(const RecordType& other) const {
  return std::includes(other.labels_.begin(), other.labels_.end(), labels_.begin(),
                       labels_.end());
}

void RecordType::add(Label label) {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) {
    labels_.insert(it, label);
    reintern();
  }
}

void RecordType::remove(Label label) {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) {
    labels_.erase(it);
    reintern();
  }
}

RecordType RecordType::union_with(const RecordType& other) const {
  std::vector<Label> out;
  out.reserve(labels_.size() + other.labels_.size());
  std::set_union(labels_.begin(), labels_.end(), other.labels_.begin(),
                 other.labels_.end(), std::back_inserter(out));
  return RecordType(std::move(out));
}

RecordType RecordType::minus(const RecordType& other) const {
  std::vector<Label> out;
  std::set_difference(labels_.begin(), labels_.end(), other.labels_.begin(),
                      other.labels_.end(), std::back_inserter(out));
  return RecordType(std::move(out));
}

std::string RecordType::to_string() const {
  // labels_ is ordered by (kind, interned id); ids reflect interning order,
  // which varies run to run. Display deterministically: fields before tags
  // (kind order), alphabetical within a kind.
  std::vector<Label> display = labels_;
  std::sort(display.begin(), display.end(), [](Label a, Label b) {
    if (a.kind != b.kind) {
      return a.kind < b.kind;
    }
    return label_name(a) < label_name(b);
  });
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto label : display) {
    os << (first ? "" : ", ") << label_display(label);
    first = false;
  }
  os << '}';
  return os.str();
}

RecordType type_of(const Record& r) { return RecordType(r.labels()); }

bool MultiType::subtype_of(const MultiType& super) const {
  return std::all_of(variants_.begin(), variants_.end(), [&](const RecordType& v) {
    return std::any_of(super.variants_.begin(), super.variants_.end(),
                       [&](const RecordType& w) { return v.subtype_of(w); });
  });
}

bool MultiType::accepts(const Record& r) const {
  return std::any_of(variants_.begin(), variants_.end(),
                     [&](const RecordType& v) { return v.matches(r); });
}

int MultiType::match_score(const Record& r) const {
  int best = -1;
  for (const auto& v : variants_) {
    if (v.matches(r)) {
      best = std::max(best, static_cast<int>(v.size()));
    }
  }
  return best;
}

int MultiType::match_score(const RecordType& v) const {
  int best = -1;
  for (const auto& w : variants_) {
    if (w.included_in(v)) {
      best = std::max(best, static_cast<int>(w.size()));
    }
  }
  return best;
}

MultiType MultiType::union_with(const MultiType& other) const {
  std::vector<RecordType> out = variants_;
  for (const auto& v : other.variants_) {
    if (std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  }
  return MultiType(std::move(out));
}

std::string MultiType::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& v : variants_) {
    os << (first ? "" : " | ") << v.to_string();
    first = false;
  }
  return os.str();
}

}  // namespace snet
