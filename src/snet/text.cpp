#include "snet/text.hpp"

#include <cctype>
#include <unordered_map>

namespace snet::text {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"if", Tok::KwIf},       {"box", Tok::KwBox},   {"net", Tok::KwNet},
      {"connect", Tok::KwConnect}, {"filter", Tok::KwFilter}, {"sync", Tok::KwSync},
  };
  return kw;
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  const auto push = [&](Tok t, std::size_t pos, std::string text = {},
                        std::int64_t v = 0) {
    out.push_back(Token{t, std::move(text), v, pos});
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    const std::size_t start = i;
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) {
        ++j;
      }
      std::string word = src.substr(i, j - i);
      const auto kw = keywords().find(word);
      if (kw != keywords().end()) {
        push(kw->second, start);
      } else {
        push(Tok::Ident, start, std::move(word));
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      std::int64_t v = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j])) != 0) {
        v = v * 10 + (src[j] - '0');
        ++j;
      }
      push(Tok::Int, start, {}, v);
      i = j;
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace, start); ++i; continue;
      case '}': push(Tok::RBrace, start); ++i; continue;
      case '(': push(Tok::LParen, start); ++i; continue;
      case ')': push(Tok::RParen, start); ++i; continue;
      case '[': push(Tok::LBracket, start); ++i; continue;
      case ']': push(Tok::RBracket, start); ++i; continue;
      case ',': push(Tok::Comma, start); ++i; continue;
      case ';': push(Tok::Semi, start); ++i; continue;
      case ':': push(Tok::Colon, start); ++i; continue;
      case '+': push(Tok::Plus, start); ++i; continue;
      case '/': push(Tok::Slash, start); ++i; continue;
      case '%': push(Tok::Percent, start); ++i; continue;
      case '-':
        if (i + 1 < n && src[i + 1] == '>') {
          push(Tok::Arrow, start);
          i += 2;
        } else {
          push(Tok::Minus, start);
          ++i;
        }
        continue;
      case '*':
        if (i + 1 < n && src[i + 1] == '*') {
          push(Tok::StarStar, start);
          i += 2;
        } else {
          push(Tok::Star, start);
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && src[i + 1] == '!') {
          push(Tok::BangBang, start);
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::Ne, start);
          i += 2;
        } else {
          push(Tok::Bang, start);
          ++i;
        }
        continue;
      case '|':
        if (i + 1 < n && src[i + 1] == '|') {
          push(Tok::BarBar, start);
          i += 2;
        } else {
          push(Tok::Bar, start);
          ++i;
        }
        continue;
      case '&':
        if (i + 1 < n && src[i + 1] == '&') {
          push(Tok::AndAnd, start);
          i += 2;
          continue;
        }
        throw ParseError("stray '&'", start);
      case '.':
        if (i + 1 < n && src[i + 1] == '.') {
          push(Tok::DotDot, start);
          i += 2;
          continue;
        }
        throw ParseError("stray '.'", start);
      case '=':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::EqEq, start);
          i += 2;
        } else {
          push(Tok::Assign, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::Ge, start);
          i += 2;
        } else {
          push(Tok::Gt, start);
          ++i;
        }
        continue;
      case '<': {
        // `<ident>` with no spaces is a tag token.
        std::size_t j = i + 1;
        if (j < n && ident_start(src[j])) {
          std::size_t k = j + 1;
          while (k < n && ident_char(src[k])) {
            ++k;
          }
          if (k < n && src[k] == '>') {
            push(Tok::Tag, start, src.substr(j, k - j));
            i = k + 1;
            continue;
          }
        }
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::Le, start);
          i += 2;
        } else {
          push(Tok::Lt, start);
          ++i;
        }
        continue;
      }
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(Tok::End, n);
  return out;
}

std::string tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer";
    case Tok::Tag: return "tag";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "'='";
    case Tok::Arrow: return "'->'";
    case Tok::Bar: return "'|'";
    case Tok::BarBar: return "'||'";
    case Tok::DotDot: return "'..'";
    case Tok::Star: return "'*'";
    case Tok::StarStar: return "'**'";
    case Tok::Bang: return "'!'";
    case Tok::BangBang: return "'!!'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::NotOp: return "'!'";
    case Tok::KwIf: return "'if'";
    case Tok::KwBox: return "'box'";
    case Tok::KwNet: return "'net'";
    case Tok::KwConnect: return "'connect'";
    case Tok::KwFilter: return "'filter'";
    case Tok::KwSync: return "'sync'";
    case Tok::End: return "end of input";
  }
  return "?";
}

}  // namespace snet::text
