#include "snet/dot.hpp"

#include <map>
#include <sstream>

namespace snet {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

/// Emits nodes/edges for \p n; returns (entry, exit) node ids.
struct DotBuilder {
  std::ostringstream& os;
  int next_id = 0;

  std::string fresh(const std::string& label, const std::string& shape,
                    const std::string& extra = {}) {
    std::string id = "n";
    id += std::to_string(next_id++);
    os << "  " << id << " [label=\"" << escape(label) << "\", shape=" << shape
       << (extra.empty() ? "" : ", " + extra) << "];\n";
    return id;
  }

  std::pair<std::string, std::string> walk(const Net& n) {
    switch (n->kind) {
      case NetNode::Kind::Box: {
        const std::string id =
            fresh("box " + n->name + "\\n" + n->sig.to_string(), "box");
        return {id, id};
      }
      case NetNode::Kind::Filter: {
        const std::string id = fresh(n->filter->to_string(), "cds");
        return {id, id};
      }
      case NetNode::Kind::Serial: {
        const auto l = walk(n->left);
        const auto r = walk(n->right);
        os << "  " << l.second << " -> " << r.first << ";\n";
        return {l.first, r.second};
      }
      case NetNode::Kind::Parallel: {
        const std::string in =
            fresh(n->det ? "|" : "||", "diamond", "width=0.3, height=0.3");
        const std::string out_node =
            fresh("merge", "point", "width=0.12");
        const auto l = walk(n->left);
        const auto r = walk(n->right);
        os << "  " << in << " -> " << l.first << ";\n";
        os << "  " << in << " -> " << r.first << ";\n";
        os << "  " << l.second << " -> " << out_node << ";\n";
        os << "  " << r.second << " -> " << out_node << ";\n";
        return {in, out_node};
      }
      case NetNode::Kind::Star: {
        const std::string tap = fresh(std::string(n->det ? "*" : "**") + " " +
                                          n->exit.to_string(),
                                      "diamond");
        const auto c = walk(n->child);
        os << "  " << tap << " -> " << c.first << " [label=\"no match\"];\n";
        os << "  " << c.second << " -> " << tap
           << " [style=dashed, label=\"unfold\"];\n";
        return {tap, tap};
      }
      case NetNode::Kind::Split: {
        const std::string disp = fresh(std::string(n->det ? "!" : "!!") + " " +
                                           label_display(n->split_tag),
                                       "triangle");
        const std::string out_node = fresh("merge", "point", "width=0.12");
        const auto c = walk(n->child);
        os << "  " << disp << " -> " << c.first << " [label=\"per tag value\"];\n";
        os << "  " << c.second << " -> " << out_node << ";\n";
        return {disp, out_node};
      }
      case NetNode::Kind::Sync: {
        std::ostringstream lo;
        lo << "[|";
        bool first = true;
        for (const auto& p : n->sync_patterns) {
          lo << (first ? "" : ", ") << p.to_string();
          first = false;
        }
        lo << "|]";
        const std::string label = lo.str();
        const std::string id = fresh(label, "Msquare");
        return {id, id};
      }
    }
    const std::string id = fresh("?", "box");
    return {id, id};
  }
};

}  // namespace

std::string to_dot(const Net& net) {
  std::ostringstream os;
  os << "digraph snet {\n  rankdir=LR;\n  node [fontsize=10];\n";
  DotBuilder b{os};
  const auto [in, out] = b.walk(net);
  os << "  __in [label=\"in\", shape=plaintext];\n";
  os << "  __out [label=\"out\", shape=plaintext];\n";
  os << "  __in -> " << in << ";\n";
  os << "  " << out << " -> __out;\n";
  os << "}\n";
  return os.str();
}

std::string to_dot(const NetworkStats& stats) {
  std::ostringstream os;
  os << "digraph snet_run {\n  rankdir=LR;\n  node [fontsize=9, shape=box];\n";
  // Group entities by their first path component after "net/".
  std::map<std::string, std::vector<const EntityStats*>> groups;
  for (const auto& e : stats.entities) {
    const auto slash = e.name.find('/', 4);
    groups[slash == std::string::npos ? e.name : e.name.substr(0, slash)].push_back(&e);
  }
  int cluster = 0;
  int node = 0;
  for (const auto& [prefix, members] : groups) {
    os << "  subgraph cluster_" << cluster++ << " {\n"
       << "    label=\"" << escape(prefix) << "\";\n";
    for (const auto* e : members) {
      os << "    e" << node++ << " [label=\"" << escape(e->name) << "\\nin="
         << e->records_in << " out=" << e->records_out << "\"];\n";
    }
    os << "  }\n";
  }
  os << "  labelloc=\"t\";\n  label=\"injected=" << stats.injected
     << " produced=" << stats.produced << " peak_live=" << stats.peak_live
     << "\";\n}\n";
  return os.str();
}

}  // namespace snet
