#include "snet/dot.hpp"

#include <map>
#include <sstream>

#include "snet/verify.hpp"

namespace snet {

namespace {

/// Escapes a string for use inside a double-quoted DOT attribute. Label
/// and tag names are user-controlled (the programmatic API accepts any
/// string), so besides quotes and backslashes, control characters must
/// become escape sequences — a raw newline inside an attribute is a DOT
/// syntax error, and the previous quote-only escaping both let those
/// through and double-escaped intentional "\n" line breaks.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Emits nodes/edges for \p n; returns (entry, exit) node ids. When a
/// verify report is supplied, components the verifier flagged are painted:
/// errors red, warnings orange. Tree positions are tracked with the same
/// instantiate-style paths the verifier reports, so a diagnostic at
/// "net/parL" colours that whole branch subtree.
struct DotBuilder {
  std::ostringstream& os;
  const VerifyReport* report = nullptr;
  int next_id = 0;

  /// The fill attribute for the component at \p path — the worst verdict
  /// whose diagnostic path covers it (exact, or as a ".../" or "...["
  /// subtree prefix).
  std::string paint(const std::string& path) const {
    if (report == nullptr) {
      return {};
    }
    bool warn = false;
    for (const auto& d : report->diagnostics) {
      const bool covers =
          path == d.path ||
          (path.size() > d.path.size() && path.compare(0, d.path.size(), d.path) == 0 &&
           (path[d.path.size()] == '/' || path[d.path.size()] == '['));
      if (!covers) {
        continue;
      }
      if (d.severity == LintSeverity::Error) {
        return "style=filled, fillcolor=\"#ff9d9d\"";
      }
      warn = true;
    }
    return warn ? "style=filled, fillcolor=\"#ffd27f\"" : std::string{};
  }

  std::string fresh(const std::string& label, const std::string& shape,
                    const std::string& path, const std::string& extra = {}) {
    std::string id = "n";
    id += std::to_string(next_id++);
    os << "  " << id << " [label=\"" << escape(label) << "\", shape=" << shape;
    if (!extra.empty()) {
      os << ", " << extra;
    }
    const std::string fill = paint(path);
    if (!fill.empty()) {
      os << ", " << fill;
    }
    os << "];\n";
    return id;
  }

  std::pair<std::string, std::string> walk(const Net& n, const std::string& path) {
    switch (n->kind) {
      case NetNode::Kind::Box: {
        const std::string id = fresh("box " + n->name + "\n" + n->sig.to_string(),
                                     "box", path + "/box:" + n->name);
        return {id, id};
      }
      case NetNode::Kind::Filter: {
        const std::string id =
            fresh(n->filter->to_string(), "cds", path + "/filter");
        return {id, id};
      }
      case NetNode::Kind::Serial: {
        const auto l = walk(n->left, path);
        const auto r = walk(n->right, path);
        os << "  " << l.second << " -> " << r.first << ";\n";
        return {l.first, r.second};
      }
      case NetNode::Kind::Parallel: {
        const std::string in = fresh(n->det ? "|" : "||", "diamond",
                                     path + "/par", "width=0.3, height=0.3");
        const std::string out_node = fresh("merge", "point", path + "/par",
                                           "width=0.12");
        const auto l = walk(n->left, path + "/parL");
        const auto r = walk(n->right, path + "/parR");
        os << "  " << in << " -> " << l.first << ";\n";
        os << "  " << in << " -> " << r.first << ";\n";
        os << "  " << l.second << " -> " << out_node << ";\n";
        os << "  " << r.second << " -> " << out_node << ";\n";
        return {in, out_node};
      }
      case NetNode::Kind::Star: {
        const std::string tap = fresh(std::string(n->det ? "*" : "**") + " " +
                                          n->exit.to_string(),
                                      "diamond", path + "/star");
        const auto c = walk(n->child, path + "/star/rep*");
        os << "  " << tap << " -> " << c.first << " [label=\"no match\"];\n";
        os << "  " << c.second << " -> " << tap
           << " [style=dashed, label=\"unfold\"];\n";
        return {tap, tap};
      }
      case NetNode::Kind::Split: {
        const std::string disp = fresh(std::string(n->det ? "!" : "!!") + " " +
                                           label_display(n->split_tag),
                                       "triangle", path + "/split");
        const std::string out_node = fresh("merge", "point", path + "/split",
                                           "width=0.12");
        const auto c = walk(n->child, path + "/split[*]");
        os << "  " << disp << " -> " << c.first << " [label=\"per tag value\"];\n";
        os << "  " << c.second << " -> " << out_node << ";\n";
        return {disp, out_node};
      }
      case NetNode::Kind::Sync: {
        std::ostringstream lo;
        lo << "[|";
        bool first = true;
        for (const auto& p : n->sync_patterns) {
          lo << (first ? "" : ", ") << p.to_string();
          first = false;
        }
        lo << "|]";
        const std::string id = fresh(lo.str(), "Msquare", path + "/sync");
        return {id, id};
      }
    }
    const std::string id = fresh("?", "box", path);
    return {id, id};
  }
};

std::string render(const Net& net, const VerifyReport* report) {
  std::ostringstream os;
  os << "digraph snet {\n  rankdir=LR;\n  node [fontsize=10];\n";
  DotBuilder b{os, report};
  // Nested non-det parallels flatten at instantiation ("net/parL/parL"
  // branch paths); the drawing keeps the binary structure, and the
  // subtree-prefix rule in paint() makes flattened diagnostic paths land
  // on the right nodes either way.
  const auto [in, out] = b.walk(net, "net");
  os << "  __in [label=\"in\", shape=plaintext];\n";
  os << "  __out [label=\"out\", shape=plaintext];\n";
  os << "  __in -> " << in << ";\n";
  os << "  " << out << " -> __out;\n";
  os << "}\n";
  return os.str();
}

}  // namespace

std::string to_dot(const Net& net) { return render(net, nullptr); }

std::string to_dot(const Net& net, const VerifyReport& report) {
  return render(net, &report);
}

std::string to_dot(const NetworkStats& stats) {
  std::ostringstream os;
  os << "digraph snet_run {\n  rankdir=LR;\n  node [fontsize=9, shape=box];\n";
  // Group entities by their first path component after "net/".
  std::map<std::string, std::vector<const EntityStats*>> groups;
  for (const auto& e : stats.entities) {
    const auto slash = e.name.find('/', 4);
    groups[slash == std::string::npos ? e.name : e.name.substr(0, slash)].push_back(&e);
  }
  int cluster = 0;
  int node = 0;
  for (const auto& [prefix, members] : groups) {
    os << "  subgraph cluster_" << cluster++ << " {\n"
       << "    label=\"" << escape(prefix) << "\";\n";
    for (const auto* e : members) {
      os << "    e" << node++ << " [label=\"" << escape(e->name) << "\\nin="
         << e->records_in << " out=" << e->records_out << "\"];\n";
    }
    os << "  }\n";
  }
  os << "  labelloc=\"t\";\n  label=\"injected=" << stats.injected
     << " produced=" << stats.produced << " peak_live=" << stats.peak_live
     << "\";\n}\n";
  return os.str();
}

}  // namespace snet
