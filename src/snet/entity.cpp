#include "snet/entity.hpp"

#include <algorithm>

#include "snet/detscope.hpp"
#include "snet/network.hpp"

namespace snet {

Entity::Entity(Network& net, std::string name) : net_(net), name_(std::move(name)) {
  inbox_.set_capacity(net_.inbox_capacity());
  // Inbox queue locks rank above every network lock (see Network's
  // constructor): dispatch/output critical sections may push into an
  // inbox, never the other way around.
  inbox_.set_lock_order(50, "entity.inbox");
  batching_ = net_.batching();
  // Bounded inboxes keep batches small so the occupancy ceiling the stall
  // protocol guarantees (inbox bound + one quantum of overshoot) still
  // holds with emissions and consume decrements deferred to the flush:
  // buffered emissions + consumed-but-unsubbed records stay within one
  // quantum. Unbounded inboxes amortise harder.
  const std::size_t cap = net_.inbox_capacity();
  const unsigned quantum = net_.drr_grant();
  flush_threshold_ =
      cap == 0 ? std::max<std::size_t>(256, quantum)
               : std::max<std::size_t>(1, std::min<std::size_t>(cap / 2, quantum));
}

void Entity::schedule_after_push() {
  for (;;) {
    int s = state_.load(std::memory_order_acquire);
    switch (s) {
      case kIdle:
        if (state_.compare_exchange_weak(s, kQueued, std::memory_order_acq_rel)) {
          net_.scheduler().enqueue(this);
          return;
        }
        break;
      case kQueued:
        return;
      case kRunning:
        if (state_.compare_exchange_weak(s, kRunningPending,
                                         std::memory_order_acq_rel)) {
          return;
        }
        break;
      case kRunningPending:
        return;
      case kStalled:
        // Parked on downstream credit: the message waits in the inbox;
        // only resume_from_stall() may re-queue the entity.
        return;
      default:
        return;
    }
  }
}

bool Entity::deliver(Message m) {
  if (m.kind == Message::Kind::Rec && net_.tracing()) {
    net_.trace_record(*this, m.rec);
  }
  const auto res = inbox_.push(std::move(m));
  schedule_after_push();
  return res.congested;
}

bool Entity::try_deliver(Message& m) {
  if (m.kind == Message::Kind::Rec && net_.tracing()) {
    // The trace observer needs the record before it is moved into the
    // queue, so under tracing the capacity check and the push are two
    // steps; concurrent injectors can overshoot by their count. The
    // untraced path below is exact.
    if (inbox_.congested()) {
      return false;
    }
    net_.trace_record(*this, m.rec);
    inbox_.push(std::move(m));
  } else if (!inbox_.try_push(m)) {
    return false;
  }
  schedule_after_push();
  return true;
}

bool Entity::deliver_all(std::vector<Message>& msgs) {
  if (net_.tracing()) {
    for (const Message& m : msgs) {
      if (m.kind == Message::Kind::Rec) {
        net_.trace_record(*this, m.rec);
      }
    }
  }
  const auto res = inbox_.push_all(msgs);
  schedule_after_push();
  return res.congested;
}

bool Entity::await_inbox_credit(Entity* producer) {
  return inbox_.wait_for_credit([producer] { producer->resume_from_stall(); });
}

bool Entity::await_inbox_credit_cb(std::function<void()> cb) {
  return inbox_.wait_for_credit(std::move(cb));
}

void Entity::resume_from_stall() {
  // The poke flag makes the resumed quantum start with on_poke(): an
  // entity whose pending work is internal (a det collector's buffered
  // groups) continues draining even when its inbox stays empty.
  resume_poke_.store(true, std::memory_order_release);
  int expected = kStalled;
  if (state_.compare_exchange_strong(expected, kQueued, std::memory_order_acq_rel)) {
    // Urgent: a credit-resumed entity jumps the ready queue. The consumer
    // that released the credit is waiting on exactly this entity's output,
    // so dispatching it behind a backlog of hot-session quanta would add
    // the whole queue's latency to every stall/resume cycle.
    net_.scheduler().enqueue(this, /*urgent=*/true);
  }
}

bool Entity::defer_pending(const SessionState* s) const {
  const auto it = deferred_.find(const_cast<SessionState*>(s));
  return it != deferred_.end() && !it->second.empty();
}

void Entity::defer_record(SessionState* s, Record r) {
  // The record survives inside the entity: keep it live (and its session
  // state alive) past the generic consume decrement of run_quantum —
  // the same compensation pattern det collectors use for their buffers.
  net_.live_add(s, 1);
  deferred_[s].push_back(std::move(r));
  ++deferred_total_;
}

void Entity::flush_deferred(
    const std::function<bool(SessionState*, Record&)>& attempt) {
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    auto& queue = it->second;
    while (!queue.empty() && !stall_requested()) {
      if (!attempt(it->first, queue.front())) {
        break;  // no credit yet: the refusal re-registered the waiter
      }
      queue.pop_front();
      --deferred_total_;
      net_.live_sub(it->first, 1);
    }
    it = queue.empty() ? deferred_.erase(it) : std::next(it);
    if (stall_requested()) {
      return;
    }
  }
}

void Entity::release_inbox_credit() {
  released_.clear();
  inbox_.take_released(released_);
  for (auto& cb : released_) {
    cb();
  }
  released_.clear();
}

void Entity::run_quantum(unsigned max_messages) {
  // The quantum frame: the state machine already guarantees a single
  // runner (the scheduler only dispatches an entity after its CAS to
  // queued); the guard turns that protocol fact into a capability, so the
  // analysis proves every touch of worker-only state happens here — and
  // checked builds catch a double-dispatch bug as a recursive acquisition.
  const snetsac::runtime::RoleGuard quantum(quantum_role_);
  state_.store(kRunning, std::memory_order_release);
  if (resume_poke_.exchange(false, std::memory_order_acq_rel)) {
    try {
      on_poke();
    } catch (...) {
      net_.fail(std::current_exception());
    }
  }
  if (batch_pos_ >= batch_.size()) {
    // Batched drain: one inbox lock acquisition per quantum, not one per
    // message. batch_ is only touched by the single worker running us.
    batch_.clear();
    batch_pos_ = 0;
    inbox_.drain_into(batch_, max_messages);
    release_inbox_credit();
  }
  // Process the batch up to the quantum end or a stall request — a stall
  // leaves the remainder in batch_ (resume point batch_pos_), so nothing
  // is re-ordered or lost across a suspension.
  std::uint64_t quantum_in = 0;
  while (batch_pos_ < batch_.size() && !stall_gate_) {
    Message& msg = batch_[batch_pos_++];
    if (msg.kind == Message::Kind::Poke) {
      try {
        on_poke();
      } catch (...) {
        net_.fail(std::current_exception());
      }
      continue;
    }
    ++quantum_in;
    Record r = std::move(msg.rec);
    // The stamp stack and session as the record arrived: the consume
    // decrements below must target exactly these even if on_record
    // rewrites the record's metadata. stamp_scratch_ is a reused member —
    // no per-record heap copy, and nothing at all for unstamped records.
    stamp_scratch_.clear();
    if (!r.det_stack().empty()) {
      stamp_scratch_.assign(r.det_stack().begin(), r.det_stack().end());
    }
    SessionState* const session = r.session_state();
    try {
      on_record(std::move(r));
    } catch (...) {
      net_.fail(std::current_exception());
    }
    if (batching_) {
      // Consume decrements coalesce into the flush accumulators; they are
      // applied in flush_all() *after* this batch's emissions are pushed,
      // preserving the never-transiently-zero group invariant.
      for (const auto& s : stamp_scratch_) {
        det_delta_sub(s.scope, s.seq);
      }
      live_delta_sub(session);
    } else {
      // Scalar consume decrement: emissions were counted eagerly in
      // send(), so the group count can never transiently drop to zero
      // while descendants of this record are still in flight. Guarded: a
      // det-scope invariant violation must fail the network, not escape
      // into the worker thread.
      try {
        for (const auto& s : stamp_scratch_) {
          s.scope->adjust(s.seq, -1);
        }
      } catch (...) {
        net_.fail(std::current_exception());
      }
      net_.live_sub(session, 1);
    }
  }
  if (batch_pos_ >= batch_.size()) {
    batch_.clear();  // drop payloads before parking, not at the next quantum
    batch_pos_ = 0;
  }
  // Quantum end: let staging entities complete their batches, then flush
  // buffered emissions and coalesced accounting — unconditionally, and in
  // particular *before* a stall parks the entity, so a parked entity owns
  // no buffered records and no unapplied decrements.
  try {
    on_quantum_end();
  } catch (...) {
    net_.fail(std::current_exception());
  }
  // Publish the quantum's counter deltas in two relaxed RMWs instead of
  // one per record — *before* flush_all: the flush applies the live-count
  // decrements that let a quiescence-gated stats reader proceed, so the
  // counters must already be visible by then.
  if (quantum_in != 0) {
    in_count_.fetch_add(quantum_in, std::memory_order_relaxed);
  }
  if (quantum_out_ != 0) {
    out_count_.fetch_add(quantum_out_, std::memory_order_relaxed);
    quantum_out_ = 0;
  }
  flush_all();
  if (stall_gate_) {
    // Suspension: park as stalled *before* registering with the credit
    // source, so a release racing the registration finds the state it
    // must CAS. If credit returned in the meantime the gate declines the
    // registration and we re-queue ourselves immediately.
    StallGate gate = std::move(stall_gate_);
    stall_gate_ = nullptr;
    state_.store(kStalled, std::memory_order_release);
    net_.note_suspension();
    if (!gate(this)) {
      resume_from_stall();
    }
    return;
  }
  // Finalisation handshake with deliver(): either requeue (more input or a
  // producer raced us) or park as idle.
  for (;;) {
    if (!inbox_.empty()) {
      state_.store(kQueued, std::memory_order_release);
      net_.scheduler().enqueue(this);
      return;
    }
    int expected = kRunning;
    if (state_.compare_exchange_strong(expected, kIdle, std::memory_order_acq_rel)) {
      return;
    }
    // A producer marked us RunningPending; loop to re-examine the inbox.
    state_.store(kRunning, std::memory_order_release);
  }
}

void Entity::send(Entity* target, Record r) {
  ++emitted_in_step_;
  ++quantum_out_;
  if (batching_) {
    // Group/live increments accumulate with the staged message; flush_all
    // applies them immediately before the record becomes visible
    // downstream — eager relative to visibility, exactly like the scalar
    // path, just batched.
    note_emit_accounting(r);
    buffer_message(target, Message::record(std::move(r)));
    return;
  }
  // Eager group increments (see run_quantum) before the record becomes
  // visible downstream.
  for (const auto& s : r.det_stack()) {
    s.scope->adjust(s.seq, +1);
  }
  net_.live_add(r.session_state(), 1);
  const bool congested = target->deliver(Message::record(std::move(r)));
  if (congested && target != this) {
    request_stall([target](Entity* producer) {
      return target->await_inbox_credit(producer);
    });
  }
}

void Entity::transfer(Entity* target, Record r) {
  ++quantum_out_;
  if (batching_) {
    buffer_message(target, Message::record(std::move(r)));
    return;
  }
  const bool congested = target->deliver(Message::record(std::move(r)));
  if (congested && target != this) {
    request_stall([target](Entity* producer) {
      return target->await_inbox_credit(producer);
    });
  }
}

void Entity::buffer_message(Entity* target, Message m) {
  // Emissions run in target bursts (a quantum's records mostly route the
  // same way), so try the previous buffer before scanning.
  EmitBuffer* buf = nullptr;
  if (last_buf_ < emit_bufs_.size() && emit_bufs_[last_buf_].target == target) {
    buf = &emit_bufs_[last_buf_];
  } else {
    for (std::size_t i = 0; i < emit_bufs_.size(); ++i) {
      if (emit_bufs_[i].target == target) {
        buf = &emit_bufs_[i];
        last_buf_ = i;
        break;
      }
    }
    if (buf == nullptr) {
      emit_bufs_.push_back(EmitBuffer{target, {}});
      last_buf_ = emit_bufs_.size() - 1;
      buf = &emit_bufs_.back();
    }
  }
  buf->msgs.push_back(std::move(m));
  if (++emit_pending_ >= flush_threshold_) {
    flush_all();
  }
}

void Entity::note_emit_accounting(const Record& r) {
  for (const auto& s : r.det_stack()) {
    det_delta_add(s.scope, s.seq);
  }
  live_delta_add(r.session_state());
}

void Entity::det_delta_add(DetScope* scope, std::uint64_t seq) {
  for (DetDelta& d : det_deltas_) {
    if (d.scope == scope && d.seq == seq) {
      ++d.add;
      return;
    }
  }
  det_deltas_.push_back(DetDelta{scope, seq, 1, 0});
}

void Entity::det_delta_sub(DetScope* scope, std::uint64_t seq) {
  for (DetDelta& d : det_deltas_) {
    if (d.scope == scope && d.seq == seq) {
      ++d.sub;
      return;
    }
  }
  det_deltas_.push_back(DetDelta{scope, seq, 0, 1});
}

void Entity::live_delta_add(SessionState* session) {
  for (LiveDelta& l : live_deltas_) {
    if (l.session == session) {
      ++l.add;
      return;
    }
  }
  live_deltas_.push_back(LiveDelta{session, 1, 0});
}

void Entity::live_delta_sub(SessionState* session) {
  for (LiveDelta& l : live_deltas_) {
    if (l.session == session) {
      ++l.sub;
      return;
    }
  }
  live_deltas_.push_back(LiveDelta{session, 0, 1});
}

void Entity::flush_all() {
  if (emit_pending_ == 0 && det_deltas_.empty() && live_deltas_.empty()) {
    return;
  }
  // 1. Emission-side increments, before any staged record becomes visible
  //    (a consumer finishing the record before our accounting lands would
  //    otherwise drain a group or the live count to zero transiently).
  try {
    for (DetDelta& d : det_deltas_) {
      if (d.add != 0) {
        d.scope->adjust(d.seq, d.add);
        d.add = 0;
      }
    }
  } catch (...) {
    net_.fail(std::current_exception());
  }
  for (LiveDelta& l : live_deltas_) {
    if (l.add != 0) {
      net_.live_add(l.session, l.add);
      l.add = 0;
    }
  }
  // 2. One bounded push per (target, flush); the buffers preserve emission
  //    order per target. A congested bounded target requests a stall, as
  //    the per-record deliver did.
  for (EmitBuffer& buf : emit_bufs_) {
    if (buf.msgs.empty()) {
      continue;
    }
    Entity* const target = buf.target;
    const bool congested = target->deliver_all(buf.msgs);
    if (congested && target != this) {
      request_stall([target](Entity* producer) {
        return target->await_inbox_credit(producer);
      });
    }
  }
  emit_pending_ = 0;
  // 3. Consume-side decrements, now that every descendant emitted by this
  //    batch is visible and counted.
  try {
    for (DetDelta& d : det_deltas_) {
      if (d.sub != 0) {
        d.scope->adjust(d.seq, -d.sub);
      }
    }
  } catch (...) {
    net_.fail(std::current_exception());
  }
  det_deltas_.clear();
  for (LiveDelta& l : live_deltas_) {
    if (l.sub != 0) {
      net_.live_sub(l.session, l.sub);
    }
  }
  live_deltas_.clear();
}

}  // namespace snet
