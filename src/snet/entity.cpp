#include "snet/entity.hpp"

#include "snet/detscope.hpp"
#include "snet/network.hpp"

namespace snet {

Entity::Entity(Network& net, std::string name) : net_(net), name_(std::move(name)) {}

void Entity::deliver(Message m) {
  if (m.kind == Message::Kind::Rec && net_.tracing()) {
    net_.trace_record(*this, m.rec);
  }
  inbox_.push(std::move(m));
  for (;;) {
    int s = state_.load(std::memory_order_acquire);
    switch (s) {
      case kIdle:
        if (state_.compare_exchange_weak(s, kQueued, std::memory_order_acq_rel)) {
          net_.scheduler().enqueue(this);
          return;
        }
        break;
      case kQueued:
        return;
      case kRunning:
        if (state_.compare_exchange_weak(s, kRunningPending,
                                         std::memory_order_acq_rel)) {
          return;
        }
        break;
      case kRunningPending:
        return;
      default:
        return;
    }
  }
}

void Entity::run_quantum(unsigned max_messages) {
  state_.store(kRunning, std::memory_order_release);
  // Batched drain: one inbox lock acquisition per quantum, not one per
  // message. batch_ is only touched by the single worker running us.
  batch_.clear();
  inbox_.drain_into(batch_, max_messages);
  for (auto& msg : batch_) {
    auto* m = &msg;
    if (m->kind == Message::Kind::Poke) {
      try {
        on_poke();
      } catch (...) {
        net_.fail(std::current_exception());
      }
      continue;
    }
    in_count_.fetch_add(1, std::memory_order_relaxed);
    Record r = std::move(m->rec);
    // The stamp stack as the record arrived: the consume decrement below
    // must target exactly these groups even if on_record rewrites the
    // record's metadata.
    const std::vector<DetStamp> stamps = r.det_stack();
    try {
      on_record(std::move(r));
    } catch (...) {
      net_.fail(std::current_exception());
    }
    // Consume decrement: emissions were counted eagerly in send(), so the
    // group count can never transiently drop to zero while descendants of
    // this record are still in flight. Guarded: a det-scope invariant
    // violation must fail the network, not escape into the worker thread.
    try {
      for (const auto& s : stamps) {
        s.scope->adjust(s.seq, -1);
      }
    } catch (...) {
      net_.fail(std::current_exception());
    }
    net_.live_sub(1);
  }
  batch_.clear();  // drop payloads before parking, not at the next quantum
  // Finalisation handshake with deliver(): either requeue (more input or a
  // producer raced us) or park as idle.
  for (;;) {
    if (!inbox_.empty()) {
      state_.store(kQueued, std::memory_order_release);
      net_.scheduler().enqueue(this);
      return;
    }
    int expected = kRunning;
    if (state_.compare_exchange_strong(expected, kIdle, std::memory_order_acq_rel)) {
      return;
    }
    // A producer marked us RunningPending; loop to re-examine the inbox.
    state_.store(kRunning, std::memory_order_release);
  }
}

void Entity::send(Entity* target, Record r) {
  ++emitted_in_step_;
  out_count_.fetch_add(1, std::memory_order_relaxed);
  // Eager group increments (see run_quantum) before the record becomes
  // visible downstream.
  for (const auto& s : r.det_stack()) {
    s.scope->adjust(s.seq, +1);
  }
  net_.live_add(1);
  target->deliver(Message::record(std::move(r)));
}

void Entity::transfer(Entity* target, Record r) {
  out_count_.fetch_add(1, std::memory_order_relaxed);
  target->deliver(Message::record(std::move(r)));
}

}  // namespace snet
