#include "snet/parse.hpp"

namespace snet::parse {

using text::Cursor;
using text::ParseError;
using text::Tok;

namespace {

TagExpr primary(Cursor& cur) {
  if (cur.at(Tok::Int)) {
    return TagExpr::lit(cur.advance().ival);
  }
  if (cur.at(Tok::Tag)) {
    return TagExpr::tag(cur.advance().text);
  }
  if (cur.accept(Tok::LParen)) {
    TagExpr e = tag_expression(cur);
    cur.expect(Tok::RParen, "parenthesised tag expression");
    return e;
  }
  throw ParseError("expected integer, tag or '(' in tag expression, found " +
                       text::tok_name(cur.peek().kind),
                   cur.peek().pos);
}

TagExpr unary(Cursor& cur) {
  if (cur.accept(Tok::Minus)) {
    return -unary(cur);
  }
  if (cur.accept(Tok::Bang)) {
    return !unary(cur);
  }
  return primary(cur);
}

TagExpr mul_level(Cursor& cur) {
  TagExpr e = unary(cur);
  for (;;) {
    if (cur.accept(Tok::Star)) {
      e = std::move(e) * unary(cur);
    } else if (cur.accept(Tok::Slash)) {
      e = std::move(e) / unary(cur);
    } else if (cur.accept(Tok::Percent)) {
      e = std::move(e) % unary(cur);
    } else {
      return e;
    }
  }
}

TagExpr add_level(Cursor& cur) {
  TagExpr e = mul_level(cur);
  for (;;) {
    if (cur.accept(Tok::Plus)) {
      e = std::move(e) + mul_level(cur);
    } else if (cur.accept(Tok::Minus)) {
      e = std::move(e) - mul_level(cur);
    } else {
      return e;
    }
  }
}

TagExpr cmp_level(Cursor& cur) {
  TagExpr e = add_level(cur);
  if (cur.accept(Tok::Lt)) {
    return std::move(e) < add_level(cur);
  }
  if (cur.accept(Tok::Le)) {
    return std::move(e) <= add_level(cur);
  }
  if (cur.accept(Tok::Gt)) {
    return std::move(e) > add_level(cur);
  }
  if (cur.accept(Tok::Ge)) {
    return std::move(e) >= add_level(cur);
  }
  if (cur.accept(Tok::EqEq)) {
    return std::move(e) == add_level(cur);
  }
  if (cur.accept(Tok::Ne)) {
    return std::move(e) != add_level(cur);
  }
  return e;
}

TagExpr and_level(Cursor& cur) {
  TagExpr e = cmp_level(cur);
  while (cur.accept(Tok::AndAnd)) {
    e = std::move(e) && cmp_level(cur);
  }
  return e;
}

}  // namespace

TagExpr tag_expression(Cursor& cur) {
  TagExpr e = and_level(cur);
  while (cur.accept(Tok::BarBar)) {
    e = std::move(e) || and_level(cur);
  }
  return e;
}

Pattern pattern(Cursor& cur) {
  cur.expect(Tok::LBrace, "pattern");
  std::vector<Label> labels;
  if (!cur.at(Tok::RBrace)) {
    do {
      if (cur.at(Tok::Ident)) {
        labels.push_back(field_label(cur.advance().text));
      } else if (cur.at(Tok::Tag)) {
        labels.push_back(tag_label(cur.advance().text));
      } else {
        throw ParseError("expected field or tag in pattern, found " +
                             text::tok_name(cur.peek().kind),
                         cur.peek().pos);
      }
    } while (cur.accept(Tok::Comma));
  }
  cur.expect(Tok::RBrace, "pattern");
  Pattern p{RecordType(std::move(labels))};
  if (cur.accept(Tok::KwIf)) {
    p.guard = tag_expression(cur);
  }
  return p;
}

SigVariant sig_variant(Cursor& cur) {
  const bool brace = cur.at(Tok::LBrace);
  cur.expect(brace ? Tok::LBrace : Tok::LParen, "signature variant");
  SigVariant v;
  const Tok closer = brace ? Tok::RBrace : Tok::RParen;
  if (!cur.at(closer)) {
    do {
      if (cur.at(Tok::Ident)) {
        v.labels.push_back(field_label(cur.advance().text));
      } else if (cur.at(Tok::Tag)) {
        v.labels.push_back(tag_label(cur.advance().text));
      } else {
        throw ParseError("expected field or tag in signature variant, found " +
                             text::tok_name(cur.peek().kind),
                         cur.peek().pos);
      }
    } while (cur.accept(Tok::Comma));
  }
  cur.expect(closer, "signature variant");
  return v;
}

Signature signature(Cursor& cur) {
  Signature sig;
  sig.input = sig_variant(cur);
  cur.expect(Tok::Arrow, "box signature");
  sig.outputs.push_back(sig_variant(cur));
  while (cur.accept(Tok::Bar)) {
    sig.outputs.push_back(sig_variant(cur));
  }
  return sig;
}

FilterSpec::Output filter_output(Cursor& cur) {
  cur.expect(Tok::LBrace, "filter output specifier");
  FilterSpec::Output out;
  if (!cur.at(Tok::RBrace)) {
    do {
      if (cur.at(Tok::Ident)) {
        const Label target = field_label(cur.advance().text);
        if (cur.accept(Tok::Assign)) {
          const auto& src = cur.expect(Tok::Ident, "field binding");
          out.items.push_back(FilterSpec::Item{FilterSpec::Item::Kind::BindField,
                                               target, field_label(src.text), {}});
        } else {
          out.items.push_back(
              FilterSpec::Item{FilterSpec::Item::Kind::CopyField, target, {}, {}});
        }
      } else if (cur.at(Tok::Tag)) {
        const Label target = tag_label(cur.advance().text);
        if (cur.accept(Tok::Assign)) {
          TagExpr e = tag_expression(cur);
          out.items.push_back(
              FilterSpec::Item{FilterSpec::Item::Kind::SetTag, target, {}, std::move(e)});
        } else {
          // "The initialisation of new tags is optional, tag values are set
          // to zero by default" — a bare tag copies when present in the
          // pattern and defaults to zero otherwise; both reduce to SetTag /
          // CopyTag, resolved in validate().
          out.items.push_back(
              FilterSpec::Item{FilterSpec::Item::Kind::CopyTag, target, {}, {}});
        }
      } else {
        throw ParseError("expected field or tag item in filter output, found " +
                             text::tok_name(cur.peek().kind),
                         cur.peek().pos);
      }
    } while (cur.accept(Tok::Comma));
  }
  cur.expect(Tok::RBrace, "filter output specifier");
  return out;
}

FilterSpec filter_body(Cursor& cur) {
  Pattern pat = pattern(cur);
  cur.expect(Tok::Arrow, "filter");
  std::vector<FilterSpec::Output> outs;
  outs.push_back(filter_output(cur));
  while (cur.accept(Tok::Semi)) {
    outs.push_back(filter_output(cur));
  }
  return FilterSpec(std::move(pat), std::move(outs));
}

}  // namespace snet::parse
