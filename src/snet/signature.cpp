#include "snet/signature.hpp"

#include <sstream>

#include "snet/parse.hpp"
#include "snet/text.hpp"

namespace snet {

std::string SigVariant::to_string() const {
  std::ostringstream os;
  os << '(';
  bool first = true;
  for (const auto label : labels) {
    os << (first ? "" : ", ") << label_display(label);
    first = false;
  }
  os << ')';
  return os.str();
}

Signature Signature::parse(const std::string& text) {
  text::Cursor cur(text::tokenize(text));
  Signature sig = parse::signature(cur);
  if (!cur.done()) {
    throw text::ParseError("trailing input after signature", cur.peek().pos);
  }
  return sig;
}

MultiType Signature::output_type() const {
  std::vector<RecordType> variants;
  variants.reserve(outputs.size());
  for (const auto& v : outputs) {
    variants.push_back(v.type());
  }
  return MultiType(std::move(variants));
}

std::string Signature::to_string() const {
  std::ostringstream os;
  os << input.to_string() << " -> ";
  bool first = true;
  for (const auto& v : outputs) {
    os << (first ? "" : " | ") << v.to_string();
    first = false;
  }
  return os.str();
}

}  // namespace snet
