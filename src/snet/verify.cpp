#include "snet/verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "snet/check.hpp"
#include "snet/router.hpp"

namespace snet {

const char* to_string(LintCode code) {
  switch (code) {
    case LintCode::UnroutableRecord:
      return "unroutable-record";
    case LintCode::DeadBranch:
      return "dead-branch";
    case LintCode::NeverFiringSync:
      return "never-firing-sync";
    case LintCode::StarNoProgress:
      return "star-no-progress";
    case LintCode::ConfigDetCapacity:
      return "config-det-capacity";
    case LintCode::ConfigDetUnused:
      return "config-det-unused";
    case LintCode::ConfigOutputCredit:
      return "config-output-credit";
    case LintCode::ConfigInboxCapacity:
      return "config-inbox-capacity";
  }
  return "unknown";
}

const char* to_string(LintSeverity severity) {
  return severity == LintSeverity::Error ? "error" : "warning";
}

std::string LintDiagnostic::to_string() const {
  std::string out = snet::to_string(severity);
  out += " [";
  out += snet::to_string(code);
  out += "] ";
  out += path;
  out += ": ";
  out += message;
  return out;
}

bool VerifyReport::has_errors() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const LintDiagnostic& d) {
                       return d.severity == LintSeverity::Error;
                     });
}

std::size_t VerifyReport::count(LintCode code) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const LintDiagnostic& d) { return d.code == code; }));
}

std::string VerifyReport::to_string() const {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

namespace {

void add_unique(std::vector<RecordType>& vs, const RecordType& v) {
  if (std::find(vs.begin(), vs.end(), v) == vs.end()) {
    vs.push_back(v);
  }
}

/// Per-run analysis state. Post-pass bookkeeping is keyed by tree-position
/// path (a subtree Net may be shared between two positions; paths are
/// unique per position and match the entity names `Network::instantiate`
/// would mint).
struct Ctx {
  std::vector<LintDiagnostic> diags;

  struct ParallelState {
    Net node;
    std::vector<Net> branch_nodes;
    std::vector<std::string> branch_paths;
    std::vector<bool> hit;  // branch ever in the argmax set
  };
  struct SyncState {
    Net node;
    std::vector<bool> fillable;  // per pattern slot
  };
  struct StarState {
    Net node;
    bool exit_reached = false;
  };

  std::map<std::string, ParallelState> parallels;
  std::map<std::string, SyncState> syncs;
  std::map<std::string, StarState> stars;
  // First-visit order, so post-pass diagnostics come out in topology order
  // rather than std::map order.
  std::vector<std::string> parallel_order;
  std::vector<std::string> sync_order;
  std::vector<std::string> star_order;

  /// Emits once per (code, path, type): the star closure revisits interior
  /// components, and one defect should read as one diagnostic.
  void diag(LintCode code, LintSeverity severity, std::string path,
            std::string type, std::string message) {
    for (const auto& d : diags) {
      if (d.code == code && d.path == path && d.type == type) {
        return;
      }
    }
    diags.push_back(LintDiagnostic{code, severity, std::move(path),
                                   std::move(type), std::move(message)});
  }
};

/// The flattened branch list of a parallel combinator — the exact
/// recursion `Network::instantiate`'s add_branch runs (nested
/// non-deterministic parallels merge into one N-ary dispatcher; det
/// parallels stay opaque branches). The scalar-ablation runtime keeps the
/// binary cascade instead, but the winner sets are identical: a combined
/// branch's score is the max over its variants' scores and argmax is
/// associative, so verdicts here cover both modes.
void collect_branches(const Net& n, const std::string& prefix,
                      std::vector<std::pair<Net, std::string>>& out) {
  if (n->kind == NetNode::Kind::Parallel && !n->det) {
    collect_branches(n->left, prefix + "/parL", out);
    collect_branches(n->right, prefix + "/parR", out);
    return;
  }
  out.emplace_back(n, prefix);
}

/// Forward shape flow: the verifier's non-throwing mirror of
/// check.cpp's `propagate`. Unhandleable variants become diagnostics and
/// are dropped from the flow instead of aborting the walk, so one pass
/// reports every defect. Returns the (lower-bound) output type set.
MultiType flow(const Net& n, const MultiType& incoming, const std::string& path,
               Ctx& ctx) {
  if (incoming.empty()) {
    return {};
  }
  switch (n->kind) {
    case NetNode::Kind::Box: {
      const RecordType consumed = n->sig.input.type();
      std::vector<RecordType> out;
      for (const auto& v : incoming.variants()) {
        if (!consumed.included_in(v)) {
          ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error,
                   path + "/box:" + n->name, v.to_string(),
                   "box " + n->name + " with input type " + consumed.to_string() +
                       " cannot accept records of type " + v.to_string());
          continue;
        }
        const RecordType excess = v.minus(consumed);
        for (const auto& o : n->sig.outputs) {
          add_unique(out, o.type().union_with(excess));
        }
      }
      return MultiType(std::move(out));
    }
    case NetNode::Kind::Filter: {
      const RecordType& pat = n->filter->pattern().type;
      std::vector<RecordType> out;
      for (const auto& v : incoming.variants()) {
        if (!pat.included_in(v)) {
          ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error,
                   path + "/filter", v.to_string(),
                   "filter " + n->filter->to_string() +
                       " cannot accept records of type " + v.to_string());
          continue;
        }
        const RecordType excess = v.minus(pat);
        const MultiType declared = n->filter->output_type();
        for (const auto& ov : declared.variants()) {
          add_unique(out, ov.union_with(excess));
        }
      }
      return MultiType(std::move(out));
    }
    case NetNode::Kind::Serial:
      return flow(n->right, flow(n->left, incoming, path, ctx), path, ctx);
    case NetNode::Kind::Parallel: {
      std::vector<std::pair<Net, std::string>> branches;
      collect_branches(n->left, path + "/parL", branches);
      collect_branches(n->right, path + "/parR", branches);
      const std::string dpath = path + "/par";
      auto [it, fresh] = ctx.parallels.try_emplace(dpath);
      Ctx::ParallelState& st = it->second;
      if (fresh) {
        st.node = n;
        st.hit.assign(branches.size(), false);
        for (const auto& [bn, bp] : branches) {
          st.branch_nodes.push_back(bn);
          st.branch_paths.push_back(bp);
        }
        ctx.parallel_order.push_back(dpath);
      }
      std::vector<MultiType> inputs;
      inputs.reserve(branches.size());
      for (const auto& [bn, bp] : branches) {
        inputs.push_back(required_input(bn));
      }
      std::vector<std::vector<RecordType>> to(branches.size());
      for (const auto& v : incoming.variants()) {
        // The runtime router's own argmax collection over the same
        // flattened branch inputs: static verdict == dynamic tied set for
        // records of exactly this type, by construction.
        const std::vector<std::uint32_t> tied =
            detail::ParallelRouter::tied_for(inputs, v);
        if (tied.empty()) {
          ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error, dpath,
                   v.to_string(),
                   "parallel combinator `" + describe(n) + "`: records of type " +
                       v.to_string() + " match no branch");
          continue;
        }
        for (const std::uint32_t b : tied) {
          st.hit[b] = true;
          add_unique(to[b], v);
        }
      }
      MultiType out;
      for (std::size_t b = 0; b < branches.size(); ++b) {
        if (!to[b].empty()) {
          out = out.union_with(
              flow(branches[b].first, MultiType(std::move(to[b])),
                   branches[b].second, ctx));
        }
      }
      return out;
    }
    case NetNode::Kind::Star: {
      const std::string spath = path + "/star";
      auto [it, fresh] = ctx.stars.try_emplace(spath);
      Ctx::StarState& st = it->second;
      if (fresh) {
        st.node = n;
        ctx.star_order.push_back(spath);
      }
      // Closure over the unfolding, as in propagate: a variant either taps
      // out at the exit pattern or re-enters the replica; replica outputs
      // join the frontier until no new variant appears. All unfolded
      // stages share one static position — "star/rep*".
      std::vector<RecordType> exits;
      std::vector<RecordType> seen;
      std::vector<RecordType> frontier = incoming.variants();
      const MultiType child_in = required_input(n->child);
      while (!frontier.empty()) {
        std::vector<RecordType> to_child;
        for (const auto& v : frontier) {
          if (std::find(seen.begin(), seen.end(), v) != seen.end()) {
            continue;
          }
          seen.push_back(v);
          const bool may_exit = n->exit.type.included_in(v);
          const bool must_exit = may_exit && !n->exit.guard.has_value();
          if (may_exit) {
            add_unique(exits, v);
            st.exit_reached = true;
          }
          if (!must_exit) {
            if (!accepts_variant(child_in, v)) {
              ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error, spath,
                       v.to_string(),
                       "serial replication `" + describe(n) +
                           "`: records of type " + v.to_string() +
                           " neither (unconditionally) match exit pattern " +
                           n->exit.to_string() +
                           " nor re-enter the replica (input type " +
                           child_in.to_string() + ")");
              continue;
            }
            add_unique(to_child, v);
          }
        }
        frontier.clear();
        if (!to_child.empty()) {
          frontier = flow(n->child, MultiType(std::move(to_child)),
                          spath + "/rep*", ctx)
                         .variants();
        }
      }
      return MultiType(std::move(exits));
    }
    case NetNode::Kind::Split: {
      const std::string dpath = path + "/split";
      std::vector<RecordType> ok;
      for (const auto& v : incoming.variants()) {
        if (!v.contains(n->split_tag)) {
          ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error, dpath,
                   v.to_string(),
                   "parallel replication `" + describe(n) +
                       "`: records of type " + v.to_string() +
                       " lack the replication tag " +
                       label_display(n->split_tag));
          continue;
        }
        ok.push_back(v);
      }
      // Every tag value shares one replica topology; "split[*]" stands for
      // the demand-unfolded "split[value]" family.
      return flow(n->child, MultiType(std::move(ok)), dpath + "[*]", ctx);
    }
    case NetNode::Kind::Sync: {
      const std::string cpath = path + "/sync";
      auto [it, fresh] = ctx.syncs.try_emplace(cpath);
      Ctx::SyncState& st = it->second;
      if (fresh) {
        st.node = n;
        st.fillable.assign(n->sync_patterns.size(), false);
        ctx.sync_order.push_back(cpath);
      }
      RecordType merged;
      for (std::size_t i = 0; i < n->sync_patterns.size(); ++i) {
        const Pattern& p = n->sync_patterns[i];
        merged = merged.union_with(p.type);
        for (const auto& v : incoming.variants()) {
          if (p.type.included_in(v)) {
            st.fillable[i] = true;
          }
        }
      }
      // Pass-through variants plus the merged record, as in propagate.
      std::vector<RecordType> out = incoming.variants();
      for (const auto& v : incoming.variants()) {
        add_unique(out, merged.union_with(v));
      }
      return MultiType(std::move(out));
    }
  }
  ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error, path, "",
           "corrupt network node");
  return {};
}

// ------------------------------------------------------------ config lint

/// Structural walk visiting every node with its instantiate-style path
/// (types not needed — config lints are about the topology's shape).
template <class Fn>
void walk_topology(const Net& n, const std::string& path, Fn&& fn) {
  fn(n, path);
  switch (n->kind) {
    case NetNode::Kind::Box:
    case NetNode::Kind::Filter:
    case NetNode::Kind::Sync:
      return;
    case NetNode::Kind::Serial:
      walk_topology(n->left, path, fn);
      walk_topology(n->right, path, fn);
      return;
    case NetNode::Kind::Parallel: {
      std::vector<std::pair<Net, std::string>> branches;
      collect_branches(n->left, path + "/parL", branches);
      collect_branches(n->right, path + "/parR", branches);
      for (const auto& [bn, bp] : branches) {
        if (bn.get() != n.get()) {
          walk_topology(bn, bp, fn);
        }
      }
      return;
    }
    case NetNode::Kind::Star:
      walk_topology(n->child, path + "/star/rep*", fn);
      return;
    case NetNode::Kind::Split:
      walk_topology(n->child, path + "/split[*]", fn);
      return;
  }
}

/// The number of records one injected record is *guaranteed* to produce —
/// the sound lower bound on fan-out. Boxes are opaque functions (may emit
/// nothing: 0); a filter always emits exactly one record per output
/// specifier; a star's record may tap out immediately; a sync may store.
/// Saturated to keep serial products from overflowing.
std::size_t min_fanout(const Net& n) {
  constexpr std::size_t kCap = 1u << 20;
  switch (n->kind) {
    case NetNode::Kind::Box:
      return 0;
    case NetNode::Kind::Filter:
      return n->filter->outputs().size();
    case NetNode::Kind::Serial: {
      const std::size_t l = min_fanout(n->left);
      const std::size_t r = min_fanout(n->right);
      if (l == 0 || r == 0) {
        return 0;
      }
      return l > kCap / r ? kCap : l * r;
    }
    case NetNode::Kind::Parallel:
      return std::min(min_fanout(n->left), min_fanout(n->right));
    case NetNode::Kind::Star:
      return min_fanout(n->child) == 0 ? 0 : 1;
    case NetNode::Kind::Split:
      return min_fanout(n->child);
    case NetNode::Kind::Sync:
      return 0;
  }
  return 0;
}

void config_lint(const Net& net, const VerifyOptions& opts, Ctx& ctx) {
  bool has_det = false;
  bool has_sync = false;
  walk_topology(net, "net", [&](const Net& n, const std::string& path) {
    switch (n->kind) {
      case NetNode::Kind::Parallel:
      case NetNode::Kind::Star:
      case NetNode::Kind::Split:
        has_det = has_det || n->det;
        break;
      case NetNode::Kind::Sync: {
        has_sync = true;
        // A synchrocell must hold (slots - 1) records in its interior
        // before the completing record can ever fire the merge. A det/sync
        // cap below that is a statically-guaranteed wedge: FailFast errors
        // the session before the first merge, Spill throttles it forever.
        const std::size_t prefill = n->sync_patterns.size() - 1;
        if (opts.det_capacity > 0 && prefill > opts.det_capacity) {
          ctx.diag(
              LintCode::ConfigDetCapacity,
              opts.det_fail_fast ? LintSeverity::Error : LintSeverity::Warning,
              path + "/sync", std::to_string(opts.det_capacity),
              "det_capacity=" + std::to_string(opts.det_capacity) +
                  " is below the " + std::to_string(prefill) +
                  " records this synchrocell must buffer before it can fire: " +
                  (opts.det_fail_fast
                       ? "every session hits SessionOverflowError (FailFast) "
                         "before the first merge"
                       : "every session is spill-throttled before the first "
                         "merge"));
        }
        break;
      }
      case NetNode::Kind::Filter: {
        // One input record bursts outputs().size() records into the next
        // inbox in one emission; a bound below the burst parks the filter
        // inside every single quantum — lockstep throughput, the
        // backpressure machinery degenerates into a handbrake.
        const std::size_t burst = n->filter->outputs().size();
        if (opts.inbox_capacity > 0 && burst > opts.inbox_capacity) {
          ctx.diag(LintCode::ConfigInboxCapacity, LintSeverity::Warning,
                   path + "/filter", std::to_string(opts.inbox_capacity),
                   "inbox_capacity=" + std::to_string(opts.inbox_capacity) +
                       " is below this filter's " + std::to_string(burst) +
                       "-record single-input burst: the producer stalls on "
                       "every record it processes");
        }
        break;
      }
      default:
        break;
    }
  });
  if (opts.det_capacity > 0 && !has_det && !has_sync) {
    ctx.diag(LintCode::ConfigDetUnused, LintSeverity::Warning, "net",
             std::to_string(opts.det_capacity),
             "det_capacity=" + std::to_string(opts.det_capacity) +
                 " configured, but the topology has no deterministic "
                 "combinator or synchrocell to charge it against");
  }
  const std::size_t fanout = min_fanout(net);
  if (opts.output_capacity > 0 && fanout > opts.output_capacity) {
    ctx.diag(LintCode::ConfigOutputCredit, LintSeverity::Warning, "net",
             std::to_string(opts.output_capacity),
             "output_capacity=" + std::to_string(opts.output_capacity) +
                 " is below the " + std::to_string(fanout) +
                 " outputs one injected record is guaranteed to produce: a "
                 "session that injects before collecting wedges on its own "
                 "output credit");
  }
}

}  // namespace

VerifyReport verify(const Net& net, const VerifyOptions& opts) {
  if (!net) {
    throw std::invalid_argument("verify: null topology");
  }
  Ctx ctx;
  try {
    const MultiType seed = opts.seed.empty() ? required_input(net) : opts.seed;
    flow(net, seed, "net", ctx);
  } catch (const TypeCheckError& e) {
    // required_input only throws on corrupt/null subnodes — surface it
    // rather than aborting the lint run.
    ctx.diag(LintCode::UnroutableRecord, LintSeverity::Error, "net", "",
             e.what());
  }

  // Post-pass: liveness verdicts need the whole reachable set.
  for (const auto& dpath : ctx.parallel_order) {
    const Ctx::ParallelState& st = ctx.parallels.at(dpath);
    for (std::size_t b = 0; b < st.hit.size(); ++b) {
      if (!st.hit[b]) {
        ctx.diag(LintCode::DeadBranch, LintSeverity::Warning,
                 st.branch_paths[b], describe(st.branch_nodes[b]),
                 "parallel combinator `" + describe(st.node) + "`: branch `" +
                     describe(st.branch_nodes[b]) +
                     "` is never the best-match winner for any reachable "
                     "record type (records may still arrive if clients "
                     "inject wider types than the declared signature)");
      }
    }
  }
  for (const auto& spath : ctx.star_order) {
    const Ctx::StarState& st = ctx.stars.at(spath);
    if (!st.exit_reached) {
      ctx.diag(LintCode::StarNoProgress, LintSeverity::Error, spath,
               st.node->exit.to_string(),
               "serial replication: no reachable record type can ever match "
               "the exit pattern " + st.node->exit.to_string() +
                   " — records circulate in the replica chain without "
                   "progress");
    }
  }
  for (const auto& cpath : ctx.sync_order) {
    const Ctx::SyncState& st = ctx.syncs.at(cpath);
    for (std::size_t i = 0; i < st.fillable.size(); ++i) {
      if (!st.fillable[i]) {
        const Pattern& p = st.node->sync_patterns[i];
        ctx.diag(LintCode::NeverFiringSync, LintSeverity::Warning, cpath,
                 p.to_string(),
                 "synchrocell: no reachable record type fills pattern slot " +
                     p.to_string() +
                     " — the cell can never fire, and records matching its "
                     "other slots are stored forever");
      }
    }
  }

  config_lint(net, opts, ctx);
  return VerifyReport{std::move(ctx.diags)};
}

}  // namespace snet
