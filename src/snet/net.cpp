#include "snet/net.hpp"

#include <sstream>
#include <stdexcept>

namespace snet {

namespace {
std::shared_ptr<NetNode> make_node(NetNode::Kind kind) {
  auto n = std::make_shared<NetNode>();
  n->kind = kind;
  return n;
}

void require(const Net& n, const char* what) {
  if (!n) {
    throw std::invalid_argument(std::string("null operand for ") + what);
  }
}
}  // namespace

Net box(std::string name, const std::string& signature, BoxFn fn) {
  return box(std::move(name), Signature::parse(signature), std::move(fn));
}

Net box(std::string name, Signature sig, BoxFn fn) {
  auto n = make_node(NetNode::Kind::Box);
  n->name = std::move(name);
  n->sig = std::move(sig);
  n->fn = std::move(fn);
  return n;
}

Net filter(const std::string& spec) { return filter(FilterSpec::parse(spec)); }

Net filter(FilterSpec spec) {
  auto n = make_node(NetNode::Kind::Filter);
  n->filter = std::make_shared<const FilterSpec>(std::move(spec));
  return n;
}

Net serial(Net a, Net b) {
  require(a, "serial composition");
  require(b, "serial composition");
  auto n = make_node(NetNode::Kind::Serial);
  n->left = std::move(a);
  n->right = std::move(b);
  return n;
}

namespace {
Net parallel_impl(Net a, Net b, bool det) {
  require(a, "parallel composition");
  require(b, "parallel composition");
  auto n = make_node(NetNode::Kind::Parallel);
  n->left = std::move(a);
  n->right = std::move(b);
  n->det = det;
  return n;
}

Net star_impl(Net a, Pattern exit, bool det) {
  require(a, "serial replication");
  auto n = make_node(NetNode::Kind::Star);
  n->child = std::move(a);
  n->exit = std::move(exit);
  n->det = det;
  return n;
}

Net split_impl(Net a, const std::string& tag, bool det) {
  require(a, "parallel replication");
  auto n = make_node(NetNode::Kind::Split);
  n->child = std::move(a);
  n->split_tag = tag_label(tag);
  n->det = det;
  return n;
}
}  // namespace

Net parallel(Net a, Net b) { return parallel_impl(std::move(a), std::move(b), false); }
Net parallel_det(Net a, Net b) { return parallel_impl(std::move(a), std::move(b), true); }

Net star(Net a, const std::string& exit_pattern) {
  return star_impl(std::move(a), Pattern::parse(exit_pattern), false);
}
Net star(Net a, Pattern exit) { return star_impl(std::move(a), std::move(exit), false); }
Net star_det(Net a, const std::string& exit_pattern) {
  return star_impl(std::move(a), Pattern::parse(exit_pattern), true);
}
Net star_det(Net a, Pattern exit) {
  return star_impl(std::move(a), std::move(exit), true);
}

Net split(Net a, const std::string& tag) { return split_impl(std::move(a), tag, false); }
Net split_det(Net a, const std::string& tag) {
  return split_impl(std::move(a), tag, true);
}

Net sync(std::initializer_list<std::string> patterns) {
  std::vector<Pattern> ps;
  ps.reserve(patterns.size());
  for (const auto& p : patterns) {
    ps.push_back(Pattern::parse(p));
  }
  return sync_patterns(std::move(ps));
}

Net sync_patterns(std::vector<Pattern> patterns) {
  if (patterns.size() < 2) {
    throw std::invalid_argument("synchrocell needs at least two patterns");
  }
  auto n = make_node(NetNode::Kind::Sync);
  n->sync_patterns = std::move(patterns);
  return n;
}

namespace {
void render(const Net& n, std::ostream& os) {
  switch (n->kind) {
    case NetNode::Kind::Box:
      os << n->name;
      return;
    case NetNode::Kind::Filter:
      os << n->filter->to_string();
      return;
    case NetNode::Kind::Serial:
      render(n->left, os);
      os << " .. ";
      render(n->right, os);
      return;
    case NetNode::Kind::Parallel:
      os << '(';
      render(n->left, os);
      os << (n->det ? " | " : " || ");
      render(n->right, os);
      os << ')';
      return;
    case NetNode::Kind::Star:
      os << '(';
      render(n->child, os);
      os << (n->det ? " * " : " ** ") << n->exit.to_string() << ')';
      return;
    case NetNode::Kind::Split:
      os << '(';
      render(n->child, os);
      os << (n->det ? " ! " : " !! ") << label_display(n->split_tag) << ')';
      return;
    case NetNode::Kind::Sync: {
      os << "[|";
      bool first = true;
      for (const auto& p : n->sync_patterns) {
        os << (first ? "" : ", ") << p.to_string();
        first = false;
      }
      os << "|]";
      return;
    }
  }
}
}  // namespace

std::string describe(const Net& net) {
  std::ostringstream os;
  render(net, os);
  return os.str();
}

}  // namespace snet
