#ifndef SNETSAC_SNET_DOT_HPP
#define SNETSAC_SNET_DOT_HPP

/// \file dot.hpp
/// Graphviz export, in two flavours:
///
///  * `to_dot(Net)` — the *static* topology, drawn like the paper's
///    figures: boxes with signature inscriptions, filters, replicators
///    with their pattern/tag annotations.
///  * `to_dot(Net, VerifyReport)` — the static topology with the
///    verifier's findings painted on: components covered by an error
///    diagnostic red, by a warning orange (dead branches, never-firing
///    synchrocells, unroutable records, stars without progress).
///  * `to_dot(NetworkStats)` — the *dynamic* entity graph after a run:
///    every materialised replica with its record counters, which
///    visualises the demand-driven unfolding (e.g. Fig. 2's stage×k grid).

#include <string>

#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/verify.hpp"

namespace snet {

/// Renders the topology as a dot digraph (paper-figure style).
std::string to_dot(const Net& net);

/// The topology with the verifier's diagnostics overlaid (snetlint --dot).
std::string to_dot(const Net& net, const VerifyReport& report);

/// Renders the materialised entity graph of a finished run; edges are not
/// reconstructed (entity wiring is dynamic), entities are grouped by their
/// hierarchical name prefix instead.
std::string to_dot(const NetworkStats& stats);

}  // namespace snet

#endif
