#ifndef SNETSAC_SNET_SIGNATURE_HPP
#define SNETSAC_SNET_SIGNATURE_HPP

/// \file signature.hpp
/// Box signatures: "a mapping from an input type to a disjunction of
/// potential output types", e.g. `box foo (a,<b>) -> (c) | (c,d,<e>)`.
///
/// The *ordered* label sequence matters for the box interface (it defines
/// how `snet_out` arguments map to labels); the set view of the same data
/// is the type signature used for reasoning in the S-Net domain.

#include <string>
#include <vector>

#include "snet/labels.hpp"
#include "snet/rtypes.hpp"

namespace snet {

/// One signature variant: labels in declaration order.
struct SigVariant {
  std::vector<Label> labels;

  /// The unordered type view.
  RecordType type() const { return RecordType(labels); }
  std::string to_string() const;
};

struct Signature {
  SigVariant input;
  std::vector<SigVariant> outputs;

  /// Parses `(a, <b>) -> (c) | (c, d, <e>)`. Braces are accepted in place
  /// of parentheses.
  static Signature parse(const std::string& text);

  MultiType input_type() const { return MultiType({input.type()}); }
  MultiType output_type() const;

  std::string to_string() const;
};

}  // namespace snet

#endif
