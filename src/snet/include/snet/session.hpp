#ifndef SNETSAC_SNET_SESSION_HPP
#define SNETSAC_SNET_SESSION_HPP

/// \file session.hpp
/// The port/session client surface of a running Network.
///
/// A `Network` is no longer a single global inject/collect funnel: clients
/// talk to it through *ports*. `Network::input()` / `Network::output()`
/// are the ports of the built-in default session; `Network::open_session()`
/// opens an independent logical client session over the *same* instantiated
/// topology — records are session-stamped on entry (hidden metadata, like
/// det stamps, so the stamp never perturbs type matching or shape-interned
/// routing) and demultiplexed back to the owning session's `OutputPort`.
/// Many concurrent clients therefore share one entity graph instead of
/// instantiating a network per request.
///
/// Ports are where the end-to-end resource bound surfaces (the
/// extra-functional stream semantics of S+Net): with
/// `Options::inbox_capacity` set, `InputPort::inject` blocks when the
/// entry inbox is full (cooperatively — a worker thread helps execute
/// tasks instead of blocking its pool slot), `try_inject` reports "full"
/// without blocking, and a full session `OutputPort` buffer
/// (`Options::output_capacity`) suspends the producing entity so pressure
/// propagates upstream, output port to input port.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "snet/record.hpp"

namespace snet {

class Entity;
class Network;
class SessionState;

/// Bounded input side of a session. Thread-safe: multiple producer
/// threads may inject into the same port concurrently.
class InputPort {
 public:
  InputPort(const InputPort&) = delete;
  InputPort& operator=(const InputPort&) = delete;

  /// Feeds a record into the session. With a bounded entry inbox this
  /// blocks until credit is available; on an executor worker (a box
  /// injecting into a nested network) it helps execute tasks instead of
  /// blocking the pool slot. Throws std::logic_error after close(), and
  /// rethrows the network's first entity error if the network fails
  /// while the inject is blocked (a dead pipeline never releases
  /// credit).
  void inject(Record r);

  /// Non-blocking inject: returns false — leaving \p r intact — when the
  /// entry inbox is at capacity, so the client can apply its own policy
  /// (drop, retry, shed load) instead of stalling.
  bool try_inject(Record& r);

  /// Batched inject: feeds every record, blocking as needed. The batch
  /// shares the session stamp/credit bookkeeping of a single call site.
  void inject_all(std::vector<Record> records);

  /// Declares this session's input finished. Idempotent. The session's
  /// OutputPort completes once the session's in-flight records drain.
  void close();

  bool closed() const;

 private:
  friend class SessionState;
  InputPort(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  Network* net_;
  SessionState* state_;
};

/// Output side of a session: a stream of the session's own results,
/// consumable by blocking pops (`next`), bulk drain (`collect`), range
/// iteration, or a push callback (`on_output`).
class OutputPort {
 public:
  OutputPort(const OutputPort&) = delete;
  OutputPort& operator=(const OutputPort&) = delete;

  /// Blocks for the session's next output record; std::nullopt once the
  /// session is closed and drained. Rethrows the first entity error.
  std::optional<Record> next();

  /// Closes the session's input (if still open) and drains every
  /// remaining output of this session.
  std::vector<Record> collect();

  /// Push mode: \p callback is invoked for every output record of this
  /// session *from a worker thread* (must be thread-compatible with the
  /// client's world; calls are serialised and in session order). Records
  /// already buffered are flushed to the callback first; afterwards the
  /// port never buffers, so output backpressure is disabled for this
  /// session — the callback itself is the consumer. Install-once: a
  /// second call throws std::logic_error.
  void on_output(std::function<void(Record)> callback);

  struct sentinel {};

  /// Input iterator over the session's outputs; ++ blocks like next().
  class iterator {
   public:
    using value_type = Record;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    Record& operator*() { return *current_; }
    Record* operator->() { return &*current_; }
    iterator& operator++() {
      current_ = port_->next();
      return *this;
    }
    void operator++(int) { ++*this; }
    bool operator==(sentinel) const { return !current_.has_value(); }

   private:
    friend class OutputPort;
    explicit iterator(OutputPort* port) : port_(port), current_(port->next()) {}

    OutputPort* port_;
    std::optional<Record> current_;
  };

  /// `for (snet::Record& r : net.output()) ...` — terminates when the
  /// session closes and drains. begin() already blocks for the first
  /// record.
  iterator begin() { return iterator(this); }
  sentinel end() const { return {}; }

 private:
  friend class SessionState;
  OutputPort(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  Network* net_;
  SessionState* state_;
};

/// Internal per-session runtime state, owned by the Network for its whole
/// lifetime (records carry a raw pointer to it as their session stamp).
/// Clients only ever see the facade ports and the Session handle.
class SessionState {
 public:
  SessionState(Network& net, std::uint32_t id)
      : id_(id), in_(net, *this), out_(net, *this) {}

  SessionState(const SessionState&) = delete;
  SessionState& operator=(const SessionState&) = delete;

  std::uint32_t id() const { return id_; }
  InputPort& input() { return in_; }
  OutputPort& output() { return out_; }

 private:
  friend class Network;
  friend class InputPort;
  friend class OutputPort;

  const std::uint32_t id_;

  /// Records of this session currently inside the network (quiescence is
  /// per session: closed + live == 0 completes the OutputPort).
  std::atomic<std::int64_t> live_{0};
  std::atomic<bool> closed_{false};

  // --- guarded by Network::out_mu_ ------------------------------------
  std::deque<Record> buffer_;          ///< demuxed outputs awaiting the client
  std::uint64_t produced_ = 0;
  std::function<void(Record)> sink_;   ///< on_output callback, if any
  std::vector<Entity*> out_waiters_;   ///< producers stalled on a full buffer
  /// Handle released while records were still in flight: further outputs
  /// are dropped (nobody can consume them), so an abandoned session can
  /// never congest the shared output entity.
  bool abandoned_ = false;

  InputPort in_;
  OutputPort out_;
};

/// A client session handle: an independent logical stream pair over a
/// shared Network. Move-only; destroying the handle *releases* the
/// session — input closed, unconsumed output discarded, state reclaimed
/// once in-flight records drain — so a forgotten session can neither
/// wedge network quiescence nor congest the shared output entity.
/// Port references obtained from the handle die with it; the handle must
/// not outlive the Network.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept
      : net_(std::exchange(other.net_, nullptr)),
        state_(std::exchange(other.state_, nullptr)) {}
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      release();
      net_ = std::exchange(other.net_, nullptr);
      state_ = std::exchange(other.state_, nullptr);
    }
    return *this;
  }
  ~Session() { release(); }

  /// False for a default-constructed or moved-from handle. Calling any
  /// accessor below on such an empty handle is undefined — check first.
  explicit operator bool() const { return state_ != nullptr; }
  std::uint32_t id() const { return state_->id(); }

  InputPort& input() { return state_->input(); }
  OutputPort& output() { return state_->output(); }

  /// Closes the session's input stream (== input().close()); the handle
  /// stays valid for draining the output.
  void close() { state_->input().close(); }

 private:
  friend class Network;
  Session(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  void release();  // defined in session.cpp (needs Network)

  Network* net_ = nullptr;
  SessionState* state_ = nullptr;
};

}  // namespace snet

#endif
