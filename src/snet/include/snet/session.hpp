#ifndef SNETSAC_SNET_SESSION_HPP
#define SNETSAC_SNET_SESSION_HPP

/// \file session.hpp
/// The port/session client surface of a running Network.
///
/// A `Network` is no longer a single global inject/collect funnel: clients
/// talk to it through *ports*. `Network::input()` / `Network::output()`
/// are the ports of the built-in default session; `Network::open_session()`
/// opens an independent logical client session over the *same* instantiated
/// topology — records are session-stamped on entry (hidden metadata, like
/// det stamps, so the stamp never perturbs type matching or shape-interned
/// routing) and demultiplexed back to the owning session's `OutputPort`.
/// Many concurrent clients therefore share one entity graph instead of
/// instantiating a network per request.
///
/// Ports are where the end-to-end resource bound surfaces (the
/// extra-functional stream semantics of S+Net), and since the per-session
/// QoS rework the bounds are *per tenant*:
///
///  * every session owns an **output credit account** of
///    `output_capacity` records (`SessionOptions::output_capacity`
///    overrides the network default): `InputPort::inject` waits for
///    session credit when the session's un-consumed output (client buffer
///    plus records deferred at the output entity) reaches the bound, and
///    the client's `OutputPort::next` pops replenish it. A slow reader
///    therefore throttles only *itself* — the shared output entity never
///    head-of-line blocks other sessions on its behalf;
///  * every session owns a bounded **input staging queue**
///    (`Options::inbox_capacity` records): a hot tenant blocks on its own
///    queue while the network's input dispatcher forwards staged records
///    into the shared entry by weighted deficit-round-robin
///    (`SessionOptions::weight`), so injection rate cannot monopolise the
///    pipeline;
///  * `try_inject` reports "full" without blocking when either the staging
///    queue or the output credit account is exhausted.

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/mpsc_queue.hpp"
#include "snet/record.hpp"

namespace snet {

class Entity;
class Network;
class SessionState;

namespace detail {
class InputDispatchEntity;
class OutputEntity;
}  // namespace detail

/// Per-session knobs, fixed at `Network::open_session` time.
struct SessionOptions {
  /// Deficit-round-robin weight of this session at the input dispatcher:
  /// under contention a session with weight w receives w shares of entry
  /// bandwidth per round. 0 is promoted to 1.
  unsigned weight = 1;
  /// Overrides `Options::output_capacity` for this session's output
  /// credit account (records). 0 = inherit the network default.
  std::size_t output_capacity = 0;
};

/// Bounded input side of a session. Thread-safe: multiple producer
/// threads may inject into the same port concurrently.
class InputPort {
 public:
  InputPort(const InputPort&) = delete;
  InputPort& operator=(const InputPort&) = delete;

  /// Feeds a record into the session. Blocks while the session's staging
  /// queue is full or its output credit account is exhausted; on an
  /// executor worker (a box injecting into a nested network) it helps
  /// execute tasks instead of blocking the pool slot. Throws
  /// std::logic_error after close(); rethrows the network's first entity
  /// error if the network fails while the inject is blocked, and the
  /// session's own error if the session was failed fast (det/sync cap).
  void inject(Record r);

  /// Non-blocking inject: returns false — leaving \p r intact — when the
  /// session's staging queue is at capacity or its output credit account
  /// is exhausted, so the client can apply its own policy (drop, retry,
  /// shed load) instead of stalling.
  bool try_inject(Record& r);

  /// Batched inject: feeds every record, blocking as needed. The batch
  /// shares the session stamp/credit bookkeeping of a single call site.
  void inject_all(std::vector<Record> records);

  /// Declares this session's input finished. Idempotent. The session's
  /// OutputPort completes once the session's in-flight records drain.
  void close();

  bool closed() const;

 private:
  friend class SessionState;
  InputPort(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  Network* net_;
  SessionState* state_;
};

/// Output side of a session: a stream of the session's own results,
/// consumable by blocking pops (`next`), bulk drain (`collect`), range
/// iteration, or a push callback (`on_output`).
class OutputPort {
 public:
  OutputPort(const OutputPort&) = delete;
  OutputPort& operator=(const OutputPort&) = delete;

  /// Blocks for the session's next output record; std::nullopt once the
  /// session is closed and drained. Each pop releases output credit back
  /// to the session's account. Rethrows the first entity error (or this
  /// session's own fail-fast error).
  std::optional<Record> next();

  /// Closes the session's input (if still open) and drains every
  /// remaining output of this session.
  std::vector<Record> collect();

  /// Streaming batch pop: blocks like next() for one record, then appends
  /// it plus everything else the session's buffer already holds to \p out
  /// — one lock and one whole-span credit release per call instead of one
  /// per record. Returns the number appended; 0 once the session is
  /// closed and drained. The streaming analogue of collect()'s drain loop
  /// (with batching off the span degrades to a single record).
  std::size_t next_span(std::vector<Record>& out);

  /// Push mode: \p callback is invoked for every output record of this
  /// session *from a worker thread* (must be thread-compatible with the
  /// client's world; calls are serialised and in session order). Records
  /// already buffered are flushed to the callback first; afterwards the
  /// port never buffers, so the output credit account is disabled for
  /// this session — the callback itself is the consumer. Install-once: a
  /// second call throws std::logic_error.
  void on_output(std::function<void(Record)> callback);

  struct sentinel {};

  /// Input iterator over the session's outputs; ++ blocks like next().
  class iterator {
   public:
    using value_type = Record;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    Record& operator*() { return *current_; }
    Record* operator->() { return &*current_; }
    iterator& operator++() {
      current_ = port_->next();
      return *this;
    }
    void operator++(int) { ++*this; }
    bool operator==(sentinel) const { return !current_.has_value(); }

   private:
    friend class OutputPort;
    explicit iterator(OutputPort* port) : port_(port), current_(port->next()) {}

    OutputPort* port_;
    std::optional<Record> current_;
  };

  /// `for (snet::Record& r : net.output()) ...` — terminates when the
  /// session closes and drains. begin() already blocks for the first
  /// record.
  iterator begin() { return iterator(this); }
  sentinel end() const { return {}; }

 private:
  friend class SessionState;
  OutputPort(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  Network* net_;
  SessionState* state_;
};

/// Internal per-session runtime state, owned by the Network for its whole
/// lifetime (records carry a raw pointer to it as their session stamp).
/// Clients only ever see the facade ports and the Session handle.
class SessionState {
 public:
  SessionState(Network& net, std::uint32_t id, SessionOptions opts);

  SessionState(const SessionState&) = delete;
  SessionState& operator=(const SessionState&) = delete;

  std::uint32_t id() const { return id_; }
  unsigned weight() const { return weight_; }
  InputPort& input() { return in_; }
  OutputPort& output() { return out_; }

  /// Failed fast (det/sync cap FailFast policy): the session's ports
  /// rethrow its error; in-flight records are drained and dropped.
  bool errored() const { return errored_.load(std::memory_order_acquire); }
  /// Handle released while records were in flight: outputs are dropped.
  bool abandoned() const { return abandoned_.load(std::memory_order_acquire); }
  /// Interior (det/sync) buffering over the per-session cap under the
  /// Spill policy: the input dispatcher pauses this session until the
  /// region drains below the watermark.
  bool throttled() const { return throttled_.load(std::memory_order_acquire); }

  /// Static+dynamic hand-off for the cross-object guard: Network locks its
  /// own out_mu_ member, but this session's guarded fields are annotated
  /// against the *reference* below — asserting tells clang (and, checked,
  /// verifies) they name the same capability.
  void assert_output_locked() const SNETSAC_ASSERT_CAPABILITY(out_mu_) {
    out_mu_.assert_held();
  }
  /// Same hand-off for Network::dispatch_mu_ (guards listed_).
  void assert_dispatch_locked() const SNETSAC_ASSERT_CAPABILITY(dispatch_mu_) {
    dispatch_mu_.assert_held();
  }

 private:
  friend class Network;
  friend class InputPort;
  friend class OutputPort;
  friend class detail::InputDispatchEntity;

  /// Invokes the installed on_output sink *outside* out_mu_. Safe without
  /// the capability because a sink is install-once (port_on_output rejects
  /// re-installation), the caller observed the install under the lock, and
  /// only the single worker running the output entity reaches here —
  /// exactly the protocol argument the analysis cannot follow, so the
  /// access is annotated away instead of laundered through a cast.
  void deliver_to_sink(Record r) SNETSAC_NO_TSA { sink_(std::move(r)); }

  /// Aliases of Network::out_mu_ / Network::dispatch_mu_ — the capabilities
  /// the guarded fields below are annotated against (a session has no
  /// locks of its own; its state lives under the network's).
  snetsac::runtime::Mutex& out_mu_;
  snetsac::runtime::Mutex& dispatch_mu_;

  const std::uint32_t id_;
  const unsigned weight_;
  /// Effective output credit account bound (records the client has not
  /// consumed yet: OutputPort buffer + records deferred at the output
  /// entity). 0 = unbounded.
  const std::size_t out_cap_;

  /// Records of this session currently inside the network, staging queue
  /// and output-entity deferral included (quiescence is per session:
  /// closed + live == 0 completes the OutputPort).
  std::atomic<std::int64_t> live_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> abandoned_{false};
  std::atomic<bool> errored_{false};
  std::atomic<bool> throttled_{false};

  // --- input side -------------------------------------------------------
  /// Per-session staging queue (bounded to Options::inbox_capacity): the
  /// only queue this session's inject can block on, so a full one throttles
  /// exactly this tenant. Drained by the input dispatcher under DRR.
  snetsac::runtime::MpscQueue<Record> staging_;
  /// On the dispatcher's radar.
  bool listed_ SNETSAC_GUARDED_BY(dispatch_mu_) = false;
  std::int64_t deficit_ = 0;  ///< DRR deficit; input-dispatcher worker only

  /// Records buffered inside det collectors / synchrocells on behalf of
  /// this session (the per-session interior account, Options::det_capacity).
  std::atomic<std::int64_t> interior_{0};

  // --- output credit account -------------------------------------------
  /// buffer_.size() + parked_: the un-consumed output charged against
  /// out_cap_. Mutated under Network::out_mu_; atomic so try_inject can
  /// peek without the lock.
  std::atomic<std::int64_t> out_account_{0};
  /// Records deferred at the output entity because the account was full.
  std::atomic<std::int64_t> parked_{0};

  // --- per-session QoS counters (relaxed; surfaced via NetworkStats) ----
  std::atomic<std::uint64_t> credit_waits_{0};  ///< injects that blocked on output credit
  std::atomic<std::uint64_t> output_parks_{0};  ///< records deferred at the output entity
  std::atomic<std::uint64_t> forwarded_{0};     ///< records the DRR dispatcher forwarded
  std::atomic<std::uint64_t> drr_turns_{0};     ///< DRR turns this session received
  std::atomic<std::uint64_t> spilled_{0};       ///< det/sync records spilled over the cap

  // --- guarded by Network::out_mu_ (via the out_mu_ alias) -------------
  /// Demuxed outputs awaiting the client.
  std::deque<Record> buffer_ SNETSAC_GUARDED_BY(out_mu_);
  std::uint64_t produced_ SNETSAC_GUARDED_BY(out_mu_) = 0;
  /// on_output callback, if any.
  std::function<void(Record)> sink_ SNETSAC_GUARDED_BY(out_mu_);
  /// Entities awaiting this session's output credit.
  std::vector<Entity*> out_waiters_ SNETSAC_GUARDED_BY(out_mu_);
  /// Fail-fast error, if any.
  std::exception_ptr error_ SNETSAC_GUARDED_BY(out_mu_);

  InputPort in_;
  OutputPort out_;
};

/// A client session handle: an independent logical stream pair over a
/// shared Network. Move-only; destroying the handle *releases* the
/// session — input closed, unconsumed output discarded, state reclaimed
/// once in-flight records drain — so a forgotten session can neither
/// wedge network quiescence nor hold output credit hostage.
/// Port references obtained from the handle die with it; the handle must
/// not outlive the Network.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept
      : net_(std::exchange(other.net_, nullptr)),
        state_(std::exchange(other.state_, nullptr)) {}
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      release();
      net_ = std::exchange(other.net_, nullptr);
      state_ = std::exchange(other.state_, nullptr);
    }
    return *this;
  }
  ~Session() { release(); }

  /// False for a default-constructed or moved-from handle. Calling any
  /// accessor below on such an empty handle is undefined — check first.
  explicit operator bool() const { return state_ != nullptr; }
  std::uint32_t id() const { return state_->id(); }
  unsigned weight() const { return state_->weight(); }

  InputPort& input() { return state_->input(); }
  OutputPort& output() { return state_->output(); }

  /// Closes the session's input stream (== input().close()); the handle
  /// stays valid for draining the output.
  void close() { state_->input().close(); }

 private:
  friend class Network;
  Session(Network& net, SessionState& state) : net_(&net), state_(&state) {}

  void release();  // defined in session.cpp (needs Network)

  Network* net_ = nullptr;
  SessionState* state_ = nullptr;
};

}  // namespace snet

#endif
