#ifndef SNETSAC_SNET_PARSE_HPP
#define SNETSAC_SNET_PARSE_HPP

/// \file parse.hpp
/// Recursive-descent parsers for the S-Net textual fragments (tag
/// expressions, patterns, signature variants, filters). The network
/// language frontend in snet/lang composes these same routines.

#include "snet/filter.hpp"
#include "snet/pattern.hpp"
#include "snet/signature.hpp"
#include "snet/tagexpr.hpp"
#include "snet/text.hpp"

namespace snet::parse {

/// Full-precedence tag expression: `||` < `&&` < comparisons < `+ -` <
/// `* / %` < unary `- !` < primary (int literal, `<tag>`, parenthesised).
TagExpr tag_expression(text::Cursor& cur);

/// `{ label, ... }` optionally followed by `if <guard>`.
Pattern pattern(text::Cursor& cur);

/// `( label, ... )` — `{}` accepted as well.
SigVariant sig_variant(text::Cursor& cur);

/// `variant -> variant | variant | ...`
Signature signature(text::Cursor& cur);

/// One filter output specifier `{ item, ... }`.
FilterSpec::Output filter_output(text::Cursor& cur);

/// `pattern -> output; output; ...` (no surrounding brackets).
FilterSpec filter_body(text::Cursor& cur);

}  // namespace snet::parse

#endif
