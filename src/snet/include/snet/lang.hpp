#ifndef SNETSAC_SNET_LANG_HPP
#define SNETSAC_SNET_LANG_HPP

/// \file lang.hpp
/// The S-Net network language frontend: parse network definitions written
/// in the paper's textual notation and elaborate them into Net topologies.
///
/// Grammar (EBNF; tokens per snet/text.hpp):
///
///   program  := netdef | expr
///   netdef   := 'net' IDENT '{' decl* 'connect' expr ';' '}'
///   decl     := 'box' IDENT '(' signature ')' ';'
///             | netdef                      // nested subnet
///   expr     := serial (('||' | '|') serial)*          // || nondet, | det
///   serial   := postfix ('..' postfix)*
///   postfix  := primary ( '**' pattern | '*' pattern
///                       | '!!' TAG | '!' TAG )*
///   primary  := IDENT
///             | '[' filter ']'              // [{pat} -> {rec}; ...]
///             | '[' '|' pattern (',' pattern)* '|' ']'   // synchrocell
///             | '(' expr ')'
///
/// Box implementations are *bound* by name: the computation layer (SaC in
/// the paper, C++ functions here) is supplied through a Bindings table,
/// keeping the strict separation of coordination and computation.
///
/// Deviation from the paper's notation, documented in DESIGN.md: guards in
/// patterns are written `{<level>} if <level> > 40` because the paper's
/// `{<level>} | <level> > 40` collides with variant alternation.

#include <map>
#include <string>

#include "snet/net.hpp"
#include "snet/text.hpp"

namespace snet::lang {

class LangError : public std::runtime_error {
 public:
  explicit LangError(const std::string& what) : std::runtime_error(what) {}
};

/// Named implementations available to network programs.
class Bindings {
 public:
  /// Binds a box function; the box's signature comes from the program's
  /// `box` declaration.
  Bindings& bind_box(std::string name, BoxFn fn);

  /// Binds a complete subnetwork (e.g. a Net built in C++); usable as an
  /// operand name without a `box` declaration.
  Bindings& bind_net(std::string name, Net net);

  const BoxFn* find_box(const std::string& name) const;
  const Net* find_net(const std::string& name) const;

 private:
  std::map<std::string, BoxFn> boxes_;
  std::map<std::string, Net> nets_;
};

/// Parses and elaborates \p source. Accepts either a full `net name {...}`
/// definition or a bare combinator expression over bound names.
Net parse_network(const std::string& source, const Bindings& bindings);

/// The name of the outermost `net` definition ("" for bare expressions).
struct ParsedNetwork {
  std::string name;
  Net topology;
};
ParsedNetwork parse_network_named(const std::string& source, const Bindings& bindings);

}  // namespace snet::lang

#endif
