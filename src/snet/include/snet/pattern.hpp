#ifndef SNETSAC_SNET_PATTERN_HPP
#define SNETSAC_SNET_PATTERN_HPP

/// \file pattern.hpp
/// Type patterns with optional tag guards. Patterns appear as the exit
/// condition of serial replication (`A ** {<done>}`, Fig. 1) and on the
/// left-hand side of filters. The paper's throttled network (Fig. 3) uses
/// the guarded exit pattern `{<level>} | <level> > 40`; since `|` also
/// separates variants, our concrete syntax is `{<level>} if <level> > 40`.

#include <optional>
#include <string>

#include "snet/rtypes.hpp"
#include "snet/tagexpr.hpp"

namespace snet {

struct Pattern {
  RecordType type;
  std::optional<TagExpr> guard;

  Pattern() = default;
  explicit Pattern(RecordType t) : type(std::move(t)) {}
  Pattern(RecordType t, TagExpr g) : type(std::move(t)), guard(std::move(g)) {}

  /// Parses e.g. `{<done>}`, `{board, <k>}`, `{<level>} if <level> > 40`.
  static Pattern parse(const std::string& text);

  /// A record matches when it carries all pattern labels and, if present,
  /// the guard evaluates to true. The label half runs the mask-then-subset
  /// protocol (see shapes.hpp); only the guard touches the record's tag
  /// values — which is why routing entities can memoize `type.matches`
  /// per shape but must evaluate guards per record.
  bool matches(const Record& r) const {
    return type.matches(r) && (!guard || guard->eval_bool(r));
  }

  std::string to_string() const {
    return guard ? type.to_string() + " if " + guard->to_string() : type.to_string();
  }
};

}  // namespace snet

#endif
