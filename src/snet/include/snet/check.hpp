#ifndef SNETSAC_SNET_CHECK_HPP
#define SNETSAC_SNET_CHECK_HPP

/// \file check.hpp
/// Static signature inference over network topologies. "Each network is
/// associated with a type signature. However, unlike box signatures they
/// are inferred by the compiler." (paper, §4).
///
/// Inference runs in two phases:
///
///  1. `required_input` — bottom-up: the label sets a network needs on
///     incoming records (used both for checking and for best-match routing
///     at parallel combinators).
///  2. `propagate` — forward: starting from the network's own input
///     variants, compute the (lower-bound) types of records each component
///     can produce, *including flow inheritance* — excess labels of an
///     input record re-appear on outputs. This is what makes the paper's
///     Fig. 2 filter `[{} -> {<k>=1}]` check out against a downstream
///     `!!<k>` even though `board`/`opts` "do not occur in the filter".
///
/// Serial composition and serial replication verify connectability and
/// raise TypeCheckError on mismatch. Output types are lower bounds: by
/// record subtyping, actual records may always carry additional labels.

#include <stdexcept>
#include <string>

#include "snet/net.hpp"
#include "snet/rtypes.hpp"

namespace snet {

class TypeCheckError : public std::runtime_error {
 public:
  explicit TypeCheckError(const std::string& what) : std::runtime_error(what) {}
};

struct NetSignature {
  MultiType input;
  MultiType output;

  std::string to_string() const {
    return input.to_string() + " -> " + output.to_string();
  }
};

/// Infers the full signature of \p net (phase 1 + phase 2), checking
/// combinator compatibility. Throws TypeCheckError with the offending
/// subexpression.
NetSignature infer(const Net& net);

/// Phase 1 only: the input variants \p net accepts.
MultiType required_input(const Net& net);

/// Phase 2 only: output variants produced when \p incoming variants are
/// fed in. Throws TypeCheckError when a variant cannot be handled.
MultiType propagate(const Net& net, const MultiType& incoming);

/// True when a record of (lower-bound) type \p produced is accepted by a
/// network with input multitype \p input: some input variant's labels are
/// all guaranteed present.
bool accepts_variant(const MultiType& input, const RecordType& produced);

}  // namespace snet

#endif
