#ifndef SNETSAC_SNET_STREAM_HPP
#define SNETSAC_SNET_STREAM_HPP

/// \file stream.hpp
/// Messages travelling on streams between runtime entities. Almost always
/// a record; `Poke` is an internal control nudge (e.g. a deterministic
/// scope telling its collector that a group completed upstream).

#include <utility>

#include "snet/record.hpp"

namespace snet {

struct Message {
  enum class Kind { Rec, Poke };

  Kind kind = Kind::Rec;
  Record rec;

  static Message record(Record r) {
    Message m;
    m.kind = Kind::Rec;
    m.rec = std::move(r);
    return m;
  }
  static Message poke() {
    Message m;
    m.kind = Kind::Poke;
    return m;
  }
};

}  // namespace snet

#endif
