#ifndef SNETSAC_SNET_LABELS_HPP
#define SNETSAC_SNET_LABELS_HPP

/// \file labels.hpp
/// Record labels. "Messages on these typed streams are organised as
/// non-recursive records, i.e. label-value pairs. Labels are subdivided
/// into fields and tags. Fields are associated with values from the SaC
/// domain that are entirely opaque to S-Net; tags are associated with
/// integer numbers ... Tag labels are distinguished from field labels by
/// angular brackets." (paper, Section 4).
///
/// Label names are interned process-wide so records and types can compare
/// labels as integers. Whole label *sets* are interned one level up as
/// shapes (shapes.hpp), which is what makes record routing O(1): a label's
/// contribution to a shape's bloom mask is `label_bit` there.

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace snet {

enum class LabelKind : std::uint8_t { Field = 0, Tag = 1 };

/// An interned label. Ordering is (kind, id); ids are dense per kind.
struct Label {
  LabelKind kind{LabelKind::Field};
  std::int32_t id{0};

  auto operator<=>(const Label&) const = default;
};

/// Interns a field label, e.g. `board`.
Label field_label(std::string_view name);
/// Interns a tag label, e.g. `<k>`(pass just `k`).
Label tag_label(std::string_view name);

/// The bare name of a label.
const std::string& label_name(Label label);
/// Display form: `name` for fields, `<name>` for tags.
std::string label_display(Label label);

}  // namespace snet

#endif
