#ifndef SNETSAC_SNET_NET_HPP
#define SNETSAC_SNET_NET_HPP

/// \file net.hpp
/// Network topologies as immutable expression trees. "We use algebraic
/// formulae to define connectivity in streaming networks" (paper, §4):
/// every network, however complex, is a single-input single-output (SISO)
/// component built from boxes and filters with four combinators —
/// serial `A..B`, parallel `A||B`, serial replication `A**pat`, parallel
/// replication `A!!<tag>` — each with a deterministic variant (`|`, `*`,
/// `!`; serial composition needs none).
///
/// A `Net` value is only a description; `Network` (network.hpp)
/// instantiates it into running entities.

#include <memory>
#include <string>
#include <vector>

#include "snet/box.hpp"
#include "snet/filter.hpp"
#include "snet/pattern.hpp"
#include "snet/signature.hpp"

namespace snet {

struct NetNode;
using Net = std::shared_ptr<const NetNode>;

struct NetNode {
  enum class Kind { Box, Filter, Serial, Parallel, Star, Split, Sync };

  Kind kind;

  // Box
  std::string name;
  Signature sig;
  BoxFn fn;

  // Filter
  std::shared_ptr<const FilterSpec> filter;

  // Serial / Parallel
  Net left;
  Net right;

  // Star / Split
  Net child;
  Pattern exit;      // Star: the tap pattern "before every replica"
  Label split_tag{}; // Split: the routing tag

  // Parallel / Star / Split: deterministic variant?
  bool det = false;

  // Sync (extension beyond this paper; core S-Net synchrocell)
  std::vector<Pattern> sync_patterns;
};

/// A box with signature given in S-Net notation, e.g.
/// `box("solveOneLevel", "(board, opts) -> (board, opts) | (board, <done>)", fn)`.
Net box(std::string name, const std::string& signature, BoxFn fn);
Net box(std::string name, Signature sig, BoxFn fn);

/// A filter in the paper's notation, e.g. `filter("{<k>} -> {<k>=<k>%4}")`.
Net filter(const std::string& spec);
Net filter(FilterSpec spec);

/// Serial composition `A..B` (also via `a >> b`).
Net serial(Net a, Net b);

/// Parallel composition: `parallel` is the non-deterministic `A||B`,
/// `parallel_det` the deterministic `A|B`.
Net parallel(Net a, Net b);
Net parallel_det(Net a, Net b);

/// Serial replication `A**pattern` (non-deterministic) / `A*pattern`.
Net star(Net a, const std::string& exit_pattern);
Net star(Net a, Pattern exit);
Net star_det(Net a, const std::string& exit_pattern);
Net star_det(Net a, Pattern exit);

/// Parallel replication `A!!<tag>` / deterministic `A!<tag>`.
Net split(Net a, const std::string& tag);
Net split_det(Net a, const std::string& tag);

/// Synchrocell `[| pattern, pattern, ... |]` — joins one record per
/// pattern into a single record, then becomes the identity.
Net sync(std::initializer_list<std::string> patterns);
Net sync_patterns(std::vector<Pattern> patterns);

/// `a >> b` reads as the paper's `a .. b`.
inline Net operator>>(Net a, Net b) { return serial(std::move(a), std::move(b)); }
/// `a | b` is the paper's *non-deterministic* `a || b` (C++ has no `||`
/// overload candidate that short-circuits sensibly here; use parallel_det
/// for the deterministic version).
inline Net operator|(Net a, Net b) { return parallel(std::move(a), std::move(b)); }

/// Structural pretty-printer in the paper's algebraic notation.
std::string describe(const Net& net);

}  // namespace snet

#endif
