#ifndef SNETSAC_SNET_ENTITY_HPP
#define SNETSAC_SNET_ENTITY_HPP

/// \file entity.hpp
/// Runtime entities: every instantiated box, filter, dispatcher, merger
/// and synchrocell is an Entity with a single MPSC inbox, scheduled onto a
/// fixed worker pool in bounded quanta (actor model; Core Guidelines CP.4,
/// CP.41 — the paper's Fig. 2 network legitimately unfolds into hundreds
/// of solveOneLevel instances, which must not become hundreds of OS
/// threads).
///
/// The base class centralises the bookkeeping every entity needs:
///  * the idle/queued/running state machine that guarantees an entity is
///    run by at most one worker at a time,
///  * live-record accounting for network quiescence detection, and
///  * deterministic-scope accounting (a consumed record with k emissions
///    contributes k-1 to every det group it belongs to).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/mpsc_queue.hpp"
#include "snet/stream.hpp"

namespace snet {

class Network;

class Entity {
 public:
  Entity(Network& net, std::string name);
  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  const std::string& name() const { return name_; }

  /// Producer side: enqueue a message and make sure the entity gets
  /// scheduled. Thread-safe.
  void deliver(Message m);

  /// Scheduler side: process up to \p max_messages; must only be invoked
  /// by the scheduler after the entity transitioned to queued state.
  void run_quantum(unsigned max_messages);

  std::uint64_t records_in() const { return in_count_.load(std::memory_order_relaxed); }
  std::uint64_t records_out() const { return out_count_.load(std::memory_order_relaxed); }

 protected:
  /// Consumes one record. Emissions go through send()/transfer().
  virtual void on_record(Record r) = 0;
  /// Handles a control poke (det group completion, etc.).
  virtual void on_poke() {}

  /// Emits a derived record downstream: counted as an emission of the
  /// record currently being consumed (det accounting, live accounting).
  void send(Entity* target, Record r);

  /// Moves a record the entity had previously buffered (and manually
  /// accounted for) downstream without counting it as a fresh emission.
  void transfer(Entity* target, Record r);

  Network& net_;

 private:
  std::string name_;
  snetsac::runtime::MpscQueue<Message> inbox_;
  /// Quantum drain buffer (reused across quanta; only the worker currently
  /// running the entity touches it).
  std::vector<Message> batch_;

  enum State : int { kIdle = 0, kQueued = 1, kRunning = 2, kRunningPending = 3 };
  std::atomic<int> state_{kIdle};

  // Only touched by the single worker currently running the entity.
  std::uint64_t emitted_in_step_ = 0;

  std::atomic<std::uint64_t> in_count_{0};
  std::atomic<std::uint64_t> out_count_{0};
};

}  // namespace snet

#endif
