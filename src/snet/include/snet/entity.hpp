#ifndef SNETSAC_SNET_ENTITY_HPP
#define SNETSAC_SNET_ENTITY_HPP

/// \file entity.hpp
/// Runtime entities: every instantiated box, filter, dispatcher, merger
/// and synchrocell is an Entity with a single MPSC inbox, scheduled onto a
/// fixed worker pool in bounded quanta (actor model; Core Guidelines CP.4,
/// CP.41 — the paper's Fig. 2 network legitimately unfolds into hundreds
/// of solveOneLevel instances, which must not become hundreds of OS
/// threads).
///
/// The base class centralises the bookkeeping every entity needs:
///  * the idle/queued/running/stalled state machine that guarantees an
///    entity is run by at most one worker at a time,
///  * live-record accounting for network quiescence detection,
///  * deterministic-scope accounting (a consumed record with k emissions
///    contributes k-1 to every det group it belongs to), and
///  * the credit/backpressure protocol: a send into a full downstream
///    inbox marks the producer *stalled* — it stops consuming at the next
///    message boundary, parks without occupying a worker, and is
///    re-queued into the scheduler when the consumer drains the inbox
///    below the release watermark. A pool thread is never blocked; the
///    suspension is a state transition, not a wait,
///  * batched emission: with `Options::batching` on, send()/transfer()
///    stage messages in per-target buffers and the matching live/det
///    increments and consume decrements in per-key delta accumulators;
///    flush_all() applies the increments, pushes each buffer with one
///    bounded push_all per (target, flush), and applies the decrements —
///    one inbox lock and one bookkeeping adjustment per batch instead of
///    one per record. Flushes happen at a bounded threshold and at every
///    quantum exit, *before* a stall parks the entity, so order and
///    accounting survive suspensions exactly as in the scalar path, and
///  * session-keyed record deferral: an entity serving many client
///    sessions (the output demux) can park records on an *(entity,
///    session)* credit key instead of stalling wholesale — records of the
///    credit-starved session are held back in per-session FIFO order
///    while every other session's records keep flowing, which is what
///    turns the shared output entity's stall from a cross-session
///    head-of-line block into a per-tenant pause.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/mpsc_queue.hpp"
#include "snet/stream.hpp"

namespace snet {

class Network;
class SessionState;

class Entity {
 public:
  Entity(Network& net, std::string name);
  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  const std::string& name() const { return name_; }

  /// Producer side: enqueue a message and make sure the entity gets
  /// scheduled. Thread-safe. Returns true when the inbox is at/over its
  /// bound after the push — the producing entity should suspend (the
  /// push itself always succeeds: a producer mid-record finishes its
  /// emissions, so overshoot stays bounded by one record's fan-out).
  bool deliver(Message m);

  /// Bounded enqueue for client injection: refuses — leaving \p m intact
  /// — when the inbox is at capacity. On success the entity is scheduled
  /// as with deliver().
  bool try_deliver(Message& m);

  /// Batched deliver: traces and enqueues every message under a single
  /// inbox lock (push_all), then runs the scheduling handshake once.
  /// \p msgs is left empty. Thread-safe, same contract as deliver().
  bool deliver_all(std::vector<Message>& msgs);

  /// Scheduler side: process up to \p max_messages; must only be invoked
  /// by the scheduler after the entity transitioned to queued state.
  void run_quantum(unsigned max_messages);

  /// Credit protocol: registers \p producer to be re-queued once this
  /// entity's inbox drains below the release watermark. Returns false —
  /// without registering — when credit is already available.
  bool await_inbox_credit(Entity* producer);
  /// Same, with an arbitrary callback (client injection waits on a
  /// condition variable rather than as an entity).
  bool await_inbox_credit_cb(std::function<void()> cb);

  /// Re-queues an entity parked by the stall protocol; no-op unless the
  /// entity is currently stalled. Called by credit releasers (a drained
  /// inbox, a popped output buffer).
  void resume_from_stall();

  /// Delivers a control nudge: the entity's next quantum starts with
  /// on_poke even if no record arrives. Used by per-session credit
  /// releases (the poked entity re-examines its deferred sessions) and by
  /// the input dispatcher's wakeup protocol. Thread-safe.
  void poke() { deliver(Message::poke()); }

  std::uint64_t records_in() const { return in_count_.load(std::memory_order_relaxed); }
  std::uint64_t records_out() const { return out_count_.load(std::memory_order_relaxed); }

  /// Records parked on (this, session) credit keys, readable from any
  /// thread (the invariant layer correlates it with the sessions' parked
  /// counters at safe points).
  std::size_t deferred_depth() const {
    return deferred_total_.load(std::memory_order_acquire);
  }

  /// Lost-wakeup query for the invariant layer: true when a producer is
  /// still registered for this inbox's credit although the queue has
  /// drained to (or below) the release watermark — the wakeup its
  /// registration guaranteed will never come. Valid at safe points only
  /// (between quanta): mid-drain the release simply has not fired yet.
  bool inbox_lost_wakeup_suspected() const {
    return inbox_.lost_wakeup_suspected();
  }

 protected:
  /// The *protocol* capability serialising all worker-only state below:
  /// the idle/queued/running CAS handshake guarantees at most one worker
  /// runs this entity at a time, and run_quantum's RoleGuard is where the
  /// guarantee becomes a capability the analysis can track. Virtual
  /// override bodies (on_record and friends) re-assert it at entry —
  /// clang does not propagate attributes through virtual dispatch — which
  /// doubles as a dynamic single-runner check in SNETSAC_CHECKED builds.
  snetsac::runtime::ThreadRole quantum_role_;

  /// Consumes one record. Emissions go through send()/transfer().
  /// Implementations open with `quantum_role_.assert_held()`.
  virtual void on_record(Record r) = 0;
  /// Handles a control poke (det group completion, stall resumption...).
  virtual void on_poke() {}
  /// Runs at the end of every quantum, before the emission buffers are
  /// flushed and before a requested stall parks the entity. Entities that
  /// stage work across the records of a quantum (the output demux's
  /// session batches) complete it here.
  virtual void on_quantum_end() {}

  /// Emits a derived record downstream: counted as an emission of the
  /// record currently being consumed (det accounting, live accounting).
  /// A congested target requests a stall of this entity.
  void send(Entity* target, Record r) SNETSAC_REQUIRES(quantum_role_);

  /// Moves a record the entity had previously buffered (and manually
  /// accounted for) downstream without counting it as a fresh emission.
  /// A congested target requests a stall of this entity.
  void transfer(Entity* target, Record r) SNETSAC_REQUIRES(quantum_role_);

  /// Attempts to register this entity with a credit source; it must
  /// return false when credit is (again) available, in which case the
  /// entity is re-queued immediately instead of parking.
  using StallGate = std::function<bool(Entity*)>;

  /// Asks the runtime to suspend this entity at the end of the message
  /// currently being processed (honoured by run_quantum; unprocessed
  /// batch remainder and inbox survive the suspension).
  void request_stall(StallGate gate) SNETSAC_REQUIRES(quantum_role_) {
    stall_gate_ = std::move(gate);
  }
  /// True once the current quantum has a pending suspension — long
  /// release loops (det collectors) should yield when they see this.
  bool stall_requested() const SNETSAC_REQUIRES(quantum_role_) {
    return static_cast<bool>(stall_gate_);
  }

  /// True when the network runs with batched emission (Options::batching);
  /// entities that stage per-quantum work (the output demux) key their
  /// behaviour off this.
  bool batching() const { return batching_; }

  // --- (entity, session) deferral --------------------------------------
  // Per-session parking for entities that must not stall wholesale when a
  // single session runs out of credit. Only the worker currently running
  // the entity touches the deferred map; the wakeup comes as a poke() from
  // the credit release. A deferred record stays *live* (the compensation
  // mirrors the det-collector buffering pattern), so quiescence and
  // session-state lifetime remain correct while records are parked.

  /// True when records of \p s are currently deferred — later records of
  /// the same session must defer too (per-session FIFO, the
  /// batch-remainder ordering rule of the stall protocol).
  bool defer_pending(const SessionState* s) const SNETSAC_REQUIRES(quantum_role_);
  /// Parks \p r on the (this, s) credit key.
  void defer_record(SessionState* s, Record r) SNETSAC_REQUIRES(quantum_role_);
  /// Retries every deferred session through \p attempt (true = consumed:
  /// the record was delivered or dropped). Stops per session at the first
  /// refusal; a refusal re-registered the credit waiter, so a later poke
  /// re-enters here. Respects stall_requested().
  void flush_deferred(const std::function<bool(SessionState*, Record&)>& attempt)
      SNETSAC_REQUIRES(quantum_role_);
  /// Records currently parked across all sessions.
  std::size_t deferred_count() const {
    return deferred_total_.load(std::memory_order_relaxed);
  }

  Network& net_;

 private:
  /// The deliver()-side scheduling handshake, shared by deliver and
  /// try_deliver once the message is in the inbox.
  void schedule_after_push();
  /// Fires credit waiters the last drain made runnable.
  void release_inbox_credit() SNETSAC_REQUIRES(quantum_role_);

  // --- batched emission (see file comment) ------------------------------
  // All of this is only touched by the single worker currently running
  // the entity.

  /// Per-target staging buffer; flush order is first-use order, and
  /// within a target the buffer preserves emission order, so per-session
  /// FIFO and det order are exactly those of the scalar path.
  struct EmitBuffer {
    Entity* target;
    std::vector<Message> msgs;
  };
  /// Coalesced det-group adjustments for one flush: `add` counts
  /// emissions (applied before the pushes), `sub` counts consumed records
  /// (applied after), so a group's count never transiently drops to zero
  /// while descendants are in flight — the same invariant the eager
  /// scalar ordering (+1 on emit before visibility, -1 after consume)
  /// guarantees record by record.
  struct DetDelta {
    DetScope* scope;
    std::uint64_t seq;
    std::int64_t add = 0;
    std::int64_t sub = 0;
  };
  /// Coalesced live-record accounting, same add/sub split per session.
  struct LiveDelta {
    SessionState* session;
    std::int64_t add = 0;
    std::int64_t sub = 0;
  };

  /// Stages a message for \p target, flushing when the buffered total
  /// reaches the threshold.
  void buffer_message(Entity* target, Message m) SNETSAC_REQUIRES(quantum_role_);
  /// Accumulates the emission-side accounting of \p r (det +1 per stamp,
  /// live +1 for its session).
  void note_emit_accounting(const Record& r) SNETSAC_REQUIRES(quantum_role_);
  void det_delta_add(DetScope* scope, std::uint64_t seq)
      SNETSAC_REQUIRES(quantum_role_);
  void det_delta_sub(DetScope* scope, std::uint64_t seq)
      SNETSAC_REQUIRES(quantum_role_);
  void live_delta_add(SessionState* session) SNETSAC_REQUIRES(quantum_role_);
  void live_delta_sub(SessionState* session) SNETSAC_REQUIRES(quantum_role_);
  /// Applies pending increments, pushes every buffer (one push_all per
  /// target; a congested bounded target requests a stall), then applies
  /// pending decrements and clears the accumulators.
  void flush_all() SNETSAC_REQUIRES(quantum_role_);

  std::string name_;
  snetsac::runtime::MpscQueue<Message> inbox_;
  /// Quantum drain buffer (reused across quanta; only the worker currently
  /// running the entity touches it — guarded by the quantum role).
  /// batch_pos_ marks the resume point after a stall — messages past it
  /// are still owned by the entity.
  std::vector<Message> batch_ SNETSAC_GUARDED_BY(quantum_role_);
  std::size_t batch_pos_ SNETSAC_GUARDED_BY(quantum_role_) = 0;
  /// Scratch for credit firing.
  std::vector<std::function<void()>> released_ SNETSAC_GUARDED_BY(quantum_role_);

  /// (entity, session)-deferred records; only touched by the worker
  /// currently running the entity (like batch_).
  std::unordered_map<SessionState*, std::deque<Record>> deferred_
      SNETSAC_GUARDED_BY(quantum_role_);
  /// Atomic mirror of the deferred map's total so deferred_depth() is
  /// readable from any thread; mutated only inside quanta.
  std::atomic<std::size_t> deferred_total_{0};

  /// Batched-emission state (worker-only, like batch_). The delta vectors
  /// are linear-scanned: a quantum touches a handful of (scope, seq) and
  /// session keys, and the vectors are reused so steady state allocates
  /// nothing. batching_/flush_threshold_ are fixed in the constructor and
  /// read-only afterwards, so they stay outside the role.
  bool batching_ = true;
  std::size_t flush_threshold_ = 256;
  std::vector<EmitBuffer> emit_bufs_ SNETSAC_GUARDED_BY(quantum_role_);
  std::size_t emit_pending_ SNETSAC_GUARDED_BY(quantum_role_) = 0;
  /// Index of the most recent emission target.
  std::size_t last_buf_ SNETSAC_GUARDED_BY(quantum_role_) = 0;
  std::vector<DetDelta> det_deltas_ SNETSAC_GUARDED_BY(quantum_role_);
  std::vector<LiveDelta> live_deltas_ SNETSAC_GUARDED_BY(quantum_role_);
  /// Reused stamp snapshot of the record being consumed — replaces the
  /// per-record heap copy the scalar loop used to make (skipped entirely
  /// for unstamped records).
  std::vector<DetStamp> stamp_scratch_ SNETSAC_GUARDED_BY(quantum_role_);

  /// Set while a quantum is processing; honoured at the next message
  /// boundary. Only touched by the worker currently running the entity.
  StallGate stall_gate_ SNETSAC_GUARDED_BY(quantum_role_);
  /// Set by resume_from_stall: the next quantum starts with an on_poke so
  /// entities with internal backlogs (det collectors) resume draining
  /// even when no new message arrives.
  std::atomic<bool> resume_poke_{false};

  enum State : int {
    kIdle = 0,
    kQueued = 1,
    kRunning = 2,
    kRunningPending = 3,
    kStalled = 4,  // parked on downstream credit; deliver() must not queue
  };
  std::atomic<int> state_{kIdle};

  // Only touched by the single worker currently running the entity.
  std::uint64_t emitted_in_step_ SNETSAC_GUARDED_BY(quantum_role_) = 0;

  /// Emissions since the last counter publish; send/transfer bump this
  /// plain counter and run_quantum folds it into out_count_ once per
  /// quantum — stats stay atomic reads without a per-record RMW.
  std::uint64_t quantum_out_ SNETSAC_GUARDED_BY(quantum_role_) = 0;

  std::atomic<std::uint64_t> in_count_{0};
  std::atomic<std::uint64_t> out_count_{0};
};

}  // namespace snet

#endif
