#ifndef SNETSAC_SNET_DETSCOPE_HPP
#define SNETSAC_SNET_DETSCOPE_HPP

/// \file detscope.hpp
/// Machinery behind the deterministic combinator variants (`|`, `*`, `!`).
///
/// A deterministic region is bracketed by an entry entity and a collector.
/// The entry stamps each incoming record with a fresh *group* sequence
/// number; every record a component produces inherits the stamps of the
/// record it consumed, so all descendants of input record i belong to
/// group i. The scope tracks, per group, how many stamped records are
/// still in flight upstream of the collector; when a group drains, the
/// collector may release its buffered output — strictly in group order.
/// This restores the input order that the non-deterministic merge would
/// scramble, which is exactly the semantic difference the paper draws
/// between `||` and `|`.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "runtime/annotations.hpp"

namespace snet {

class Entity;

class DetScope {
 public:
  explicit DetScope(std::string name) : name_(std::move(name)) {}

  /// The collector poked when a group completes; set once at wiring time.
  void set_collector(Entity* collector) { collector_ = collector; }

  /// Opens the next group with one in-flight record; returns its sequence.
  std::uint64_t open_group();

  /// Adds \p delta in-flight records to group \p seq (consume = -1,
  /// each emission = +1, folded by callers into a single delta).
  /// When the group drains to zero the collector is poked.
  void adjust(std::uint64_t seq, std::int64_t delta);

  /// True when the group has been opened and has fully drained.
  bool complete(std::uint64_t seq) const;

  /// Number of groups opened so far (== the next sequence to be assigned).
  std::uint64_t groups_opened() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Entity* collector_ = nullptr;

  /// Leaf in the lock order: nothing is acquired while mu_ is held (the
  /// completion poke in adjust() fires after the lock drops), so it stays
  /// unranked in checked builds.
  mutable snetsac::runtime::Mutex mu_;
  std::unordered_map<std::uint64_t, std::int64_t> pending_
      SNETSAC_GUARDED_BY(mu_);
  std::uint64_t next_ SNETSAC_GUARDED_BY(mu_) = 0;
};

}  // namespace snet

#endif
