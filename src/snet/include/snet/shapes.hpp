#ifndef SNETSAC_SNET_SHAPES_HPP
#define SNETSAC_SNET_SHAPES_HPP

/// \file shapes.hpp
/// Record *shape* interning. A shape is the sorted set of labels (fields
/// and tags) a record carries — exactly the information every structural
/// match in the coordination layer consumes. Interning shapes process-wide
/// gives each distinct label set a dense `ShapeId` plus a 64-bit label
/// bloom mask, so that on the steady-state path
///
///   * `RecordType::matches` is a mask reject followed by a memoized
///     subset test instead of a per-label scan, and
///   * routing entities can memoize their entire branch decision per
///     `ShapeId` (streams carry a handful of shapes, so the table is tiny).
///
/// Records maintain their `ShapeId` incrementally: every `set_*`/`remove_*`
/// that changes the label set follows a shape *transition* (the hidden-
/// class technique of dynamic-language VMs). Transitions and subset
/// verdicts are immutable facts, so they are cached in thread-local maps —
/// the hot path takes no lock and no fence beyond the TLS lookup.

#include <cstdint>
#include <vector>

#include "snet/labels.hpp"

namespace snet {

/// Dense process-wide shape identifier. Id 0 is always the empty shape.
using ShapeId = std::uint32_t;

/// A shape id together with its bloom mask; what a transition returns, so
/// records can refresh both without a second registry lookup.
struct ShapeRef {
  ShapeId id = 0;
  std::uint64_t mask = 0;
};

/// The bloom bit of one label: bit `h(kind, id) mod 64`. A shape's mask is
/// the OR over its labels. `(need.mask & ~have.mask) != 0` proves a label
/// of `need` is absent from `have`; the converse may be a false positive
/// (two labels can share a bit) and falls back to the exact subset test.
inline std::uint64_t label_bit(Label label) {
  // splitmix64 finalizer over the packed (kind, id) pair.
  std::uint64_t x = (static_cast<std::uint64_t>(label.kind) << 32) |
                    static_cast<std::uint32_t>(label.id);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return 1ULL << (x & 63U);
}

/// Process-wide shape intern table. All methods are thread-safe.
class ShapeRegistry {
 public:
  static ShapeRegistry& instance();

  /// Interns a label set; \p labels need not be sorted or unique.
  /// Structurally equal sets always receive the same id.
  ShapeRef intern(std::vector<Label> labels);

  /// The shape reached from \p from by adding \p label (no-op transition
  /// when already present). Thread-locally cached.
  ShapeRef with(ShapeId from, Label label);

  /// The shape reached from \p from by removing \p label (no-op when
  /// absent). Thread-locally cached.
  ShapeRef without(ShapeId from, Label label);

  /// Exact test: labels(sub) ⊆ labels(super). Thread-locally memoized —
  /// this is the cached half of the mask-then-subset match protocol.
  bool subset(ShapeId sub, ShapeId super);

  /// The sorted label set of a shape (by value: the registry outlives any
  /// caller, but callers must not hold references across interning).
  std::vector<Label> labels(ShapeId id) const;

  std::uint64_t mask(ShapeId id) const;

  /// Number of distinct shapes interned so far (observability, tests).
  std::size_t size() const;

 private:
  ShapeRegistry();
  struct Impl;
  Impl* impl_;  // leaked intentionally: records may outlive static dtors
};

}  // namespace snet

#endif
