#ifndef SNETSAC_SNET_VALUE_HPP
#define SNETSAC_SNET_VALUE_HPP

/// \file value.hpp
/// Field values. Fields carry "values from the SaC domain that are
/// entirely opaque to S-Net" — the coordination layer never inspects them,
/// it only moves them around. We model this with a type-erased, immutable,
/// shared payload: routing a record copies a pointer, never array data.

#include <any>
#include <memory>
#include <stdexcept>
#include <utility>

namespace snet {

using Value = std::shared_ptr<const std::any>;

class ValueError : public std::runtime_error {
 public:
  explicit ValueError(const std::string& what) : std::runtime_error(what) {}
};

/// Wraps an arbitrary (copyable) payload as an opaque field value.
template <class T>
Value make_value(T payload) {
  return std::make_shared<const std::any>(std::in_place_type<std::decay_t<T>>,
                                          std::move(payload));
}

/// Recovers the payload; throws ValueError on type mismatch or null value.
template <class T>
const T& value_as(const Value& v) {
  if (!v) {
    throw ValueError("value_as on empty value");
  }
  const T* p = std::any_cast<T>(v.get());
  if (p == nullptr) {
    throw ValueError(std::string("field value holds ") + v->type().name() +
                     ", requested a different type");
  }
  return *p;
}

}  // namespace snet

#endif
