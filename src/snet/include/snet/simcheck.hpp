#ifndef SNETSAC_SNET_SIMCHECK_HPP
#define SNETSAC_SNET_SIMCHECK_HPP

/// \file simcheck.hpp
/// Protocol scenarios for deterministic schedule exploration.
///
/// Each scenario builds a small Network on a seedable SimExecutor
/// (runtime/sim_executor.hpp) and drives one of the protocol flows the
/// concurrency layer must keep correct under *every* interleaving:
/// mid-batch producer stalls, per-session output deferral and flush,
/// det-buffer Spill and FailFast, and DRR arbitration under flood. The
/// SimExecutor serialises all quanta onto the calling thread and lets a
/// strategy (PCT priorities, uniform random, or exact replay) pick the
/// next runnable task, so one seed == one schedule, reproducible forever.
///
/// After every task (every yield point) the harness re-checks
/// Network::check_protocol_invariants — the conservation laws — and each
/// scenario ends in Network::wait() plus a quiescent check. Violations,
/// wedges (a join no pending task can satisfy) and wrong outputs all
/// surface as runtime::ProtocolInvariantError carrying the decision
/// trace; the driver (tools/schedcheck) prints the seed that found it.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sim_executor.hpp"

namespace snet::simcheck {

/// The schedule a finished run executed, in SimExecutor replay format.
/// `choices[i]` of `option_counts[i]` pending tasks was picked at decision
/// i — the frontier the bounded-DFS driver enumerates siblings of.
struct RunResult {
  std::uint64_t steps = 0;
  std::vector<std::uint32_t> choices;
  std::vector<std::uint32_t> option_counts;
};

/// Registered scenario names, in a stable order.
const std::vector<std::string>& scenario_names();

/// Runs scenario \p name on a fresh SimExecutor configured by \p opts.
/// Throws runtime::ProtocolInvariantError (with the schedule trace in the
/// message) on any protocol violation, std::invalid_argument for an
/// unknown name. Deterministic: same name + same opts => same run.
RunResult run_scenario(const std::string& name,
                       const snetsac::runtime::SimExecutor::Options& opts);

}  // namespace snet::simcheck

#endif
