#ifndef SNETSAC_SNET_WIRE_HPP
#define SNETSAC_SNET_WIRE_HPP

/// \file wire.hpp
/// The shape-indexed record wire format (spec: docs/WIRE_FORMAT.md).
///
/// Records leave the address space as `shape index + packed values`: the
/// stream carries each distinct label set once (a shape-table chunk listing
/// kinds + names, canonically ordered), after which every record of that
/// shape is a fixed-layout body — tag integers and length-prefixed field
/// payloads in shape order, no per-record label names. This is the dense
/// ShapeId idea of shapes.hpp made external: ids are *stream-local* (first
/// use assigns the next index), so a stream is self-contained and two
/// processes never need to agree on interning order.
///
/// Field payloads are opaque to S-Net, so the format cannot know their
/// layout; a process-wide `CodecRegistry` maps payload C++ types to named
/// codecs (built-ins cover SaC arrays and scalar payloads; clients register
/// their own). Det stamps and session ids ride along as hidden metadata,
/// exactly as they do in memory.
///
/// Three consumers:
///  * `WireWriter`/`WireReader` — streaming append + incremental decode,
///    plus random-access *group* frames (a keyed batch of records that can
///    be read back independently after a scan);
///  * the snapshot/replay harness (`tools/snetrec`, bench_json.hpp) —
///    record an InputPort stream during any run, replay it byte-identically;
///  * `SpillStore` — the disk half of `OverflowPolicy::Spill`: det
///    collectors and synchrocells serialize overflow records and restore
///    them on release, so a capped det region's interior stops being live
///    memory (see entities.hpp).

#include <any>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "runtime/annotations.hpp"
#include "snet/record.hpp"

namespace snet::wire {

/// Malformed, truncated or undecodable stream data. The message always
/// names the offending construct (chunk tag, shape index, codec name...).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// --------------------------------------------------------------- codecs

/// One payload codec: encodes/decodes a specific C++ payload type held in
/// a field's `std::any`. `encode` appends the payload bytes to \p out;
/// `decode` rebuilds a Value from exactly those bytes.
struct Codec {
  std::string name;
  std::type_index type;
  std::function<void(const std::any&, std::string&)> encode;
  std::function<Value(const char*, std::size_t)> decode;
};

/// Process-wide codec table. Built-ins are registered on first use:
///   scalar:i32  int                scalar:i64  std::int64_t
///   scalar:f64  double             scalar:str  std::string
///   array:i32   sac::Array<int>    array:f64   sac::Array<double>
///   array:b8    sac::Array<bool>
/// Thread-safe; codecs are write-once (re-registering a name or type
/// throws — a codec is a wire contract, not a hook to swap at runtime).
class CodecRegistry {
 public:
  static CodecRegistry& instance();

  void add(Codec codec);
  /// Null when no codec covers the type / name.
  const Codec* by_type(std::type_index type) const;
  const Codec* by_name(std::string_view name) const;

 private:
  CodecRegistry();
  struct Impl;
  Impl* impl_;  // leaked intentionally, like ShapeRegistry
};

/// Registers a codec for payload type T with plain typed functions.
template <class T, class Enc, class Dec>
void register_codec(std::string name, Enc encode, Dec decode) {
  CodecRegistry::instance().add(Codec{
      std::move(name), std::type_index(typeid(T)),
      [encode](const std::any& a, std::string& out) {
        encode(*std::any_cast<T>(&a), out);
      },
      [decode](const char* data, std::size_t size) -> Value {
        return make_value<T>(decode(data, size));
      }});
}

// ------------------------------------------------------------ resolvers

/// How a reader turns serialized runtime metadata back into live pointers.
/// Cross-process readers (snapshots) leave these empty: det stamps then
/// reject decoding (a snapshot of an InputPort stream carries none) and
/// session ids resolve to null (records are re-stamped on injection).
/// In-process readers (SpillStore) resolve against the writer's side
/// tables, restoring pointer-exact stamps.
struct Resolvers {
  /// Maps a stream scope index (+ its recorded name) to the live scope.
  std::function<snet::DetScope*(std::uint32_t index, const std::string& name)>
      scope;
  /// Maps a serialized session id to the live session state.
  std::function<SessionState*(std::uint32_t id)> session;
};

// --------------------------------------------------------------- writer

namespace detail {
class Encoder;
struct ReadTables;
}  // namespace detail

/// Streaming writer: header on construction, then `record()` appends —
/// definition chunks (shapes, codecs, scopes) are emitted automatically
/// before their first use. `group()` writes a keyed random-access frame.
/// `finish()` writes the end-of-stream marker; a stream without one reads
/// back as "possibly still growing" (see WireReader::at_clean_end).
class WireWriter {
 public:
  explicit WireWriter(std::ostream& out);
  ~WireWriter();

  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  /// Appends one record chunk (streaming mode).
  void record(const Record& r);
  /// Appends a group frame holding \p records under \p key; returns the
  /// frame's file offset (the seek target for random access).
  std::uint64_t group(std::uint64_t key, const std::vector<Record>& records);
  /// Writes the end-of-stream chunk and flushes. Idempotent.
  void finish();

  std::uint64_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  std::unique_ptr<detail::Encoder> enc_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;  // after the header
  bool finished_ = false;
};

// --------------------------------------------------------------- reader

/// Incremental decoder over a wire stream. `next()` yields records in
/// stream order (group frames are entered transparently); `groups()` lists
/// the group frames seen so far, and `read_group()` random-accesses one
/// (requires a seekable stream). `scan()` fast-forwards through the whole
/// stream building the group index without decoding record bodies.
class WireReader {
 public:
  explicit WireReader(std::istream& in, Resolvers resolvers = {});
  ~WireReader();

  WireReader(const WireReader&) = delete;
  WireReader& operator=(const WireReader&) = delete;

  /// Next record in stream order; nullopt at end of stream (clean or at a
  /// chunk boundary — a stream being appended to simply has no next chunk
  /// yet). Throws WireError on malformed or truncated data.
  std::optional<Record> next();

  /// True once the end-of-stream marker was consumed. After next() has
  /// returned nullopt, false here means the stream stopped at a chunk
  /// boundary without a marker — truncated-or-growing, caller's policy.
  bool at_clean_end() const { return clean_end_; }

  struct GroupInfo {
    std::uint64_t key = 0;
    std::uint64_t offset = 0;  ///< file offset of the group's chunk header
    std::uint32_t count = 0;   ///< records in the frame
  };

  /// Group frames encountered so far (next()/scan() populate this).
  const std::vector<GroupInfo>& groups() const { return groups_; }

  /// Indexes the remaining stream — definition chunks are processed,
  /// record bodies skipped — so every group becomes random-accessible.
  void scan();

  /// Random access: decodes one previously indexed group frame. The
  /// stream position of the in-order cursor is preserved.
  std::vector<Record> read_group(const GroupInfo& info);

 private:
  friend class SpillStore;
  std::istream& in_;
  std::unique_ptr<detail::ReadTables> tables_;
  Resolvers resolvers_;
  bool clean_end_ = false;
  bool header_done_ = false;
  std::vector<GroupInfo> groups_;
  /// Records of the group frame currently being drained by next().
  std::vector<Record> pending_;
  std::size_t pending_pos_ = 0;
};

/// Reads every record of a finished stream; throws WireError when the
/// stream lacks the end-of-stream marker (truncation guard for fixtures).
std::vector<Record> read_all(std::istream& in, Resolvers resolvers = {});

/// Encodes \p r as a self-contained single-record stream (its own header
/// and definitions). Canonical content key: two records with equal labels,
/// tags, payload bytes and metadata encode to equal strings regardless of
/// process interning order — snetrec sorts replay outputs by this.
std::string encode_standalone(const Record& r);

// ---------------------------------------------------------------- spill

/// Handle to one spilled record: where it lives in the spill file.
/// Holding a frame instead of a Record is the entire point — 12 bytes
/// in memory against the record's full payload.
struct SpillFrame {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

/// Disk backing for `OverflowPolicy::Spill` (one per Network, shared by
/// all det collectors and synchrocells; see docs/WIRE_FORMAT.md §Spill).
/// `spill()` serializes a record into the store's file and returns a
/// frame; `restore()` decodes it back with pointer-exact det stamps and
/// session identity, resolved against side tables the store maintains as
/// it writes (scope index → DetScope*, session id → SessionState*).
/// Restored-session liveness is the caller's invariant: a spilled record
/// is still counted live, which is exactly what keeps its SessionState
/// from being reclaimed. Thread-safe; the file is created lazily on first
/// spill and deleted on destruction.
class SpillStore {
 public:
  /// \p dir: directory for the spill file ("" = std::filesystem::
  /// temp_directory_path()). Nothing touches the filesystem until the
  /// first spill.
  explicit SpillStore(std::string dir);
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  SpillFrame spill(const Record& r);
  Record restore(const SpillFrame& frame);

  /// Observability: records currently on disk (spilled - restored) and
  /// total bytes ever written.
  std::int64_t on_disk() const;
  std::uint64_t bytes_written() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace snet::wire

#endif
