#ifndef SNETSAC_SNET_TAGEXPR_HPP
#define SNETSAC_SNET_TAGEXPR_HPP

/// \file tagexpr.hpp
/// Tag expressions: the small integer expression language usable in
/// filters and pattern guards, "composed from tag labels and arithmetic
/// operators" (paper, Section 4). The paper's examples are
/// `<k>=<k>%4` (filter assignment) and `<level> > 40` (exit guard).
///
/// Expressions are immutable trees shared by value. Booleans follow the C
/// convention: 0 is false, anything else is true.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "snet/labels.hpp"
#include "snet/record.hpp"

namespace snet {

class TagExprError : public std::runtime_error {
 public:
  explicit TagExprError(const std::string& what) : std::runtime_error(what) {}
};

class TagExpr {
 public:
  enum class Op {
    Lit,   // integer literal
    Tag,   // tag reference
    Add, Sub, Mul, Div, Mod,
    Neg,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or, Not,
  };

  TagExpr() : TagExpr(lit(0)) {}

  static TagExpr lit(std::int64_t v);
  static TagExpr tag(std::string_view name);
  static TagExpr tag(Label label);

  static TagExpr unary(Op op, TagExpr operand);
  static TagExpr binary(Op op, TagExpr lhs, TagExpr rhs);

  /// Evaluates against the tags of \p r; referencing a missing tag or
  /// dividing by zero throws TagExprError.
  std::int64_t eval(const Record& r) const;
  bool eval_bool(const Record& r) const { return eval(r) != 0; }

  /// All tag labels referenced anywhere in the expression.
  std::vector<Label> referenced_tags() const;

  std::string to_string() const;

 private:
  friend struct TagExprEval;
  struct Node;
  explicit TagExpr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

// Operator sugar so guards read like the paper:
//   TagExpr::tag("level") > TagExpr::lit(40)
TagExpr operator+(TagExpr a, TagExpr b);
TagExpr operator-(TagExpr a, TagExpr b);
TagExpr operator*(TagExpr a, TagExpr b);
TagExpr operator/(TagExpr a, TagExpr b);
TagExpr operator%(TagExpr a, TagExpr b);
TagExpr operator-(TagExpr a);
TagExpr operator==(TagExpr a, TagExpr b);
TagExpr operator!=(TagExpr a, TagExpr b);
TagExpr operator<(TagExpr a, TagExpr b);
TagExpr operator<=(TagExpr a, TagExpr b);
TagExpr operator>(TagExpr a, TagExpr b);
TagExpr operator>=(TagExpr a, TagExpr b);
TagExpr operator&&(TagExpr a, TagExpr b);
TagExpr operator||(TagExpr a, TagExpr b);
TagExpr operator!(TagExpr a);

}  // namespace snet

#endif
