#ifndef SNETSAC_SNET_RTYPES_HPP
#define SNETSAC_SNET_RTYPES_HPP

/// \file rtypes.hpp
/// The S-Net type system: record types as *sets* of labels, multivariant
/// types, and structural subtyping.
///
/// "Any record type t1 is a subtype of t2 iff t2 ⊆ t1. ... A multivariant
/// type x is a subtype of y if every variant v ∈ x is a subtype of some
/// variant w ∈ y." (paper, Section 4). Note the contravariant flavour: a
/// record type with *more* labels is a subtype (more specific).

#include <initializer_list>
#include <string>
#include <vector>

#include "snet/labels.hpp"
#include "snet/record.hpp"
#include "snet/shapes.hpp"

namespace snet {

/// One variant: a set of labels (fields and tags mixed, kept sorted).
class RecordType {
 public:
  RecordType() = default;
  RecordType(std::initializer_list<Label> labels);
  explicit RecordType(std::vector<Label> labels);

  /// Convenience: field names and tag names, e.g.
  /// `RecordType::of({"board","opts"}, {"k"})`.
  static RecordType of(std::initializer_list<std::string_view> fields,
                       std::initializer_list<std::string_view> tags = {});

  bool contains(Label label) const;
  /// Set inclusion: every label of *this* occurs in \p other.
  bool included_in(const RecordType& other) const;
  /// Structural subtyping: `this <= super` iff labels(super) ⊆ labels(this).
  bool subtype_of(const RecordType& super) const { return super.included_in(*this); }

  /// A record matches a variant when the variant's labels are all present
  /// (the record may carry more — that is record subtyping in action).
  ///
  /// Mask-then-subset protocol: a bloom-mask reject settles most
  /// non-matches in two bitops; survivors (including mask false positives)
  /// are decided by the exact, thread-locally memoized shape subset test.
  bool matches(const Record& r) const {
    if ((mask_ & ~r.shape_mask()) != 0) {
      return false;  // some required label is provably absent
    }
    return ShapeRegistry::instance().subset(shape_, r.shape());
  }

  /// The interned shape of this label set.
  ShapeId shape() const { return shape_; }
  std::uint64_t shape_mask() const { return mask_; }

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  const std::vector<Label>& labels() const { return labels_; }

  void add(Label label);
  void remove(Label label);

  /// Set union / difference, used by type inference (flow inheritance).
  RecordType union_with(const RecordType& other) const;
  RecordType minus(const RecordType& other) const;

  bool operator==(const RecordType& other) const { return labels_ == other.labels_; }

  /// Display form, e.g. `{board, opts, <k>}`.
  std::string to_string() const;

 private:
  void reintern();

  std::vector<Label> labels_;  // sorted, unique
  ShapeId shape_ = 0;          // interned form of labels_ (kept in sync)
  std::uint64_t mask_ = 0;
};

/// The record type of a concrete record (all its labels).
RecordType type_of(const Record& r);

/// A disjunction of variants, e.g. a box output type
/// `{board, opts} | {board, <done>}`.
class MultiType {
 public:
  MultiType() = default;
  MultiType(std::initializer_list<RecordType> variants) : variants_(variants) {}
  explicit MultiType(std::vector<RecordType> variants) : variants_(std::move(variants)) {}

  const std::vector<RecordType>& variants() const { return variants_; }
  bool empty() const { return variants_.empty(); }
  void add(RecordType v) { variants_.push_back(std::move(v)); }

  /// Multivariant subtyping per the paper.
  bool subtype_of(const MultiType& super) const;

  /// True when some variant matches the record.
  bool accepts(const Record& r) const;

  /// Best-match score used to route records at parallel combinators: the
  /// size of the largest matching variant, or -1 when nothing matches.
  /// "Any incoming record is directed towards the subnetwork whose input
  /// type better matches the type of the record itself."
  int match_score(const Record& r) const;

  /// The same best-match score on a *lower-bound record type* instead of a
  /// concrete record: the size of the largest variant included in \p v, or
  /// -1 when no variant is. This is the static twin of the record overload
  /// — `RecordType::matches(r)` is label-set inclusion into `type_of(r)`,
  /// so the two overloads agree on any record of exactly type \p v. The
  /// static checker and the topology verifier score branches with this so
  /// their verdicts track `ParallelRouter` by construction (previously a
  /// file-local re-implementation in check.cpp that could drift).
  int match_score(const RecordType& v) const;

  MultiType union_with(const MultiType& other) const;

  std::string to_string() const;

 private:
  std::vector<RecordType> variants_;
};

}  // namespace snet

#endif
