#ifndef SNETSAC_SNET_COPYPLAN_HPP
#define SNETSAC_SNET_COPYPLAN_HPP

/// \file copyplan.hpp (internal)
/// Shape-compiled copy plans for record emission. Box flow inheritance and
/// filter specifiers both build their output records with per-label
/// `contains` probes and sorted-insert `set_field`/`set_tag` calls — per
/// record, even though the *layout* of the result depends only on the
/// input record's ShapeId. A CopyPlan compiles that layout once per
/// (input shape, output spec): a flat list of (source → destination slot)
/// moves plus the pre-interned ShapeRef of the produced label set, so
/// steady-state emission is a straight-line copy into
/// `Record::assemble` with no set probes and no shape transitions.
///
/// `kExt` sources are resolved by the caller per record — a filter's tag
/// expression still evaluates against live tag values, a box emission
/// still takes its arguments from the box function — the plan only fixes
/// *which output slot* they land in.
///
/// Plans are immutable once built; the per-entity caches that hold them
/// (a ShapeMemo keyed by input shape) are single-worker by the entity
/// execution model, like every other route table.

#include <cstdint>
#include <utility>
#include <vector>

#include "snet/labels.hpp"
#include "snet/record.hpp"
#include "snet/shapes.hpp"
#include "snet/value.hpp"

namespace snet::detail {

struct CopyPlan {
  enum class Src : std::uint8_t {
    kInField,  ///< copy the input record's field slot `idx`
    kInTag,    ///< copy the input record's tag slot `idx`
    kConst,    ///< the constant `cval` (a filter's bare new tag: zero)
    kExt,      ///< caller-resolved source `idx` (tag expression, box arg)
  };
  struct Op {
    Label dest;
    Src src = Src::kConst;
    std::uint32_t idx = 0;
    std::int64_t cval = 0;
  };
  std::vector<Op> fields;  ///< sorted by dest label, unique
  std::vector<Op> tags;    ///< sorted by dest label, unique
  ShapeRef shape;          ///< interned shape of the produced label set
  /// True when replaying this plan reproduces the input record verbatim
  /// (same shape, every op a same-slot kIn move) — the caller may forward
  /// the input by move instead of assembling a copy. Identity filters and
  /// pass-through flow inheritance hit this constantly.
  bool identity = false;
};

/// Computes CopyPlan::identity for a plan compiled against \p in's shape.
bool plan_is_identity(const CopyPlan& plan, const Record& in);

/// Builds one CopyPlan. Declared ops go first (`declare_*`; a later
/// declaration of the same label overwrites — matching the
/// set_field/set_tag last-writer-wins semantics of the uncompiled loops);
/// flow-inherited input slots follow (`inherit_*`, skipped when the label
/// was already declared — the paper's "unless some label is already
/// present in the output record" rule). `finish()` sorts both lists by
/// destination label and interns the produced shape.
class CopyPlanBuilder {
 public:
  void declare_field(Label dest, CopyPlan::Src src, std::uint32_t idx);
  void declare_tag(Label dest, CopyPlan::Src src, std::uint32_t idx,
                   std::int64_t cval = 0);
  void inherit_field(Label dest, std::uint32_t slot);
  void inherit_tag(Label dest, std::uint32_t slot);
  CopyPlan finish();

 private:
  std::vector<CopyPlan::Op> fields_;
  std::vector<CopyPlan::Op> tags_;
};

/// Replays \p plan against \p in: kExt sources resolve through the
/// callables (`ext_field(idx) -> Value`, `ext_tag(idx) -> int64`), and
/// the result inherits \p in's runtime metadata (det stamps, session) —
/// exactly what the uncompiled emission paths did with inherit_meta.
template <class ExtField, class ExtTag>
Record apply_copy_plan(const CopyPlan& plan, const Record& in,
                       ExtField&& ext_field, ExtTag&& ext_tag) {
  std::vector<std::pair<Label, Value>> fields;
  fields.reserve(plan.fields.size());
  for (const CopyPlan::Op& op : plan.fields) {
    fields.emplace_back(op.dest, op.src == CopyPlan::Src::kInField
                                     ? in.fields()[op.idx].second
                                     : ext_field(op.idx));
  }
  std::vector<std::pair<Label, std::int64_t>> tags;
  tags.reserve(plan.tags.size());
  for (const CopyPlan::Op& op : plan.tags) {
    switch (op.src) {
      case CopyPlan::Src::kInTag:
        tags.emplace_back(op.dest, in.tags()[op.idx].second);
        break;
      case CopyPlan::Src::kConst:
        tags.emplace_back(op.dest, op.cval);
        break;
      default:
        tags.emplace_back(op.dest, ext_tag(op.idx));
        break;
    }
  }
  Record out = Record::assemble(std::move(fields), std::move(tags), plan.shape);
  out.inherit_meta(in);
  return out;
}

}  // namespace snet::detail

#endif
