#ifndef SNETSAC_SNET_ENTITIES_HPP
#define SNETSAC_SNET_ENTITIES_HPP

/// \file entities.hpp (internal)
/// Concrete runtime entities behind each topology construct. Not part of
/// the public API: clients interact with Net (topology) and Network.

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "snet/box.hpp"
#include "snet/detscope.hpp"
#include "snet/entity.hpp"
#include "snet/filter.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/router.hpp"
#include "snet/shapes.hpp"
#include "snet/wire.hpp"

namespace snet::detail {

/// Terminal entity: demultiplexes records to their session's OutputPort.
/// A session whose output credit account is exhausted does *not* stall
/// this (shared) entity: its records are deferred on the (entity, session)
/// credit key — per-session FIFO preserved — while every other session's
/// records keep flowing. The credit release (a client pop crossing the
/// watermark, a handle release, a fail-fast) pokes the entity, whose
/// on_poke retries the deferred sessions.
class OutputEntity final : public Entity {
 public:
  explicit OutputEntity(Network& net) : Entity(net, "output") {}

 protected:
  void on_record(Record r) override;
  void on_poke() override;
  void on_quantum_end() override;

 private:
  /// push_output retry shared by the direct path and the deferred flush
  /// (the session resolves from the record's stamp).
  bool try_push(Record& r, bool from_deferred) SNETSAC_REQUIRES(quantum_role_);

  /// Batched mode: records staged across the quantum, handed to
  /// Network::push_output_batch in one buffer-lock acquisition at quantum
  /// end (on_quantum_end runs before run_quantum's flush retires the
  /// records' live counts, so staged records are never dead). Worker-only.
  std::vector<Record> staged_ SNETSAC_GUARDED_BY(quantum_role_);
  /// push_output_batch overflow, reused.
  std::vector<Record> refused_ SNETSAC_GUARDED_BY(quantum_role_);
};

/// Head of the network: drains the per-session input staging queues into
/// the shared entry entity by weighted deficit-round-robin, so entry
/// bandwidth under contention is shared by session weight instead of by
/// arrival order — a hot tenant's backlog waits in its own staging queue
/// while lighter tenants' records keep being admitted. Receives no
/// records, only pokes (new listing, staging credit, un-throttle); the
/// listing handshake lives in Network::dispatch_list/dispatch_take_ready.
class InputDispatchEntity final : public Entity {
 public:
  InputDispatchEntity(Network& net, Entity* entry)
      : Entity(net, "input"), entry_(entry) {}

 protected:
  void on_record(Record r) override;  // never delivered; throws
  void on_poke() override;

 private:
  /// Drops every staged record of a released/errored session.
  void drop_staged(SessionState* s) SNETSAC_REQUIRES(quantum_role_);
  /// Fires staging-queue credit waiters collected during a turn.
  void fire_released() SNETSAC_REQUIRES(quantum_role_);

  Entity* entry_;
  /// DRR ring; dispatcher worker only.
  std::deque<SessionState*> active_ SNETSAC_GUARDED_BY(quantum_role_);
  /// Staging credit scratch.
  std::vector<std::function<void()>> released_ SNETSAC_GUARDED_BY(quantum_role_);
};

/// A box instance. Binds the declared input labels, runs the box function,
/// applies flow inheritance to every emission.
class BoxEntity final : public Entity, private BoxOutput {
 public:
  BoxEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;
  void emit(int variant, std::vector<BoxArg> args) override;

 private:
  /// Compiles every output variant's emission layout (declared labels →
  /// box-arg slots, flow-inherited input slots) against the current input
  /// record's shape.
  std::shared_ptr<const std::vector<CopyPlan>> compile_emit_plans() const
      SNETSAC_REQUIRES(quantum_role_);

  Net node_;
  Entity* succ_;
  RecordType input_type_;  // set view of the declared input (hoisted)
  /// Input being processed (for inheritance).
  const Record* current_ SNETSAC_GUARDED_BY(quantum_role_) = nullptr;
  /// Per-input-shape emission plans, one per output variant: the flow
  /// inheritance loops (per-label contains probes + sorted inserts) run
  /// once per shape, then every emission is a flat slot copy.
  ShapeMemo<std::shared_ptr<const std::vector<CopyPlan>>> emit_plans_
      SNETSAC_GUARDED_BY(quantum_role_);
};

/// A filter instance.
class FilterEntity final : public Entity {
 public:
  FilterEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;

 private:
  Net node_;
  Entity* succ_;
  /// Per-shape memo fusing the pattern's *type* match with the compiled
  /// copy plans: null means the type does not match (the record falls back
  /// to apply() for the unmemoized error), non-null replays the compiled
  /// specifier + flow inheritance as flat slot moves. Guards, which depend
  /// on tag values rather than the label set, are evaluated per record.
  ShapeMemo<std::shared_ptr<const FilterSpec::Compiled>> plans_
      SNETSAC_GUARDED_BY(quantum_role_);
};

/// Parallel-composition dispatcher: best-match routing over branch input
/// types; ties alternate (the non-deterministic choice). The decision is
/// memoized per record shape (see router.hpp), so steady-state routing is
/// one hash lookup instead of a per-variant label scan.
class ParallelEntity final : public Entity {
 public:
  struct Branch {
    MultiType input;
    Entity* entry;
  };
  ParallelEntity(Network& net, std::string name, std::vector<Branch> branches);

 protected:
  void on_record(Record r) override;

 private:
  std::vector<Entity*> entries_;
  ParallelRouter router_ SNETSAC_GUARDED_BY(quantum_role_);
};

/// One stage of a serial replication: "the chain is tapped before every
/// replica to extract records that match the type". Non-matching records
/// enter this stage's replica, whose output feeds the next stage —
/// created on demand ("the unfolding of the chain of networks is
/// demand-driven").
class StarStageEntity final : public Entity {
 public:
  StarStageEntity(Network& net, std::string prefix, Net node, Entity* exit_target,
                  unsigned stage);

 protected:
  void on_record(Record r) override;

 private:
  std::string prefix_;
  Net node_;  // the Star node
  Entity* exit_target_;
  unsigned stage_;
  /// Lazily instantiated.
  Entity* replica_entry_ SNETSAC_GUARDED_BY(quantum_role_) = nullptr;
  /// Per-shape memo of the exit pattern's type match (guard per record).
  ShapeMemo<bool> exit_type_match_ SNETSAC_GUARDED_BY(quantum_role_);
};

/// Parallel replication dispatcher: routes on the value of the split tag;
/// "it is guaranteed that any two records whose replication tags have the
/// same (integer) value are sent to the same replica."
class SplitEntity final : public Entity {
 public:
  SplitEntity(Network& net, std::string prefix, Net node, Entity* successor);

  /// Replica census for tests/diagnostics. Reads worker-only state
  /// quiescently (after wait(), no quantum can be running), a protocol
  /// argument the analysis cannot follow — annotated out rather than cast.
  std::size_t replica_count() const SNETSAC_NO_TSA;

 protected:
  void on_record(Record r) override;

 private:
  std::string prefix_;
  Net node_;  // the Split node
  Entity* succ_;
  /// Only touched by the worker currently running the entity;
  /// replica_count() reads it quiescently (after wait()), which the
  /// analysis cannot see — hence the annotation opt-out there.
  std::map<std::int64_t, Entity*> replicas_ SNETSAC_GUARDED_BY(quantum_role_);
};

/// Entry of a deterministic region: stamps records with fresh group
/// sequence numbers.
class DetEntryEntity final : public Entity {
 public:
  DetEntryEntity(Network& net, std::string name, DetScope* scope);
  void set_target(Entity* target) { target_ = target; }

 protected:
  void on_record(Record r) override;

 private:
  DetScope* scope_;
  Entity* target_ = nullptr;
};

/// Exit of a deterministic region: buffers records per group and releases
/// groups strictly in sequence order once they have drained upstream.
/// Under backpressure a release pauses mid-group (the deque keeps the
/// resume point) and continues when the downstream credit returns — the
/// resume poke re-enters release_ready even with an empty inbox.
///
/// Buffering is charged against the record's session
/// (Options::det_capacity): over the cap, the overflow policy either
/// spills the record — to the network's disk spill store when
/// `Options::spill_to_disk` is on (the record's memory is released; only a
/// 12-byte frame handle stays), to the group's in-memory overflow queue
/// otherwise — and throttles the session's input dispatch (Spill —
/// ordering preserved: once a group spills, all its later records spill
/// too, and release drains primary before overflow, overflow in arrival
/// order), or errors exactly the offending session (FailFast).
class DetCollectorEntity final : public Entity {
 public:
  DetCollectorEntity(Network& net, std::string name, Entity* successor);

  DetScope* scope() { return &scope_; }

 protected:
  void on_record(Record r) override;
  void on_poke() override;

 private:
  /// An overflow entry: on disk (the common case with spill_to_disk) or
  /// in memory (throttle-only mode, or a payload with no wire codec).
  /// One queue for both keeps arrival order across the mix.
  using Spilled = std::variant<Record, wire::SpillFrame>;

  /// One det group's buffered output. `spilling` latches on first
  /// overflow so primary stays a strict prefix of the group's arrivals.
  struct Group {
    std::deque<Record> primary;
    std::deque<Spilled> overflow;
    bool spilling = false;

    bool empty() const { return primary.empty() && overflow.empty(); }
  };

  /// Pops the group's next record in arrival order, restoring it from the
  /// spill file when the front entry is a disk frame, and keeping the
  /// in-memory gauge (Network::det_buffer_*) in step.
  Record take_front(Group& group) SNETSAC_REQUIRES(quantum_role_);

  void release_ready() SNETSAC_REQUIRES(quantum_role_);

  DetScope scope_;
  Entity* succ_;
  std::map<std::uint64_t, Group> buffer_ SNETSAC_GUARDED_BY(quantum_role_);
  std::uint64_t next_release_ SNETSAC_GUARDED_BY(quantum_role_) = 0;
};

/// Synchrocell: stores one record per pattern; when all patterns are
/// filled, emits the merged record and becomes the identity. Storage is
/// charged to the record's session (Options::det_capacity), and a poke
/// evicts slots stored by sessions that were failed fast or released —
/// a dead tenant's contribution must not hold the shared cell (and its
/// own liveness) forever. A record stored over the cap under the Spill
/// policy is serialized to the network's spill store (when enabled) and
/// restored at merge/eviction time.
class SyncEntity final : public Entity {
 public:
  SyncEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;
  void on_poke() override;

 private:
  /// One pattern's stored contribution: in memory or parked on disk.
  /// `session` is cached so the eviction sweep can test owner liveness
  /// without restoring disk-backed slots.
  struct Slot {
    std::optional<Record> rec;
    std::optional<wire::SpillFrame> frame;
    SessionState* session = nullptr;

    bool filled() const { return rec.has_value() || frame.has_value(); }
  };

  /// Pattern indices whose *type* matches records of a given shape, as a
  /// bitset (synchrocells have a handful of patterns; >64 falls back to
  /// unmemoized matching). Guards are evaluated per record.
  std::uint64_t slot_type_matches(const Record& r)
      SNETSAC_REQUIRES(quantum_role_);

  /// Moves the slot's record out (restoring from disk if parked) and
  /// clears the slot. The stored record's accounting is NOT unwound here.
  Record take_slot(Slot& slot) SNETSAC_REQUIRES(quantum_role_);

  Net node_;
  Entity* succ_;
  std::vector<Slot> slots_ SNETSAC_GUARDED_BY(quantum_role_);
  ShapeMemo<std::uint64_t> slot_match_ SNETSAC_GUARDED_BY(quantum_role_);
  bool fired_ SNETSAC_GUARDED_BY(quantum_role_) = false;
};

}  // namespace snet::detail

#endif
