#ifndef SNETSAC_SNET_ENTITIES_HPP
#define SNETSAC_SNET_ENTITIES_HPP

/// \file entities.hpp (internal)
/// Concrete runtime entities behind each topology construct. Not part of
/// the public API: clients interact with Net (topology) and Network.

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "snet/box.hpp"
#include "snet/detscope.hpp"
#include "snet/entity.hpp"
#include "snet/filter.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/router.hpp"
#include "snet/shapes.hpp"

namespace snet::detail {

/// Terminal entity: demultiplexes records to their session's OutputPort.
/// A full session buffer (Options::output_capacity) suspends this entity,
/// which is how client-side consumption pressure propagates back into the
/// network.
class OutputEntity final : public Entity {
 public:
  explicit OutputEntity(Network& net) : Entity(net, "output") {}

 protected:
  void on_record(Record r) override;
};

/// A box instance. Binds the declared input labels, runs the box function,
/// applies flow inheritance to every emission.
class BoxEntity final : public Entity, private BoxOutput {
 public:
  BoxEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;
  void emit(int variant, std::vector<BoxArg> args) override;

 private:
  Net node_;
  Entity* succ_;
  RecordType input_type_;  // set view of the declared input (hoisted)
  const Record* current_ = nullptr;  // input being processed (for inheritance)
};

/// A filter instance.
class FilterEntity final : public Entity {
 public:
  FilterEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;

 private:
  Net node_;
  Entity* succ_;
  /// Per-shape memo of the pattern's *type* match (guards, which depend on
  /// tag values rather than the label set, are evaluated per record).
  ShapeMemo<bool> type_match_;
};

/// Parallel-composition dispatcher: best-match routing over branch input
/// types; ties alternate (the non-deterministic choice). The decision is
/// memoized per record shape (see router.hpp), so steady-state routing is
/// one hash lookup instead of a per-variant label scan.
class ParallelEntity final : public Entity {
 public:
  struct Branch {
    MultiType input;
    Entity* entry;
  };
  ParallelEntity(Network& net, std::string name, std::vector<Branch> branches);

 protected:
  void on_record(Record r) override;

 private:
  std::vector<Entity*> entries_;
  ParallelRouter router_;
};

/// One stage of a serial replication: "the chain is tapped before every
/// replica to extract records that match the type". Non-matching records
/// enter this stage's replica, whose output feeds the next stage —
/// created on demand ("the unfolding of the chain of networks is
/// demand-driven").
class StarStageEntity final : public Entity {
 public:
  StarStageEntity(Network& net, std::string prefix, Net node, Entity* exit_target,
                  unsigned stage);

 protected:
  void on_record(Record r) override;

 private:
  std::string prefix_;
  Net node_;  // the Star node
  Entity* exit_target_;
  unsigned stage_;
  Entity* replica_entry_ = nullptr;  // lazily instantiated
  /// Per-shape memo of the exit pattern's type match (guard per record).
  ShapeMemo<bool> exit_type_match_;
};

/// Parallel replication dispatcher: routes on the value of the split tag;
/// "it is guaranteed that any two records whose replication tags have the
/// same (integer) value are sent to the same replica."
class SplitEntity final : public Entity {
 public:
  SplitEntity(Network& net, std::string prefix, Net node, Entity* successor);

  std::size_t replica_count() const;

 protected:
  void on_record(Record r) override;

 private:
  std::string prefix_;
  Net node_;  // the Split node
  Entity* succ_;
  std::map<std::int64_t, Entity*> replicas_;  // only touched by the runner
};

/// Entry of a deterministic region: stamps records with fresh group
/// sequence numbers.
class DetEntryEntity final : public Entity {
 public:
  DetEntryEntity(Network& net, std::string name, DetScope* scope);
  void set_target(Entity* target) { target_ = target; }

 protected:
  void on_record(Record r) override;

 private:
  DetScope* scope_;
  Entity* target_ = nullptr;
};

/// Exit of a deterministic region: buffers records per group and releases
/// groups strictly in sequence order once they have drained upstream.
/// Under backpressure a release pauses mid-group (the deque keeps the
/// resume point) and continues when the downstream credit returns — the
/// resume poke re-enters release_ready even with an empty inbox.
class DetCollectorEntity final : public Entity {
 public:
  DetCollectorEntity(Network& net, std::string name, Entity* successor);

  DetScope* scope() { return &scope_; }

 protected:
  void on_record(Record r) override;
  void on_poke() override;

 private:
  void release_ready();

  DetScope scope_;
  Entity* succ_;
  std::map<std::uint64_t, std::deque<Record>> buffer_;
  std::uint64_t next_release_ = 0;
};

/// Synchrocell: stores one record per pattern; when all patterns are
/// filled, emits the merged record and becomes the identity.
class SyncEntity final : public Entity {
 public:
  SyncEntity(Network& net, std::string name, Net node, Entity* successor);

 protected:
  void on_record(Record r) override;

 private:
  /// Pattern indices whose *type* matches records of a given shape, as a
  /// bitset (synchrocells have a handful of patterns; >64 falls back to
  /// unmemoized matching). Guards are evaluated per record.
  std::uint64_t slot_type_matches(const Record& r);

  Net node_;
  Entity* succ_;
  std::vector<std::optional<Record>> slots_;
  ShapeMemo<std::uint64_t> slot_match_;
  bool fired_ = false;
};

}  // namespace snet::detail

#endif
