#ifndef SNETSAC_SNET_NETWORK_HPP
#define SNETSAC_SNET_NETWORK_HPP

/// \file network.hpp
/// Network: a running instantiation of a Net topology.
///
/// Clients talk to a network through *ports* (see session.hpp):
///
///   snet::Network net(topology, opts);
///   net.input().inject(r);          // bounded, blocking under pressure
///   net.input().close();
///   for (snet::Record& out : net.output()) consume(out);
///
/// `open_session()` opens an independent logical client session over the
/// same instantiated topology; records are session-stamped on entry and
/// demultiplexed back to that session's OutputPort, so many concurrent
/// clients share one entity graph. Internally the topology unfolds —
/// demand-driven, exactly as the paper describes for the replication
/// combinators — into entities scheduled on a fixed worker pool.
/// Completion is detected by quiescence: a per-session live-record counter
/// reaches zero after the session's input was closed (dynamic unfolding
/// makes static EOS flooding awkward; counting is robust against it).
///
/// Resource bounds are *per tenant*: `Options::inbox_capacity` bounds the
/// interior entity inboxes (credit-based backpressure, see entity.hpp) and
/// each session's input staging queue; `Options::output_capacity` is a
/// per-session output credit account, so a slow reader throttles only its
/// own injects while other sessions keep streaming; sessions carry DRR
/// weights (`SessionOptions::weight`) honoured by the input dispatcher so
/// a hot tenant cannot monopolise entry bandwidth; and
/// `Options::det_capacity` caps per-session det-collector/synchrocell
/// buffering with a Spill-or-FailFast overflow policy.

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/env.hpp"
#include "snet/check.hpp"
#include "snet/entity.hpp"
#include "snet/net.hpp"
#include "snet/scheduler.hpp"
#include "snet/session.hpp"

namespace snet {

namespace wire {
class SpillStore;  // wire.hpp; the disk half of OverflowPolicy::Spill
}  // namespace wire

/// Runtime type errors (no parallel branch matches, split tag missing...).
class NetTypeError : public std::runtime_error {
 public:
  explicit NetTypeError(const std::string& what) : std::runtime_error(what) {}
};

/// FailFast overflow policy verdict: the offending session's det/sync
/// buffering exceeded Options::det_capacity. Only that session observes
/// the error; its siblings keep running.
class SessionOverflowError : public std::runtime_error {
 public:
  explicit SessionOverflowError(const std::string& what)
      : std::runtime_error(what) {}
};

/// What to do when a session's det-collector/synchrocell buffering
/// exceeds Options::det_capacity.
enum class OverflowPolicy {
  /// Keep accepting (ordering is preserved): overflow records go to a
  /// secondary spill list and the offending session's *input dispatch* is
  /// paused until the region drains below the watermark — the spill is
  /// bounded by what was already in flight.
  Spill,
  /// Error the offending session (SessionOverflowError on its ports) and
  /// drop its overflowing records; other sessions are unaffected.
  FailFast,
};

/// What Network construction does with the whole-topology shape-flow
/// verifier's report (verify.hpp). Independent of the fail-fast signature
/// inference, which always runs: a topology `infer` rejects never
/// constructs, whatever this mode says.
enum class VerifyMode {
  /// Skip the verifier entirely.
  Off,
  /// Print every diagnostic to stderr, then construct anyway.
  Warn,
  /// Throw VerifyError when the verifier reports anything at all —
  /// warnings included (errors alone already fail construction via
  /// inference; strict mode is for promoting dead branches, never-firing
  /// synchrocells and config lints to hard failures).
  Strict,
};

struct Options {
  /// Max entity quanta of this network running concurrently on the shared
  /// executor (not a thread count — threads belong to the process-wide
  /// pool, see runtime/executor.hpp).
  unsigned workers = snetsac::runtime::default_snet_workers();
  /// Max records an entity processes per scheduling quantum (fairness);
  /// also the per-weight-unit DRR grant of the input dispatcher.
  unsigned quantum = 16;
  /// Per-entity inbox bound in messages (0 = unbounded), also the bound of
  /// each session's input staging queue. When a downstream inbox reaches
  /// the bound, the producing entity suspends at its next message boundary
  /// and is re-queued once the consumer drains — so total in-flight
  /// records are O(inbox_capacity × entities).
  std::size_t inbox_capacity = 0;
  /// Per-session output credit account in records (0 = unbounded;
  /// overridable per session via SessionOptions::output_capacity). A
  /// session whose un-consumed output reaches the bound blocks its *own*
  /// injects until the client pops; records of that session already at the
  /// output entity are deferred on a per-session credit key, so other
  /// sessions' outputs keep flowing (no cross-session head-of-line
  /// blocking). Ignored for sessions in on_output (push callback) mode.
  std::size_t output_capacity = 0;
  /// Per-session cap on records buffered *inside* det collectors and
  /// synchrocells (0 = unbounded). Ordering/joining need interior
  /// buffering by design; the cap plus `det_overflow` keeps an adversarial
  /// det-heavy tenant from growing it without bound.
  std::size_t det_capacity = 0;
  /// Policy when a session exceeds det_capacity.
  OverflowPolicy det_overflow = OverflowPolicy::Spill;
  /// Under the Spill policy, serialize overflow det/sync records to a
  /// per-network spill file (see snet/wire.hpp) and restore them on
  /// release, so an over-cap region's interior leaves memory instead of
  /// merely being throttled. False keeps the overflow in memory — the
  /// throttle-only baseline the spill bench/test compares against.
  /// Records whose field payloads have no registered wire codec stay in
  /// memory either way (ordering is preserved across the mix).
  bool spill_to_disk = true;
  /// Directory for the spill file ("" = the system temp directory). The
  /// file is created lazily on first overflow and removed with the
  /// network.
  std::string spill_dir;
  /// Batched-quantum emission (see entity.hpp): entities stage their
  /// emissions per target and flush them — one bounded inbox push and one
  /// coalesced live/det adjustment per (target, quantum) — at a bounded
  /// threshold and at every quantum exit, including before a stall parks
  /// the producer. Per-session FIFO and det order are preserved; false
  /// restores the per-record scalar path (the bench ablation mode).
  bool batching = true;
  /// Run static signature inference/checking at construction.
  bool type_check = true;
  /// Whole-topology shape-flow verification at construction: dead
  /// branches, never-firing synchrocells, unroutable records, star
  /// non-progress, config lint (see verify.hpp for the catalogue and the
  /// `snetlint` tool for the standalone front-end).
  VerifyMode verify = VerifyMode::Warn;
  /// Optional per-stream observer: invoked for every record delivered to
  /// any entity ("all streams can be observed individually"). Called from
  /// worker threads; must be thread-safe.
  std::function<void(const std::string& entity, const Record&)> trace;
  /// The executor the network schedules on. Null selects the process-wide
  /// work-stealing pool (Executor::global()); schedcheck scenarios pass a
  /// SimExecutor to explore interleavings deterministically. The executor
  /// must outlive the network.
  snetsac::runtime::ExecutorIface* executor = nullptr;
};

struct EntityStats {
  std::string name;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
};

/// Per-session QoS counters (one row per *live* session; released
/// sessions whose state was reclaimed no longer appear).
struct SessionStats {
  std::uint32_t id = 0;
  unsigned weight = 1;
  bool errored = false;
  /// Records of the session currently inside the network.
  std::int64_t live = 0;
  /// Un-consumed output charged against the session's credit account.
  std::int64_t output_account = 0;
  std::uint64_t produced = 0;
  /// Records the DRR input dispatcher forwarded into the entry.
  std::uint64_t forwarded = 0;
  /// DRR turns the session received at the input dispatcher.
  std::uint64_t dispatch_turns = 0;
  /// Injects that blocked on the output credit account.
  std::uint64_t credit_waits = 0;
  /// Records deferred at the output entity for lack of output credit
  /// (the per-session stall events of the shared output entity).
  std::uint64_t output_stalls = 0;
  /// Det/sync records accepted over the cap under the Spill policy.
  std::uint64_t spilled = 0;
};

struct NetworkStats {
  std::vector<EntityStats> entities;
  std::uint64_t injected = 0;
  std::uint64_t produced = 0;
  std::int64_t peak_live = 0;
  /// Entity quanta this network dispatched into the shared executor.
  std::uint64_t quanta = 0;
  /// Of those, how many ran on a worker they were stolen onto — this
  /// network's share of pool-level work stealing, not the pool-wide count.
  std::uint64_t steals = 0;
  /// Times an entity suspended on a full downstream inbox (credit-based
  /// backpressure events; always 0 when unbounded). Per-session output
  /// deferrals are counted per session in SessionStats::output_stalls.
  std::uint64_t suspensions = 0;
  /// Client sessions opened over this network (including the default).
  std::uint64_t sessions = 0;
  /// Det/sync records currently held *in memory* inside det collectors
  /// and synchrocells, and the high-water mark. Disk-spilled records are
  /// excluded — `det_buffered_peak` staying near Options::det_capacity
  /// while `spilled` grows is what "true spill" means.
  std::int64_t det_buffered = 0;
  std::int64_t det_buffered_peak = 0;
  /// Records currently parked in the spill file / bytes ever spilled.
  std::int64_t spill_on_disk = 0;
  std::uint64_t spill_bytes = 0;
  /// Per-session QoS counters (live sessions only).
  std::vector<SessionStats> session_stats;

  std::size_t entity_count() const { return entities.size(); }
  /// Number of entities whose name contains \p needle — used to count
  /// dynamically created replicas (e.g. solveOneLevel instances).
  std::size_t count_containing(std::string_view needle) const;
  /// Sum of records_in over entities whose name contains \p needle.
  std::uint64_t records_in_containing(std::string_view needle) const;
};

class Network {
 public:
  explicit Network(Net topology, Options opts = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The statically inferred signature of the topology.
  const NetSignature& signature() const { return signature_; }

  // ------- the port/session client API ---------------------------------

  /// The default session's input port (bounded inject / try_inject /
  /// inject_all / close). The default session is created lazily on first
  /// use, so clients that only ever open_session() never owe it a close
  /// before wait().
  InputPort& input();

  /// The default session's output port (next / collect / range-for /
  /// on_output).
  OutputPort& output();

  /// Opens an independent logical client session over the shared
  /// topology. Records injected through the session's InputPort are
  /// stamped on entry and demultiplexed back to the session's OutputPort
  /// — concurrent clients do not see each other's records. \p opts fixes
  /// the session's DRR weight and output credit. Destroying the handle
  /// *releases* the session: its input closes, unconsumed output is
  /// discarded, and the session's state is reclaimed once its in-flight
  /// records drain.
  Session open_session(SessionOptions opts = {});

  /// Blocks until the whole network has quiesced: every session closed
  /// and no record in flight. Rethrows the first entity error.
  void wait();

  NetworkStats stats() const;

  /// Verifies the protocol conservation laws and throws
  /// ProtocolInvariantError on the first violation. Always compiled (the
  /// per-operation inline checks are what SNETSAC_CHECKED gates); valid at
  /// *safe points* only — between entity quanta, after wait(), or while
  /// the network is idle — because the laws are stated over multi-lock
  /// snapshots. Checks, per live session: output credit account ==
  /// buffered output + parked (deferred) records; live/interior/account
  /// counters non-negative; with \p expect_quiescent, that live records
  /// and open sessions are exactly zero; and that no staging queue holds
  /// registered credit waiters below the release watermark (a lost
  /// wakeup: credit exists, nobody was notified).
  void check_protocol_invariants(bool expect_quiescent) const;

  // ------- deprecated single-funnel shims (default session) ------------

  [[deprecated("use input().inject(); ports carry the bounded-stream "
               "semantics")]]
  void inject(Record r);

  [[deprecated("use input().close()")]]
  void close_input();

  [[deprecated("use output().next()")]]
  std::optional<Record> next_output();

  [[deprecated("use output().collect()")]]
  std::vector<Record> collect();

  // ------- runtime-internal interface (used by entities/ports) ---------
  Scheduler& scheduler() { return *sched_; }
  /// The capabilities SessionState's guarded fields alias (session state
  /// lives under the network's locks; see SessionState::out_mu_).
  snetsac::runtime::Mutex& output_mutex() SNETSAC_RETURN_CAPABILITY(out_mu_) {
    return out_mu_;
  }
  snetsac::runtime::Mutex& dispatch_mutex()
      SNETSAC_RETURN_CAPABILITY(dispatch_mu_) {
    return dispatch_mu_;
  }
  void live_add(SessionState* session, std::int64_t n = 1);
  void live_sub(SessionState* session, std::int64_t n = 1);

  /// Outcome of handing an output record to its session.
  enum class PushOutcome {
    kAccepted,  ///< delivered to the session (or dropped: abandoned/errored)
    kNoCredit,  ///< session account full — defer \p r on the (entity,
                ///< session) credit key; \p producer was registered and
                ///< will be poked when the client replenishes credit
  };
  /// Delivers an output record to its session, charging its credit
  /// account. The refusal and the waiter registration are atomic under
  /// out_mu_, so a deferred record can never miss its wakeup.
  /// \p from_deferred marks a retry of a previously deferred record (its
  /// park charge converts into a buffer charge instead of double-billing).
  PushOutcome push_output(Record& r, Entity* producer, bool from_deferred);
  /// Accounts a record deferred behind an *already deferred* record of the
  /// same session (the ordering path: later records may not overtake).
  void note_deferred_output(SessionState* s);
  /// Batched push_output: delivers a whole quantum's staged output under
  /// one buffer-lock acquisition with one client wakeup. Records whose
  /// session is out of credit come back in \p refused (arrival order, with
  /// the park accounting and waiter registration already done — the caller
  /// defers them); once one record of a session refuses, every later
  /// record of that session in the batch refuses too (per-session FIFO).
  /// \p records is left empty.
  void push_output_batch(std::vector<Record>& records, Entity* producer,
                         std::vector<Record>& refused);

  /// Per-session interior (det/sync) buffering account: charges one
  /// record; false when the session is now over Options::det_capacity —
  /// the caller applies the overflow policy via spill_session /
  /// fail_session (or undoes the charge with interior_release).
  bool interior_admit(SessionState* s);
  /// Releases \p n interior charges; un-throttles the session (and pokes
  /// the input dispatcher) once it drains below the watermark.
  void interior_release(SessionState* s, std::int64_t n = 1);
  OverflowPolicy overflow_policy() const { return opts_.det_overflow; }
  /// The per-network disk spill store (wire.hpp), shared by every det
  /// collector and synchrocell; null when Options::spill_to_disk is off —
  /// callers then keep overflow records in memory (throttle-only mode).
  wire::SpillStore* spill_store() { return spill_store_.get(); }
  /// In-memory interior buffering gauge (det-collector groups + sync
  /// slots): charged when a record is held in memory, not when its bytes
  /// are on disk. Feeds NetworkStats::det_buffered{,_peak}.
  void det_buffer_add(std::int64_t n);
  void det_buffer_sub(std::int64_t n);
  /// Spill policy: pauses the session's input dispatch until its interior
  /// account drains below the watermark, and counts the spilled record.
  void spill_session(SessionState* s);
  /// FailFast policy: errors exactly this session — its ports rethrow
  /// \p err, its staged/deferred records are dropped, siblings unaffected.
  void fail_session(SessionState* s, std::exception_ptr err);

  void note_suspension() { suspensions_.fetch_add(1, std::memory_order_relaxed); }
  std::size_t inbox_capacity() const { return opts_.inbox_capacity; }
  bool batching() const { return opts_.batching; }
  /// DRR grant per weight unit per turn at the input dispatcher.
  unsigned drr_grant() const { return opts_.quantum; }
  void fail(std::exception_ptr err);
  bool tracing() const { return static_cast<bool>(opts_.trace); }
  void trace_record(const Entity& target, const Record& r);
  /// Instantiates a (sub)topology whose output feeds \p successor; returns
  /// the entry entity. Thread-safe (star/split call this while running).
  Entity* instantiate(const Net& node, Entity* successor, const std::string& prefix);
  /// Registers an entity; returns a stable raw pointer owned by the net.
  Entity* adopt(std::unique_ptr<Entity> entity);

  // ------- input-dispatch interface (used by InputDispatchEntity) ------
  /// Moves newly listed sessions (pending input) into \p out.
  void dispatch_take_ready(std::deque<SessionState*>& out);
  /// Dispatcher-side delist after observing an empty staging queue.
  /// Returns false when a concurrent inject re-listed the session into the
  /// caller's hands — the caller keeps it on its active ring.
  bool dispatch_delist(SessionState* s);

  // ------- port-internal interface (used by InputPort/OutputPort) ------
  void port_inject(SessionState& s, Record r);
  bool port_try_inject(SessionState& s, Record& r);
  /// Batched inject: when nothing needs arbitration (batching on, no
  /// session listed for DRR, unbounded entry, no output credit gate) the
  /// whole vector is stamped, counted and delivered to the entry under
  /// one inbox lock; otherwise falls back to per-record port_inject.
  void port_inject_all(SessionState& s, std::vector<Record> records);
  void port_close(SessionState& s);
  std::optional<Record> port_next(SessionState& s);
  /// Moves the session's entire output buffer into \p out under one lock,
  /// releasing the whole credit span at once (the batch analogue of
  /// repeated port_next pops on a non-empty buffer). Returns the number
  /// of records appended; never blocks.
  std::size_t port_drain(SessionState& s, std::vector<Record>& out);
  void port_on_output(SessionState& s, std::function<void(Record)> callback);
  /// Session-handle destruction: closes the input, discards unconsumed
  /// output, resumes producers stalled on it, and reclaims the state if
  /// the session has fully drained (else it is marked abandoned and
  /// future outputs are dropped). \p s must not be used afterwards.
  void port_release(SessionState& s);

 private:
  SessionState* new_session_state(std::uint32_t id, SessionOptions opts);
  /// The lazily created default session (id 0).
  SessionState* default_state();
  /// Pops the front of \p s's buffer and releases output credit. Entities
  /// deferred on the session's credit are moved into \p resumed and
  /// \p crossed reports whether the pop crossed the credit bound — the
  /// caller pokes/notifies *after* dropping out_mu_ (callbacks never run
  /// under the lock; the thread-safety analysis enforces the shape).
  Record pop_output_locked(SessionState& s, std::vector<Entity*>& resumed,
                           bool& crossed) SNETSAC_REQUIRES(out_mu_);
  /// Lists \p s with the input dispatcher (idempotent) and pokes it when
  /// the listing is new.
  void dispatch_list(SessionState* s);
  /// dispatch_list + an unconditional poke: used by un-throttle and
  /// release/fail paths, where the session may already be listed (parked
  /// on the dispatcher's ring) and the dispatcher still needs the nudge.
  void dispatch_wake(SessionState* s);
  /// Blocks until \p s's output credit account has room (cooperatively on
  /// a worker thread). Rethrows on network/session failure.
  void await_output_account(SessionState& s);
  /// Pokes every synchrocell so slots stored by dead (errored/released)
  /// sessions are evicted (see SyncEntity::on_poke).
  void poke_sync_entities();

  Net topology_;
  Options opts_;
  NetSignature signature_;
  /// The executor every quantum and cooperative wait goes through
  /// (Options::executor, defaulting to the global work-stealing pool).
  snetsac::runtime::ExecutorIface& exec_;

  mutable snetsac::runtime::Mutex reg_mu_;
  std::vector<std::unique_ptr<Entity>> entities_ SNETSAC_GUARDED_BY(reg_mu_);
  /// Synchrocell instances: fail_session and port_release poke them so
  /// slots stored by a dead session are evicted instead of holding its
  /// liveness forever.
  std::vector<Entity*> sync_entities_ SNETSAC_GUARDED_BY(reg_mu_);

  std::unique_ptr<Scheduler> sched_;
  Entity* entry_ = nullptr;
  Entity* out_entity_ = nullptr;
  Entity* dispatch_ = nullptr;

  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_live_{0};
  std::atomic<std::int64_t> det_buffered_{0};
  std::atomic<std::int64_t> det_buffered_peak_{0};
  /// Created at construction when the Spill policy may engage
  /// (spill_to_disk && det_capacity > 0); the file itself is lazy.
  std::unique_ptr<wire::SpillStore> spill_store_;
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> suspensions_{0};
  /// Lock-free mirror of `error_ != nullptr` so producers blocked on
  /// entry credit can observe a failure without taking out_mu_.
  std::atomic<bool> failed_{false};

  /// Live sessions by id, guarded by out_mu_. A session is erased (and
  /// freed) when its handle is released *and* its records have drained —
  /// records carry raw SessionState pointers, and live > 0 guarantees
  /// the pointee survives (the last consumer's decrement never touches
  /// the state afterwards, see live_sub).
  std::unordered_map<std::uint32_t, std::unique_ptr<SessionState>> sessions_
      SNETSAC_GUARDED_BY(out_mu_);
  std::atomic<SessionState*> default_session_{nullptr};
  std::uint64_t sessions_opened_ SNETSAC_GUARDED_BY(out_mu_) = 0;  // monotone
  std::atomic<std::uint32_t> next_session_id_{1};
  std::atomic<std::int64_t> open_sessions_{0};

  /// Input-credit handshake for blocking inject on a full staging queue.
  mutable snetsac::runtime::Mutex in_mu_;
  snetsac::runtime::CondVar in_cv_;
  std::uint64_t in_credit_epoch_ SNETSAC_GUARDED_BY(in_mu_) = 0;

  /// Sessions newly listed for input dispatch (handed to the DRR
  /// dispatcher by dispatch_take_ready). Ordered before out_mu_ when both
  /// are needed.
  mutable snetsac::runtime::Mutex dispatch_mu_;
  std::vector<SessionState*> dispatch_ready_ SNETSAC_GUARDED_BY(dispatch_mu_);
  /// Sessions currently listed (staged backlog anywhere). While zero,
  /// injects may bypass the staging queue and deliver straight to the
  /// entry — the DRR detour costs nothing until there is actual
  /// contention to arbitrate. A benignly stale zero lets at most one
  /// record slip ahead of a freshly staged backlog.
  std::atomic<std::int64_t> listed_count_{0};

  mutable snetsac::runtime::Mutex out_mu_;
  snetsac::runtime::CondVar out_cv_;
  std::uint64_t produced_ SNETSAC_GUARDED_BY(out_mu_) = 0;  // all sessions
  std::exception_ptr error_ SNETSAC_GUARDED_BY(out_mu_);

  bool done_locked() const {
    return open_sessions_.load(std::memory_order_acquire) == 0 &&
           live_.load(std::memory_order_acquire) == 0;
  }
};

}  // namespace snet

#endif
