#ifndef SNETSAC_SNET_NETWORK_HPP
#define SNETSAC_SNET_NETWORK_HPP

/// \file network.hpp
/// Network: a running instantiation of a Net topology.
///
/// The client injects records into the (single) global input stream,
/// closes it, and drains the (single) global output stream. Internally the
/// topology unfolds — demand-driven, exactly as the paper describes for
/// the replication combinators — into entities scheduled on a fixed worker
/// pool. Completion is detected by quiescence: a network-wide live-record
/// counter reaches zero after the input was closed (dynamic unfolding
/// makes static EOS flooding awkward; counting is robust against it).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/env.hpp"
#include "snet/check.hpp"
#include "snet/entity.hpp"
#include "snet/net.hpp"
#include "snet/scheduler.hpp"

namespace snet {

/// Runtime type errors (no parallel branch matches, split tag missing...).
class NetTypeError : public std::runtime_error {
 public:
  explicit NetTypeError(const std::string& what) : std::runtime_error(what) {}
};

struct Options {
  /// Max entity quanta of this network running concurrently on the shared
  /// executor (not a thread count — threads belong to the process-wide
  /// pool, see runtime/executor.hpp).
  unsigned workers = snetsac::runtime::default_snet_workers();
  /// Max records an entity processes per scheduling quantum (fairness).
  unsigned quantum = 16;
  /// Run static signature inference/checking at construction.
  bool type_check = true;
  /// Optional per-stream observer: invoked for every record delivered to
  /// any entity ("all streams can be observed individually"). Called from
  /// worker threads; must be thread-safe.
  std::function<void(const std::string& entity, const Record&)> trace;
};

struct EntityStats {
  std::string name;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
};

struct NetworkStats {
  std::vector<EntityStats> entities;
  std::uint64_t injected = 0;
  std::uint64_t produced = 0;
  std::int64_t peak_live = 0;
  /// Entity quanta this network dispatched into the shared executor.
  std::uint64_t quanta = 0;
  /// Of those, how many ran on a worker they were stolen onto — this
  /// network's share of pool-level work stealing, not the pool-wide count.
  std::uint64_t steals = 0;

  std::size_t entity_count() const { return entities.size(); }
  /// Number of entities whose name contains \p needle — used to count
  /// dynamically created replicas (e.g. solveOneLevel instances).
  std::size_t count_containing(std::string_view needle) const;
  /// Sum of records_in over entities whose name contains \p needle.
  std::uint64_t records_in_containing(std::string_view needle) const;
};

class Network {
 public:
  explicit Network(Net topology, Options opts = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The statically inferred signature of the topology.
  const NetSignature& signature() const { return signature_; }

  /// Feeds a record into the network's input stream.
  void inject(Record r);

  /// Declares the input stream finished; required before wait()/collect().
  void close_input();

  /// Blocks for the next output record; std::nullopt once the network has
  /// quiesced after close_input(). Rethrows the first entity error.
  std::optional<Record> next_output();

  /// Closes the input (if still open) and drains every remaining output.
  std::vector<Record> collect();

  /// Blocks until the network has quiesced (input must be closed).
  void wait();

  NetworkStats stats() const;

  // ------- runtime-internal interface (used by entities) ---------------
  Scheduler& scheduler() { return *sched_; }
  void live_add(std::int64_t n = 1);
  void live_sub(std::int64_t n = 1);
  void push_output(Record r);
  void fail(std::exception_ptr err);
  bool tracing() const { return static_cast<bool>(opts_.trace); }
  void trace_record(const Entity& target, const Record& r);
  /// Instantiates a (sub)topology whose output feeds \p successor; returns
  /// the entry entity. Thread-safe (star/split call this while running).
  Entity* instantiate(const Net& node, Entity* successor, const std::string& prefix);
  /// Registers an entity; returns a stable raw pointer owned by the net.
  Entity* adopt(std::unique_ptr<Entity> entity);

 private:
  Net topology_;
  Options opts_;
  NetSignature signature_;

  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<Entity>> entities_;

  std::unique_ptr<Scheduler> sched_;
  Entity* entry_ = nullptr;

  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_live_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> injected_{0};

  mutable std::mutex out_mu_;
  std::condition_variable out_cv_;
  std::deque<Record> outputs_;
  std::uint64_t produced_ = 0;
  std::exception_ptr error_;

  bool done_locked() const {
    return closed_.load() && live_.load(std::memory_order_acquire) == 0;
  }
};

}  // namespace snet

#endif
