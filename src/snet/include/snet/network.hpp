#ifndef SNETSAC_SNET_NETWORK_HPP
#define SNETSAC_SNET_NETWORK_HPP

/// \file network.hpp
/// Network: a running instantiation of a Net topology.
///
/// Clients talk to a network through *ports* (see session.hpp):
///
///   snet::Network net(topology, opts);
///   net.input().inject(r);          // bounded, blocking under pressure
///   net.input().close();
///   for (snet::Record& out : net.output()) consume(out);
///
/// `open_session()` opens an independent logical client session over the
/// same instantiated topology; records are session-stamped on entry and
/// demultiplexed back to that session's OutputPort, so many concurrent
/// clients share one entity graph. Internally the topology unfolds —
/// demand-driven, exactly as the paper describes for the replication
/// combinators — into entities scheduled on a fixed worker pool.
/// Completion is detected by quiescence: a per-session live-record counter
/// reaches zero after the session's input was closed (dynamic unfolding
/// makes static EOS flooding awkward; counting is robust against it).
///
/// With `Options::inbox_capacity` set, every entity inbox is bounded and a
/// full downstream inbox suspends the producing entity (credit-based
/// backpressure, see entity.hpp) — pressure propagates from the output
/// port all the way back to `InputPort::inject`, capping `peak_live` by
/// configuration rather than by luck.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/env.hpp"
#include "snet/check.hpp"
#include "snet/entity.hpp"
#include "snet/net.hpp"
#include "snet/scheduler.hpp"
#include "snet/session.hpp"

namespace snet {

/// Runtime type errors (no parallel branch matches, split tag missing...).
class NetTypeError : public std::runtime_error {
 public:
  explicit NetTypeError(const std::string& what) : std::runtime_error(what) {}
};

struct Options {
  /// Max entity quanta of this network running concurrently on the shared
  /// executor (not a thread count — threads belong to the process-wide
  /// pool, see runtime/executor.hpp).
  unsigned workers = snetsac::runtime::default_snet_workers();
  /// Max records an entity processes per scheduling quantum (fairness).
  unsigned quantum = 16;
  /// Per-entity inbox bound in messages (0 = unbounded). When a
  /// downstream inbox reaches the bound, the producing entity suspends at
  /// its next message boundary and is re-queued once the consumer drains
  /// — so total in-flight records are O(inbox_capacity × entities).
  std::size_t inbox_capacity = 0;
  /// Per-session OutputPort buffer bound in records (0 = unbounded). A
  /// full buffer suspends the output entity, propagating pressure
  /// upstream. Ignored for sessions in on_output (push callback) mode.
  std::size_t output_capacity = 0;
  /// Run static signature inference/checking at construction.
  bool type_check = true;
  /// Optional per-stream observer: invoked for every record delivered to
  /// any entity ("all streams can be observed individually"). Called from
  /// worker threads; must be thread-safe.
  std::function<void(const std::string& entity, const Record&)> trace;
};

struct EntityStats {
  std::string name;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
};

struct NetworkStats {
  std::vector<EntityStats> entities;
  std::uint64_t injected = 0;
  std::uint64_t produced = 0;
  std::int64_t peak_live = 0;
  /// Entity quanta this network dispatched into the shared executor.
  std::uint64_t quanta = 0;
  /// Of those, how many ran on a worker they were stolen onto — this
  /// network's share of pool-level work stealing, not the pool-wide count.
  std::uint64_t steals = 0;
  /// Times an entity suspended on a full downstream inbox / output buffer
  /// (credit-based backpressure events; always 0 when unbounded).
  std::uint64_t suspensions = 0;
  /// Client sessions opened over this network (including the default).
  std::uint64_t sessions = 0;

  std::size_t entity_count() const { return entities.size(); }
  /// Number of entities whose name contains \p needle — used to count
  /// dynamically created replicas (e.g. solveOneLevel instances).
  std::size_t count_containing(std::string_view needle) const;
  /// Sum of records_in over entities whose name contains \p needle.
  std::uint64_t records_in_containing(std::string_view needle) const;
};

class Network {
 public:
  explicit Network(Net topology, Options opts = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The statically inferred signature of the topology.
  const NetSignature& signature() const { return signature_; }

  // ------- the port/session client API ---------------------------------

  /// The default session's input port (bounded inject / try_inject /
  /// inject_all / close). The default session is created lazily on first
  /// use, so clients that only ever open_session() never owe it a close
  /// before wait().
  InputPort& input();

  /// The default session's output port (next / collect / range-for /
  /// on_output).
  OutputPort& output();

  /// Opens an independent logical client session over the shared
  /// topology. Records injected through the session's InputPort are
  /// stamped on entry and demultiplexed back to the session's OutputPort
  /// — concurrent clients do not see each other's records. Destroying
  /// the handle *releases* the session: its input closes, unconsumed
  /// output is discarded, and the session's state is reclaimed once its
  /// in-flight records drain.
  Session open_session();

  /// Blocks until the whole network has quiesced: every session closed
  /// and no record in flight. Rethrows the first entity error.
  void wait();

  NetworkStats stats() const;

  // ------- deprecated single-funnel shims (default session) ------------

  [[deprecated("use input().inject(); ports carry the bounded-stream "
               "semantics")]]
  void inject(Record r);

  [[deprecated("use input().close()")]]
  void close_input();

  [[deprecated("use output().next()")]]
  std::optional<Record> next_output();

  [[deprecated("use output().collect()")]]
  std::vector<Record> collect();

  // ------- runtime-internal interface (used by entities/ports) ---------
  Scheduler& scheduler() { return *sched_; }
  void live_add(SessionState* session, std::int64_t n = 1);
  void live_sub(SessionState* session, std::int64_t n = 1);
  /// Delivers an output record to its session's port (records of a
  /// released session are dropped). Returns false when the session
  /// buffer reached its bound — the caller (output entity) should
  /// suspend via await_output_credit.
  bool push_output(Record r);
  /// Credit registration for a full session output buffer; false when
  /// credit is already available again. Takes the session *id*, not the
  /// pointer: a released session may have been reclaimed, and the
  /// id lookup under out_mu_ resolves that race to "credit available".
  bool await_output_credit(std::uint32_t session_id, Entity* producer);
  void note_suspension() { suspensions_.fetch_add(1, std::memory_order_relaxed); }
  std::size_t inbox_capacity() const { return opts_.inbox_capacity; }
  void fail(std::exception_ptr err);
  bool tracing() const { return static_cast<bool>(opts_.trace); }
  void trace_record(const Entity& target, const Record& r);
  /// Instantiates a (sub)topology whose output feeds \p successor; returns
  /// the entry entity. Thread-safe (star/split call this while running).
  Entity* instantiate(const Net& node, Entity* successor, const std::string& prefix);
  /// Registers an entity; returns a stable raw pointer owned by the net.
  Entity* adopt(std::unique_ptr<Entity> entity);

  // ------- port-internal interface (used by InputPort/OutputPort) ------
  void port_inject(SessionState& s, Record r);
  bool port_try_inject(SessionState& s, Record& r);
  void port_close(SessionState& s);
  std::optional<Record> port_next(SessionState& s);
  void port_on_output(SessionState& s, std::function<void(Record)> callback);
  /// Session-handle destruction: closes the input, discards unconsumed
  /// output, resumes producers stalled on it, and reclaims the state if
  /// the session has fully drained (else it is marked abandoned and
  /// future outputs are dropped). \p s must not be used afterwards.
  void port_release(SessionState& s);

 private:
  SessionState* new_session_state(std::uint32_t id);
  /// The lazily created default session (id 0).
  SessionState* default_state();
  /// Pops the front of \p s's buffer and resumes output-stalled producers
  /// once the buffer crosses the release watermark. \p lock is released.
  Record pop_output_locked(SessionState& s, std::unique_lock<std::mutex>& lock);

  Net topology_;
  Options opts_;
  NetSignature signature_;

  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<Entity>> entities_;

  std::unique_ptr<Scheduler> sched_;
  Entity* entry_ = nullptr;

  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_live_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> suspensions_{0};
  /// Lock-free mirror of `error_ != nullptr` so producers blocked on
  /// entry credit can observe a failure without taking out_mu_.
  std::atomic<bool> failed_{false};

  /// Live sessions by id, guarded by out_mu_. A session is erased (and
  /// freed) when its handle is released *and* its records have drained —
  /// records carry raw SessionState pointers, and live > 0 guarantees
  /// the pointee survives (the last consumer's decrement never touches
  /// the state afterwards, see live_sub).
  std::unordered_map<std::uint32_t, std::unique_ptr<SessionState>> sessions_;
  std::atomic<SessionState*> default_session_{nullptr};
  std::uint64_t sessions_opened_ = 0;  // guarded by out_mu_ (monotone)
  std::atomic<std::uint32_t> next_session_id_{1};
  std::atomic<std::int64_t> open_sessions_{0};

  /// Input-credit handshake for blocking inject on a bounded entry inbox.
  std::mutex in_mu_;
  std::condition_variable in_cv_;
  std::uint64_t in_credit_epoch_ = 0;  // guarded by in_mu_

  mutable std::mutex out_mu_;
  std::condition_variable out_cv_;
  std::uint64_t produced_ = 0;  // across all sessions
  std::exception_ptr error_;

  bool done_locked() const {
    return open_sessions_.load(std::memory_order_acquire) == 0 &&
           live_.load(std::memory_order_acquire) == 0;
  }
};

}  // namespace snet

#endif
