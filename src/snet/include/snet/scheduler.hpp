#ifndef SNETSAC_SNET_SCHEDULER_HPP
#define SNETSAC_SNET_SCHEDULER_HPP

/// \file scheduler.hpp
/// The S-Net worker pool: a run queue of entities with pending input,
/// drained by a fixed set of workers. "If we assume that each box creates
/// a separate process/thread" is the paper's conceptual model; the
/// implementation multiplexes the (dynamically unfolding) entity graph
/// onto `SNET_WORKERS` threads.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace snet {

class Entity;

class Scheduler {
 public:
  Scheduler(unsigned workers, unsigned quantum);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Marks an entity runnable. Thread-safe; called from Entity::deliver.
  void enqueue(Entity* entity);

  /// Signals workers to finish their current quantum and exit, then joins.
  void stop();

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }
  std::uint64_t quanta_executed() const;

 private:
  void worker_loop();

  const unsigned quantum_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entity*> ready_;
  bool stopping_ = false;
  std::uint64_t quanta_ = 0;
  std::vector<std::jthread> threads_;
};

}  // namespace snet

#endif
