#ifndef SNETSAC_SNET_SCHEDULER_HPP
#define SNETSAC_SNET_SCHEDULER_HPP

/// \file scheduler.hpp
/// The S-Net entity scheduler, as a facade over the unified work-stealing
/// executor. "If we assume that each box creates a separate process/
/// thread" is the paper's conceptual model; the implementation multiplexes
/// the (dynamically unfolding) entity graph onto the process-wide worker
/// set shared with the SaC with-loop engine — one pool, no
/// oversubscription when a box body opens a data-parallel with-loop.
///
/// The scheduler owns no threads. It keeps a ready list of entities with
/// pending input and dispatches at most `max_concurrency` entity quanta
/// into the executor at a time (the old SNET_WORKERS knob survives as this
/// fairness cap: a single network cannot monopolise the shared pool).
/// Each dispatched task runs one Entity::run_quantum, then refills the
/// dispatch window.
///
/// The executor behind the facade is an `ExecutorIface`: production
/// networks run on the work-stealing pool, schedcheck scenarios on the
/// deterministic SimExecutor — under which tail-chaining is disabled so
/// every quantum is a separate scheduling decision.

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/executor.hpp"

namespace snet {

class Entity;

class Scheduler {
 public:
  /// \p max_concurrency caps how many entity quanta of this network may
  /// run in the executor simultaneously (0 is promoted to 1); \p quantum
  /// is the per-dispatch message budget of an entity.
  Scheduler(snetsac::runtime::ExecutorIface& exec, unsigned max_concurrency,
            unsigned quantum);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Marks an entity runnable. Thread-safe; called from Entity::deliver.
  /// \p urgent puts the entity at the *front* of the ready list — used by
  /// credit releases (Entity::resume_from_stall): a resumed entity has a
  /// consumer actively waiting on its output, so it must not queue behind
  /// a hot session's backlog of ordinary quanta. Ordinary enqueues stay
  /// FIFO, which keeps the dispatch fair between entities; per-session
  /// fairness is enforced upstream by the input dispatcher's DRR.
  void enqueue(Entity* entity, bool urgent = false);

  /// Rejects further dispatch, discards the ready list and waits for every
  /// in-flight quantum of this network to finish. Cooperative: called from
  /// an executor worker it helps execute tasks instead of blocking (a
  /// network may legally be torn down inside a box).
  void stop();

  unsigned workers() const { return limit_; }
  std::uint64_t quanta_executed() const;

  /// Quanta of *this network* that ran on a worker other than the one
  /// they were submitted from (per-network, not pool-wide: attribution
  /// comes from `Executor::current_task_stolen()` at quantum start).
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  /// Moves ready entities into \p batch while the dispatch window has
  /// room, reserving a window slot and a lifetime pin for each.
  void fill_locked(std::vector<Entity*>& batch) SNETSAC_REQUIRES(mu_);
  /// Submits a batch collected by fill_locked to the executor.
  void submit_batch(const std::vector<Entity*>& batch);
  void run_one(Entity* entity);

  snetsac::runtime::ExecutorIface& exec_;
  const unsigned limit_;
  const unsigned quantum_;

  mutable snetsac::runtime::Mutex mu_;
  snetsac::runtime::CondVar idle_cv_;  // notified when active_ drains to 0
  std::deque<Entity*> ready_ SNETSAC_GUARDED_BY(mu_);
  /// Quanta occupying the concurrency window (<= limit_). Released right
  /// after a quantum runs, *before* the finishing task refills the window,
  /// so dispatch responsibility always lies with the most recent finisher.
  unsigned slots_ SNETSAC_GUARDED_BY(mu_) = 0;
  /// Quanta still touching the scheduler, including their post-run
  /// dispatch work. stop() waits on this; it only reaches zero when no
  /// task will touch `this` again.
  unsigned active_ SNETSAC_GUARDED_BY(mu_) = 0;
  bool stopping_ SNETSAC_GUARDED_BY(mu_) = false;
  std::uint64_t quanta_ SNETSAC_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace snet

#endif
