#ifndef SNETSAC_SNET_BOX_HPP
#define SNETSAC_SNET_BOX_HPP

/// \file box.hpp
/// The box interface. "A box expects a record on its input stream to which
/// it applies its associated SaC function (the box function). An S-Net box
/// may yield multiple output records ... the SaC function itself calls,
/// potentially repeatedly, an interface function snet_out" (paper, §4).
///
/// A box function receives a BoxInput restricted to the labels declared in
/// the box signature — it is "completely unaware of any potential excess
/// fields and tags" (those are flow-inherited by the runtime) — and a
/// BoxOutput whose `out(variant, args...)` is the paper's
/// `snet_out(variant, args...)`.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "snet/record.hpp"
#include "snet/signature.hpp"
#include "snet/value.hpp"

namespace snet {

class BoxError : public std::runtime_error {
 public:
  explicit BoxError(const std::string& what) : std::runtime_error(what) {}
};

/// One positional `snet_out` argument: either an opaque field payload or an
/// integer destined for a tag (an integer may also fill a field slot, in
/// which case it is wrapped as a payload).
struct BoxArg {
  Value value;            // non-null for payload arguments
  std::int64_t integer = 0;
  bool is_integer = false;

  static BoxArg from(Value v) { return BoxArg{std::move(v), 0, false}; }
  static BoxArg from_int(std::int64_t v) { return BoxArg{nullptr, v, true}; }

  template <class A>
  static BoxArg make(A&& a) {
    using D = std::decay_t<A>;
    if constexpr (std::is_integral_v<D>) {
      return from_int(static_cast<std::int64_t>(a));
    } else if constexpr (std::is_same_v<D, Value>) {
      return from(std::forward<A>(a));
    } else {
      return from(make_value(std::forward<A>(a)));
    }
  }
};

/// Read access to exactly the labels the box signature declares.
class BoxInput {
 public:
  BoxInput(const Record& rec, const SigVariant& declared)
      : rec_(rec), declared_(declared) {}

  /// Declared field by name; typed accessor below is the common path.
  const Value& field(std::string_view name) const {
    const Label l = require(field_label(name));
    return rec_.field(l);
  }

  template <class T>
  const T& get(std::string_view name) const {
    return value_as<T>(field(name));
  }

  std::int64_t tag(std::string_view name) const {
    const Label l = require(tag_label(name));
    return rec_.tag(l);
  }

  /// Positional access following the signature's argument order.
  std::size_t arity() const { return declared_.labels.size(); }

 private:
  Label require(Label l) const {
    for (const Label d : declared_.labels) {
      if (d == l) {
        return l;
      }
    }
    throw BoxError("box accesses label " + label_display(l) +
                   " not declared in its input signature " + declared_.to_string());
  }

  const Record& rec_;
  const SigVariant& declared_;
};

/// Emission interface handed to box functions; the runtime implements it.
class BoxOutput {
 public:
  virtual ~BoxOutput() = default;

  /// The paper's `snet_out(variant, args...)`: \p variant is 1-based and
  /// selects an output variant of the box signature; the remaining
  /// arguments are bound to that variant's labels in declared order.
  template <class... A>
  void out(int variant, A&&... args) {
    std::vector<BoxArg> v;
    v.reserve(sizeof...(A));
    (v.push_back(BoxArg::make(std::forward<A>(args))), ...);
    emit(variant, std::move(v));
  }

  virtual void emit(int variant, std::vector<BoxArg> args) = 0;
};

/// The box function type. Stateless by contract: a box must derive its
/// outputs from the input record alone (S-Net boxes are "asynchronously
/// executed, stateless stream-processing components").
using BoxFn = std::function<void(const BoxInput&, BoxOutput&)>;

}  // namespace snet

#endif
