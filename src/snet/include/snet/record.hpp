#ifndef SNETSAC_SNET_RECORD_HPP
#define SNETSAC_SNET_RECORD_HPP

/// \file record.hpp
/// S-Net records: flat, non-recursive collections of labelled fields
/// (opaque values) and tags (integers). Records are value types — they are
/// what travels on streams, and passing them between scheduler workers by
/// value is exactly the Core Guidelines CP.31 discipline (field payloads
/// are shared immutably, so the copies are cheap).
///
/// Records additionally carry hidden runtime metadata: the stack of
/// deterministic-combinator stamps (see detscope.hpp) and the interned
/// `ShapeId`/bloom mask of their label set (see shapes.hpp), maintained
/// incrementally across mutations so structural matching never rescans
/// labels. The metadata is invisible to boxes and to the type system.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "snet/labels.hpp"
#include "snet/shapes.hpp"
#include "snet/value.hpp"

namespace snet {

class DetScope;      // runtime machinery, see detscope.hpp
class SessionState;  // runtime machinery, see session.hpp

/// One deterministic-region stamp: which scope, which input group.
struct DetStamp {
  DetScope* scope{nullptr};
  std::uint64_t seq{0};
};

class Record {
 public:
  Record() = default;

  // -- fields ---------------------------------------------------------
  bool has_field(Label label) const { return find_field(label) != nullptr; }
  void set_field(Label label, Value v);
  /// Throws std::out_of_range when absent.
  const Value& field(Label label) const;
  void remove_field(Label label);

  // -- tags -----------------------------------------------------------
  bool has_tag(Label label) const { return find_tag(label) != nullptr; }
  void set_tag(Label label, std::int64_t v);
  /// Throws std::out_of_range when absent.
  std::int64_t tag(Label label) const;
  void remove_tag(Label label);

  bool has(Label label) const {
    return label.kind == LabelKind::Field ? has_field(label) : has_tag(label);
  }

  // -- convenience (name-based) ----------------------------------------
  void set_field(std::string_view name, Value v) { set_field(field_label(name), std::move(v)); }
  const Value& field(std::string_view name) const { return field(field_label(name)); }
  void set_tag(std::string_view name, std::int64_t v) { set_tag(tag_label(name), v); }
  std::int64_t tag(std::string_view name) const { return tag(tag_label(name)); }
  bool has_field(std::string_view name) const { return has_field(field_label(name)); }
  bool has_tag(std::string_view name) const { return has_tag(tag_label(name)); }

  /// Typed field access: `r.get<sac::Array<int>>("board")`.
  template <class T>
  const T& get(std::string_view name) const {
    return value_as<T>(field(field_label(name)));
  }

  // -- structure --------------------------------------------------------
  /// All labels, fields first, each group sorted by label id.
  std::vector<Label> labels() const;
  std::size_t field_count() const { return fields_.size(); }
  std::size_t tag_count() const { return tags_.size(); }
  bool empty() const { return fields_.empty() && tags_.empty(); }

  const std::vector<std::pair<Label, Value>>& fields() const { return fields_; }
  const std::vector<std::pair<Label, std::int64_t>>& tags() const { return tags_; }

  /// The interned shape of this record's label set. Maintained across
  /// every mutation; two records with the same labels always report the
  /// same id. O(1) amortised (thread-local transition cache).
  ShapeId shape() const { return shape_; }
  /// The bloom mask of the shape: OR of `label_bit` over all labels.
  std::uint64_t shape_mask() const { return mask_; }

  /// Human-readable form, e.g. `{board, opts, <k>=3}`.
  std::string to_string() const;

  /// Runtime-internal: builds a record directly from pre-sorted,
  /// duplicate-free label/value vectors and their interned shape, skipping
  /// the per-label insertion probes and shape transitions of set_field /
  /// set_tag. This is the output side of a compiled copy plan (see
  /// copyplan.hpp): the plan resolved the label set and its ShapeRef once
  /// per input shape, so steady-state emission is a straight move.
  /// Precondition: \p fields and \p tags are sorted by label, unique, all
  /// of the right kind, and \p shape is the interned shape of exactly
  /// their union — violations corrupt shape-based routing.
  static Record assemble(std::vector<std::pair<Label, Value>> fields,
                         std::vector<std::pair<Label, std::int64_t>> tags,
                         ShapeRef shape);

  // -- hidden runtime metadata -----------------------------------------
  std::vector<DetStamp>& det_stack() { return det_; }
  const std::vector<DetStamp>& det_stack() const { return det_; }
  /// The client session this record belongs to: stamped on entry by
  /// `InputPort::inject`, inherited by every derived record, and used by
  /// the output entity to demultiplex results back to the right session's
  /// `OutputPort`. Null means "default session" (e.g. records built in
  /// tests that never crossed a port). Invisible to boxes and types.
  SessionState* session_state() const { return session_; }
  void set_session(SessionState* s) { session_ = s; }
  /// Copies runtime metadata (det stamps, session stamp) from a progenitor
  /// record; every record a component emits in response to an input record
  /// inherits the input's metadata.
  void inherit_meta(const Record& from) {
    det_ = from.det_;
    session_ = from.session_;
  }

 private:
  const Value* find_field(Label label) const;
  const std::int64_t* find_tag(Label label) const;
  void shape_add(Label label);
  void shape_remove(Label label);

  std::vector<std::pair<Label, Value>> fields_;
  std::vector<std::pair<Label, std::int64_t>> tags_;
  std::vector<DetStamp> det_;
  SessionState* session_ = nullptr;
  ShapeId shape_ = 0;  // id 0 is the empty shape by construction
  std::uint64_t mask_ = 0;
};

/// Builder-style helpers for tests and examples.
Record record_with(std::initializer_list<std::pair<std::string_view, Value>> fields,
                   std::initializer_list<std::pair<std::string_view, std::int64_t>> tags = {});

}  // namespace snet

#endif
