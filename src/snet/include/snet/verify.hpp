#ifndef SNETSAC_SNET_VERIFY_HPP
#define SNETSAC_SNET_VERIFY_HPP

/// \file verify.hpp
/// Whole-topology shape-flow verification: an abstract interpretation of
/// record-type flow over the combinator tree. Where check.cpp's `infer`
/// stops at the first combinator-compatibility violation, `verify` walks
/// the *reachable type set* through every component — seeded from the
/// entry signature (or a caller-supplied client type set), widened through
/// boxes via their declared output lower bounds, through filters via their
/// output specifiers, with flow inheritance and tag operations applied —
/// and collects every diagnostic it can prove:
///
///  * `UnroutableRecord` — a reachable type no component at that point
///    accepts (box/filter input mismatch, a parallel combinator where no
///    branch matches, a split without the replication tag, a star variant
///    that neither exits nor re-enters). These mirror exactly the cases
///    `propagate` throws on, and the runtime's NetTypeError / FilterError.
///  * `DeadBranch` — a parallel branch that is never in the best-match
///    argmax set for any reachable type. Branch scoring goes through
///    `detail::ParallelRouter::tied_for`, the same argmax collection the
///    runtime router compiles per shape, over the same flattened branch
///    list `Network::instantiate` builds — so a statically-dead branch is
///    one the runtime can provably never route a record of any reachable
///    lower-bound type to.
///  * `NeverFiringSync` — a synchrocell with a pattern slot no reachable
///    type can fill: the cell stores partial matches forever and its
///    output never appears.
///  * `StarNoProgress` — a serial replication whose exit pattern is
///    unreachable from the closure of the replica's outputs: records
///    circulate (or pile up) without ever being tapped out.
///  * `Config*` — option values that statically guarantee wedge-or-spill:
///    a det/sync interior cap smaller than what a synchrocell must buffer
///    before it can ever fire, a session output credit below the
///    topology's guaranteed per-record fan-out, an inbox bound below a
///    single filter burst, or a det cap configured for a topology with
///    nothing to charge it against.
///
/// Severity policy follows the lower-bound semantics of propagated types
/// (check.hpp: "actual records may always carry additional labels"):
/// a diagnostic is an **Error** when extra runtime labels cannot rescue
/// the situation (unroutable records: more labels only raise match
/// scores, but a variant already unroutable at a *box or filter* whose
/// consumed type is not included stays broken for records of exactly that
/// type — the same cases `infer` throws for; star exit unreachable), and a
/// **Warning** when they could (a dead branch can win on a wider record;
/// a sync slot can be filled by a wider record; config lints depend on
/// runtime consumption patterns).
///
/// `verify` never throws on topology defects — it reports them all.
/// `Network` runs it at construction under `Options::verify`
/// (off / warn-to-stderr / strict-throw); the `snetlint` tool runs it
/// standalone and renders a DOT overlay (dot.hpp).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "snet/net.hpp"
#include "snet/rtypes.hpp"

namespace snet {

enum class LintCode {
  UnroutableRecord,
  DeadBranch,
  NeverFiringSync,
  StarNoProgress,
  ConfigDetCapacity,
  ConfigDetUnused,
  ConfigOutputCredit,
  ConfigInboxCapacity,
};

enum class LintSeverity { Warning, Error };

/// The stable diagnostic name, e.g. "dead-branch" — what snetlint prints
/// and what `--expect` matches.
const char* to_string(LintCode code);
const char* to_string(LintSeverity severity);

struct LintDiagnostic {
  LintCode code;
  LintSeverity severity;
  /// Combinator path in `Network::instantiate` naming, e.g.
  /// "net/parL/parR/sync" — the entity the runtime would build for this
  /// tree position (star replicas appear as "star/rep*": one static
  /// verdict covers every unfolded stage).
  std::string path;
  /// The offending record type (or pattern/option value for sync/config
  /// diagnostics), pretty-printed.
  std::string type;
  std::string message;

  std::string to_string() const;
};

/// Tunables mirrored from Options (network.hpp) — duplicated here so the
/// verifier stays usable without a Network (snetlint links snet only).
struct VerifyOptions {
  /// Client record types to seed the flow with; empty = the topology's
  /// own required input (phase-1 inference), the weakest sound seed.
  MultiType seed;
  /// Options::det_capacity (0 = unbounded, disables the det config lints).
  std::size_t det_capacity = 0;
  /// True when Options::det_overflow == OverflowPolicy::FailFast.
  bool det_fail_fast = false;
  /// Options::output_capacity (0 = unbounded).
  std::size_t output_capacity = 0;
  /// Options::inbox_capacity (0 = unbounded).
  std::size_t inbox_capacity = 0;
};

struct VerifyReport {
  std::vector<LintDiagnostic> diagnostics;

  bool empty() const { return diagnostics.empty(); }
  bool has_errors() const;
  std::size_t count(LintCode code) const;
  /// One line per diagnostic, "severity code path: message" — stable
  /// enough for tests to assert on.
  std::string to_string() const;
};

/// Thrown by Network construction under VerifyMode::Strict (and usable by
/// callers who want throw-on-defect semantics around verify()).
class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(VerifyReport report)
      : std::runtime_error(report.to_string()), report_(std::move(report)) {}
  const VerifyReport& report() const { return report_; }

 private:
  VerifyReport report_;
};

/// Runs the shape-flow verification over \p net. Never throws on topology
/// defects (they become diagnostics); throws std::invalid_argument only on
/// a null \p net.
VerifyReport verify(const Net& net, const VerifyOptions& opts = {});

}  // namespace snet

#endif
