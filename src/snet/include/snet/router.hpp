#ifndef SNETSAC_SNET_ROUTER_HPP
#define SNETSAC_SNET_ROUTER_HPP

/// \file router.hpp (internal)
/// Shape-memoized branch selection for parallel combinators. The branch
/// input types are fixed at instantiation and a record's match outcome
/// depends only on its label set, so the full best-match decision — the
/// winning score and the set of equally-scored branches — is computed once
/// per distinct `ShapeId` and replayed as a single hash lookup thereafter.
/// Ties still rotate per record ("one is selected non-deterministically");
/// only the tied *set* is memoized, not the pick.
///
/// Route tables are *bounded*: steady-state streams carry a handful of
/// shapes, but an adversarial workload can mint unbounded distinct label
/// sets (the ROADMAP follow-up from PR 2). At `max_entries` the table is
/// evicted wholesale (epoch reset — O(1) amortised for workloads that
/// merely drift); a workload that keeps blowing through the cap
/// (`kMaxResets` evictions) is genuinely churn-heavy, so caching turns
/// itself off and every decision falls back to uncached matching — always
/// correct, never unbounded memory.
///
/// Not thread-safe: a router belongs to one entity, and entities are run
/// by at most one worker at a time. Shared with bench_routing so the
/// microbenchmark measures exactly the production decision path.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "snet/rtypes.hpp"
#include "snet/shapes.hpp"

namespace snet::detail {

/// Cap policy shared by every per-entity route table.
struct RouteTableBounds {
  static constexpr std::size_t kDefaultMaxEntries = 1024;
  static constexpr unsigned kMaxResets = 8;
};

/// Per-shape memo table: one immutable value per record shape, computed
/// on first sight. The idiom behind every entity route table — filters
/// and star exits memoize a bool (pattern type match), synchrocells a
/// slot bitset. Unsynchronised by design: a memo belongs to one entity,
/// and entities are run by at most one worker at a time.
template <class Value>
class ShapeMemo {
 public:
  explicit ShapeMemo(std::size_t max_entries = RouteTableBounds::kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// The memoized value for \p shape, computing it via \p fill on a miss.
  /// Returns by value: once caching is disabled (sustained shape churn)
  /// there is no stored entry to reference.
  template <class Fill>
  Value get_or(ShapeId shape, Fill&& fill) {
    if (disabled_) {
      return fill();
    }
    const auto it = table_.find(shape);
    if (it != table_.end()) {
      return it->second;
    }
    Value v = fill();
    if (table_.size() >= max_entries_) {
      if (++resets_ > RouteTableBounds::kMaxResets) {
        disabled_ = true;
        table_.clear();
        return v;
      }
      table_.clear();
    }
    table_.emplace(shape, v);
    return v;
  }

  std::size_t size() const { return table_.size(); }
  unsigned resets() const { return resets_; }
  bool caching_disabled() const { return disabled_; }

 private:
  std::unordered_map<ShapeId, Value> table_;
  std::size_t max_entries_;
  unsigned resets_ = 0;
  bool disabled_ = false;
};

class ParallelRouter {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit ParallelRouter(std::vector<MultiType> inputs,
                          std::size_t max_entries = RouteTableBounds::kDefaultMaxEntries)
      : inputs_(std::move(inputs)), max_entries_(max_entries == 0 ? 1 : max_entries) {}

  std::size_t branch_count() const { return inputs_.size(); }

  /// The branch index \p r routes to, or npos when no branch matches.
  std::size_t route(const Record& r) {
    const Route& route = decide(r.shape(), r);
    if (route.tied.empty()) {
      return npos;
    }
    if (route.tied.size() == 1) {
      return route.tied.front();
    }
    return route.tied[tie_break_++ % route.tied.size()];
  }

  std::size_t table_size() const { return table_.size(); }
  unsigned resets() const { return resets_; }
  bool caching_disabled() const { return disabled_; }

 private:
  struct Route {
    std::vector<std::uint32_t> tied;  // branches sharing the best score
  };

  const Route& decide(ShapeId shape, const Record& r) {
    if (!disabled_) {
      const auto it = table_.find(shape);
      if (it != table_.end()) {
        return it->second;
      }
    }
    // Fresh shape: score every branch once into the scratch vector, then
    // collect the argmax set.
    scores_.clear();
    int best = -1;
    for (const MultiType& input : inputs_) {
      const int score = input.match_score(r);
      scores_.push_back(score);
      best = score > best ? score : best;
    }
    scratch_.tied.clear();
    if (best >= 0) {
      for (std::uint32_t i = 0; i < scores_.size(); ++i) {
        if (scores_[i] == best) {
          scratch_.tied.push_back(i);
        }
      }
    }
    if (disabled_) {
      return scratch_;
    }
    if (table_.size() >= max_entries_) {
      // Bounded table (see file comment): evict wholesale, and give up on
      // caching entirely under sustained churn.
      if (++resets_ > RouteTableBounds::kMaxResets) {
        disabled_ = true;
        table_.clear();
        return scratch_;
      }
      table_.clear();
    }
    return table_.emplace(shape, scratch_).first->second;
  }

  std::vector<MultiType> inputs_;
  std::unordered_map<ShapeId, Route> table_;
  std::vector<int> scores_;  // scratch, reused across misses
  Route scratch_;            // decision of record, valid until the next decide
  std::size_t max_entries_;
  unsigned resets_ = 0;
  bool disabled_ = false;
  std::uint64_t tie_break_ = 0;
};

}  // namespace snet::detail

#endif
