#ifndef SNETSAC_SNET_ROUTER_HPP
#define SNETSAC_SNET_ROUTER_HPP

/// \file router.hpp (internal)
/// Shape-memoized branch selection for parallel combinators. The branch
/// input types are fixed at instantiation and a record's match outcome
/// depends only on its label set, so the full best-match decision — the
/// winning score and the set of equally-scored branches — is computed once
/// per distinct `ShapeId` and replayed as a single hash lookup thereafter.
/// Ties still rotate per record ("one is selected non-deterministically");
/// only the tied *set* is memoized, not the pick.
///
/// Not thread-safe: a router belongs to one entity, and entities are run
/// by at most one worker at a time. Shared with bench_routing so the
/// microbenchmark measures exactly the production decision path.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "snet/rtypes.hpp"
#include "snet/shapes.hpp"

namespace snet::detail {

/// Per-shape memo table: one immutable value per record shape, computed
/// on first sight. The idiom behind every entity route table — filters
/// and star exits memoize a bool (pattern type match), synchrocells a
/// slot bitset. Unsynchronised by design: a memo belongs to one entity,
/// and entities are run by at most one worker at a time.
template <class Value>
class ShapeMemo {
 public:
  /// The memoized value for \p shape, computing it via \p fill on a miss.
  template <class Fill>
  const Value& get_or(ShapeId shape, Fill&& fill) {
    const auto [it, fresh] = table_.try_emplace(shape);
    if (fresh) {
      it->second = fill();
    }
    return it->second;
  }

 private:
  std::unordered_map<ShapeId, Value> table_;
};

class ParallelRouter {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit ParallelRouter(std::vector<MultiType> inputs)
      : inputs_(std::move(inputs)) {}

  std::size_t branch_count() const { return inputs_.size(); }

  /// The branch index \p r routes to, or npos when no branch matches.
  std::size_t route(const Record& r) {
    const Route& route = decide(r.shape(), r);
    if (route.tied.empty()) {
      return npos;
    }
    if (route.tied.size() == 1) {
      return route.tied.front();
    }
    return route.tied[tie_break_++ % route.tied.size()];
  }

 private:
  struct Route {
    std::vector<std::uint32_t> tied;  // branches sharing the best score
  };

  const Route& decide(ShapeId shape, const Record& r) {
    const auto it = table_.find(shape);
    if (it != table_.end()) {
      return it->second;
    }
    // Fresh shape: score every branch once into the scratch vector, then
    // collect the argmax set.
    scores_.clear();
    int best = -1;
    for (const MultiType& input : inputs_) {
      const int score = input.match_score(r);
      scores_.push_back(score);
      best = score > best ? score : best;
    }
    Route route;
    if (best >= 0) {
      for (std::uint32_t i = 0; i < scores_.size(); ++i) {
        if (scores_[i] == best) {
          route.tied.push_back(i);
        }
      }
    }
    return table_.emplace(shape, std::move(route)).first->second;
  }

  std::vector<MultiType> inputs_;
  std::unordered_map<ShapeId, Route> table_;
  std::vector<int> scores_;  // scratch, reused across misses
  std::uint64_t tie_break_ = 0;
};

}  // namespace snet::detail

#endif
