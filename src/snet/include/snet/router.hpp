#ifndef SNETSAC_SNET_ROUTER_HPP
#define SNETSAC_SNET_ROUTER_HPP

/// \file router.hpp (internal)
/// Shape-memoized branch selection for parallel combinators. The branch
/// input types are fixed at instantiation and a record's match outcome
/// depends only on its label set, so the full best-match decision — the
/// winning score and the set of equally-scored branches — is computed once
/// per distinct `ShapeId` and replayed as a single hash lookup thereafter.
/// Ties still rotate per record ("one is selected non-deterministically");
/// only the tied *set* is memoized, not the pick.
///
/// Route tables are *bounded*: steady-state streams carry a handful of
/// shapes, but an adversarial workload can mint unbounded distinct label
/// sets (the ROADMAP follow-up from PR 2). At `max_entries` the table is
/// evicted wholesale (epoch reset — O(1) amortised for workloads that
/// merely drift); a workload that keeps blowing through the cap
/// (`kMaxResets` evictions) is genuinely churn-heavy, so caching turns
/// itself off and every decision falls back to uncached matching — always
/// correct, never unbounded memory.
///
/// Not thread-safe: a router belongs to one entity, and entities are run
/// by at most one worker at a time. Shared with bench_routing so the
/// microbenchmark measures exactly the production decision path.

#include <cstdint>
#include <utility>
#include <vector>

#include "snet/rtypes.hpp"
#include "snet/shapes.hpp"

namespace snet::detail {

/// Cap policy shared by every per-entity route table.
struct RouteTableBounds {
  static constexpr std::size_t kDefaultMaxEntries = 1024;
  static constexpr unsigned kMaxResets = 8;
};

/// Open-addressed ShapeId → Value table behind every route memo. ShapeIds
/// are small dense integers and route tables sit on the per-record hot
/// path, so a linear-probe array (Fibonacci-mixed, load ≤ 1/2) replaces
/// the previous `unordered_map`: a lookup is one multiply plus a couple of
/// contiguous probes, no allocation. Values are stored in place; pointers
/// to them stay valid until the next `insert` (which may rehash) or
/// `clear`, which is exactly the lifetime the run caches above it need.
template <class Value>
class FlatShapeTable {
 public:
  Value* find(ShapeId shape) {
    if (count_ == 0) {
      return nullptr;
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(shape) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == shape + 1) {
        return &s.value;
      }
      if (s.key == 0) {
        return nullptr;
      }
    }
  }

  /// Inserts \p value under \p shape (precondition: absent). May rehash;
  /// returns the stored value's address.
  Value* insert(ShapeId shape, Value value) {
    if ((count_ + 1) * 2 > slots_.size()) {
      grow();
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(shape) & mask;
    while (slots_[i].key != 0) {
      i = (i + 1) & mask;
    }
    slots_[i].key = shape + 1;
    slots_[i].value = std::move(value);
    ++count_;
    return &slots_[i].value;
  }

  void clear() {
    slots_.clear();
    count_ = 0;
  }

  std::size_t size() const { return count_; }

 private:
  struct Slot {
    ShapeId key = 0;  // shape + 1; 0 marks an empty slot
    Value value{};
  };

  static std::size_t mix(ShapeId shape) {
    return static_cast<std::size_t>((shape + 1) * 2654435761U);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.key == 0) {
        continue;
      }
      std::size_t i = mix(s.key - 1) & mask;
      while (slots_[i].key != 0) {
        i = (i + 1) & mask;
      }
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

/// Per-shape memo table: one immutable value per record shape, computed
/// on first sight. The idiom behind every entity route table — filters
/// and star exits memoize a bool (pattern type match), synchrocells a
/// slot bitset. Unsynchronised by design: a memo belongs to one entity,
/// and entities are run by at most one worker at a time.
template <class Value>
class ShapeMemo {
 public:
  explicit ShapeMemo(std::size_t max_entries = RouteTableBounds::kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// The memoized value for \p shape, computing it via \p fill on a miss.
  /// Returns by value: once caching is disabled (sustained shape churn)
  /// there is no stored entry to reference.
  ///
  /// Same-shape *runs* — the common case once quanta drain record batches,
  /// where consecutive records of a batch carry the same ShapeId — hit the
  /// inline last-decision cache and skip even the hash lookup: the
  /// decision is taken once per run, not once per record.
  template <class Fill>
  Value get_or(ShapeId shape, Fill&& fill) {
    if (has_last_ && shape == last_shape_) {
      return last_value_;
    }
    if (disabled_) {
      return fill();
    }
    if (const Value* found = table_.find(shape)) {
      last_shape_ = shape;
      last_value_ = *found;
      has_last_ = true;
      return last_value_;
    }
    Value v = fill();
    if (table_.size() >= max_entries_) {
      if (++resets_ > RouteTableBounds::kMaxResets) {
        disabled_ = true;
        table_.clear();
        has_last_ = false;
        return v;
      }
      table_.clear();
      has_last_ = false;
    }
    table_.insert(shape, v);
    last_shape_ = shape;
    last_value_ = v;
    has_last_ = true;
    return v;
  }

  std::size_t size() const { return table_.size(); }
  unsigned resets() const { return resets_; }
  bool caching_disabled() const { return disabled_; }

 private:
  FlatShapeTable<Value> table_;
  std::size_t max_entries_;
  unsigned resets_ = 0;
  bool disabled_ = false;
  /// Inline run cache: the last shape seen and its value. Invalidated on
  /// every table eviction (the value is a copy, but keeping the fast path
  /// coherent with the table keeps reasoning simple).
  ShapeId last_shape_ = 0;
  Value last_value_{};
  bool has_last_ = false;
};

class ParallelRouter {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit ParallelRouter(std::vector<MultiType> inputs,
                          std::size_t max_entries = RouteTableBounds::kDefaultMaxEntries)
      : inputs_(std::move(inputs)), max_entries_(max_entries == 0 ? 1 : max_entries) {}

  std::size_t branch_count() const { return inputs_.size(); }

  /// The branch index \p r routes to, or npos when no branch matches.
  std::size_t route(const Record& r) {
    const Route& route = decide(r.shape(), r);
    if (route.tied.empty()) {
      return npos;
    }
    if (route.tied.size() == 1) {
      return route.tied.front();
    }
    return route.tied[tie_break_++ % route.tied.size()];
  }

  std::size_t table_size() const { return table_.size(); }
  unsigned resets() const { return resets_; }
  bool caching_disabled() const { return disabled_; }

  /// The argmax set — every branch sharing the best match score — for a
  /// *lower-bound record type* instead of a concrete record. This is the
  /// decision the topology verifier (verify.hpp) replays statically: it
  /// runs the same argmax collection as `decide`, scoring with the
  /// type-level `MultiType::match_score` overload, so the static tied set
  /// equals the runtime tied set for any record of exactly that type by
  /// construction. Empty result = unroutable (the runtime's npos).
  /// Uncached — this runs at verify time, not on the record hot path.
  static std::vector<std::uint32_t> tied_for(const std::vector<MultiType>& inputs,
                                             const RecordType& v) {
    std::vector<int> scores;
    scores.reserve(inputs.size());
    for (const MultiType& input : inputs) {
      scores.push_back(input.match_score(v));
    }
    std::vector<std::uint32_t> tied;
    collect_argmax(scores, tied);
    return tied;
  }

 private:
  struct Route {
    std::vector<std::uint32_t> tied;  // branches sharing the best score
  };

  /// The one argmax-set collection both the runtime decision and the
  /// static `tied_for` run: keep the branches sharing the best
  /// non-negative score (empty when nothing matches).
  static void collect_argmax(const std::vector<int>& scores,
                             std::vector<std::uint32_t>& tied) {
    int best = -1;
    for (const int s : scores) {
      best = s > best ? s : best;
    }
    tied.clear();
    if (best >= 0) {
      for (std::uint32_t i = 0; i < scores.size(); ++i) {
        if (scores[i] == best) {
          tied.push_back(i);
        }
      }
    }
  }

  const Route& decide(ShapeId shape, const Record& r) {
    // Same-shape run: replay the previous decision without the hash
    // lookup (the pointer stays valid until the next table eviction,
    // which clears it). Tie rotation still happens per record in route().
    if (last_route_ != nullptr && shape == last_shape_) {
      return *last_route_;
    }
    if (!disabled_) {
      if (const Route* found = table_.find(shape)) {
        last_shape_ = shape;
        last_route_ = found;
        return *found;
      }
    }
    // Fresh shape: score every branch once into the scratch vector, then
    // collect the argmax set (the same collection tied_for runs on types).
    scores_.clear();
    for (const MultiType& input : inputs_) {
      scores_.push_back(input.match_score(r));
    }
    collect_argmax(scores_, scratch_.tied);
    if (disabled_) {
      return scratch_;
    }
    if (table_.size() >= max_entries_) {
      // Bounded table (see file comment): evict wholesale, and give up on
      // caching entirely under sustained churn.
      if (++resets_ > RouteTableBounds::kMaxResets) {
        disabled_ = true;
        table_.clear();
        last_route_ = nullptr;
        return scratch_;
      }
      table_.clear();
      last_route_ = nullptr;
    }
    // Stored routes stay put until the next insert (possible rehash) or
    // eviction, and the run cache is refreshed on both — so the cached
    // pointer is always into live storage.
    Route* stored = table_.insert(shape, scratch_);
    last_shape_ = shape;
    last_route_ = stored;
    return *stored;
  }

  std::vector<MultiType> inputs_;
  FlatShapeTable<Route> table_;
  std::vector<int> scores_;  // scratch, reused across misses
  Route scratch_;            // decision of record, valid until the next decide
  std::size_t max_entries_;
  unsigned resets_ = 0;
  bool disabled_ = false;
  std::uint64_t tie_break_ = 0;
  /// Inline run cache (see decide): last shape and its table entry.
  ShapeId last_shape_ = 0;
  const Route* last_route_ = nullptr;
};

}  // namespace snet::detail

#endif
