#ifndef SNETSAC_SNET_TEXT_HPP
#define SNETSAC_SNET_TEXT_HPP

/// \file text.hpp
/// Tokeniser for S-Net textual notation, shared by the in-core parsers
/// (signatures, patterns, filters) and the full network-language frontend
/// in snet/lang.
///
/// One S-Net-specific subtlety: `<k>` is a tag literal while `<`/`>` are
/// also comparison operators in tag expressions (the paper writes the exit
/// guard `<level> > 40`). The tokeniser resolves this lexically: `<`
/// immediately followed by an identifier and a closing `>` with no
/// intervening spaces is a tag token.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace snet::text {

enum class Tok {
  Ident, Int, Tag,
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Comma, Semi, Colon, Assign, Arrow,
  Bar, BarBar, DotDot, Star, StarStar, Bang, BangBang,
  Plus, Minus, Slash, Percent,
  Lt, Gt, Le, Ge, EqEq, Ne, AndAnd, OrOr, NotOp,
  KwIf, KwBox, KwNet, KwConnect, KwFilter, KwSync,
  End,
};

struct Token {
  Tok kind;
  std::string text;        // identifier / tag name
  std::int64_t ival = 0;   // Int
  std::size_t pos = 0;     // byte offset, for diagnostics
};

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Tokenises \p src; always ends with a Tok::End token. Comments run from
/// `//` to end of line.
std::vector<Token> tokenize(const std::string& src);

/// Token kind name for diagnostics.
std::string tok_name(Tok t);

/// Simple cursor over a token vector used by the recursive-descent parsers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  bool at(Tok t) const { return peek().kind == t; }
  const Token& advance() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool accept(Tok t) {
    if (at(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(Tok t, const std::string& context) {
    if (!at(t)) {
      throw ParseError("expected " + tok_name(t) + " in " + context + ", found " +
                           tok_name(peek().kind),
                       peek().pos);
    }
    return toks_[pos_++];
  }
  bool done() const { return at(Tok::End); }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace snet::text

#endif
