#ifndef SNETSAC_SNET_FILTER_HPP
#define SNETSAC_SNET_FILTER_HPP

/// \file filter.hpp
/// S-Net filters: `[pattern -> record1; record2; ... recordn]`
/// (paper, Section 4). A filter consumes a record matching the pattern and
/// produces one record per specifier, where each specifier item is:
///  * a field name occurring in the pattern (copied),
///  * `newfield = oldfield` with oldfield in the pattern (duplication /
///    renaming),
///  * `newtag = expression` over pattern tags (tag arithmetic; omitted
///    initialisers default to zero, i.e. a bare new tag like `<t>`),
///  * a tag name occurring in the pattern (copied).
/// Labels of the input record *not* in the pattern flow-inherit onto every
/// produced record unless the specifier already created that label.

#include <stdexcept>
#include <string>
#include <vector>

#include "snet/pattern.hpp"
#include "snet/record.hpp"
#include "snet/tagexpr.hpp"

namespace snet {

class FilterError : public std::runtime_error {
 public:
  explicit FilterError(const std::string& what) : std::runtime_error(what) {}
};

class FilterSpec {
 public:
  struct Item {
    enum class Kind { CopyField, BindField, CopyTag, SetTag };
    Kind kind;
    Label target;
    Label source{};  // BindField
    TagExpr expr;    // SetTag
  };
  struct Output {
    std::vector<Item> items;
  };

  FilterSpec(Pattern pattern, std::vector<Output> outputs);

  /// Parses the paper's notation (square brackets optional):
  /// `[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]`.
  static FilterSpec parse(const std::string& text);

  const Pattern& pattern() const { return pattern_; }
  const std::vector<Output>& outputs() const { return outputs_; }

  /// Applies the filter; throws FilterError when the record does not match
  /// the pattern (a type error the static checker should have caught).
  std::vector<Record> apply(const Record& in) const;

  /// Applies the filter to a record the caller has already matched against
  /// the pattern (e.g. via a shape-memoized route table). Precondition:
  /// `pattern().matches(in)`.
  std::vector<Record> apply_matched(const Record& in) const;

  /// The guaranteed labels of each produced record (excluding flow
  /// inheritance) — the filter's declared output type.
  MultiType output_type() const;

  std::string to_string() const;

 private:
  void validate() const;

  Pattern pattern_;
  std::vector<Output> outputs_;
};

}  // namespace snet

#endif
