#ifndef SNETSAC_SNET_FILTER_HPP
#define SNETSAC_SNET_FILTER_HPP

/// \file filter.hpp
/// S-Net filters: `[pattern -> record1; record2; ... recordn]`
/// (paper, Section 4). A filter consumes a record matching the pattern and
/// produces one record per specifier, where each specifier item is:
///  * a field name occurring in the pattern (copied),
///  * `newfield = oldfield` with oldfield in the pattern (duplication /
///    renaming),
///  * `newtag = expression` over pattern tags (tag arithmetic; omitted
///    initialisers default to zero, i.e. a bare new tag like `<t>`),
///  * a tag name occurring in the pattern (copied).
/// Labels of the input record *not* in the pattern flow-inherit onto every
/// produced record unless the specifier already created that label.

#include <stdexcept>
#include <string>
#include <vector>

#include "snet/copyplan.hpp"
#include "snet/pattern.hpp"
#include "snet/record.hpp"
#include "snet/tagexpr.hpp"

namespace snet {

class FilterError : public std::runtime_error {
 public:
  explicit FilterError(const std::string& what) : std::runtime_error(what) {}
};

class FilterSpec {
 public:
  struct Item {
    enum class Kind { CopyField, BindField, CopyTag, SetTag };
    Kind kind;
    Label target;
    Label source{};  // BindField
    TagExpr expr;    // SetTag
  };
  struct Output {
    std::vector<Item> items;
  };

  FilterSpec(Pattern pattern, std::vector<Output> outputs);

  /// Parses the paper's notation (square brackets optional):
  /// `[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]`.
  static FilterSpec parse(const std::string& text);

  const Pattern& pattern() const { return pattern_; }
  const std::vector<Output>& outputs() const { return outputs_; }

  /// Applies the filter; throws FilterError when the record does not match
  /// the pattern (a type error the static checker should have caught).
  std::vector<Record> apply(const Record& in) const;

  /// Applies the filter to a record the caller has already matched against
  /// the pattern (e.g. via a shape-memoized route table). Precondition:
  /// `pattern().matches(in)`. This is the uncompiled per-label reference
  /// path; the runtime's hot path goes through compile/apply_planned.
  std::vector<Record> apply_matched(const Record& in) const;

  /// One compiled copy plan per output specifier, valid for every record
  /// whose shape equals the compiling record's shape.
  struct Compiled {
    std::vector<detail::CopyPlan> outputs;
  };

  /// Compiles the specifier-plus-flow-inheritance loops against \p in's
  /// shape: every produced label resolves to a flat (source slot → dest
  /// slot) move (tag expressions stay per-record). Precondition: the
  /// pattern's *type* matches \p in. The result is cached per input
  /// ShapeId by FilterEntity and replayed via apply_planned.
  Compiled compile(const Record& in) const;

  /// Replays a compiled plan; produces exactly what apply_matched would
  /// for any record of the compiling shape.
  std::vector<Record> apply_planned(const Record& in, const Compiled& plans) const;

  /// The guaranteed labels of each produced record (excluding flow
  /// inheritance) — the filter's declared output type.
  MultiType output_type() const;

  std::string to_string() const;

 private:
  void validate() const;

  Pattern pattern_;
  std::vector<Output> outputs_;
};

}  // namespace snet

#endif
