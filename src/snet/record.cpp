#include "snet/record.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace snet {

namespace {
template <class Vec, class Key>
auto lower_bound_label(Vec& vec, Key label) {
  return std::lower_bound(vec.begin(), vec.end(), label,
                          [](const auto& entry, Label l) { return entry.first < l; });
}
}  // namespace

void Record::shape_add(Label label) {
  const ShapeRef ref = ShapeRegistry::instance().with(shape_, label);
  shape_ = ref.id;
  mask_ = ref.mask;
}

void Record::shape_remove(Label label) {
  const ShapeRef ref = ShapeRegistry::instance().without(shape_, label);
  shape_ = ref.id;
  mask_ = ref.mask;
}

const Value* Record::find_field(Label label) const {
  const auto it = lower_bound_label(fields_, label);
  return (it != fields_.end() && it->first == label) ? &it->second : nullptr;
}

const std::int64_t* Record::find_tag(Label label) const {
  const auto it = lower_bound_label(tags_, label);
  return (it != tags_.end() && it->first == label) ? &it->second : nullptr;
}

void Record::set_field(Label label, Value v) {
  if (label.kind != LabelKind::Field) {
    throw std::invalid_argument("set_field with tag label " + label_display(label));
  }
  const auto it = lower_bound_label(fields_, label);
  if (it != fields_.end() && it->first == label) {
    it->second = std::move(v);
  } else {
    fields_.insert(it, {label, std::move(v)});
    shape_add(label);
  }
}

const Value& Record::field(Label label) const {
  const Value* p = find_field(label);
  if (p == nullptr) {
    throw std::out_of_range("record " + to_string() + " has no field " +
                            label_display(label));
  }
  return *p;
}

void Record::remove_field(Label label) {
  const auto it = lower_bound_label(fields_, label);
  if (it != fields_.end() && it->first == label) {
    fields_.erase(it);
    shape_remove(label);
  }
}

void Record::set_tag(Label label, std::int64_t v) {
  if (label.kind != LabelKind::Tag) {
    throw std::invalid_argument("set_tag with field label " + label_display(label));
  }
  const auto it = lower_bound_label(tags_, label);
  if (it != tags_.end() && it->first == label) {
    it->second = v;
  } else {
    tags_.insert(it, {label, v});
    shape_add(label);
  }
}

std::int64_t Record::tag(Label label) const {
  const std::int64_t* p = find_tag(label);
  if (p == nullptr) {
    throw std::out_of_range("record " + to_string() + " has no tag " +
                            label_display(label));
  }
  return *p;
}

void Record::remove_tag(Label label) {
  const auto it = lower_bound_label(tags_, label);
  if (it != tags_.end() && it->first == label) {
    tags_.erase(it);
    shape_remove(label);
  }
}

std::vector<Label> Record::labels() const {
  std::vector<Label> out;
  out.reserve(fields_.size() + tags_.size());
  for (const auto& [l, v] : fields_) {
    out.push_back(l);
  }
  for (const auto& [l, v] : tags_) {
    out.push_back(l);
  }
  return out;
}

std::string Record::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [l, v] : fields_) {
    os << (first ? "" : ", ") << label_name(l);
    first = false;
  }
  for (const auto& [l, v] : tags_) {
    os << (first ? "" : ", ") << '<' << label_name(l) << ">=" << v;
    first = false;
  }
  os << '}';
  return os.str();
}

Record Record::assemble(std::vector<std::pair<Label, Value>> fields,
                        std::vector<std::pair<Label, std::int64_t>> tags,
                        ShapeRef shape) {
  Record r;
  r.fields_ = std::move(fields);
  r.tags_ = std::move(tags);
  r.shape_ = shape.id;
  r.mask_ = shape.mask;
  return r;
}

Record record_with(std::initializer_list<std::pair<std::string_view, Value>> fields,
                   std::initializer_list<std::pair<std::string_view, std::int64_t>> tags) {
  Record r;
  for (const auto& [name, v] : fields) {
    r.set_field(field_label(name), v);
  }
  for (const auto& [name, v] : tags) {
    r.set_tag(tag_label(name), v);
  }
  return r;
}

}  // namespace snet
