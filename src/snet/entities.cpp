#include "snet/entities.hpp"

#include <algorithm>

namespace snet::detail {

// ---------------------------------------------------------------- Output

bool OutputEntity::try_push(Record& r, bool from_deferred) {
  return net_.push_output(r, this, from_deferred) ==
         Network::PushOutcome::kAccepted;
}

void OutputEntity::on_record(Record r) {
  // Virtual dispatch severs the REQUIRES chain: every override re-asserts
  // the quantum role at entry (here and in every on_record/on_poke below).
  quantum_role_.assert_held();
  // Stamps must not escape to the client: det regions are closed by their
  // collectors before this point; clearing here is belt-and-braces.
  r.det_stack().clear();
  SessionState* const s = r.session_state();
  if (defer_pending(s)) {
    // Records of this session are already parked on the credit key: the
    // newcomer queues behind them (per-session FIFO — it must not
    // overtake), and is accounted against the session's credit so the
    // inject gate sees it.
    net_.note_deferred_output(s);
    defer_record(s, std::move(r));
    return;
  }
  if (batching()) {
    // Stage for the quantum-end batch push: one buffer-lock acquisition
    // and one client wakeup for the whole quantum. The staged record
    // stays live until run_quantum's flush (after on_quantum_end), and
    // push_output_batch keeps per-session FIFO for refusals.
    staged_.push_back(std::move(r));
    return;
  }
  if (!try_push(r, /*from_deferred=*/false)) {
    // The session's output credit account is exhausted. Do NOT stall this
    // shared entity (that was the cross-session head-of-line block):
    // defer only this session's record; push_output registered us for a
    // poke when the client replenishes the account.
    defer_record(s, std::move(r));
  }
}

void OutputEntity::on_quantum_end() {
  quantum_role_.assert_held();
  if (staged_.empty()) {
    return;
  }
  // One lock for the whole quantum's output. Refused records come back in
  // arrival order with the refusal accounting (credit park, waiter
  // registration) already done; they defer on the (entity, session) key
  // exactly as a scalar refusal would.
  refused_.clear();
  net_.push_output_batch(staged_, this, refused_);
  staged_.clear();
  for (Record& r : refused_) {
    defer_record(r.session_state(), std::move(r));
  }
  refused_.clear();
}

void OutputEntity::on_poke() {
  quantum_role_.assert_held();
  // Credit returned for some session (or one was released/failed): retry
  // the deferred records. A refusal re-registers the waiter atomically,
  // so stopping at the first refusal per session is safe.
  flush_deferred([this](SessionState*, Record& r) {
    quantum_role_.assert_held();  // lambda analysed as a free function
    return try_push(r, /*from_deferred=*/true);
  });
}

// ----------------------------------------------------------------- Input

void InputDispatchEntity::on_record(Record) {
  quantum_role_.assert_held();
  // Clients reach the entry only through the staging queues; nothing may
  // deliver records to the dispatcher itself.
  throw std::logic_error("input dispatcher received a record");
}

void InputDispatchEntity::fire_released() {
  for (auto& cb : released_) {
    cb();
  }
  released_.clear();
}

void InputDispatchEntity::drop_staged(SessionState* s) {
  while (auto r = s->staging_.try_pop_collect(released_)) {
    net_.live_sub(s, 1);  // dropped: released/errored sessions owe nobody
  }
  fire_released();
}

void InputDispatchEntity::on_poke() {
  quantum_role_.assert_held();
  // Weighted deficit-round-robin over the sessions with staged input.
  // Each turn grants deficit proportional to the session's weight and
  // forwards that many staged records into the shared entry; a hot
  // session's surplus waits in its own staging queue. The quantum budget
  // bounds one poke's work — leftover backlog re-pokes us so the worker
  // is yielded between rounds.
  net_.dispatch_take_ready(active_);
  const unsigned grant = net_.drr_grant();
  unsigned budget = grant * 4;
  // Turns are bounded separately from the record budget: a ring full of
  // throttled/dropped sessions must not spin a quantum forever.
  unsigned turns = static_cast<unsigned>(active_.size()) + 4;
  while (turns-- > 0 && budget > 0 && !active_.empty() && !stall_requested()) {
    SessionState* s = active_.front();
    active_.pop_front();
    if (s->abandoned() || s->errored()) {
      drop_staged(s);
      if (!net_.dispatch_delist(s)) {
        active_.push_back(s);  // a racing inject re-listed it: drop next turn
      }
      continue;
    }
    if (s->throttled()) {
      // Interior (det/sync) account over its cap: pause this session's
      // admission. dispatch_wake re-pokes us at the drain watermark; a
      // fresh inject after the delist re-lists too.
      if (!net_.dispatch_delist(s)) {
        active_.push_back(s);  // re-listed into our hands: keep it parked here
      }
      continue;
    }
    s->deficit_ += static_cast<std::int64_t>(grant) * s->weight();
    s->drr_turns_.fetch_add(1, std::memory_order_relaxed);
    bool emptied = false;
    while (s->deficit_ > 0 && budget > 0 && !stall_requested()) {
      auto r = s->staging_.try_pop_collect(released_);
      if (!r) {
        emptied = true;
        break;
      }
      --s->deficit_;
      --budget;
      s->forwarded_.fetch_add(1, std::memory_order_relaxed);
      transfer(entry_, std::move(*r));
    }
    fire_released();
    if (emptied) {
      s->deficit_ = 0;  // classic DRR: no banking credit across idle gaps
      if (!net_.dispatch_delist(s)) {
        active_.push_back(s);  // a concurrent inject re-listed it our way
      }
    } else {
      active_.push_back(s);  // rotate; deficit carries across the stall/budget
    }
  }
  if (stall_requested()) {
    return;  // the entry-credit resume re-enters here with the ring intact
  }
  // Self-poke only when some ring member is actually serviceable: a ring
  // of throttled-only sessions waits for dispatch_wake instead of
  // spinning poke → skip → poke.
  for (SessionState* s : active_) {
    if (!s->throttled()) {
      poke();
      break;
    }
  }
}

// ------------------------------------------------------------------- Box

BoxEntity::BoxEntity(Network& net, std::string name, Net node, Entity* successor)
    : Entity(net, std::move(name)), node_(std::move(node)), succ_(successor),
      input_type_(node_->sig.input.type()) {}

void BoxEntity::on_record(Record r) {
  quantum_role_.assert_held();
  // Bind declared input labels; their presence is a type obligation. The
  // mask-then-subset match settles the common case; the per-label rescan
  // on failure only serves the error message.
  if (!input_type_.matches(r)) {
    for (const Label l : node_->sig.input.labels) {
      if (!r.has(l)) {
        throw NetTypeError("box " + node_->name + " received record " +
                           r.to_string() + " lacking declared label " +
                           label_display(l));
      }
    }
  }
  current_ = &r;
  const BoxInput in(r, node_->sig.input);
  try {
    node_->fn(in, *this);
  } catch (...) {
    current_ = nullptr;
    throw;
  }
  current_ = nullptr;
}

void BoxEntity::emit(int variant, std::vector<BoxArg> args) {
  quantum_role_.assert_held();
  if (current_ == nullptr) {
    throw BoxError("box " + node_->name + " called snet_out outside processing");
  }
  if (variant < 1 || static_cast<std::size_t>(variant) > node_->sig.outputs.size()) {
    throw BoxError("box " + node_->name + " emitted unknown variant " +
                   std::to_string(variant));
  }
  const SigVariant& out_sig = node_->sig.outputs[static_cast<std::size_t>(variant - 1)];
  if (args.size() != out_sig.labels.size()) {
    throw BoxError("box " + node_->name + " variant " + std::to_string(variant) +
                   " expects " + std::to_string(out_sig.labels.size()) +
                   " arguments, got " + std::to_string(args.size()));
  }
  // Argument validation stays per emission (the plan only knows layout);
  // every position is checked, as the unplanned loop did, even ones a
  // duplicate label later overwrites.
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (out_sig.labels[i].kind == LabelKind::Tag && !args[i].is_integer) {
      throw BoxError("box " + node_->name + " bound a payload to tag " +
                     label_display(out_sig.labels[i]));
    }
  }
  // Flow inheritance ("we retrieve excess fields and tags from incoming
  // records and extend any output record produced in response to this very
  // input record by these fields and tags, unless some label is already
  // present in the output record") is compiled per input shape: the
  // contains probes and sorted inserts ran once, in compile_emit_plans.
  const auto plans =
      emit_plans_.get_or(current_->shape(), [&] {
        quantum_role_.assert_held();
        return compile_emit_plans();
      });
  const CopyPlan& plan = (*plans)[static_cast<std::size_t>(variant - 1)];
  Record out = apply_copy_plan(
      plan, *current_,
      [&](std::uint32_t idx) {
        BoxArg& a = args[idx];
        return a.is_integer ? make_value(a.integer) : std::move(a.value);
      },
      [&](std::uint32_t idx) { return args[idx].integer; });
  send(succ_, std::move(out));
}

std::shared_ptr<const std::vector<CopyPlan>> BoxEntity::compile_emit_plans() const {
  auto plans = std::make_shared<std::vector<CopyPlan>>();
  plans->reserve(node_->sig.outputs.size());
  for (const SigVariant& out_sig : node_->sig.outputs) {
    CopyPlanBuilder b;
    for (std::size_t i = 0; i < out_sig.labels.size(); ++i) {
      const Label l = out_sig.labels[i];
      if (l.kind == LabelKind::Tag) {
        b.declare_tag(l, CopyPlan::Src::kExt, static_cast<std::uint32_t>(i));
      } else {
        b.declare_field(l, CopyPlan::Src::kExt, static_cast<std::uint32_t>(i));
      }
    }
    const RecordType& consumed = input_type_;
    for (std::size_t i = 0; i < current_->fields().size(); ++i) {
      const Label l = current_->fields()[i].first;
      if (!consumed.contains(l)) {
        b.inherit_field(l, static_cast<std::uint32_t>(i));
      }
    }
    for (std::size_t i = 0; i < current_->tags().size(); ++i) {
      const Label l = current_->tags()[i].first;
      if (!consumed.contains(l)) {
        b.inherit_tag(l, static_cast<std::uint32_t>(i));
      }
    }
    plans->push_back(b.finish());
  }
  return plans;
}

// ---------------------------------------------------------------- Filter

FilterEntity::FilterEntity(Network& net, std::string name, Net node,
                           Entity* successor)
    : Entity(net, std::move(name)), node_(std::move(node)), succ_(successor) {}

void FilterEntity::on_record(Record r) {
  quantum_role_.assert_held();
  // One memo lookup settles both the pattern's type match and the
  // compiled plans for this shape (null = type mismatch). The guard (tag
  // values) cannot be memoized and is evaluated per record; both the
  // mismatch and the guard-failure path go through apply() so the error
  // is identical to the unmemoized one.
  // Scalar ablation mode: the pre-PR per-record path — type match plus
  // per-label output construction on every record, no compiled plans.
  if (!batching()) {
    std::vector<Record> produced = node_->filter->apply(r);
    for (auto& out : produced) {
      send(succ_, std::move(out));
    }
    return;
  }
  const Pattern& pat = node_->filter->pattern();
  const auto plans = plans_.get_or(
      r.shape(), [&]() -> std::shared_ptr<const FilterSpec::Compiled> {
        if (!pat.type.matches(r)) {
          return nullptr;
        }
        return std::make_shared<const FilterSpec::Compiled>(
            node_->filter->compile(r));
      });
  if (plans != nullptr && (!pat.guard || pat.guard->eval_bool(r))) {
    if (plans->outputs.size() == 1 && plans->outputs[0].identity) {
      // Identity plan: the output record *is* the input record — forward
      // it by move, no assembly at all.
      send(succ_, std::move(r));
      return;
    }
    std::vector<Record> produced = node_->filter->apply_planned(r, *plans);
    for (auto& out : produced) {
      send(succ_, std::move(out));
    }
    return;
  }
  std::vector<Record> produced = node_->filter->apply(r);
  for (auto& out : produced) {
    send(succ_, std::move(out));
  }
}

// -------------------------------------------------------------- Parallel

namespace {

std::vector<MultiType> branch_inputs(std::vector<ParallelEntity::Branch>& branches) {
  std::vector<MultiType> inputs;
  inputs.reserve(branches.size());
  for (auto& b : branches) {
    inputs.push_back(std::move(b.input));
  }
  return inputs;
}

}  // namespace

ParallelEntity::ParallelEntity(Network& net, std::string name,
                               std::vector<Branch> branches)
    : Entity(net, std::move(name)), router_(branch_inputs(branches)) {
  entries_.reserve(branches.size());
  for (const Branch& b : branches) {
    entries_.push_back(b.entry);
  }
}

void ParallelEntity::on_record(Record r) {
  quantum_role_.assert_held();
  // Best-match routing, memoized per shape: each branch is scored once
  // when a shape is first seen; afterwards the decision is a hash lookup.
  // "If both branches in the streaming network match equally well, one is
  // selected non-deterministically" — ties alternate for fairness.
  const std::size_t chosen = router_.route(r);
  if (chosen == ParallelRouter::npos) {
    throw NetTypeError("parallel combinator " + name() + ": record " + r.to_string() +
                       " matches no branch");
  }
  send(entries_[chosen], std::move(r));
}

// ------------------------------------------------------------------ Star

StarStageEntity::StarStageEntity(Network& net, std::string prefix, Net node,
                                 Entity* exit_target, unsigned stage)
    : Entity(net, prefix + "/stage" + std::to_string(stage)),
      prefix_(std::move(prefix)),
      node_(std::move(node)),
      exit_target_(exit_target),
      stage_(stage) {}

void StarStageEntity::on_record(Record r) {
  quantum_role_.assert_held();
  // Exit-tap decision, memoized per shape (the Fig. 3 guard `<level> > 40`
  // still runs per record — only the label-set half is cached).
  const Pattern& exit = node_->exit;
  const bool type_ok =
      exit_type_match_.get_or(r.shape(), [&] { return exit.type.matches(r); });
  if (type_ok && (!exit.guard || exit.guard->eval_bool(r))) {
    send(exit_target_, std::move(r));
    return;
  }
  if (replica_entry_ == nullptr) {
    // Demand-driven unfolding: materialise this stage's replica and the
    // next tap.
    auto next = std::make_unique<StarStageEntity>(net_, prefix_, node_, exit_target_,
                                                  stage_ + 1);
    Entity* next_raw = net_.adopt(std::move(next));
    replica_entry_ = net_.instantiate(
        node_->child, next_raw, prefix_ + "/rep" + std::to_string(stage_));
  }
  send(replica_entry_, std::move(r));
}

// ----------------------------------------------------------------- Split

SplitEntity::SplitEntity(Network& net, std::string prefix, Net node,
                         Entity* successor)
    : Entity(net, prefix), prefix_(std::move(prefix)), node_(std::move(node)),
      succ_(successor) {}

std::size_t SplitEntity::replica_count() const { return replicas_.size(); }

void SplitEntity::on_record(Record r) {
  quantum_role_.assert_held();
  if (!r.has_tag(node_->split_tag)) {
    throw NetTypeError("parallel replication " + name() + ": record " +
                       r.to_string() + " lacks the replication tag " +
                       label_display(node_->split_tag));
  }
  const std::int64_t v = r.tag(node_->split_tag);
  auto it = replicas_.find(v);
  if (it == replicas_.end()) {
    Entity* entry = net_.instantiate(node_->child, succ_,
                                     prefix_ + "[" + std::to_string(v) + "]");
    it = replicas_.emplace(v, entry).first;
  }
  send(it->second, std::move(r));
}

// ------------------------------------------------------------- Det entry

DetEntryEntity::DetEntryEntity(Network& net, std::string name, DetScope* scope)
    : Entity(net, std::move(name)), scope_(scope) {}

void DetEntryEntity::on_record(Record r) {
  quantum_role_.assert_held();
  const std::uint64_t seq = scope_->open_group();
  r.det_stack().push_back(DetStamp{scope_, seq});
  send(target_, std::move(r));
}

// --------------------------------------------------------- Det collector

DetCollectorEntity::DetCollectorEntity(Network& net, std::string name,
                                       Entity* successor)
    : Entity(net, name), scope_(name), succ_(successor) {
  scope_.set_collector(this);
}

void DetCollectorEntity::on_record(Record r) {
  quantum_role_.assert_held();
  auto& stack = r.det_stack();
  if (stack.empty() || stack.back().scope != &scope_) {
    throw std::logic_error("det collector " + name() +
                           " received record without its stamp");
  }
  const std::uint64_t seq = stack.back().seq;
  stack.pop_back();
  SessionState* const session = r.session_state();
  if (session != nullptr && session->errored()) {
    // Fail-fast already hit this session: drop instead of buffering (the
    // generic consume decrements in run_quantum retire the record).
    return;
  }
  // Charge the record's session's interior account before buffering.
  const bool within = net_.interior_admit(session);
  if (!within && net_.overflow_policy() == OverflowPolicy::FailFast) {
    net_.interior_release(session, 1);  // undo: the record is dropped
    net_.fail_session(session,
                      std::make_exception_ptr(SessionOverflowError(
                          "det collector " + name() + " buffering for session " +
                          std::to_string(session != nullptr ? session->id() : 0) +
                          " exceeded Options::det_capacity")));
    return;
  }
  // The record lives on in the buffer: keep it counted in every enclosing
  // det group and in the network's live total (the generic consume
  // decrements in run_quantum are compensated here).
  for (const auto& s : stack) {
    s.scope->adjust(s.seq, +1);
  }
  net_.live_add(session, 1);
  Group& group = buffer_[seq];
  if (!within) {
    // Spill: throttle the session's input dispatch and keep accepting.
    // The spilling latch keeps `primary` a strict prefix of the group's
    // arrivals, so primary-then-overflow release preserves order.
    net_.spill_session(session);
    group.spilling = true;
  }
  if (group.spilling) {
    if (wire::SpillStore* store = net_.spill_store()) {
      try {
        group.overflow.emplace_back(store->spill(r));
        return;  // the record's memory is released; only the frame stays
      } catch (const wire::WireError&) {
        // Undecodable payload (no codec) or I/O trouble: keep this one in
        // memory. The single overflow queue preserves arrival order
        // across the mix.
      }
    }
    net_.det_buffer_add(1);
    group.overflow.emplace_back(std::move(r));
    return;
  }
  net_.det_buffer_add(1);
  group.primary.push_back(std::move(r));
}

Record DetCollectorEntity::take_front(Group& group) {
  if (!group.primary.empty()) {
    Record r = std::move(group.primary.front());
    group.primary.pop_front();
    net_.det_buffer_sub(1);
    return r;
  }
  Spilled entry = std::move(group.overflow.front());
  group.overflow.pop_front();
  if (auto* frame = std::get_if<wire::SpillFrame>(&entry)) {
    // Restored records carry pointer-exact det stamps and session
    // identity (the store resolves them against its write-side tables).
    return net_.spill_store()->restore(*frame);
  }
  net_.det_buffer_sub(1);
  return std::move(std::get<Record>(entry));
}

void DetCollectorEntity::on_poke() {
  quantum_role_.assert_held();
  release_ready();
}

void DetCollectorEntity::release_ready() {
  // Stall-aware: a transfer into a congested successor requests a stall;
  // we then park mid-group (the deque keeps the resume point) and the
  // resume poke re-enters this loop once credit returns.
  while (!stall_requested() && next_release_ < scope_.groups_opened() &&
         scope_.complete(next_release_)) {
    const auto it = buffer_.find(next_release_);
    if (it != buffer_.end()) {
      Group& group = it->second;
      while (!group.empty() && !stall_requested()) {
        Record rec = take_front(group);
        net_.interior_release(rec.session_state(), 1);
        transfer(succ_, std::move(rec));
      }
      if (!group.empty()) {
        return;  // suspended mid-group; next_release_ stays put
      }
      buffer_.erase(it);
    }
    ++next_release_;
  }
}

// ------------------------------------------------------------------ Sync

SyncEntity::SyncEntity(Network& net, std::string name, Net node, Entity* successor)
    : Entity(net, std::move(name)), node_(std::move(node)), succ_(successor),
      slots_(node_->sync_patterns.size()) {}

Record SyncEntity::take_slot(Slot& slot) {
  Record stored;
  if (slot.rec.has_value()) {
    stored = std::move(*slot.rec);
    net_.det_buffer_sub(1);
  } else {
    stored = net_.spill_store()->restore(*slot.frame);
  }
  slot.rec.reset();
  slot.frame.reset();
  slot.session = nullptr;
  return stored;
}

void SyncEntity::on_poke() {
  quantum_role_.assert_held();
  // Poked by fail_session / port_release: evict slots whose owning
  // session died. The stored record's accounting (det stamps, interior
  // charge, liveness) is unwound exactly as a merge-consume would, so
  // the dead session can drain to zero and the network can quiesce.
  // The cached owner pointer keeps the liveness test cheap; a disk-backed
  // slot is only restored (then discarded) when it actually needs
  // unwinding — its det stamps live in the spill file.
  for (auto& slot : slots_) {
    if (!slot.filled()) {
      continue;
    }
    SessionState* const s = slot.session;
    if (s == nullptr || (!s->errored() && !s->abandoned())) {
      continue;
    }
    const Record stored = take_slot(slot);
    for (const auto& st : stored.det_stack()) {
      st.scope->adjust(st.seq, -1);
    }
    net_.interior_release(s, 1);
    net_.live_sub(s, 1);
  }
}

std::uint64_t SyncEntity::slot_type_matches(const Record& r) {
  return slot_match_.get_or(r.shape(), [&] {
    quantum_role_.assert_held();
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (node_->sync_patterns[i].type.matches(r)) {
        bits |= 1ULL << i;
      }
    }
    return bits;
  });
}

void SyncEntity::on_record(Record r) {
  quantum_role_.assert_held();
  if (!fired_) {
    // Per-shape slot bitset when the cell is small enough; the guard of a
    // pattern is still evaluated per record.
    const bool memoized = slots_.size() <= 64;
    const std::uint64_t bits = memoized ? slot_type_matches(r) : 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].filled()) {
        continue;
      }
      const Pattern& pat = node_->sync_patterns[i];
      if (memoized ? ((bits >> i) & 1) == 0 || (pat.guard && !pat.guard->eval_bool(r))
                   : !pat.matches(r)) {
        continue;
      }
      const bool last_missing =
          std::count_if(slots_.begin(), slots_.end(),
                        [](const auto& s) { return s.filled(); }) ==
          static_cast<std::ptrdiff_t>(slots_.size()) - 1;
      if (!last_missing) {
        // Storing charges the record's session's interior account: a
        // tenant filling synchrocell slots across many replicas is the
        // same adversarial buffering a det collector sees.
        SessionState* const session = r.session_state();
        if (session != nullptr && (session->errored() || session->abandoned())) {
          // Failed fast or released: drop instead of storing — a dead
          // tenant must not leave ghost contributions in shared cells
          // (nor hold its own liveness in a slot nobody will complete).
          return;
        }
        bool over_cap = false;
        if (!net_.interior_admit(session)) {
          if (net_.overflow_policy() == OverflowPolicy::FailFast) {
            net_.interior_release(session, 1);
            net_.fail_session(session,
                              std::make_exception_ptr(SessionOverflowError(
                                  "synchrocell " + name() + " storage for session " +
                                  std::to_string(session != nullptr ? session->id()
                                                                    : 0) +
                                  " exceeded Options::det_capacity")));
            return;
          }
          net_.spill_session(session);
          over_cap = true;
        }
        // Store; compensate the generic consume accounting (the record
        // survives inside the cell).
        for (const auto& s : r.det_stack()) {
          s.scope->adjust(s.seq, +1);
        }
        net_.live_add(session, 1);
        slots_[i].session = session;
        if (over_cap) {
          if (wire::SpillStore* store = net_.spill_store()) {
            try {
              slots_[i].frame = store->spill(r);
              return;  // parked on disk; restored at merge/eviction
            } catch (const wire::WireError&) {
              // No codec / I/O trouble: keep the contribution in memory.
            }
          }
        }
        net_.det_buffer_add(1);
        slots_[i].rec = std::move(r);
        return;
      }
      // This record completes the cell: merge all stored records into it
      // (slot order precedence for duplicate labels).
      Record merged = std::move(r);
      for (auto& slot : slots_) {
        if (!slot.filled()) {
          continue;
        }
        const Record stored = take_slot(slot);
        for (const auto& [label, value] : stored.fields()) {
          if (!merged.has_field(label)) {
            merged.set_field(label, value);
          }
        }
        for (const auto& [label, value] : stored.tags()) {
          if (!merged.has_tag(label)) {
            merged.set_tag(label, value);
          }
        }
        // The stored record is consumed now: undo its storage accounting.
        // (A record stored by session A may complete a cell fired by
        // session B: the merged record belongs to B, A's contribution is
        // consumed here — synchrocells join across sessions by design.)
        for (const auto& s : stored.det_stack()) {
          s.scope->adjust(s.seq, -1);
        }
        net_.interior_release(stored.session_state(), 1);
        net_.live_sub(stored.session_state(), 1);
      }
      fired_ = true;
      send(succ_, std::move(merged));
      return;
    }
  }
  // Fired, or no unfilled pattern matches: the cell is the identity.
  send(succ_, std::move(r));
}

}  // namespace snet::detail
