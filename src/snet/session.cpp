#include "snet/session.hpp"

#include "snet/network.hpp"

namespace snet {

// Ports are thin facades: the logic (and all locking) lives in Network's
// port_* methods, one translation unit away from the entity runtime that
// shares the same mutexes.

SessionState::SessionState(Network& net, std::uint32_t id, SessionOptions opts)
    : out_mu_(net.output_mutex()),
      dispatch_mu_(net.dispatch_mutex()),
      id_(id),
      weight_(opts.weight == 0 ? 1U : opts.weight),
      out_cap_(opts.output_capacity),
      in_(net, *this),
      out_(net, *this) {
  // The staging queue shares the interior inbox bound: a session can stage
  // at most one inbox worth of records before its own inject blocks.
  staging_.set_capacity(net.inbox_capacity());
  staging_.set_lock_order(50, "session.staging");
}

void InputPort::inject(Record r) { net_->port_inject(*state_, std::move(r)); }

bool InputPort::try_inject(Record& r) { return net_->port_try_inject(*state_, r); }

void InputPort::inject_all(std::vector<Record> records) {
  net_->port_inject_all(*state_, std::move(records));
}

void InputPort::close() { net_->port_close(*state_); }

bool InputPort::closed() const {
  return state_->closed_.load(std::memory_order_acquire);
}

std::optional<Record> OutputPort::next() { return net_->port_next(*state_); }

std::vector<Record> OutputPort::collect() {
  if (!state_->input().closed()) {
    net_->port_close(*state_);
  }
  std::vector<Record> all;
  // Block for the first record of each span via port_next, then take
  // whatever else the buffer holds in one drain — one lock per produced
  // batch instead of one per record.
  while (auto r = net_->port_next(*state_)) {
    all.push_back(std::move(*r));
    net_->port_drain(*state_, all);
  }
  return all;
}

std::size_t OutputPort::next_span(std::vector<Record>& out) {
  auto r = net_->port_next(*state_);
  if (!r) {
    return 0;
  }
  out.push_back(std::move(*r));
  return 1 + net_->port_drain(*state_, out);
}

void OutputPort::on_output(std::function<void(Record)> callback) {
  net_->port_on_output(*state_, std::move(callback));
}

void Session::release() {
  if (state_ != nullptr) {
    net_->port_release(*state_);
    state_ = nullptr;  // may be reclaimed; the handle must forget it
    net_ = nullptr;
  }
}

}  // namespace snet
