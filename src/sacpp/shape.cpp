#include "sacpp/shape.hpp"

#include <sstream>

namespace sac {

void Shape::validate() const {
  for (const auto d : dims_) {
    if (d < 0) {
      throw ShapeError("negative extent in shape " + to_string());
    }
  }
}

std::int64_t Shape::element_count() const {
  std::int64_t n = 1;
  for (const auto d : dims_) {
    n *= d;
  }
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (int a = rank() - 2; a >= 0; --a) {
    const auto ua = static_cast<std::size_t>(a);
    s[ua] = s[ua + 1] * dims_[ua + 1];
  }
  return s;
}

std::int64_t Shape::linearize(const Index& iv) const {
  return linearize(iv.data(), iv.size());
}

std::int64_t Shape::linearize(const std::int64_t* iv, std::size_t n) const {
  if (static_cast<int>(n) != rank()) {
    throw ShapeError("index " + index_to_string(Index(iv, iv + n)) +
                     " has rank " + std::to_string(n) + ", array has rank " +
                     std::to_string(rank()));
  }
  std::int64_t off = 0;
  for (std::size_t a = 0; a < dims_.size(); ++a) {
    if (iv[a] < 0 || iv[a] >= dims_[a]) {
      throw ShapeError("index " + index_to_string(Index(iv, iv + n)) +
                       " out of bounds for shape " + to_string());
    }
    off = off * dims_[a] + iv[a];
  }
  return off;
}

bool Shape::contains(const Index& iv) const {
  if (static_cast<int>(iv.size()) != rank()) {
    return false;
  }
  for (std::size_t a = 0; a < dims_.size(); ++a) {
    if (iv[a] < 0 || iv[a] >= dims_[a]) {
      return false;
    }
  }
  return true;
}

Index Shape::delinearize(std::int64_t offset) const {
  Index iv(dims_.size(), 0);
  for (int a = rank() - 1; a >= 0; --a) {
    const auto ua = static_cast<std::size_t>(a);
    if (dims_[ua] > 0) {
      iv[ua] = offset % dims_[ua];
      offset /= dims_[ua];
    }
  }
  return iv;
}

Shape Shape::suffix(int prefix_len) const {
  if (prefix_len < 0 || prefix_len > rank()) {
    throw ShapeError("selection prefix of length " + std::to_string(prefix_len) +
                     " invalid for shape " + to_string());
  }
  return Shape(std::vector<std::int64_t>(dims_.begin() + prefix_len, dims_.end()));
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t a = 0; a < dims_.size(); ++a) {
    if (a != 0) {
      os << ',';
    }
    os << dims_[a];
  }
  os << ']';
  return os.str();
}

Shape concat_shapes(const Shape& a, const Shape& b) {
  std::vector<std::int64_t> d = a.dims();
  d.insert(d.end(), b.dims().begin(), b.dims().end());
  return Shape(std::move(d));
}

std::string index_to_string(const Index& iv) {
  std::ostringstream os;
  os << '[';
  for (std::size_t a = 0; a < iv.size(); ++a) {
    if (a != 0) {
      os << ',';
    }
    os << iv[a];
  }
  os << ']';
  return os.str();
}

}  // namespace sac
