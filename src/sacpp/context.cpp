#include "sacpp/context.hpp"

#include "runtime/env.hpp"

namespace sac {

Context& default_context() {
  static Context ctx{snetsac::runtime::default_sac_threads(), 1024,
                     snetsac::runtime::env_int("SAC_COMPILED", 1) != 0};
  return ctx;
}

snetsac::runtime::Executor& sac_pool() {
  return snetsac::runtime::Executor::global();
}

}  // namespace sac
