#include "sacpp/context.hpp"

#include "runtime/env.hpp"

namespace sac {

Context& default_context() {
  static Context ctx{snetsac::runtime::default_sac_threads(), 1024};
  return ctx;
}

snetsac::runtime::ThreadPool& sac_pool() {
  static snetsac::runtime::ThreadPool pool(snetsac::runtime::hardware_threads());
  return pool;
}

}  // namespace sac
