#include "sacpp/segment_plan.hpp"

#include <algorithm>
#include <utility>

namespace sac {

namespace {

using Interval = std::pair<std::int64_t, std::int64_t>;  // [lo, hi)

/// Sorts and merges touching/overlapping intervals in place.
void normalise(std::vector<Interval>& ivs) {
  if (ivs.empty()) {
    return;
  }
  std::sort(ivs.begin(), ivs.end());
  std::size_t w = 0;
  for (std::size_t r = 1; r < ivs.size(); ++r) {
    if (ivs[r].first <= ivs[w].second) {
      ivs[w].second = std::max(ivs[w].second, ivs[r].second);
    } else {
      ivs[++w] = ivs[r];
    }
  }
  ivs.resize(w + 1);
}

/// Appends the pieces of [lo, hi) not covered by the normalised \p claimed
/// set to \p out as (lo, hi) pairs.
void subtract_into(std::int64_t lo, std::int64_t hi,
                   const std::vector<Interval>& claimed,
                   std::vector<Interval>& out) {
  // First claimed interval whose end is past lo.
  auto it = std::lower_bound(
      claimed.begin(), claimed.end(), lo,
      [](const Interval& iv, std::int64_t v) { return iv.second <= v; });
  std::int64_t cur = lo;
  for (; it != claimed.end() && it->first < hi; ++it) {
    if (it->first > cur) {
      out.emplace_back(cur, it->first);
    }
    cur = std::max(cur, it->second);
    if (cur >= hi) {
      break;
    }
  }
  if (cur < hi) {
    out.emplace_back(cur, hi);
  }
}

std::int64_t axis_members(const GeneratorSpec& g, std::size_t axis) {
  const std::int64_t extent = g.ub[axis] - g.lb[axis];
  if (extent <= 0) {
    return 0;
  }
  if (g.step.empty()) {
    return extent;
  }
  const std::int64_t st = g.step[axis];
  const std::int64_t wd = g.width.empty() ? 1 : g.width[axis];
  const std::int64_t full = extent / st;
  const std::int64_t rem = extent % st;
  return full * wd + std::min(rem, wd);
}

}  // namespace

void SegmentPlan::decompose_generator(std::int32_t ordinal, const GeneratorSpec& g,
                                      const Shape& shape,
                                      std::vector<Segment>& out) {
  const int rank = shape.rank();
  if (rank == 0) {
    // A rank-0 generator denotes the single empty index vector.
    out.push_back(Segment{ordinal, 0, 0, 1, static_cast<std::int64_t>(prefix_pool_.size())});
    return;
  }
  const std::vector<std::int64_t> strides = shape.strides();
  const std::size_t last = static_cast<std::size_t>(rank) - 1;
  const std::int64_t last_lb = g.lb[last];
  const std::int64_t last_ub = g.ub[last];
  const std::int64_t last_st = g.step.empty() ? 0 : g.step[last];
  const std::int64_t last_wd = g.width.empty() ? 1 : (last_st ? g.width[last] : 1);

  // Emits the last-axis runs for one outer-axis combination.
  const auto emit_runs = [&](std::int64_t outer_base, std::int64_t prefix_off) {
    const auto emit = [&](std::int64_t lo, std::int64_t hi) {
      // Split long runs so executor chunking has grains to distribute.
      for (std::int64_t s = lo; s < hi; s += kMaxSegmentLen) {
        const std::int64_t e = std::min(hi, s + kMaxSegmentLen);
        out.push_back(Segment{ordinal, outer_base + s, s, e, prefix_off});
      }
    };
    if (last_st == 0) {
      emit(last_lb, last_ub);
    } else {
      for (std::int64_t s = last_lb; s < last_ub; s += last_st) {
        emit(s, std::min(s + last_wd, last_ub));
      }
    }
  };

  // Odometer over the outer axes' member positions.
  Index pos(last, 0);
  for (std::size_t a = 0; a < last; ++a) {
    pos[a] = g.lb[a];
  }
  while (true) {
    std::int64_t outer_base = 0;
    for (std::size_t a = 0; a < last; ++a) {
      outer_base += pos[a] * strides[a];
    }
    const auto prefix_off = static_cast<std::int64_t>(prefix_pool_.size());
    prefix_pool_.insert(prefix_pool_.end(), pos.begin(), pos.end());
    emit_runs(outer_base, prefix_off);

    // Advance the odometer (last outer axis fastest), honouring striding.
    std::size_t a = last;
    while (a > 0) {
      --a;
      std::int64_t& p = pos[a];
      ++p;
      if (!g.step.empty()) {
        const std::int64_t st = g.step[a];
        const std::int64_t wd = g.width.empty() ? 1 : g.width[a];
        if ((p - g.lb[a]) % st >= wd) {
          // Jump to the start of the next width block.
          p = g.lb[a] + ((p - g.lb[a]) / st + 1) * st;
        }
      }
      if (p < g.ub[a]) {
        break;
      }
      p = g.lb[a];
      if (a == 0) {
        return;
      }
    }
    if (last == 0) {
      return;  // rank 1: a single outer combination
    }
  }
}

SegmentPlan::SegmentPlan(const std::vector<GeneratorSpec>& gens, const Shape& shape,
                         bool resolve_overlap, bool with_complement) {
  prefix_rank_ = shape.rank() > 0 ? shape.rank() - 1 : 0;
  gen_elements_.assign(gens.size(), 0);

  // Per-generator decomposition (skipping empty generators entirely, so
  // out-of-range bounds of empty generators are never linearised).
  std::vector<std::vector<Segment>> per_gen(gens.size());
  for (std::size_t gi = 0; gi < gens.size(); ++gi) {
    const GeneratorSpec& g = gens[gi];
    std::int64_t members = 1;
    for (std::size_t a = 0; a < g.lb.size(); ++a) {
      members *= axis_members(g, a);
    }
    gen_elements_[gi] = members;
    if (members == 0) {
      continue;
    }
    decompose_generator(static_cast<std::int32_t>(gi), g, shape, per_gen[gi]);
  }

  // Overlap resolution, back to front: `claimed` holds the merged linear
  // coverage of all later generators; earlier segments are trimmed against
  // it so every cell is written by exactly one (the latest) generator.
  std::vector<Interval> claimed;
  if (resolve_overlap || with_complement) {
    std::vector<Interval> pieces;
    for (std::size_t gi = per_gen.size(); gi-- > 0;) {
      std::vector<Segment>& segs = per_gen[gi];
      if (segs.empty()) {
        continue;
      }
      if (resolve_overlap && !claimed.empty()) {
        std::vector<Segment> trimmed;
        trimmed.reserve(segs.size());
        for (const Segment& s : segs) {
          pieces.clear();
          subtract_into(s.base, s.base + s.count(), claimed, pieces);
          for (const auto& [lo, hi] : pieces) {
            const std::int64_t shiftv = lo - s.base;
            trimmed.push_back(Segment{s.gen, lo, s.col_lo + shiftv,
                                      s.col_lo + shiftv + (hi - lo), s.prefix});
          }
        }
        segs = std::move(trimmed);
      }
      // Original (untrimmed) coverage joins the claimed set. Recomputing it
      // from the trimmed segments would be wrong only in the no-resolve
      // case; here trimmed ∪ claimed == original ∪ claimed either way, but
      // we add post-trim segments plus what is already claimed — identical.
      for (const Segment& s : segs) {
        claimed.emplace_back(s.base, s.base + s.count());
      }
      normalise(claimed);
    }
  }

  for (auto& segs : per_gen) {
    segments_.insert(segments_.end(), segs.begin(), segs.end());
  }
  // Deterministic generator-major, index-minor order (folds combine
  // per-chunk partials in this order).
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.gen != b.gen ? a.gen < b.gen : a.base < b.base;
            });

  if (with_complement) {
    std::vector<Interval> holes;
    subtract_into(0, shape.element_count(), claimed, holes);
    for (const auto& [lo, hi] : holes) {
      for (std::int64_t s = lo; s < hi; s += kMaxSegmentLen) {
        const std::int64_t e = std::min(hi, s + kMaxSegmentLen);
        segments_.push_back(Segment{kComplement, s, 0, e - s, -1});
      }
    }
  }

  for (const Segment& s : segments_) {
    total_elements_ += s.count();
  }
}

}  // namespace sac
