#ifndef SNETSAC_SACPP_SHAPE_HPP
#define SNETSAC_SACPP_SHAPE_HPP

/// \file shape.hpp
/// Shapes and index vectors for the SaC-style array layer.
///
/// SaC arrays are n-dimensional and rank-generic: scalars are rank-0 arrays
/// with an empty shape vector (paper, Section 2). `Shape` mirrors the result
/// of SaC's built-in `shape()`, `Index` mirrors the index vectors (`iv`)
/// used in with-loop generators and selections.

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace sac {

using Index = std::vector<std::int64_t>;

/// Error for rank/shape/bounds violations; SaC would abort at runtime with
/// a similar diagnostic.
class ShapeError : public std::runtime_error {
 public:
  explicit ShapeError(const std::string& what) : std::runtime_error(what) {}
};

/// Row-major rectangular shape. Rank 0 (empty dims) denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { validate(); }

  int rank() const { return static_cast<int>(dims_.size()); }
  bool is_scalar() const { return dims_.empty(); }

  std::int64_t extent(int axis) const { return dims_.at(static_cast<std::size_t>(axis)); }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total number of elements (1 for scalars, 0 if any extent is 0).
  std::int64_t element_count() const;

  /// Row-major strides; stride[rank-1] == 1 for non-empty shapes.
  std::vector<std::int64_t> strides() const;

  /// Row-major linearisation of a full index vector. Throws ShapeError on
  /// rank mismatch or out-of-bounds component. The pointer form lets hot
  /// call sites (single-cell set/get in inner loops) pass a braced index
  /// without materialising a heap-allocated Index.
  std::int64_t linearize(const Index& iv) const;
  std::int64_t linearize(const std::int64_t* iv, std::size_t n) const;

  /// True when \p iv has matching rank and every component is in bounds.
  bool contains(const Index& iv) const;

  /// Inverse of linearize.
  Index delinearize(std::int64_t offset) const;

  /// Shape of the subarray selected by an index prefix (SaC's `array[iv]`
  /// with a short iv): the trailing `rank() - prefix_len` axes.
  Shape suffix(int prefix_len) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string to_string() const;

 private:
  void validate() const;
  std::vector<std::int64_t> dims_;
};

/// Concatenation of two shape vectors (used for nested selections).
Shape concat_shapes(const Shape& a, const Shape& b);

std::string index_to_string(const Index& iv);

}  // namespace sac

#endif
