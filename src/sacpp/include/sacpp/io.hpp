#ifndef SNETSAC_SACPP_IO_HPP
#define SNETSAC_SACPP_IO_HPP

/// \file io.hpp
/// Textual rendering of arrays in SaC's nested-bracket notation,
/// e.g. `[0,42,42,42,0]` or `[[1,2],[3,4]]`.

#include <ostream>
#include <sstream>
#include <string>

#include "sacpp/array.hpp"

namespace sac {

namespace detail {
template <class T>
void render(std::ostream& os, const Array<T>& a, Index& prefix, int axis) {
  if (axis == a.dim()) {
    os << a[prefix];
    return;
  }
  os << '[';
  for (std::int64_t i = 0; i < a.shape().extent(axis); ++i) {
    if (i != 0) {
      os << ',';
    }
    prefix.push_back(i);
    render(os, a, prefix, axis + 1);
    prefix.pop_back();
  }
  os << ']';
}
}  // namespace detail

template <class T>
std::string to_string(const Array<T>& a) {
  std::ostringstream os;
  Index prefix;
  detail::render(os, a, prefix, 0);
  return os.str();
}

template <class T>
std::ostream& operator<<(std::ostream& os, const Array<T>& a) {
  Index prefix;
  detail::render(os, a, prefix, 0);
  return os;
}

}  // namespace sac

#endif
