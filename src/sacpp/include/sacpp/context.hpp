#ifndef SNETSAC_SACPP_CONTEXT_HPP
#define SNETSAC_SACPP_CONTEXT_HPP

/// \file context.hpp
/// Execution context for data-parallel with-loop evaluation.
///
/// In SaC, data parallelism is fully implicit: "it just requires
/// multi-threaded code generation to be enabled" (paper, Section 3). The
/// analogue here is a process-wide context selecting the number of worker
/// threads; with-loops consult it transparently. `SAC_THREADS=1` reproduces
/// sequential code generation.

#include <cstdint>

#include "runtime/executor.hpp"

namespace sac {

struct Context {
  /// Maximum number of concurrent chunks a with-loop may be split into.
  /// 1 means strictly sequential evaluation on the calling thread.
  unsigned threads = 1;
  /// Minimum number of index-space elements per chunk; prevents
  /// parallelising trivially small with-loops.
  std::int64_t grain = 1024;
  /// Selects the compiled with-loop engine (segment decomposition + typed
  /// kernels) over the interpreted per-element reference engine. The
  /// ablation switch of the data-parallel half, mirroring what
  /// `Options::batching` is to the S-Net coordination half.
  bool compiled = true;
};

/// The process-wide default context. Initialised once from `SAC_THREADS`
/// (fallback: hardware concurrency) and `SAC_COMPILED` (fallback: 1).
/// Mutable so tests and benchmarks can sweep thread counts and engines.
Context& default_context();

/// The executor with-loops execute on: the process-wide pool shared with
/// the S-Net scheduler (the context's `threads` caps how much of it a
/// single with-loop uses). A with-loop opened inside a box quantum has its
/// chunks run by the same workers — the caller helps and steals instead of
/// blocking, so nesting neither deadlocks nor oversubscribes.
snetsac::runtime::Executor& sac_pool();

}  // namespace sac

#endif
