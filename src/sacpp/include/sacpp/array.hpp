#ifndef SNETSAC_SACPP_ARRAY_HPP
#define SNETSAC_SACPP_ARRAY_HPP

/// \file array.hpp
/// SaC-style stateless value arrays.
///
/// "Arrays in SaC are neither explicitly allocated nor de-allocated. They
/// exist as long as the associated data is needed, just like scalars in
/// conventional languages." (paper, Section 2). We reproduce this with
/// value semantics over a shared, copy-on-write buffer: copying an array is
/// O(1); the first mutation of a shared buffer clones it. This mirrors the
/// reference-counting memory management of the actual SaC runtime.

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sacpp/shape.hpp"

namespace sac {

namespace detail {
/// Element storage type. `bool` is stored as one byte per element because
/// `std::vector<bool>` packs bits, whose proxy writes would race when a
/// with-loop is executed data-parallel over disjoint index ranges.
template <class T>
struct Storage {
  using type = T;
};
template <>
struct Storage<bool> {
  using type = unsigned char;
};
template <class T>
using storage_t = typename Storage<T>::type;

/// 64-byte-aligned allocator for array buffers: segment kernels run plain
/// countable loops over raw storage, and cacheline/SIMD-width alignment lets
/// the autovectoriser use aligned loads/stores without peeling.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlign = 64;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  // Over-allocate with plain operator new and stash the base pointer just
  // below the aligned block: aligned operator new bypasses the allocator
  // fast path (measured 3-5x slower per call), and arrays are allocated on
  // every with-loop result — the solver's inner loop feels it.
  T* allocate(std::size_t n) {
    void* raw = ::operator new(n * sizeof(T) + kAlign + sizeof(void*));
    auto addr = reinterpret_cast<std::uintptr_t>(raw) + sizeof(void*);
    addr = (addr + (kAlign - 1)) & ~static_cast<std::uintptr_t>(kAlign - 1);
    reinterpret_cast<void**>(addr)[-1] = raw;
    return reinterpret_cast<T*>(addr);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(reinterpret_cast<void**>(p)[-1]);
  }
  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};
}  // namespace detail

template <class T>
class Array {
 public:
  using storage_type = detail::storage_t<T>;
  /// Row-major storage buffer; 64-byte-aligned so compiled segment kernels
  /// see aligned, vectorisable spans.
  using buffer_type =
      std::vector<storage_type, detail::AlignedAllocator<storage_type>>;

  /// Rank-0 array holding a value-initialised element (SaC scalar).
  Array() : Array(T{}) {}

  /// Rank-0 array holding \p scalar. Implicit on purpose: in SaC any
  /// scalar *is* a rank-0 array.
  Array(T scalar)  // NOLINT(google-explicit-constructor)
      : shape_(),
        data_(std::make_shared<buffer_type>(
            1, static_cast<storage_type>(scalar))) {}

  /// Array of \p shape with every element set to \p fill.
  Array(Shape shape, T fill)
      : shape_(std::move(shape)),
        data_(std::make_shared<buffer_type>(
            static_cast<std::size_t>(shape_.element_count()),
            static_cast<storage_type>(fill))) {}

  /// Array of \p shape adopting \p data (row-major). Throws on size
  /// mismatch.
  Array(Shape shape, std::vector<T> data) : shape_(std::move(shape)) {
    if (static_cast<std::int64_t>(data.size()) != shape_.element_count()) {
      throw ShapeError("data size " + std::to_string(data.size()) +
                       " does not match shape " + shape_.to_string());
    }
    if constexpr (std::is_same_v<T, storage_type>) {
      data_ = std::make_shared<buffer_type>(data.begin(), data.end());
    } else {
      auto buf = std::make_shared<buffer_type>(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        (*buf)[i] = static_cast<storage_type>(data[i]);
      }
      data_ = std::move(buf);
    }
  }

  /// Array of \p shape adopting an already-laid-out storage buffer
  /// (row-major, `bool` as one byte per element) without element
  /// conversion — the import side of the record wire codec (snet/wire.hpp)
  /// decodes straight into a `buffer_type` and hands it over here. Throws
  /// on size mismatch.
  Array(Shape shape, buffer_type storage) : shape_(std::move(shape)) {
    if (static_cast<std::int64_t>(storage.size()) != shape_.element_count()) {
      throw ShapeError("storage size " + std::to_string(storage.size()) +
                       " does not match shape " + shape_.to_string());
    }
    data_ = std::make_shared<buffer_type>(std::move(storage));
  }

  /// SaC `dim(array)`.
  int dim() const { return shape_.rank(); }
  /// SaC `shape(array)`.
  const Shape& shape() const { return shape_; }
  std::int64_t element_count() const { return shape_.element_count(); }
  bool is_scalar() const { return shape_.is_scalar(); }

  /// Scalar extraction; only valid for rank-0 arrays.
  T scalar() const {
    if (!is_scalar()) {
      throw ShapeError("scalar() on array of shape " + shape_.to_string());
    }
    return static_cast<T>((*data_)[0]);
  }

  /// Full-index element selection, SaC `array[iv]` with |iv| == dim().
  T operator[](const Index& iv) const {
    return static_cast<T>((*data_)[static_cast<std::size_t>(shape_.linearize(iv))]);
  }

  /// Braced-index selection, `a[{i, j}]`, without an Index allocation.
  T operator[](std::initializer_list<std::int64_t> iv) const {
    return static_cast<T>(
        (*data_)[static_cast<std::size_t>(shape_.linearize(iv.begin(), iv.size()))]);
  }

  /// Row-major element access without index math.
  T linear(std::int64_t offset) const {
    return static_cast<T>((*data_)[static_cast<std::size_t>(offset)]);
  }

  /// Subarray selection, SaC `array[iv]` with |iv| <= dim(): selects the
  /// subarray at index prefix iv. |iv| == dim() yields a rank-0 array.
  Array sel(const Index& prefix) const {
    const int plen = static_cast<int>(prefix.size());
    const Shape sub = shape_.suffix(plen);
    // Linearise the prefix against the leading axes directly; padding it to
    // a full index would allocate just to append zeros.
    std::int64_t base = 0;
    for (int a = 0; a < plen; ++a) {
      const std::int64_t c = prefix[static_cast<std::size_t>(a)];
      if (c < 0 || c >= shape_.extent(a)) {
        throw ShapeError("sel prefix component " + std::to_string(c) +
                         " out of bounds for axis " + std::to_string(a));
      }
      base = base * shape_.extent(a) + c;
    }
    for (int a = plen; a < shape_.rank(); ++a) {
      base *= shape_.extent(a);
    }
    const std::int64_t count = sub.element_count();
    Array out(sub, T{});
    // The selected slice is always one contiguous row-major range.
    const auto* src = data_->data() + base;
    std::copy(src, src + count, out.data_->data());
    return out;
  }

  /// Mutating element update with copy-on-write (used by the with-loop
  /// engine and for single-cell updates such as `board[i,j] = k`).
  void set(const Index& iv, T value) {
    const std::int64_t off = shape_.linearize(iv);
    ensure_unique();
    (*data_)[static_cast<std::size_t>(off)] = static_cast<storage_type>(value);
  }

  void set(std::initializer_list<std::int64_t> iv, T value) {
    const std::int64_t off = shape_.linearize(iv.begin(), iv.size());
    ensure_unique();
    (*data_)[static_cast<std::size_t>(off)] = static_cast<storage_type>(value);
  }

  void set_linear(std::int64_t offset, T value) {
    ensure_unique();
    (*data_)[static_cast<std::size_t>(offset)] = static_cast<storage_type>(value);
  }

  /// Same shape *and* same element values.
  bool operator==(const Array& other) const {
    return shape_ == other.shape_ && *data_ == *other.data_;
  }
  bool operator!=(const Array& other) const { return !(*this == other); }

  /// Read-only view of the row-major storage buffer (bool is stored as one
  /// byte per element, see detail::Storage).
  const buffer_type& data() const { return *data_; }

  /// True when this array is the sole owner of its buffer (observability
  /// hook for copy-on-write tests).
  bool unique() const { return data_.use_count() == 1; }

  /// Grants the with-loop engine direct mutable access after detaching.
  buffer_type& mutable_data() {
    ensure_unique();
    return *data_;
  }

 private:
  void ensure_unique() {
    if (data_.use_count() != 1) {
      data_ = std::make_shared<buffer_type>(*data_);
    }
  }

  Shape shape_;
  std::shared_ptr<buffer_type> data_;
};

/// SaC `dim` / `shape` as free functions, matching the paper's notation.
template <class T>
int dim(const Array<T>& a) {
  return a.dim();
}
template <class T>
const Shape& shape(const Array<T>& a) {
  return a.shape();
}

}  // namespace sac

#endif
