#ifndef SNETSAC_SACPP_OPS_HPP
#define SNETSAC_SACPP_OPS_HPP

/// \file ops.hpp
/// Universally applicable array operations, built the way the paper builds
/// them: as with-loop abstractions ("one purpose of with-loops is to serve
/// as an implementation vehicle for universally applicable array
/// operations"). The vector concatenation `++` here is a direct transcript
/// of the paper's Section 2 definition.

#include <algorithm>
#include <functional>
#include <type_traits>

#include "sacpp/array.hpp"
#include "sacpp/with_loop.hpp"

namespace sac {

/// Element-wise map: result[iv] = f(a[iv]). A one-stage fused chain: one
/// segment pass over a's storage, template-inlined body, no per-element
/// set_linear/COW checks.
template <class T, class F>
auto map(const Array<T>& a, F f) -> Array<std::invoke_result_t<F, T>> {
  return lazy(a).map(std::move(f)).to_array();
}

/// Element-wise zip: result[iv] = f(a[iv], b[iv]); shapes must coincide.
template <class T, class U, class F>
auto zip_with(const Array<T>& a, const Array<U>& b, F f)
    -> Array<std::invoke_result_t<F, T, U>> {
  return lazy(a).zip_with(b, std::move(f)).to_array();
}

/// Whole-array reduction in row-major order.
template <class T, class R, class F>
R reduce(const Array<T>& a, F combine, R neutral) {
  R acc = neutral;
  const std::int64_t n = a.element_count();
  for (std::int64_t i = 0; i < n; ++i) {
    acc = combine(acc, a.linear(i));
  }
  return acc;
}

template <class T>
T sum(const Array<T>& a) {
  return reduce(a, [](T x, T y) { return static_cast<T>(x + y); }, T{});
}

inline bool all_true(const Array<bool>& a) {
  return reduce(a, [](bool x, bool y) { return x && y; }, true);
}

inline bool any_true(const Array<bool>& a) {
  return reduce(a, [](bool x, bool y) { return x || y; }, false);
}

/// Number of elements equal to \p v.
template <class T>
std::int64_t count(const Array<T>& a, T v) {
  std::int64_t acc = 0;
  const std::int64_t n = a.element_count();
  for (std::int64_t i = 0; i < n; ++i) {
    if (a.linear(i) == v) {
      ++acc;
    }
  }
  return acc;
}

template <class T>
T min_val(const Array<T>& a) {
  if (a.element_count() == 0) {
    throw ShapeError("min_val on empty array");
  }
  T acc = a.linear(0);
  for (std::int64_t i = 1; i < a.element_count(); ++i) {
    acc = std::min(acc, a.linear(i));
  }
  return acc;
}

template <class T>
T max_val(const Array<T>& a) {
  if (a.element_count() == 0) {
    throw ShapeError("max_val on empty array");
  }
  T acc = a.linear(0);
  for (std::int64_t i = 1; i < a.element_count(); ++i) {
    acc = std::max(acc, a.linear(i));
  }
  return acc;
}

/// `[0, 1, ..., n-1]`, SaC's iota.
inline Array<std::int64_t> iota(std::int64_t n) {
  Array<std::int64_t> out(Shape{n}, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    out.set_linear(i, i);
  }
  return out;
}

/// Reinterprets the row-major data under a new shape of equal element count.
template <class T>
Array<T> reshape(const Array<T>& a, const Shape& shp) {
  if (shp.element_count() != a.element_count()) {
    throw ShapeError("reshape " + a.shape().to_string() + " -> " + shp.to_string() +
                     " changes element count");
  }
  Array<T> out(shp, T{});
  for (std::int64_t i = 0; i < a.element_count(); ++i) {
    out.set_linear(i, a.linear(i));
  }
  return out;
}

/// Vector concatenation `a ++ b` — the paper's Section 2 example, written
/// with the exact same two-generator genarray-with-loop.
template <class T>
Array<T> concat(const Array<T>& a, const Array<T>& b) {
  if (a.dim() != 1 || b.dim() != 1) {
    throw ShapeError("++ requires vectors, got " + a.shape().to_string() + " and " +
                     b.shape().to_string());
  }
  const std::int64_t na = a.shape().extent(0);
  const std::int64_t nb = b.shape().extent(0);
  return With<T>()
      .gen({0}, {na}, [&](const Index& iv) { return a[iv]; })
      .gen({na}, {na + nb}, [&](const Index& iv) { return b[{iv[0] - na}]; })
      .genarray(Shape{na + nb}, T{});
}

/// First \p n elements along axis 0 (negative n: last |n|).
template <class T>
Array<T> take(std::int64_t n, const Array<T>& a) {
  if (a.dim() == 0) {
    throw ShapeError("take on scalar");
  }
  const std::int64_t ext = a.shape().extent(0);
  const std::int64_t cnt = std::min(std::abs(n), ext);
  const std::int64_t start = n >= 0 ? 0 : ext - cnt;
  std::vector<std::int64_t> dims = a.shape().dims();
  dims[0] = cnt;
  const Shape out_shape{std::vector<std::int64_t>(dims)};
  const std::int64_t row = a.shape().suffix(1).element_count();
  Array<T> out(out_shape, T{});
  for (std::int64_t i = 0; i < cnt * row; ++i) {
    out.set_linear(i, a.linear(start * row + i));
  }
  return out;
}

/// Drops the first \p n elements along axis 0 (negative n: last |n|).
template <class T>
Array<T> drop(std::int64_t n, const Array<T>& a) {
  if (a.dim() == 0) {
    throw ShapeError("drop on scalar");
  }
  const std::int64_t ext = a.shape().extent(0);
  const std::int64_t cnt = std::min(std::abs(n), ext);
  const std::int64_t remain = ext - cnt;
  const std::int64_t start = n >= 0 ? cnt : 0;
  std::vector<std::int64_t> dims = a.shape().dims();
  dims[0] = remain;
  const Shape out_shape{std::vector<std::int64_t>(dims)};
  const std::int64_t row = a.shape().suffix(1).element_count();
  Array<T> out(out_shape, T{});
  for (std::int64_t i = 0; i < remain * row; ++i) {
    out.set_linear(i, a.linear(start * row + i));
  }
  return out;
}

/// Cyclic rotation along axis 0 by \p offset (SaC's `rotate`); positive
/// offsets move elements towards higher indices.
template <class T>
Array<T> rotate(std::int64_t offset, const Array<T>& a) {
  if (a.dim() == 0) {
    throw ShapeError("rotate on scalar");
  }
  const std::int64_t ext = a.shape().extent(0);
  if (ext == 0) {
    return a;
  }
  const std::int64_t shift_by = ((offset % ext) + ext) % ext;
  const std::int64_t row = a.shape().suffix(1).element_count();
  Array<T> out(a.shape(), T{});
  for (std::int64_t i = 0; i < ext; ++i) {
    const std::int64_t src = (i - shift_by + ext) % ext;
    for (std::int64_t j = 0; j < row; ++j) {
      out.set_linear(i * row + j, a.linear(src * row + j));
    }
  }
  return out;
}

/// Non-cyclic shift along axis 0 (SaC's `shift`): vacated positions take
/// \p fill.
template <class T>
Array<T> shift(std::int64_t offset, T fill, const Array<T>& a) {
  if (a.dim() == 0) {
    throw ShapeError("shift on scalar");
  }
  const std::int64_t ext = a.shape().extent(0);
  const std::int64_t row = a.shape().suffix(1).element_count();
  Array<T> out(a.shape(), fill);
  for (std::int64_t i = 0; i < ext; ++i) {
    const std::int64_t src = i - offset;
    if (src < 0 || src >= ext) {
      continue;
    }
    for (std::int64_t j = 0; j < row; ++j) {
      out.set_linear(i * row + j, a.linear(src * row + j));
    }
  }
  return out;
}

/// Element-wise choice: mask ? a : b (SaC's `where`).
template <class T>
Array<T> where(const Array<bool>& mask, const Array<T>& a, const Array<T>& b) {
  if (mask.shape() != a.shape() || a.shape() != b.shape()) {
    throw ShapeError("where requires equal shapes, got " + mask.shape().to_string() +
                     ", " + a.shape().to_string() + ", " + b.shape().to_string());
  }
  Array<T> out(a.shape(), T{});
  for (std::int64_t i = 0; i < a.element_count(); ++i) {
    out.set_linear(i, mask.linear(i) ? a.linear(i) : b.linear(i));
  }
  return out;
}

/// Reduction over axis 0: result shape is the suffix shape; each cell is
/// the sum over the leading axis.
template <class T>
Array<T> sum_axis0(const Array<T>& a) {
  if (a.dim() == 0) {
    throw ShapeError("sum_axis0 on scalar");
  }
  const std::int64_t ext = a.shape().extent(0);
  const Shape sub = a.shape().suffix(1);
  const std::int64_t row = sub.element_count();
  Array<T> out(sub, T{});
  for (std::int64_t i = 0; i < ext; ++i) {
    for (std::int64_t j = 0; j < row; ++j) {
      out.set_linear(j, static_cast<T>(out.linear(j) + a.linear(i * row + j)));
    }
  }
  return out;
}

/// Matrix transpose (rank 2 only).
template <class T>
Array<T> transpose(const Array<T>& a) {
  if (a.dim() != 2) {
    throw ShapeError("transpose requires rank 2, got " + a.shape().to_string());
  }
  const std::int64_t r = a.shape().extent(0);
  const std::int64_t c = a.shape().extent(1);
  return With<T>()
      .gen({0, 0}, {c, r}, [&](const Index& iv) { return a[{iv[1], iv[0]}]; })
      .genarray(Shape{c, r}, T{});
}

}  // namespace sac

#endif
