#ifndef SNETSAC_SACPP_WITH_LOOP_HPP
#define SNETSAC_SACPP_WITH_LOOP_HPP

/// \file with_loop.hpp
/// SaC with-loop array comprehensions (paper, Section 2).
///
/// A with-loop maps a set of rectangular *generators* — each an index range
/// `lower_bound <= idx_vec < upper_bound` (optionally with SaC's step/width
/// striding) associated with a body expression — onto one of three
/// operators:
///
///  * `genarray(shape, default)` — build a new array of `shape`; elements
///    covered by no generator take the default value;
///  * `modarray(src)` — build an array shaped like `src`; uncovered
///    elements copy `src`;
///  * `fold(op, neutral)` — reduce the body values of all generator
///    elements with an associative operator.
///
/// "We deliberately do not define any order on these index sets" — element
/// evaluation order is unspecified, which is what licenses data-parallel
/// execution. When generators overlap, *generator* order does matter: a
/// later generator overwrites an earlier one ("the array's value at index
/// location [3] ... is set to 2 rather than to 1"). We therefore run
/// generators one after another, each internally data-parallel.

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "sacpp/array.hpp"
#include "sacpp/context.hpp"

namespace sac {

template <class T>
class With {
 public:
  using Body = std::function<T(const Index&)>;

  /// Generator `lb <= iv < ub` with body expression \p body.
  With& gen(Index lb, Index ub, Body body) {
    if (lb.size() != ub.size()) {
      throw ShapeError("generator bounds " + index_to_string(lb) + " and " +
                       index_to_string(ub) + " differ in rank");
    }
    gens_.push_back(Generator{std::move(lb), std::move(ub), {}, {}, std::move(body)});
    return *this;
  }

  /// Generator `lb <= iv <= ub` (the inclusive form used by the paper's
  /// `addNumber`); normalised to an exclusive upper bound.
  With& gen_incl(Index lb, Index ub, Body body) {
    for (auto& c : ub) {
      c += 1;
    }
    return gen(std::move(lb), std::move(ub), std::move(body));
  }

  /// Constant-body generators, e.g. `([i,j,0] <= iv <= [i,j,8]) : false`.
  With& gen_val(Index lb, Index ub, T value) {
    return gen(std::move(lb), std::move(ub), [value](const Index&) { return value; });
  }
  With& gen_incl_val(Index lb, Index ub, T value) {
    return gen_incl(std::move(lb), std::move(ub),
                    [value](const Index&) { return value; });
  }

  /// SaC striding on the most recently added generator: of every `step`
  /// consecutive indices per axis, the first `width` are members.
  With& step(Index s) {
    last().step = std::move(s);
    return *this;
  }
  With& width(Index w) {
    last().width = std::move(w);
    return *this;
  }

  /// genarray-with-loop: the result shape is given explicitly (it is "not
  /// the generator that defines the shape of the resulting array").
  Array<T> genarray(const Shape& result_shape, T default_value,
                    const Context& ctx = default_context()) const {
    Array<T> result(result_shape, default_value);
    apply_generators(result, ctx);
    return result;
  }

  /// modarray-with-loop: result has the shape of \p src; uncovered elements
  /// keep the corresponding value of \p src.
  Array<T> modarray(Array<T> src, const Context& ctx = default_context()) const {
    apply_generators(src, ctx);
    return src;
  }

  /// fold-with-loop: reduces body values over every generator element.
  /// \p combine must be associative; evaluation order is unspecified
  /// except that per-chunk partial results are combined in index order.
  T fold(const std::function<T(T, T)>& combine, T neutral,
         const Context& ctx = default_context()) const {
    T acc = neutral;
    for (const auto& g : gens_) {
      validate_rank_only(g);
      acc = fold_generator(g, combine, std::move(acc), neutral, ctx);
    }
    return acc;
  }

 private:
  struct Generator {
    Index lb;
    Index ub;  // exclusive
    Index step;
    Index width;
    Body body;
  };

  Generator& last() {
    if (gens_.empty()) {
      throw std::logic_error("step()/width() before any generator");
    }
    return gens_.back();
  }

  static std::int64_t axis_count(const Generator& g, std::size_t axis) {
    const std::int64_t extent = g.ub[axis] - g.lb[axis];
    if (extent <= 0) {
      return 0;
    }
    if (g.step.empty()) {
      return extent;
    }
    const std::int64_t st = g.step[axis];
    const std::int64_t wd = g.width.empty() ? 1 : g.width[axis];
    const std::int64_t full = extent / st;
    const std::int64_t rem = extent % st;
    return full * wd + std::min(rem, wd);
  }

  static std::int64_t element_estimate(const Generator& g) {
    std::int64_t n = 1;
    for (std::size_t a = 0; a < g.lb.size(); ++a) {
      n *= axis_count(g, a);
    }
    return n;
  }

  static bool axis_member(const Generator& g, std::size_t axis, std::int64_t pos) {
    if (g.step.empty()) {
      return true;
    }
    const std::int64_t st = g.step[axis];
    const std::int64_t wd = g.width.empty() ? 1 : g.width[axis];
    return (pos - g.lb[axis]) % st < wd;
  }

  /// Visits every generator index whose axis-0 component lies in
  /// [row_lo, row_hi), in row-major order.
  template <class F>
  static void iterate_rows(const Generator& g, std::int64_t row_lo, std::int64_t row_hi,
                           const F& visit) {
    const std::size_t rank = g.lb.size();
    if (rank == 0) {
      // A rank-0 generator denotes the single empty index vector.
      Index iv;
      visit(iv);
      return;
    }
    Index iv(rank, 0);
    // Recursive descent over axes, expressed iteratively for axis 0.
    for (std::int64_t r = row_lo; r < row_hi; ++r) {
      if (!axis_member(g, 0, r)) {
        continue;
      }
      iv[0] = r;
      iterate_axis(g, iv, 1, visit);
    }
  }

  template <class F>
  static void iterate_axis(const Generator& g, Index& iv, std::size_t axis,
                           const F& visit) {
    if (axis == g.lb.size()) {
      visit(const_cast<const Index&>(iv));
      return;
    }
    for (std::int64_t p = g.lb[axis]; p < g.ub[axis]; ++p) {
      if (!axis_member(g, axis, p)) {
        continue;
      }
      iv[axis] = p;
      iterate_axis(g, iv, axis + 1, visit);
    }
  }

  void validate_against(const Generator& g, const Shape& target) const {
    if (static_cast<int>(g.lb.size()) != target.rank()) {
      throw ShapeError("generator of rank " + std::to_string(g.lb.size()) +
                       " does not match result shape " + target.to_string());
    }
    validate_striding(g);
    if (element_estimate(g) == 0) {
      return;  // empty generators never touch memory, bounds irrelevant
    }
    for (std::size_t a = 0; a < g.lb.size(); ++a) {
      if (g.lb[a] < 0 || g.ub[a] > target.extent(static_cast<int>(a))) {
        throw ShapeError("generator range " + index_to_string(g.lb) + " .. " +
                         index_to_string(g.ub) + " exceeds result shape " +
                         target.to_string());
      }
    }
  }

  void validate_rank_only(const Generator& g) const {
    validate_striding(g);
    for (std::size_t a = 0; a < g.lb.size(); ++a) {
      if (element_estimate(g) > 0 && g.lb[a] < 0) {
        throw ShapeError("fold generator lower bound " + index_to_string(g.lb) +
                         " is negative");
      }
    }
  }

  void validate_striding(const Generator& g) const {
    if (!g.step.empty() && g.step.size() != g.lb.size()) {
      throw ShapeError("step vector rank mismatch in generator");
    }
    if (!g.width.empty() && g.width.size() != g.lb.size()) {
      throw ShapeError("width vector rank mismatch in generator");
    }
    for (const auto s : g.step) {
      if (s < 1) {
        throw ShapeError("generator step components must be >= 1");
      }
    }
    for (std::size_t a = 0; a < g.width.size(); ++a) {
      if (g.width[a] < 1 || (!g.step.empty() && g.width[a] > g.step[a])) {
        throw ShapeError("generator width must satisfy 1 <= width <= step");
      }
    }
  }

  void apply_generators(Array<T>& result, const Context& ctx) const {
    using storage = typename Array<T>::storage_type;
    const Shape& shp = result.shape();
    for (const auto& g : gens_) {
      validate_against(g, shp);
      if (element_estimate(g) == 0) {
        continue;
      }
      std::vector<storage>& buf = result.mutable_data();
      const auto write = [&](const Index& iv) {
        buf[static_cast<std::size_t>(shp.linearize(iv))] =
            static_cast<storage>(g.body(iv));
      };
      if (g.lb.empty()) {
        iterate_rows(g, 0, 1, write);
        continue;
      }
      const std::int64_t rows = g.ub[0] - g.lb[0];
      const std::int64_t per_row = rows > 0 ? element_estimate(g) / std::max<std::int64_t>(rows, 1) : 0;
      const std::int64_t row_grain =
          per_row > 0 ? std::max<std::int64_t>(1, ctx.grain / std::max<std::int64_t>(per_row, 1)) : 1;
      if (ctx.threads <= 1 || element_estimate(g) < ctx.grain) {
        iterate_rows(g, g.lb[0], g.ub[0], write);
      } else {
        snetsac::runtime::parallel_for_chunks(
            sac_pool(), g.lb[0], g.ub[0], row_grain,
            [&](std::int64_t lo, std::int64_t hi) { iterate_rows(g, lo, hi, write); },
            ctx.threads);
      }
    }
  }

  T fold_generator(const Generator& g, const std::function<T(T, T)>& combine, T acc,
                   const T& neutral, const Context& ctx) const {
    if (element_estimate(g) == 0) {
      return acc;
    }
    if (g.lb.empty() || ctx.threads <= 1 || element_estimate(g) < ctx.grain) {
      const std::int64_t lo = g.lb.empty() ? 0 : g.lb[0];
      const std::int64_t hi = g.lb.empty() ? 1 : g.ub[0];
      iterate_rows(g, lo, hi, [&](const Index& iv) { acc = combine(acc, g.body(iv)); });
      return acc;
    }
    // Parallel fold: fixed chunk ranges over axis 0, one partial per chunk,
    // partials combined in index order (associativity is enough).
    const std::int64_t rows = g.ub[0] - g.lb[0];
    const std::int64_t chunks =
        std::min<std::int64_t>(ctx.threads, std::max<std::int64_t>(rows, 1));
    const std::int64_t chunk_rows = (rows + chunks - 1) / chunks;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    for (std::int64_t lo = g.lb[0]; lo < g.ub[0]; lo += chunk_rows) {
      ranges.emplace_back(lo, std::min(lo + chunk_rows, g.ub[0]));
    }
    // Partials live in the storage type: std::vector<bool>'s packed bits
    // must not be written concurrently from different chunks.
    std::vector<detail::storage_t<T>> partials(ranges.size(),
                                               static_cast<detail::storage_t<T>>(neutral));
    snetsac::runtime::parallel_for_each(
        sac_pool(), 0, static_cast<std::int64_t>(ranges.size()), 1,
        [&](std::int64_t c) {
          T part = neutral;
          iterate_rows(g, ranges[static_cast<std::size_t>(c)].first,
                       ranges[static_cast<std::size_t>(c)].second,
                       [&](const Index& iv) { part = combine(part, g.body(iv)); });
          partials[static_cast<std::size_t>(c)] = static_cast<detail::storage_t<T>>(part);
        });
    for (std::size_t c = 0; c < partials.size(); ++c) {
      acc = combine(acc, static_cast<T>(partials[c]));
    }
    return acc;
  }

  std::vector<Generator> gens_;
};

}  // namespace sac

#endif
