#ifndef SNETSAC_SACPP_WITH_LOOP_HPP
#define SNETSAC_SACPP_WITH_LOOP_HPP

/// \file with_loop.hpp
/// SaC with-loop array comprehensions (paper, Section 2).
///
/// A with-loop maps a set of rectangular *generators* — each an index range
/// `lower_bound <= idx_vec < upper_bound` (optionally with SaC's step/width
/// striding) associated with a body expression — onto one of three
/// operators:
///
///  * `genarray(shape, default)` — build a new array of `shape`; elements
///    covered by no generator take the default value;
///  * `modarray(src)` — build an array shaped like `src`; uncovered
///    elements copy `src`;
///  * `fold(op, neutral)` — reduce the body values of all generator
///    elements with an associative operator.
///
/// "We deliberately do not define any order on these index sets" — element
/// evaluation order is unspecified, which is what licenses data-parallel
/// execution. When generators overlap, *generator* order does matter: a
/// later generator overwrites an earlier one ("the array's value at index
/// location [3] ... is set to 2 rather than to 1").
///
/// Two execution engines share these semantics (`Context::compiled`
/// selects; default on — the flag mirrors `Options::batching` on the S-Net
/// side as the ablation switch):
///
///  * **Compiled** — the unit of execution is the contiguous row segment.
///    Generators are decomposed at entry into a SegmentPlan (overlap
///    resolved at setup, so no cell is written twice); each segment runs as
///    a plain countable loop over raw storage — `std::fill` for constant
///    bodies, the typed kernel for `gen_kernel` generators, a tight
///    index-reusing loop for `std::function` bodies. Executor chunking
///    distributes segment ranges.
///  * **Interpreted (reference)** — the original per-element engine:
///    recursive per-axis iteration calling `Body` through `std::function`
///    with full index-vector linearisation per cell. Kept as the ablation
///    baseline and semantic reference.
///
/// `Fused` (below) extends the compiled engine across *chains* of
/// with-loops: elementwise consumers (map / zip_with / fold) run inside the
/// producer's segment pass with zero intermediate arrays.

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "sacpp/array.hpp"
#include "sacpp/context.hpp"
#include "sacpp/segment_plan.hpp"

namespace sac {

namespace detail {

/// Post-transform stages for fused with-loop chains. Each stage maps
/// `(value, linear_offset) -> value'`; composition nests statically so the
/// whole chain inlines into the producer's segment loop.
struct IdentityStage {
  template <class V>
  V operator()(V v, std::int64_t) const {
    return v;
  }
};

template <class F>
struct MapStage {
  F f;
  template <class V>
  auto operator()(V v, std::int64_t) const {
    return f(v);
  }
};

/// Zips the chain value with a second array's cell at the same linear
/// offset. Holds the array by value (keeps the COW buffer alive; the cached
/// raw pointer stays valid because our copy is never mutated).
template <class U, class F>
struct ZipStage {
  Array<U> other;
  const storage_t<U>* p;
  F f;
  template <class V>
  auto operator()(V v, std::int64_t i) const {
    return f(v, static_cast<U>(p[i]));
  }
};

template <class P1, class P2>
struct ComposedStage {
  P1 inner;
  P2 outer;
  template <class V>
  auto operator()(V v, std::int64_t i) const {
    return outer(inner(v, i), i);
  }
};

/// Runs `fn(seg_lo, seg_hi)` over the plan's segment list, sequentially or
/// chunked over the executor. Segment-range chunking (not axis-0 rows) is
/// what gives ragged/strided generators an even parallel grain.
template <class Fn>
void run_over_segments(const SegmentPlan& plan, const Context& ctx, const Fn& fn) {
  const auto n = static_cast<std::int64_t>(plan.segments().size());
  if (n == 0) {
    return;
  }
  if (ctx.threads <= 1 || n <= 1 || plan.total_elements() < ctx.grain) {
    fn(0, n);
    return;
  }
  const std::int64_t avg = std::max<std::int64_t>(1, plan.total_elements() / n);
  const std::int64_t seg_grain = std::max<std::int64_t>(1, ctx.grain / avg);
  snetsac::runtime::parallel_for_chunks(sac_pool(), 0, n, seg_grain, fn,
                                        ctx.threads);
}

}  // namespace detail

template <class T, class Post = detail::IdentityStage>
class Fused;

template <class T>
class With {
 public:
  using Body = std::function<T(const Index&)>;
  using storage = detail::storage_t<T>;
  /// Typed segment kernel: writes `out[base + (j - col_lo)]` for every j in
  /// `[col_lo, col_hi)`, where the cell's index vector is `row_prefix` (the
  /// rank-1 outer components) extended with j. `out` points at the result's
  /// raw row-major storage; the inner loop is a plain countable loop the
  /// compiler can auto-vectorise. One indirect call per *segment*, not per
  /// element.
  using Kernel = std::function<void(storage* out, std::int64_t base,
                                    const Index& row_prefix, std::int64_t col_lo,
                                    std::int64_t col_hi)>;

  /// Generator `lb <= iv < ub` with body expression \p body.
  With& gen(SpecIndex lb, SpecIndex ub, Body body) {
    check_bounds_rank(lb, ub);
    if (gens_.capacity() == 0) {
      gens_.reserve(4);  // the common case (cf. addNumber) in one allocation
    }
    Generator& g = gens_.emplace_back();
    g.spec.lb = std::move(lb);
    g.spec.ub = std::move(ub);
    g.body = std::move(body);
    return *this;
  }

  /// Generator `lb <= iv <= ub` (the inclusive form used by the paper's
  /// `addNumber`); normalised to an exclusive upper bound.
  With& gen_incl(SpecIndex lb, SpecIndex ub, Body body) {
    for (auto& c : ub) {
      c += 1;
    }
    return gen(std::move(lb), std::move(ub), std::move(body));
  }

  /// Constant-body generators, e.g. `([i,j,0] <= iv <= [i,j,8]) : false`.
  /// The compiled engine turns their segments into `std::fill`/memset; no
  /// Body is materialised at all (both engines branch on is_const), so
  /// building one costs two Index moves and nothing else.
  With& gen_val(SpecIndex lb, SpecIndex ub, T value) {
    check_bounds_rank(lb, ub);
    if (gens_.capacity() == 0) {
      gens_.reserve(4);
    }
    Generator& g = gens_.emplace_back();
    g.spec.lb = std::move(lb);
    g.spec.ub = std::move(ub);
    g.is_const = true;
    g.const_val = std::move(value);
    return *this;
  }
  With& gen_incl_val(SpecIndex lb, SpecIndex ub, T value) {
    for (auto& c : ub) {
      c += 1;
    }
    return gen_val(std::move(lb), std::move(ub), std::move(value));
  }

  /// Typed-kernel generator. \p f is either
  ///  * a raw segment kernel `(storage* out, int64 base, const Index&
  ///    row_prefix, int64 col_lo, int64 col_hi)`, or
  ///  * a coordinate body `T f(i)`, `T f(i, j)` or `T f(i, j, k)` whose
  ///    arity must equal the result rank — wrapped into a segment kernel
  ///    whose inner loop inlines \p f (no per-element indirect call, no
  ///    index vectors).
  /// A reference `Body` is synthesised alongside so `Context::compiled =
  /// false` still evaluates the same generator per element.
  template <class F>
  With& gen_kernel(SpecIndex lb, SpecIndex ub, F f) {
    check_bounds_rank(lb, ub);
    Generator& g = gens_.emplace_back();
    g.spec.lb = std::move(lb);
    g.spec.ub = std::move(ub);
    if constexpr (std::is_invocable_v<F, storage*, std::int64_t, const Index&,
                                      std::int64_t, std::int64_t>) {
      g.kernel = Kernel(f);
      g.coord_arity = kRawKernel;
      g.body = [f](const Index& iv) -> T {
        storage tmp{};
        if (iv.empty()) {
          const Index pre;
          f(&tmp, 0, pre, 0, 1);
        } else {
          const Index pre(iv.begin(), iv.end() - 1);
          f(&tmp, 0, pre, iv.back(), iv.back() + 1);
        }
        return static_cast<T>(tmp);
      };
    } else if constexpr (std::is_invocable_v<F, std::int64_t>) {
      g.coord_arity = 1;
      g.kernel = [f](storage* out, std::int64_t base, const Index&,
                     std::int64_t lo, std::int64_t hi) {
        storage* p = out + base;
        for (std::int64_t j = lo; j < hi; ++j) {
          p[j - lo] = static_cast<storage>(f(j));
        }
      };
      g.body = [f](const Index& iv) { return static_cast<T>(f(iv[0])); };
    } else if constexpr (std::is_invocable_v<F, std::int64_t, std::int64_t>) {
      g.coord_arity = 2;
      g.kernel = [f](storage* out, std::int64_t base, const Index& pre,
                     std::int64_t lo, std::int64_t hi) {
        const std::int64_t i = pre[0];
        storage* p = out + base;
        for (std::int64_t j = lo; j < hi; ++j) {
          p[j - lo] = static_cast<storage>(f(i, j));
        }
      };
      g.body = [f](const Index& iv) { return static_cast<T>(f(iv[0], iv[1])); };
    } else if constexpr (std::is_invocable_v<F, std::int64_t, std::int64_t,
                                             std::int64_t>) {
      g.coord_arity = 3;
      g.kernel = [f](storage* out, std::int64_t base, const Index& pre,
                     std::int64_t lo, std::int64_t hi) {
        const std::int64_t i = pre[0];
        const std::int64_t jj = pre[1];
        storage* p = out + base;
        for (std::int64_t k = lo; k < hi; ++k) {
          p[k - lo] = static_cast<storage>(f(i, jj, k));
        }
      };
      g.body = [f](const Index& iv) {
        return static_cast<T>(f(iv[0], iv[1], iv[2]));
      };
    } else {
      static_assert(std::is_invocable_v<F, std::int64_t>,
                    "gen_kernel: expected a segment kernel or a coordinate "
                    "body of arity 1..3");
    }
    return *this;
  }

  /// SaC striding on the most recently added generator: of every `step`
  /// consecutive indices per axis, the first `width` are members.
  With& step(SpecIndex s) {
    last().spec.step = std::move(s);
    return *this;
  }
  With& width(SpecIndex w) {
    last().spec.width = std::move(w);
    return *this;
  }

  /// genarray-with-loop: the result shape is given explicitly (it is "not
  /// the generator that defines the shape of the resulting array").
  Array<T> genarray(const Shape& result_shape, T default_value,
                    const Context& ctx = default_context()) const {
    Array<T> result(result_shape, default_value);
    apply_generators(result, ctx);
    return result;
  }

  /// modarray-with-loop: result has the shape of \p src; uncovered elements
  /// keep the corresponding value of \p src.
  Array<T> modarray(Array<T> src, const Context& ctx = default_context()) const {
    apply_generators(src, ctx);
    return src;
  }

  /// Lazy genarray: the with-loop as a fusable expression. Elementwise
  /// consumers chained onto it (map / zip_with / fold) execute inside this
  /// with-loop's segment pass — `genarray→map→fold` is one pass with zero
  /// intermediate arrays.
  Fused<T> lazy_genarray(Shape result_shape, T default_value) const;

  /// Lazy modarray: like lazy_genarray, with uncovered cells drawn from
  /// \p src (captured by value; COW keeps the source snapshot intact even
  /// if the chain's result is later assigned over the same handle).
  Fused<T> lazy_modarray(Array<T> src) const;

  /// fold-with-loop: reduces body values over every generator element.
  /// \p combine must be associative; evaluation order is unspecified
  /// except that per-chunk partial results are combined in index order.
  /// Overlapping generators each contribute all their elements (no overlap
  /// resolution — fold is a multiset reduction, not an array build).
  T fold(const std::function<T(T, T)>& combine, T neutral,
         const Context& ctx = default_context()) const {
    T acc = neutral;
    for (const auto& g : gens_) {
      validate_striding(g.spec);  // before any member-count division by step
      const std::int64_t est = element_estimate(g.spec);
      validate_rank_only(g, est);
      if (est == 0) {
        continue;
      }
      if (ctx.compiled) {
        acc = fold_generator_compiled(g, combine, std::move(acc), neutral, ctx, est);
      } else {
        acc = fold_generator_reference(g, combine, std::move(acc), neutral, ctx, est);
      }
    }
    return acc;
  }

 private:
  template <class, class>
  friend class Fused;

  static constexpr int kRawKernel = -2;

  struct Generator {
    GeneratorSpec spec;
    Body body;        // always present: the interpreted/reference evaluator
    Kernel kernel;    // optional typed segment kernel (compiled engine)
    bool is_const = false;
    T const_val{};
    int coord_arity = -1;  // 1..3 for coordinate kernels, kRawKernel, or -1
  };

  static void check_bounds_rank(const SpecIndex& lb, const SpecIndex& ub) {
    if (lb.size() != ub.size()) {
      throw ShapeError("generator bounds " + index_to_string(lb) + " and " +
                       index_to_string(ub) + " differ in rank");
    }
  }

  Generator& last() {
    if (gens_.empty()) {
      throw std::logic_error("step()/width() before any generator");
    }
    return gens_.back();
  }

  static std::int64_t axis_count(const GeneratorSpec& g, std::size_t axis) {
    const std::int64_t extent = g.ub[axis] - g.lb[axis];
    if (extent <= 0) {
      return 0;
    }
    if (g.step.empty()) {
      return extent;
    }
    const std::int64_t st = g.step[axis];
    const std::int64_t wd = g.width.empty() ? 1 : g.width[axis];
    const std::int64_t full = extent / st;
    const std::int64_t rem = extent % st;
    return full * wd + std::min(rem, wd);
  }

  static std::int64_t element_estimate(const GeneratorSpec& g) {
    std::int64_t n = 1;
    for (std::size_t a = 0; a < g.lb.size(); ++a) {
      n *= axis_count(g, a);
    }
    return n;
  }

  static bool axis_member(const GeneratorSpec& g, std::size_t axis, std::int64_t pos) {
    if (g.step.empty()) {
      return true;
    }
    const std::int64_t st = g.step[axis];
    const std::int64_t wd = g.width.empty() ? 1 : g.width[axis];
    return (pos - g.lb[axis]) % st < wd;
  }

  /// Visits every generator index whose axis-0 component lies in
  /// [row_lo, row_hi), in row-major order (reference engine).
  template <class F>
  static void iterate_rows(const GeneratorSpec& g, std::int64_t row_lo,
                           std::int64_t row_hi, const F& visit) {
    const std::size_t rank = g.lb.size();
    if (rank == 0) {
      // A rank-0 generator denotes the single empty index vector.
      Index iv;
      visit(iv);
      return;
    }
    Index iv(rank, 0);
    // Recursive descent over axes, expressed iteratively for axis 0.
    for (std::int64_t r = row_lo; r < row_hi; ++r) {
      if (!axis_member(g, 0, r)) {
        continue;
      }
      iv[0] = r;
      iterate_axis(g, iv, 1, visit);
    }
  }

  template <class F>
  static void iterate_axis(const GeneratorSpec& g, Index& iv, std::size_t axis,
                           const F& visit) {
    if (axis == g.lb.size()) {
      visit(const_cast<const Index&>(iv));
      return;
    }
    for (std::int64_t p = g.lb[axis]; p < g.ub[axis]; ++p) {
      if (!axis_member(g, axis, p)) {
        continue;
      }
      iv[axis] = p;
      iterate_axis(g, iv, axis + 1, visit);
    }
  }

  /// \p est is the generator's member count, computed once by the caller
  /// (or taken from the plan) — bounds of empty generators are irrelevant.
  void validate_against(const Generator& g, const Shape& target,
                        std::int64_t est) const {
    if (static_cast<int>(g.spec.lb.size()) != target.rank()) {
      throw ShapeError("generator of rank " + std::to_string(g.spec.lb.size()) +
                       " does not match result shape " + target.to_string());
    }
    if (g.coord_arity > 0 && g.coord_arity != target.rank()) {
      throw ShapeError("coordinate kernel of arity " +
                       std::to_string(g.coord_arity) +
                       " does not match result rank " +
                       std::to_string(target.rank()));
    }
    validate_striding(g.spec);
    if (est == 0) {
      return;  // empty generators never touch memory, bounds irrelevant
    }
    for (std::size_t a = 0; a < g.spec.lb.size(); ++a) {
      if (g.spec.lb[a] < 0 || g.spec.ub[a] > target.extent(static_cast<int>(a))) {
        throw ShapeError("generator range " + index_to_string(g.spec.lb) + " .. " +
                         index_to_string(g.spec.ub) + " exceeds result shape " +
                         target.to_string());
      }
    }
  }

  void validate_rank_only(const Generator& g, std::int64_t est) const {
    validate_striding(g.spec);
    if (est == 0) {
      return;
    }
    for (std::size_t a = 0; a < g.spec.lb.size(); ++a) {
      if (g.spec.lb[a] < 0) {
        throw ShapeError("fold generator lower bound " +
                         index_to_string(g.spec.lb) + " is negative");
      }
    }
  }

  void validate_striding(const GeneratorSpec& g) const {
    if (!g.step.empty() && g.step.size() != g.lb.size()) {
      throw ShapeError("step vector rank mismatch in generator");
    }
    if (!g.width.empty() && g.width.size() != g.lb.size()) {
      throw ShapeError("width vector rank mismatch in generator");
    }
    for (const auto s : g.step) {
      if (s < 1) {
        throw ShapeError("generator step components must be >= 1");
      }
    }
    for (std::size_t a = 0; a < g.width.size(); ++a) {
      if (g.width[a] < 1 || (!g.step.empty() && g.width[a] > g.step[a])) {
        throw ShapeError("generator width must satisfy 1 <= width <= step");
      }
    }
  }

  std::vector<GeneratorSpec> specs() const {
    std::vector<GeneratorSpec> out;
    out.reserve(gens_.size());
    for (const auto& g : gens_) {
      out.push_back(g.spec);
    }
    return out;
  }

  SegmentPlan build_plan(const Shape& shape, bool resolve_overlap,
                         bool with_complement) const {
    return SegmentPlan(specs(), shape, resolve_overlap, with_complement);
  }

  /// Rank and striding checks that must pass before a plan can even be
  /// built (decomposition divides by step and indexes by rank).
  void prevalidate(const Shape& shape) const {
    for (const auto& g : gens_) {
      if (static_cast<int>(g.spec.lb.size()) != shape.rank()) {
        throw ShapeError("generator of rank " + std::to_string(g.spec.lb.size()) +
                         " does not match result shape " + shape.to_string());
      }
      validate_striding(g.spec);
    }
  }

  void validate_all(const Shape& shape, const SegmentPlan& plan) const {
    for (std::size_t gi = 0; gi < gens_.size(); ++gi) {
      validate_against(gens_[gi], shape, plan.generator_elements(gi));
    }
  }

  void apply_generators(Array<T>& result, const Context& ctx) const {
    if (ctx.compiled) {
      apply_compiled(result, ctx);
    } else {
      apply_reference(result, ctx);
    }
  }

  // ---- compiled engine ---------------------------------------------------

  /// Calls run(pre, col_lo, col_hi) for every contiguous last-axis run of
  /// generator \p g, in row-major order; \p pre (caller-provided rank-1
  /// scratch, raw so small loops stay allocation-free) holds the outer-axis
  /// components during each call. This is the small-loop twin of
  /// SegmentPlan::decompose_generator: same runs, no stored plan.
  template <class RunFn>
  static void walk_runs(const GeneratorSpec& g, std::int64_t* pre,
                        const RunFn& run) {
    const std::size_t rank = g.lb.size();
    if (rank == 0) {
      run(pre, 0, 1);
      return;
    }
    const std::size_t last = rank - 1;
    const std::int64_t lb_l = g.lb[last];
    const std::int64_t ub_l = g.ub[last];
    const std::int64_t st_l = g.step.empty() ? 0 : g.step[last];
    const std::int64_t wd_l = g.width.empty() ? 1 : (st_l ? g.width[last] : 1);
    for (std::size_t a = 0; a < last; ++a) {
      pre[a] = g.lb[a];
    }
    while (true) {
      if (st_l == 0) {
        run(pre, lb_l, ub_l);
      } else {
        for (std::int64_t s = lb_l; s < ub_l; s += st_l) {
          run(pre, s, std::min(s + wd_l, ub_l));
        }
      }
      // Advance the outer-axis odometer (axis last-1 fastest), honouring
      // striding by jumping past non-member positions.
      if (last == 0) {
        return;  // rank 1: a single outer combination
      }
      std::size_t a = last;
      while (true) {
        --a;
        std::int64_t& p = pre[a];
        ++p;
        if (!g.step.empty()) {
          const std::int64_t st = g.step[a];
          const std::int64_t wd = g.width.empty() ? 1 : g.width[a];
          if ((p - g.lb[a]) % st >= wd) {
            p = g.lb[a] + ((p - g.lb[a]) / st + 1) * st;
          }
        }
        if (p < g.ub[a]) {
          break;
        }
        p = g.lb[a];
        if (a == 0) {
          return;
        }
      }
    }
  }

  /// Sequential segment execution without a SegmentPlan: generators run in
  /// order (later overwrites earlier — the overlap rule needs no setup-time
  /// resolution when execution is ordered), each as fills/kernels/tight
  /// body loops over its runs. This keeps tiny with-loops — sudoku's
  /// addNumber touches ~3N cells per call — free of plan-building cost.
  static constexpr int kMaxStackRank = 8;

  /// Dense (unstrided) constant generator, written as nested strided
  /// stores over a *compacted* axis list: extent-1 axes are dropped (they
  /// only shift the base — addNumber's row/column/box generators each pin
  /// two of three axes) and adjacent axes that are contiguous in memory are
  /// merged into one longer run. Without this the generic run walk pays a
  /// memset call (or odometer dispatch) per single-cell row, which costs
  /// more than the whole generator's worth of stores.
  static void fill_dense(const GeneratorSpec& g, storage* out,
                         const std::int64_t* strides, storage v) {
    const std::size_t rank = g.lb.size();
    std::int64_t base = 0;
    for (std::size_t a = 0; a < rank; ++a) {
      base += g.lb[a] * strides[a];
    }
    std::int64_t ext_buf[kMaxStackRank];
    std::int64_t str_buf[kMaxStackRank];
    std::vector<std::int64_t> deep;
    std::int64_t* ext = ext_buf;
    std::int64_t* str = str_buf;
    if (rank > kMaxStackRank) {
      deep.resize(2 * rank);
      ext = deep.data();
      str = deep.data() + rank;
    }
    std::size_t m = 0;
    for (std::size_t a = 0; a < rank; ++a) {
      const std::int64_t e = g.ub[a] - g.lb[a];
      if (e > 1) {
        ext[m] = e;
        str[m] = strides[a];
        ++m;
      }
    }
    // Merge inward-contiguous neighbours: axis i spans exactly ext[i]
    // repetitions of the [i+1..] block when str[i] == ext[i+1]*str[i+1].
    std::size_t w = m;
    while (w >= 2 && str[w - 2] == ext[w - 1] * str[w - 1]) {
      ext[w - 2] *= ext[w - 1];
      str[w - 2] = str[w - 1];
      --w;
    }
    m = w;
    if (m == 0) {
      out[base] = v;
      return;
    }
    const std::int64_t len = ext[m - 1];
    const std::int64_t lstr = str[m - 1];
    const auto run = [&](std::int64_t b) {
      if (lstr == 1 && len >= 16) {
        std::fill(out + b, out + b + len, v);
      } else {
        storage* p = out + b;
        for (std::int64_t t = 0; t < len; ++t, p += lstr) {
          *p = v;
        }
      }
    };
    if (m == 1) {
      run(base);
      return;
    }
    if (m == 2) {
      for (std::int64_t r = 0; r < ext[0]; ++r, base += str[0]) {
        run(base);
      }
      return;
    }
    // m >= 3: odometer over the axes outside the innermost run.
    const std::size_t outer = m - 1;
    std::int64_t idx[kMaxStackRank] = {};
    std::vector<std::int64_t> idx_deep;
    std::int64_t* ip = idx;
    if (outer > kMaxStackRank) {
      idx_deep.assign(outer, 0);
      ip = idx_deep.data();
    }
    while (true) {
      run(base);
      std::size_t a = outer;
      while (true) {
        if (a == 0) {
          return;
        }
        --a;
        ++ip[a];
        base += str[a];
        if (ip[a] < ext[a]) {
          break;
        }
        base -= ip[a] * str[a];
        ip[a] = 0;
      }
    }
  }

  void apply_compiled_seq(Array<T>& result, const Shape& shp,
                          const std::int64_t* ests) const {
    const int rank = shp.rank();
    storage* out = nullptr;  // detach lazily: empty loops must not COW
    std::int64_t strides_buf[kMaxStackRank];
    std::int64_t pre_buf[kMaxStackRank];
    std::vector<std::int64_t> deep;  // spill only for rank > kMaxStackRank
    std::int64_t* strides = strides_buf;
    std::int64_t* pre = pre_buf;
    if (rank > kMaxStackRank) {
      deep.resize(2 * static_cast<std::size_t>(rank));
      strides = deep.data();
      pre = deep.data() + rank;
    }
    if (rank > 0) {
      strides[rank - 1] = 1;
      for (int a = rank - 2; a >= 0; --a) {
        strides[a] = strides[a + 1] * shp.extent(a + 1);
      }
    }
    // Index-vector scratch, needed (and allocated) only when some generator
    // evaluates through a kernel or a Body; pure gen_val loops — sudoku's
    // addNumber — run with zero allocations.
    Index pre_ix;
    Index iv;
    const std::size_t last = rank > 0 ? static_cast<std::size_t>(rank - 1) : 0;
    for (std::size_t gi = 0; gi < gens_.size(); ++gi) {
      if (ests[gi] == 0) {
        continue;
      }
      const Generator& g = gens_[gi];
      if (out == nullptr) {
        out = result.mutable_data().data();
      }
      if (rank == 0) {
        const Index empty;
        if (g.is_const) {
          out[0] = static_cast<storage>(g.const_val);
        } else if (g.kernel) {
          g.kernel(out, 0, empty, 0, 1);
        } else {
          out[0] = static_cast<storage>(g.body(empty));
        }
        continue;
      }
      if (g.is_const && g.spec.step.empty()) {
        fill_dense(g.spec, out, strides, static_cast<storage>(g.const_val));
        continue;
      }
      if (!g.is_const) {
        if (g.kernel && pre_ix.size() != last) {
          pre_ix.assign(last, 0);
        } else if (!g.kernel && iv.size() != static_cast<std::size_t>(rank)) {
          iv.assign(static_cast<std::size_t>(rank), 0);
        }
      }
      walk_runs(g.spec, pre,
                [&](const std::int64_t* p, std::int64_t lo, std::int64_t hi) {
                  std::int64_t base = lo;
                  for (std::size_t a = 0; a < last; ++a) {
                    base += p[a] * strides[a];
                  }
                  if (g.is_const) {
                    std::fill(out + base, out + base + (hi - lo),
                              static_cast<storage>(g.const_val));
                  } else if (g.kernel) {
                    std::copy(p, p + last, pre_ix.begin());
                    g.kernel(out, base, pre_ix, lo, hi);
                  } else {
                    std::copy(p, p + last, iv.begin());
                    std::int64_t at = base;
                    for (std::int64_t j = lo; j < hi; ++j, ++at) {
                      iv[last] = j;
                      out[at] = static_cast<storage>(g.body(iv));
                    }
                  }
                });
    }
  }

  void apply_compiled(Array<T>& result, const Context& ctx) const {
    const Shape& shp = result.shape();
    prevalidate(shp);
    // One element_estimate per generator per apply (the interpreted path
    // used to recompute it up to 3x); doubles as the size trigger for the
    // plan-free sequential path. Stack storage for the usual few-generator
    // case — this runs on every with-loop call.
    std::int64_t ests_buf[16];
    std::vector<std::int64_t> ests_spill;
    std::int64_t* ests = ests_buf;
    if (gens_.size() > 16) {
      ests_spill.resize(gens_.size());
      ests = ests_spill.data();
    }
    std::int64_t total = 0;
    for (std::size_t gi = 0; gi < gens_.size(); ++gi) {
      ests[gi] = element_estimate(gens_[gi].spec);
      validate_against(gens_[gi], shp, ests[gi]);
      total += ests[gi];
    }
    if (total == 0) {
      return;
    }
    if (ctx.threads <= 1 || total < ctx.grain) {
      apply_compiled_seq(result, shp, ests);
      return;
    }
    const SegmentPlan plan = build_plan(shp, /*resolve_overlap=*/true,
                                        /*with_complement=*/false);
    if (plan.segments().empty()) {
      return;
    }
    // Detach once, before chunking; every chunk writes disjoint cells.
    storage* out = result.mutable_data().data();
    const int rank = shp.rank();
    const auto run = [&](std::int64_t lo, std::int64_t hi) {
      Index iv(static_cast<std::size_t>(rank), 0);
      Index pre(rank > 0 ? static_cast<std::size_t>(rank - 1) : 0, 0);
      for (std::int64_t si = lo; si < hi; ++si) {
        const Segment& s = plan.segments()[static_cast<std::size_t>(si)];
        const auto& g = gens_[static_cast<std::size_t>(s.gen)];
        const std::int64_t len = s.count();
        if (g.is_const) {
          std::fill(out + s.base, out + s.base + len,
                    static_cast<storage>(g.const_val));
        } else if (g.kernel) {
          load_prefix(plan, s, pre);
          g.kernel(out, s.base, pre, s.col_lo, s.col_hi);
        } else if (rank == 0) {
          const Index empty;
          out[s.base] = static_cast<storage>(g.body(empty));
        } else {
          load_prefix(plan, s, iv);
          std::int64_t at = s.base;
          for (std::int64_t j = s.col_lo; j < s.col_hi; ++j, ++at) {
            iv[static_cast<std::size_t>(rank - 1)] = j;
            out[at] = static_cast<storage>(g.body(iv));
          }
        }
      }
    };
    detail::run_over_segments(plan, ctx, run);
  }

  /// Copies a segment's row prefix into the leading components of \p iv
  /// (which may be the rank-1 prefix vector itself or a full-rank scratch
  /// index whose last component the caller varies).
  static void load_prefix(const SegmentPlan& plan, const Segment& s, Index& iv) {
    const int pr = plan.prefix_rank();
    if (pr == 0 || s.prefix < 0) {
      return;
    }
    const std::int64_t* pp = plan.prefix_at(s.prefix);
    for (int a = 0; a < pr; ++a) {
      iv[static_cast<std::size_t>(a)] = pp[a];
    }
  }

  template <class C>
  T fold_generator_compiled(const Generator& g, const C& combine, T acc,
                            const T& neutral, const Context& ctx,
                            std::int64_t est) const {
    const int rank0 = static_cast<int>(g.spec.lb.size());
    if (ctx.threads <= 1 || est < ctx.grain) {
      // Plan-free sequential fold over the generator's runs; scratch
      // Index/vector state is allocated only for kernel/body generators.
      std::int64_t pre_buf[kMaxStackRank];
      std::vector<std::int64_t> deep;
      std::int64_t* pre = pre_buf;
      if (rank0 > kMaxStackRank) {
        deep.resize(static_cast<std::size_t>(rank0));
        pre = deep.data();
      }
      const std::size_t last =
          rank0 > 0 ? static_cast<std::size_t>(rank0 - 1) : 0;
      Index pre_ix;
      Index iv;
      std::vector<storage> scratch;
      if (!g.is_const) {
        if (g.kernel) {
          pre_ix.assign(last, 0);
        } else {
          iv.assign(static_cast<std::size_t>(rank0), 0);
        }
      }
      walk_runs(g.spec, pre,
                [&](const std::int64_t* p, std::int64_t lo, std::int64_t hi) {
                  if (g.is_const) {
                    for (std::int64_t t = lo; t < hi; ++t) {
                      acc = combine(acc, g.const_val);
                    }
                  } else if (g.kernel) {
                    scratch.resize(static_cast<std::size_t>(hi - lo));
                    std::copy(p, p + last, pre_ix.begin());
                    g.kernel(scratch.data(), 0, pre_ix, lo, hi);
                    for (const storage& v : scratch) {
                      acc = combine(acc, static_cast<T>(v));
                    }
                  } else if (rank0 == 0) {
                    const Index empty;
                    acc = combine(acc, g.body(empty));
                  } else {
                    std::copy(p, p + last, iv.begin());
                    for (std::int64_t j = lo; j < hi; ++j) {
                      iv[last] = j;
                      acc = combine(acc, g.body(iv));
                    }
                  }
                });
      return acc;
    }
    // Fold has no result array: decompose against the generator's own
    // bounding shape (lb >= 0 was validated; linear bases are unused).
    const Shape bounding{std::vector<std::int64_t>(g.spec.ub.begin(),
                                                   g.spec.ub.end())};
    const SegmentPlan plan({g.spec}, bounding, /*resolve_overlap=*/false,
                           /*with_complement=*/false);
    const auto& segs = plan.segments();
    const int rank = static_cast<int>(g.spec.lb.size());

    const auto eval_segment = [&](const Segment& s, T part,
                                  std::vector<storage>& scratch, Index& iv,
                                  Index& pre) -> T {
      const std::int64_t len = s.count();
      if (g.is_const) {
        for (std::int64_t t = 0; t < len; ++t) {
          part = combine(part, g.const_val);
        }
      } else if (g.kernel) {
        scratch.resize(static_cast<std::size_t>(len));
        load_prefix(plan, s, pre);
        g.kernel(scratch.data(), 0, pre, s.col_lo, s.col_hi);
        for (std::int64_t t = 0; t < len; ++t) {
          part = combine(part, static_cast<T>(scratch[static_cast<std::size_t>(t)]));
        }
      } else if (rank == 0) {
        const Index empty;
        part = combine(part, g.body(empty));
      } else {
        load_prefix(plan, s, iv);
        for (std::int64_t j = s.col_lo; j < s.col_hi; ++j) {
          iv[static_cast<std::size_t>(rank - 1)] = j;
          part = combine(part, g.body(iv));
        }
      }
      return part;
    };

    if (ctx.threads <= 1 || est < ctx.grain || segs.size() <= 1) {
      std::vector<storage> scratch;
      Index iv(static_cast<std::size_t>(rank), 0);
      Index pre(rank > 0 ? static_cast<std::size_t>(rank - 1) : 0, 0);
      for (const Segment& s : segs) {
        acc = eval_segment(s, std::move(acc), scratch, iv, pre);
      }
      return acc;
    }
    // Parallel fold: segment ranges of >= grain cells, one partial per
    // range, partials combined in segment (= index) order.
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    std::int64_t start = 0;
    std::int64_t cells = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      cells += segs[i].count();
      if (cells >= ctx.grain) {
        ranges.emplace_back(start, static_cast<std::int64_t>(i + 1));
        start = static_cast<std::int64_t>(i + 1);
        cells = 0;
      }
    }
    if (start < static_cast<std::int64_t>(segs.size())) {
      ranges.emplace_back(start, static_cast<std::int64_t>(segs.size()));
    }
    // Partials live in the storage type: std::vector<bool>'s packed bits
    // must not be written concurrently from different chunks.
    std::vector<storage> partials(ranges.size(), static_cast<storage>(neutral));
    snetsac::runtime::parallel_for_each(
        sac_pool(), 0, static_cast<std::int64_t>(ranges.size()), 1,
        [&](std::int64_t c) {
          T part = neutral;
          std::vector<storage> scratch;
          Index iv(static_cast<std::size_t>(rank), 0);
          Index pre(rank > 0 ? static_cast<std::size_t>(rank - 1) : 0, 0);
          const auto& [rlo, rhi] = ranges[static_cast<std::size_t>(c)];
          for (std::int64_t i = rlo; i < rhi; ++i) {
            part = eval_segment(segs[static_cast<std::size_t>(i)], std::move(part),
                                scratch, iv, pre);
          }
          partials[static_cast<std::size_t>(c)] = static_cast<storage>(part);
        });
    for (const storage& p : partials) {
      acc = combine(acc, static_cast<T>(p));
    }
    return acc;
  }

  // ---- interpreted/reference engine --------------------------------------

  void apply_reference(Array<T>& result, const Context& ctx) const {
    const Shape& shp = result.shape();
    for (const auto& g : gens_) {
      validate_striding(g.spec);  // before any member-count division by step
      const std::int64_t est = element_estimate(g.spec);
      validate_against(g, shp, est);
      if (est == 0) {
        continue;
      }
      auto& buf = result.mutable_data();
      const auto write = [&](const Index& iv) {
        buf[static_cast<std::size_t>(shp.linearize(iv))] = static_cast<storage>(
            g.is_const ? g.const_val : g.body(iv));
      };
      if (g.spec.lb.empty()) {
        iterate_rows(g.spec, 0, 1, write);
        continue;
      }
      const std::int64_t rows = g.spec.ub[0] - g.spec.lb[0];
      const std::int64_t per_row = est / std::max<std::int64_t>(rows, 1);
      const std::int64_t row_grain =
          per_row > 0
              ? std::max<std::int64_t>(1, ctx.grain / std::max<std::int64_t>(per_row, 1))
              : 1;
      if (ctx.threads <= 1 || est < ctx.grain) {
        iterate_rows(g.spec, g.spec.lb[0], g.spec.ub[0], write);
      } else {
        snetsac::runtime::parallel_for_chunks(
            sac_pool(), g.spec.lb[0], g.spec.ub[0], row_grain,
            [&](std::int64_t lo, std::int64_t hi) {
              iterate_rows(g.spec, lo, hi, write);
            },
            ctx.threads);
      }
    }
  }

  T fold_generator_reference(const Generator& g,
                             const std::function<T(T, T)>& combine, T acc,
                             const T& neutral, const Context& ctx,
                             std::int64_t est) const {
    const auto eval = [&g](const Index& iv) {
      return g.is_const ? g.const_val : g.body(iv);
    };
    if (g.spec.lb.empty() || ctx.threads <= 1 || est < ctx.grain) {
      const std::int64_t lo = g.spec.lb.empty() ? 0 : g.spec.lb[0];
      const std::int64_t hi = g.spec.lb.empty() ? 1 : g.spec.ub[0];
      iterate_rows(g.spec, lo, hi,
                   [&](const Index& iv) { acc = combine(acc, eval(iv)); });
      return acc;
    }
    // Parallel fold: fixed chunk ranges over axis 0, one partial per chunk,
    // partials combined in index order (associativity is enough).
    const std::int64_t rows = g.spec.ub[0] - g.spec.lb[0];
    const std::int64_t chunks =
        std::min<std::int64_t>(ctx.threads, std::max<std::int64_t>(rows, 1));
    const std::int64_t chunk_rows = (rows + chunks - 1) / chunks;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    for (std::int64_t lo = g.spec.lb[0]; lo < g.spec.ub[0]; lo += chunk_rows) {
      ranges.emplace_back(lo, std::min(lo + chunk_rows, g.spec.ub[0]));
    }
    std::vector<storage> partials(ranges.size(), static_cast<storage>(neutral));
    snetsac::runtime::parallel_for_each(
        sac_pool(), 0, static_cast<std::int64_t>(ranges.size()), 1,
        [&](std::int64_t c) {
          T part = neutral;
          iterate_rows(g.spec, ranges[static_cast<std::size_t>(c)].first,
                       ranges[static_cast<std::size_t>(c)].second,
                       [&](const Index& iv) { part = combine(part, eval(iv)); });
          partials[static_cast<std::size_t>(c)] = static_cast<storage>(part);
        });
    for (std::size_t c = 0; c < partials.size(); ++c) {
      acc = combine(acc, static_cast<T>(partials[c]));
    }
    return acc;
  }

  std::vector<Generator> gens_;
};

/// Fused with-loop chain: a lazy with-loop (or plain array) with a stack of
/// elementwise post-stages. Terminals (`to_array`, `fold`) execute the whole
/// chain in one segment pass of the root — chained producers never
/// materialise. With `Context::compiled == false` the chain instead
/// materialises the root with the interpreted engine and applies the stages
/// elementwise (the unfused ablation), so compiled-vs-reference equivalence
/// covers fusion too.
template <class T, class Post>
class Fused {
 public:
  using value_type =
      std::decay_t<std::invoke_result_t<const Post&, T, std::int64_t>>;

  const Shape& shape() const { return shape_; }

  /// Chains an elementwise function: value' = f(value).
  template <class F>
  auto map(F f) const {
    using NewPost = detail::ComposedStage<Post, detail::MapStage<F>>;
    return Fused<T, NewPost>(with_, shape_, src_, def_, has_src_,
                             NewPost{post_, detail::MapStage<F>{std::move(f)}});
  }

  /// Chains a binary elementwise function against a second array of the
  /// same shape: value' = f(value, other[iv]).
  template <class U, class F>
  auto zip_with(const Array<U>& other, F f) const {
    if (other.shape() != shape_) {
      throw ShapeError("zip_with on shapes " + shape_.to_string() + " and " +
                       other.shape().to_string());
    }
    using NewPost =
        detail::ComposedStage<Post, detail::ZipStage<U, F>>;
    detail::ZipStage<U, F> stage{other, other.data().data(), std::move(f)};
    return Fused<T, NewPost>(with_, shape_, src_, def_, has_src_,
                             NewPost{post_, std::move(stage)});
  }

  /// Materialises the chain: one pass, no intermediate arrays.
  Array<value_type> to_array(const Context& ctx = default_context()) const {
    using R = value_type;
    using RS = detail::storage_t<R>;
    Array<R> out(shape_, R{});
    const std::int64_t n = shape_.element_count();
    if (n == 0) {
      return out;
    }
    if (!ctx.compiled) {
      const Array<T> root = materialize_root(ctx);
      auto& ob = out.mutable_data();
      for (std::int64_t i = 0; i < n; ++i) {
        ob[static_cast<std::size_t>(i)] =
            static_cast<RS>(post_(root.linear(i), i));
      }
      return out;
    }
    if (with_.gens_.empty()) {
      // Generator-less chain (lazy(a).map(...) and friends): one plain pass
      // over the root storage, no plan.
      RS* op = out.mutable_data().data();
      if (has_src_) {
        const detail::storage_t<T>* sp = src_.data().data();
        for (std::int64_t i = 0; i < n; ++i) {
          op[i] = static_cast<RS>(post_(static_cast<T>(sp[i]), i));
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          op[i] = static_cast<RS>(post_(def_, i));
        }
      }
      return out;
    }
    with_.prevalidate(shape_);
    const SegmentPlan plan =
        with_.build_plan(shape_, /*resolve_overlap=*/true, /*with_complement=*/true);
    with_.validate_all(shape_, plan);
    RS* op = out.mutable_data().data();
    const detail::storage_t<T>* sp = has_src_ ? src_.data().data() : nullptr;
    const auto run = [&](std::int64_t lo, std::int64_t hi) {
      run_segments(plan, lo, hi, sp,
                   [&](std::int64_t linear, T v) {
                     op[linear] = static_cast<RS>(post_(v, linear));
                   });
    };
    detail::run_over_segments(plan, ctx, run);
    return out;
  }

  /// Folds the chain's cells (each exactly once — overlap resolved, default
  /// and source cells included) with \p combine. One pass, no arrays.
  template <class C>
  value_type fold(C combine, value_type neutral,
                  const Context& ctx = default_context()) const {
    using R = value_type;
    using RS = detail::storage_t<R>;
    const std::int64_t n = shape_.element_count();
    if (n == 0) {
      return neutral;
    }
    if (!ctx.compiled) {
      const Array<T> root = materialize_root(ctx);
      R acc = neutral;
      for (std::int64_t i = 0; i < n; ++i) {
        acc = combine(acc, post_(root.linear(i), i));
      }
      return acc;
    }
    if (with_.gens_.empty()) {
      R acc = neutral;
      if (has_src_) {
        const detail::storage_t<T>* sp = src_.data().data();
        for (std::int64_t i = 0; i < n; ++i) {
          acc = combine(acc, post_(static_cast<T>(sp[i]), i));
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          acc = combine(acc, post_(def_, i));
        }
      }
      return acc;
    }
    with_.prevalidate(shape_);
    const SegmentPlan plan =
        with_.build_plan(shape_, /*resolve_overlap=*/true, /*with_complement=*/true);
    with_.validate_all(shape_, plan);
    const detail::storage_t<T>* sp = has_src_ ? src_.data().data() : nullptr;
    const auto& segs = plan.segments();

    if (ctx.threads <= 1 || n < ctx.grain || segs.size() <= 1) {
      R acc = neutral;
      run_segments(plan, 0, static_cast<std::int64_t>(segs.size()), sp,
                   [&](std::int64_t linear, T v) {
                     acc = combine(acc, post_(v, linear));
                   });
      return acc;
    }
    // Segment ranges of >= grain cells; one partial per range, combined in
    // plan order.
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    std::int64_t start = 0;
    std::int64_t cells = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      cells += segs[i].count();
      if (cells >= ctx.grain) {
        ranges.emplace_back(start, static_cast<std::int64_t>(i + 1));
        start = static_cast<std::int64_t>(i + 1);
        cells = 0;
      }
    }
    if (start < static_cast<std::int64_t>(segs.size())) {
      ranges.emplace_back(start, static_cast<std::int64_t>(segs.size()));
    }
    std::vector<RS> partials(ranges.size(), static_cast<RS>(neutral));
    snetsac::runtime::parallel_for_each(
        sac_pool(), 0, static_cast<std::int64_t>(ranges.size()), 1,
        [&](std::int64_t c) {
          R part = neutral;
          const auto& [rlo, rhi] = ranges[static_cast<std::size_t>(c)];
          run_segments(plan, rlo, rhi, sp,
                       [&](std::int64_t linear, T v) {
                         part = combine(part, post_(v, linear));
                       });
          partials[static_cast<std::size_t>(c)] = static_cast<RS>(part);
        });
    R acc = neutral;
    for (const RS& p : partials) {
      acc = combine(acc, static_cast<R>(p));
    }
    return acc;
  }

 private:
  friend class With<T>;
  template <class, class>
  friend class Fused;
  template <class X>
  friend Fused<X> lazy(const Array<X>& a);

  Fused(With<T> w, Shape shp, Array<T> src, T def, bool has_src, Post post)
      : with_(std::move(w)),
        shape_(std::move(shp)),
        src_(std::move(src)),
        def_(std::move(def)),
        has_src_(has_src),
        post_(std::move(post)) {}

  Array<T> materialize_root(const Context& ctx) const {
    return has_src_ ? with_.modarray(src_, ctx)
                    : with_.genarray(shape_, def_, ctx);
  }

  /// Drives segments [lo, hi), producing each cell's root value and linear
  /// offset through \p emit (a template parameter, so the post chain and
  /// the consumer inline into the loop).
  template <class Emit>
  void run_segments(const SegmentPlan& plan, std::int64_t lo, std::int64_t hi,
                    const detail::storage_t<T>* sp, const Emit& emit) const {
    using TS = detail::storage_t<T>;
    const int rank = shape_.rank();
    Index iv(static_cast<std::size_t>(rank), 0);
    Index pre(rank > 0 ? static_cast<std::size_t>(rank - 1) : 0, 0);
    std::vector<TS> scratch;
    for (std::int64_t si = lo; si < hi; ++si) {
      const Segment& s = plan.segments()[static_cast<std::size_t>(si)];
      const std::int64_t len = s.count();
      if (s.gen == SegmentPlan::kComplement) {
        if (sp != nullptr) {
          for (std::int64_t t = 0; t < len; ++t) {
            emit(s.base + t, static_cast<T>(sp[s.base + t]));
          }
        } else {
          for (std::int64_t t = 0; t < len; ++t) {
            emit(s.base + t, def_);
          }
        }
        continue;
      }
      const auto& g = with_.gens_[static_cast<std::size_t>(s.gen)];
      if (g.is_const) {
        for (std::int64_t t = 0; t < len; ++t) {
          emit(s.base + t, g.const_val);
        }
      } else if (g.kernel) {
        scratch.resize(static_cast<std::size_t>(len));
        With<T>::load_prefix(plan, s, pre);
        g.kernel(scratch.data(), 0, pre, s.col_lo, s.col_hi);
        for (std::int64_t t = 0; t < len; ++t) {
          emit(s.base + t, static_cast<T>(scratch[static_cast<std::size_t>(t)]));
        }
      } else if (rank == 0) {
        const Index empty;
        emit(s.base, g.body(empty));
      } else {
        With<T>::load_prefix(plan, s, iv);
        std::int64_t at = s.base;
        for (std::int64_t j = s.col_lo; j < s.col_hi; ++j, ++at) {
          iv[static_cast<std::size_t>(rank - 1)] = j;
          emit(at, g.body(iv));
        }
      }
    }
  }

  With<T> with_;
  Shape shape_;
  Array<T> src_;  // engaged iff has_src_
  T def_{};
  bool has_src_ = false;
  Post post_;
};

template <class T>
inline Fused<T> With<T>::lazy_genarray(Shape result_shape, T default_value) const {
  return Fused<T>(*this, std::move(result_shape), Array<T>(), std::move(default_value),
                  /*has_src=*/false, detail::IdentityStage{});
}

template <class T>
inline Fused<T> With<T>::lazy_modarray(Array<T> src) const {
  Shape shp = src.shape();
  return Fused<T>(*this, std::move(shp), std::move(src), T{},
                  /*has_src=*/true, detail::IdentityStage{});
}

/// Lifts a plain array into a fusable chain (a generator-less lazy
/// modarray): `lazy(a).map(f).zip_with(b, g).fold(...)` is one pass over
/// `a`'s storage with everything inlined.
template <class T>
Fused<T> lazy(const Array<T>& a) {
  return With<T>().lazy_modarray(a);
}

}  // namespace sac

#endif
