#ifndef SNETSAC_SACPP_SEGMENT_PLAN_HPP
#define SNETSAC_SACPP_SEGMENT_PLAN_HPP

/// \file segment_plan.hpp
/// Dense row-segment decomposition of with-loop generators.
///
/// The compiled with-loop engine makes the contiguous row segment — not the
/// element — the unit of execution. At genarray/modarray/fold entry, every
/// generator `lb <= iv < ub` (with optional SaC step/width striding) is
/// decomposed against the result shape into a flat plan of segments
/// `[linear_base, linear_base + count)`: maximal runs along the last axis
/// that share one row prefix. Inner loops over a segment are plain countable
/// loops over raw storage (auto-vectorisable, `std::fill`-able); executor
/// chunking distributes *segment ranges*, which fixes parallel grain for
/// ragged and strided generators that an axis-0 row split handles badly.
///
/// Generator overlap ("a later generator overwrites an earlier one") is
/// resolved here, at setup: a segment of generator g is trimmed by the
/// linear coverage of all generators after g, so no cell is written twice
/// and segments can execute in any order — the property that licenses
/// data-parallel execution without per-cell ordering.
///
/// The plan can additionally carry the *complement*: segments covering the
/// cells no generator touches (tagged `kComplement`). Fused with-loop chains
/// use these to apply a post-transform to default/source cells in the same
/// single pass.

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "sacpp/shape.hpp"

namespace sac {

/// Small-buffer index vector for generator bounds. With-loop specs are
/// built afresh at every call site — sudoku's addNumber constructs four
/// generators per invocation — and heap-allocating a std::vector per bound
/// made spec construction cost more than executing the loop. Bounds of rank
/// <= kInline (every array in the paper) live inline; larger ranks spill.
class SpecIndex {
 public:
  static constexpr std::size_t kInline = 4;

  SpecIndex() = default;
  SpecIndex(std::initializer_list<std::int64_t> vals) {
    assign(vals.begin(), vals.end());
  }
  // Implicit on purpose: Index-typed call sites keep working unchanged.
  SpecIndex(const Index& vals) { assign(vals.begin(), vals.end()); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::int64_t* data() { return size_ <= kInline ? inline_ : spill_.data(); }
  const std::int64_t* data() const {
    return size_ <= kInline ? inline_ : spill_.data();
  }
  std::int64_t& operator[](std::size_t i) { return data()[i]; }
  std::int64_t operator[](std::size_t i) const { return data()[i]; }
  std::int64_t* begin() { return data(); }
  std::int64_t* end() { return data() + size_; }
  const std::int64_t* begin() const { return data(); }
  const std::int64_t* end() const { return data() + size_; }

 private:
  template <class It>
  void assign(It first, It last) {
    size_ = static_cast<std::size_t>(std::distance(first, last));
    if (size_ <= kInline) {
      std::copy(first, last, inline_);
    } else {
      spill_.assign(first, last);
    }
  }

  std::int64_t inline_[kInline] = {};
  std::vector<std::int64_t> spill_;
  std::size_t size_ = 0;
};

inline std::string index_to_string(const SpecIndex& iv) {
  return index_to_string(Index(iv.begin(), iv.end()));
}

/// Body-less view of one with-loop generator (bounds + striding only); the
/// typed layer keeps bodies/kernels parallel to this by ordinal.
struct GeneratorSpec {
  SpecIndex lb;
  SpecIndex ub;  // exclusive
  SpecIndex step;   // empty = dense
  SpecIndex width;  // empty = 1
};

/// One contiguous run of result cells, all sharing a row prefix.
struct Segment {
  /// Ordinal of the producing generator, or kComplement for cells covered
  /// by no generator (genarray default / modarray source).
  std::int32_t gen = 0;
  /// Linear offset of the first cell in the row-major result buffer.
  std::int64_t base = 0;
  /// Last-axis index range [col_lo, col_hi) of the run. For complement
  /// segments (which may span rows and never need index vectors) this is
  /// simply [0, count).
  std::int64_t col_lo = 0;
  std::int64_t col_hi = 0;
  /// Offset of this segment's rank-1 row prefix in the plan's prefix pool,
  /// or -1 for complement segments.
  std::int64_t prefix = -1;

  std::int64_t count() const { return col_hi - col_lo; }
};

class SegmentPlan {
 public:
  static constexpr std::int32_t kComplement = -1;

  /// Upper bound on segment length: longer runs are split so the executor
  /// can distribute them (one 1M-cell rank-1 generator must not serialise).
  static constexpr std::int64_t kMaxSegmentLen = 1 << 14;

  /// Decomposes \p gens against \p shape.
  ///  * resolve_overlap: trim earlier generators by later coverage
  ///    (genarray/modarray). Off for fold, where every generator element
  ///    contributes even when generators overlap.
  ///  * with_complement: append kComplement segments covering the cells no
  ///    generator touches.
  /// Generators are assumed already validated against \p shape; empty
  /// generators contribute nothing (and their bounds are never linearised).
  SegmentPlan(const std::vector<GeneratorSpec>& gens, const Shape& shape,
              bool resolve_overlap, bool with_complement);

  const std::vector<Segment>& segments() const { return segments_; }

  /// Rank-1 row-prefix components of a generator segment (outer-axis index
  /// values; the last axis varies over [col_lo, col_hi)).
  const std::int64_t* prefix_at(std::int64_t offset) const {
    return prefix_pool_.data() + offset;
  }
  int prefix_rank() const { return prefix_rank_; }

  /// Exact member-cell count of generator \p g (pre-trim), computed once at
  /// decomposition — replaces the repeated element_estimate() calls of the
  /// interpreted path.
  std::int64_t generator_elements(std::size_t g) const { return gen_elements_[g]; }

  /// Total cells the plan writes (post-trim, including complement if built).
  std::int64_t total_elements() const { return total_elements_; }

 private:
  void decompose_generator(std::int32_t ordinal, const GeneratorSpec& g,
                           const Shape& shape,
                           std::vector<Segment>& out);

  std::vector<Segment> segments_;
  std::vector<std::int64_t> prefix_pool_;
  std::vector<std::int64_t> gen_elements_;
  std::int64_t total_elements_ = 0;
  int prefix_rank_ = 0;
};

}  // namespace sac

#endif
