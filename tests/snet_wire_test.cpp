/// The shape-indexed record wire format (snet/wire.hpp, spec in
/// docs/WIRE_FORMAT.md): randomized round-trip property testing across
/// payload kinds (scalars, SaC arrays of rank 0–5) and hidden metadata
/// (det stamps, session stamps) with a bit-identity bar — decode followed
/// by re-encode must reproduce the original stream byte for byte — plus
/// the rejection side: truncated streams, corrupted headers and bodies,
/// and det stamps arriving without a scope resolver must all fail loudly
/// instead of yielding a subtly wrong record.

#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sacpp/array.hpp"
#include "snet/detscope.hpp"
#include "snet/network.hpp"
#include "snet/session.hpp"
#include "snet/wire.hpp"

using namespace snet;

namespace {

/// A live runtime context for metadata round-trips: det scopes the stamps
/// can point at and session states with known ids. The network exists only
/// so SessionState's constructor has the mutexes it aliases.
struct MetaWorld {
  MetaWorld()
      : net(box("id", "(x) -> (x)",
                [](const BoxInput& in, BoxOutput& out) {
                  out.out(1, in.field("x"));
                })),
        s7(net, 7, SessionOptions{}),
        s9(net, 9, SessionOptions{}) {
    scopes.push_back(std::make_unique<DetScope>("par_det/outer"));
    scopes.push_back(std::make_unique<DetScope>("par_det/inner"));
    scopes.push_back(std::make_unique<DetScope>("star_det"));
  }

  wire::Resolvers resolvers() {
    wire::Resolvers r;
    r.scope = [this](std::uint32_t, const std::string& name) -> DetScope* {
      for (const auto& s : scopes) {
        if (s->name() == name) {
          return s.get();
        }
      }
      return nullptr;
    };
    r.session = [this](std::uint32_t id) -> SessionState* {
      if (id == 7) {
        return &s7;
      }
      if (id == 9) {
        return &s9;
      }
      return nullptr;
    };
    return r;
  }

  Network net;
  SessionState s7;
  SessionState s9;
  std::vector<std::unique_ptr<DetScope>> scopes;
};

template <class T>
sac::Array<T> random_array(std::mt19937& rng, int rank) {
  std::vector<std::int64_t> dims;
  std::uniform_int_distribution<std::int64_t> extent(0, 3);
  for (int i = 0; i < rank; ++i) {
    dims.push_back(extent(rng));
  }
  const sac::Shape shape(std::move(dims));
  std::vector<T> data;
  std::uniform_int_distribution<int> val(-100, 100);
  for (std::int64_t i = 0; i < shape.element_count(); ++i) {
    data.push_back(static_cast<T>(val(rng)));
  }
  return sac::Array<T>(shape, std::move(data));
}

sac::Array<bool> random_bool_array(std::mt19937& rng, int rank) {
  std::vector<std::int64_t> dims;
  std::uniform_int_distribution<std::int64_t> extent(0, 3);
  for (int i = 0; i < rank; ++i) {
    dims.push_back(extent(rng));
  }
  const sac::Shape shape(std::move(dims));
  std::vector<bool> data;
  std::uniform_int_distribution<int> bit(0, 1);
  for (std::int64_t i = 0; i < shape.element_count(); ++i) {
    data.push_back(bit(rng) != 0);
  }
  return sac::Array<bool>(shape, std::move(data));
}

/// One random record drawing from every payload kind the built-in codecs
/// cover, with random label subsets (so the stream sees many shapes) and
/// random det/session metadata from \p world.
Record random_record(std::mt19937& rng, MetaWorld& world) {
  Record r;
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> rank(0, 5);
  std::uniform_int_distribution<int> ival(-1000000, 1000000);
  if (coin(rng) != 0) {
    r.set_field("i32", make_value<int>(ival(rng)));
  }
  if (coin(rng) != 0) {
    r.set_field("i64", make_value<std::int64_t>(
                           static_cast<std::int64_t>(ival(rng)) << 20));
  }
  if (coin(rng) != 0) {
    r.set_field("f64", make_value<double>(ival(rng) / 7.0));
  }
  if (coin(rng) != 0) {
    r.set_field("str", make_value<std::string>(
                           std::string("s\0with nul + ", 13) +
                           std::to_string(ival(rng))));
  }
  if (coin(rng) != 0) {
    r.set_field("ai", make_value<sac::Array<int>>(random_array<int>(rng, rank(rng))));
  }
  if (coin(rng) != 0) {
    r.set_field("ad", make_value<sac::Array<double>>(random_array<double>(rng, rank(rng))));
  }
  if (coin(rng) != 0) {
    r.set_field("ab", make_value<sac::Array<bool>>(random_bool_array(rng, rank(rng))));
  }
  if (coin(rng) != 0) {
    r.set_tag("k", ival(rng));
  }
  if (coin(rng) != 0) {
    r.set_tag("done", coin(rng));
  }
  // Det stamps: a random stack depth over the live scopes, bottom to top.
  const int depth = std::uniform_int_distribution<int>(0, 3)(rng);
  for (int d = 0; d < depth; ++d) {
    const auto idx = static_cast<std::size_t>(
        std::uniform_int_distribution<int>(0, 2)(rng));
    r.det_stack().push_back(DetStamp{
        world.scopes[idx].get(),
        static_cast<std::uint64_t>(std::uniform_int_distribution<int>(0, 1 << 20)(rng))});
  }
  switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
    case 1: r.set_session(&world.s7); break;
    case 2: r.set_session(&world.s9); break;
    default: break;  // no session
  }
  return r;
}

std::string encode_stream(const std::vector<Record>& records) {
  std::ostringstream os(std::ios::binary);
  wire::WireWriter w(os);
  for (const auto& r : records) {
    w.record(r);
  }
  w.finish();
  return std::move(os).str();
}

}  // namespace

TEST(Wire, RandomizedRoundTripIsBitIdentical) {
  MetaWorld world;
  for (unsigned seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(seed);
    std::vector<Record> originals;
    for (int i = 0; i < 50; ++i) {
      originals.push_back(random_record(rng, world));
    }
    const std::string bytes = encode_stream(originals);

    std::istringstream in(bytes, std::ios::binary);
    const std::vector<Record> decoded = wire::read_all(in, world.resolvers());
    ASSERT_EQ(decoded.size(), originals.size()) << "seed " << seed;

    // Structural equality plus pointer-exact metadata...
    for (std::size_t i = 0; i < originals.size(); ++i) {
      const Record& a = originals[i];
      const Record& b = decoded[i];
      EXPECT_EQ(a.shape(), b.shape()) << "seed " << seed << " record " << i;
      EXPECT_EQ(a.session_state(), b.session_state())
          << "seed " << seed << " record " << i;
      ASSERT_EQ(a.det_stack().size(), b.det_stack().size());
      for (std::size_t d = 0; d < a.det_stack().size(); ++d) {
        EXPECT_EQ(a.det_stack()[d].scope, b.det_stack()[d].scope)
            << "det stamp lost pointer identity";
        EXPECT_EQ(a.det_stack()[d].seq, b.det_stack()[d].seq);
      }
      EXPECT_EQ(wire::encode_standalone(a), wire::encode_standalone(b))
          << "seed " << seed << " record " << i
          << ": canonical encodings diverge";
    }

    // ... and the bit-identity bar: re-encoding the decoded records must
    // reproduce the original stream exactly.
    EXPECT_EQ(encode_stream(decoded), bytes)
        << "seed " << seed << ": re-encode is not byte-identical";
  }
}

TEST(Wire, ArrayPayloadsSurviveExactly) {
  std::mt19937 rng(42);
  for (int rank = 0; rank <= 5; ++rank) {
    Record r;
    const auto arr = random_array<double>(rng, rank);
    r.set_field("a", make_value<sac::Array<double>>(arr));
    std::istringstream in(encode_stream({r}), std::ios::binary);
    const auto back = wire::read_all(in);
    ASSERT_EQ(back.size(), 1U);
    const auto& out = back[0].get<sac::Array<double>>("a");
    ASSERT_EQ(out.shape(), arr.shape()) << "rank " << rank;
    for (std::int64_t i = 0; i < arr.element_count(); ++i) {
      EXPECT_EQ(out.linear(i), arr.linear(i));
    }
  }
}

TEST(Wire, EmptyRecordAndEmptyStreamRoundTrip) {
  std::istringstream empty(encode_stream({}), std::ios::binary);
  EXPECT_TRUE(wire::read_all(empty).empty());

  std::istringstream one(encode_stream({Record{}}), std::ios::binary);
  const auto back = wire::read_all(one);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_TRUE(back[0].empty());
}

TEST(Wire, EncodeStandaloneIgnoresConstructionOrder) {
  // Same content, different insertion orders: the canonical label ordering
  // (fields before tags, each name-sorted) must make the encodings equal.
  Record a;
  a.set_field("x", make_value<int>(1));
  a.set_field("b", make_value<int>(2));
  a.set_tag("t", 3);
  Record b;
  b.set_tag("t", 3);
  b.set_field("b", make_value<int>(2));
  b.set_field("x", make_value<int>(1));
  EXPECT_EQ(wire::encode_standalone(a), wire::encode_standalone(b));

  Record c = b;
  c.set_tag("t", 4);
  EXPECT_NE(wire::encode_standalone(a), wire::encode_standalone(c));
}

TEST(Wire, GroupFramesStreamAndRandomAccess) {
  MetaWorld world;
  std::mt19937 rng(7);
  std::vector<Record> g1;
  std::vector<Record> g2;
  for (int i = 0; i < 5; ++i) {
    g1.push_back(random_record(rng, world));
    g2.push_back(random_record(rng, world));
  }
  const Record loose = random_record(rng, world);

  std::ostringstream os(std::ios::binary);
  wire::WireWriter w(os);
  const std::uint64_t off1 = w.group(11, g1);
  w.record(loose);
  const std::uint64_t off2 = w.group(22, g2);
  w.finish();
  EXPECT_EQ(w.records_written(), 11U);
  const std::string bytes = std::move(os).str();

  // Streaming: next() enters group frames transparently, in stream order.
  {
    std::istringstream in(bytes, std::ios::binary);
    wire::WireReader reader(in, world.resolvers());
    std::vector<Record> all;
    while (auto r = reader.next()) {
      all.push_back(std::move(*r));
    }
    EXPECT_TRUE(reader.at_clean_end());
    ASSERT_EQ(all.size(), 11U);
    EXPECT_EQ(wire::encode_standalone(all[5]), wire::encode_standalone(loose));
    ASSERT_EQ(reader.groups().size(), 2U);
    EXPECT_EQ(reader.groups()[0].key, 11U);
    EXPECT_EQ(reader.groups()[0].offset, off1);
    EXPECT_EQ(reader.groups()[0].count, 5U);
    EXPECT_EQ(reader.groups()[1].key, 22U);
    EXPECT_EQ(reader.groups()[1].offset, off2);
  }

  // Random access: scan() indexes without decoding, then read_group()
  // decodes one frame in isolation — and in any order.
  {
    std::istringstream in(bytes, std::ios::binary);
    wire::WireReader reader(in, world.resolvers());
    reader.scan();
    EXPECT_TRUE(reader.at_clean_end());
    ASSERT_EQ(reader.groups().size(), 2U);
    const auto back2 = reader.read_group(reader.groups()[1]);
    const auto back1 = reader.read_group(reader.groups()[0]);
    ASSERT_EQ(back1.size(), 5U);
    ASSERT_EQ(back2.size(), 5U);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(wire::encode_standalone(back1[i]), wire::encode_standalone(g1[i]));
      EXPECT_EQ(wire::encode_standalone(back2[i]), wire::encode_standalone(g2[i]));
    }
  }
}

TEST(Wire, TruncationIsNeverSilent) {
  MetaWorld world;
  std::mt19937 rng(3);
  std::vector<Record> records;
  for (int i = 0; i < 8; ++i) {
    records.push_back(random_record(rng, world));
  }
  const std::string bytes = encode_stream(records);

  // read_all is the fixture loader: a stream without its end marker must
  // throw, whatever prefix survived.
  for (std::size_t cut : {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2,
                          bytes.size() / 3, std::size_t{13}, std::size_t{1}}) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(wire::read_all(in, world.resolvers()), wire::WireError)
        << "cut at " << cut << " of " << bytes.size();
  }

  // The incremental reader distinguishes mid-chunk truncation (WireError)
  // from a clean chunk boundary without a marker (nullopt, !at_clean_end —
  // the "still being written" case). Neither may report a clean end.
  for (std::size_t cut = 12; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    wire::WireReader reader(in, world.resolvers());
    bool threw = false;
    try {
      while (reader.next()) {
      }
    } catch (const wire::WireError&) {
      threw = true;
    }
    EXPECT_TRUE(threw || !reader.at_clean_end())
        << "truncation at " << cut << " read back as a clean end";
  }
}

TEST(Wire, CorruptionIsRejected) {
  Record r;
  r.set_field("x", make_value<int>(5));
  r.set_tag("k", 1);
  const std::string good = encode_stream({r});

  const auto expect_reject = [](std::string bytes, const char* what) {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(wire::read_all(in), wire::WireError) << what;
  };

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_reject(bad_magic, "corrupt magic accepted");

  std::string bad_version = good;
  bad_version[8] = '\x7f';
  expect_reject(bad_version, "unknown major version accepted");

  std::string bad_flags = good;
  bad_flags[10] = '\x01';
  expect_reject(bad_flags, "unknown header flags accepted");

  expect_reject(std::string("SNET"), "short header accepted");
  expect_reject(std::string(), "empty stream accepted by read_all");

  // A chunk whose declared length overruns the stream.
  std::string overrun = good;
  overrun[13] = '\xff';  // chunk length of the first definition chunk
  overrun[14] = '\xff';
  expect_reject(overrun, "overrunning chunk length accepted");
}

TEST(Wire, DetStampsRequireAScopeResolver) {
  DetScope scope("lonely");
  Record r;
  r.set_field("x", make_value<int>(1));
  r.det_stack().push_back(DetStamp{&scope, 4});
  const std::string bytes = encode_stream({r});
  std::istringstream in(bytes, std::ios::binary);
  // Cross-process readers have no live scopes: decoding a det-stamped
  // record without a resolver must fail, not fabricate a dangling stamp.
  EXPECT_THROW(wire::read_all(in), wire::WireError);
}

TEST(Wire, UnknownChunkTagsAreSkipped) {
  Record r;
  r.set_field("x", make_value<int>(99));
  const std::string good = encode_stream({r});

  // Splice an unknown (future) chunk right after the 12-byte header:
  // tag 0x60, 4-byte payload. Old readers must skip it unharmed.
  std::string spliced = good.substr(0, 12);
  spliced += '\x60';
  spliced += std::string("\x04\x00\x00\x00", 4);
  spliced += "beef";
  spliced += good.substr(12);

  std::istringstream in(spliced, std::ios::binary);
  const auto back = wire::read_all(in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].get<int>("x"), 99);
}

TEST(Wire, UnregisteredPayloadTypeFailsOnWrite) {
  struct Opaque {
    int v;
  };
  Record r;
  r.set_field("mystery", make_value<Opaque>(Opaque{1}));
  std::ostringstream os(std::ios::binary);
  wire::WireWriter w(os);
  EXPECT_THROW(w.record(r), wire::WireError);
}
