/// Fused with-loop chains: map/zip_with/fold over a lazy producer execute
/// as one segment pass with zero intermediate arrays, and must agree
/// bit-for-bit with the unfused interpreted pipeline (`Context::compiled =
/// false`), with COW value semantics intact when a chain's source aliases
/// its destination. Labelled `concurrency`: the parallel sweeps here are
/// what the sanitizer matrix runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "sacpp/io.hpp"
#include "sacpp/ops.hpp"
#include "sacpp/with_loop.hpp"

using sac::Array;
using sac::Context;
using sac::Index;
using sac::Shape;
using sac::ShapeError;
using sac::With;

namespace {
const Context kCompiled1{1, 1024, true};
const Context kReference1{1, 1024, false};

Array<int> sample_array(std::int64_t rows, std::int64_t cols) {
  std::vector<int> data;
  for (std::int64_t i = 0; i < rows * cols; ++i) {
    data.push_back(static_cast<int>(i * 13 % 97));
  }
  return Array<int>(Shape{rows, cols}, std::move(data));
}
}  // namespace

// ---- Chain semantics ----------------------------------------------------

TEST(Fusion, LazyGenarrayMapFoldIsOnePassAndCorrect) {
  // genarray → map → fold with no intermediate Array: sum of 2*(i+j)+1
  // over a 64x32 grid.
  const std::int64_t R = 64;
  const std::int64_t C = 32;
  const auto chain = With<int>()
                         .gen_kernel({0, 0}, {R, C},
                                     [](std::int64_t i, std::int64_t j) {
                                       return static_cast<int>(i + j);
                                     })
                         .lazy_genarray(Shape{R, C}, 0)
                         .map([](int v) { return 2 * v + 1; });
  const auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < R; ++i) {
    for (std::int64_t j = 0; j < C; ++j) {
      expect += 2 * (i + j) + 1;
    }
  }
  EXPECT_EQ(chain.map([](int v) { return static_cast<std::int64_t>(v); })
                .fold(plus, 0, kCompiled1),
            expect);
  EXPECT_EQ(chain.map([](int v) { return static_cast<std::int64_t>(v); })
                .fold(plus, 0, kReference1),
            expect);
}

TEST(Fusion, MapProducesSameArrayAsNaiveLoop) {
  const auto a = sample_array(20, 17);
  const auto out = sac::map(a, [](int v) { return v * v - 3; });
  ASSERT_EQ(out.shape(), a.shape());
  for (std::int64_t i = 0; i < a.element_count(); ++i) {
    EXPECT_EQ(out.linear(i), a.linear(i) * a.linear(i) - 3);
  }
}

TEST(Fusion, MapChangesElementType) {
  const auto a = sample_array(5, 5);
  const Array<double> out = sac::map(a, [](int v) { return v * 0.5; });
  EXPECT_EQ(out.linear(7), a.linear(7) * 0.5);
}

TEST(Fusion, ZipWithMatchesNaiveLoop) {
  const auto a = sample_array(11, 23);
  const auto b = sac::map(a, [](int v) { return 300 - v; });
  const auto out = sac::zip_with(a, b, [](int x, int y) { return x * 2 + y; });
  for (std::int64_t i = 0; i < a.element_count(); ++i) {
    EXPECT_EQ(out.linear(i), a.linear(i) * 2 + b.linear(i));
  }
}

TEST(Fusion, ZipWithShapeMismatchRejected) {
  const Array<int> a(Shape{3, 4}, 1);
  const Array<int> b(Shape{4, 3}, 1);
  EXPECT_THROW(sac::zip_with(a, b, [](int x, int y) { return x + y; }),
               ShapeError);
  EXPECT_THROW(sac::lazy(a).zip_with(b, [](int x, int y) { return x + y; }),
               ShapeError);
}

TEST(Fusion, ZipWithMixedTypes) {
  const Array<int> a(Shape{6}, 3);
  const Array<bool> mask = sac::map(a, [](int v) { return v > 0; });
  const auto out =
      sac::lazy(a).zip_with(mask, [](int v, bool m) { return m ? v : -v; }).to_array();
  EXPECT_EQ(sac::to_string(out), "[3,3,3,3,3,3]");
}

TEST(Fusion, LazyModarrayChainSeesSourceAndGenerators) {
  // modarray root: generator cells come from the generator, the rest from
  // the source — then one fused map over both kinds of segment.
  const auto src = sample_array(8, 8);
  const auto out = With<int>()
                       .gen_val({2, 2}, {6, 6}, 100)
                       .lazy_modarray(src)
                       .map([](int v) { return v + 1; })
                       .to_array(kCompiled1);
  EXPECT_EQ((out[{3, 3}]), 101);
  EXPECT_EQ((out[{0, 0}]), (src[{0, 0}]) + 1);
}

TEST(Fusion, AddNumberStyleMultiGeneratorChain) {
  // The sudoku addNumber shape: four overlapping constant generators over
  // one modarray, fused with a counting fold — one plan, one pass.
  const std::int64_t N = 9;
  const Array<bool> opts(Shape{N, N, N}, true);
  const auto chain = With<bool>()
                         .gen_incl_val({4, 4, 0}, {4, 4, N - 1}, false)
                         .gen_incl_val({4, 0, 3}, {4, N - 1, 3}, false)
                         .gen_incl_val({0, 4, 3}, {N - 1, 4, 3}, false)
                         .gen_incl_val({3, 3, 3}, {5, 5, 3}, false)
                         .lazy_modarray(opts)
                         .map([](bool b) { return b ? 1 : 0; });
  const auto plus = [](int a, int b) { return a + b; };
  const int compiled = chain.fold(plus, 0, kCompiled1);
  const int reference = chain.fold(plus, 0, kReference1);
  EXPECT_EQ(compiled, reference);
  // 9 (cell) + 8 (row rest) + 8 (col rest) + 8 (box rest) - overlaps, all
  // false; the remaining true count:
  const auto arr = chain.to_array(kCompiled1);
  int trues = 0;
  for (std::int64_t i = 0; i < arr.element_count(); ++i) {
    trues += arr.linear(i);
  }
  EXPECT_EQ(compiled, trues);
}

// ---- Compiled vs interpreted over random chains -------------------------

TEST(Fusion, RandomChainsCompiledMatchesInterpreted) {
  std::mt19937 rng(20260807);
  const Context par4{4, 1, true};
  for (int trial = 0; trial < 100; ++trial) {
    std::uniform_int_distribution<std::int64_t> ext_d(1, 12);
    const std::int64_t rows = ext_d(rng);
    const std::int64_t cols = ext_d(rng);
    std::uniform_int_distribution<std::int64_t> lo_d(0, rows);
    const std::int64_t r0 = lo_d(rng);
    std::uniform_int_distribution<std::int64_t> r1_d(r0, rows);
    const std::int64_t r1 = r1_d(rng);
    const auto other = sample_array(rows, cols);
    const auto chain = With<int>()
                           .gen({r0, 0}, {r1, cols},
                                [](const Index& iv) {
                                  return static_cast<int>(iv[0] * 5 + iv[1]);
                                })
                           .lazy_genarray(Shape{rows, cols}, -3)
                           .map([](int v) { return v * 3 + 1; })
                           .zip_with(other, [](int v, int o) { return v - o; });
    const auto ref = chain.to_array(kReference1);
    ASSERT_EQ(chain.to_array(kCompiled1), ref) << "trial " << trial;
    ASSERT_EQ(chain.to_array(par4), ref) << "parallel trial " << trial;
    const auto plus = [](int a, int b) { return a + b; };
    const int fref = chain.fold(plus, 0, kReference1);
    ASSERT_EQ(chain.fold(plus, 0, kCompiled1), fref) << "fold trial " << trial;
    ASSERT_EQ(chain.fold(plus, 0, par4), fref) << "parallel fold trial " << trial;
  }
}

TEST(Fusion, StridedGeneratorChain) {
  const auto chain = With<int>()
                         .gen_val({0, 0}, {10, 10}, 5)
                         .step({2, 3})
                         .width({1, 2})
                         .lazy_genarray(Shape{10, 10}, 1)
                         .map([](int v) { return v * 10; });
  EXPECT_EQ(chain.to_array(kCompiled1), chain.to_array(kReference1));
}

// ---- COW / value-semantics invariants -----------------------------------

TEST(Fusion, SourceAliasingDestinationKeepsValueSemantics) {
  // a participates in the chain AND receives its result: the alias taken
  // before the assignment must keep the old values (SaC arrays are values).
  Array<int> a = sample_array(9, 9);
  const Array<int> alias = a;
  a = sac::lazy(a).map([](int v) { return v + 1000; }).to_array(kCompiled1);
  // The chain's temporaries released their source copies; the alias is now
  // the sole owner of the pre-chain buffer, values untouched.
  EXPECT_TRUE(alias.unique());
  for (std::int64_t i = 0; i < alias.element_count(); ++i) {
    EXPECT_EQ(a.linear(i), alias.linear(i) + 1000);
  }
}

TEST(Fusion, ChainResultOwnsItsBuffer) {
  const auto src = sample_array(6, 6);
  auto out = sac::lazy(src).map([](int v) { return v; }).to_array(kCompiled1);
  EXPECT_TRUE(out.unique()) << "a chain materialises into a fresh buffer";
  // Mutating the result must not disturb the source (no hidden sharing).
  out.set({0, 0}, 12345);
  EXPECT_NE(out.linear(0), src.linear(0));
}

TEST(Fusion, ZipOperandSnapshotIsStable) {
  // The zip operand is captured by value; mutating the original after the
  // chain is built must not change what the chain reads (COW detaches).
  Array<int> b(Shape{5}, 2);
  const auto chain = sac::lazy(Array<int>(Shape{5}, 1))
                         .zip_with(b, [](int x, int y) { return x + y; });
  b.set({0}, 99);
  const auto out = chain.to_array(kCompiled1);
  EXPECT_EQ(sac::to_string(out), "[3,3,3,3,3]");
}

// ---- Parallel sweeps (what the sanitizer jobs exercise) -----------------

class FusionParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(FusionParallel, ChainResultIndependentOfThreads) {
  const Context ctx{GetParam(), 1, true};  // grain 1 forces splitting
  const std::int64_t R = 48;
  const std::int64_t C = 31;
  const auto other = sample_array(R, C);
  const auto chain = With<int>()
                         .gen_kernel({0, 0}, {R, C},
                                     [](std::int64_t i, std::int64_t j) {
                                       return static_cast<int>(i * 131 + j * 17);
                                     })
                         .lazy_genarray(Shape{R, C}, 0)
                         .zip_with(other, [](int v, int o) { return v ^ o; });
  const auto ref = chain.to_array(kCompiled1);
  EXPECT_EQ(chain.to_array(ctx), ref);
  const auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
  const auto widen = [](int v) { return static_cast<std::int64_t>(v); };
  EXPECT_EQ(chain.map(widen).fold(plus, 0, ctx),
            chain.map(widen).fold(plus, 0, kCompiled1));
}

TEST_P(FusionParallel, BoolChainUnderParallelism) {
  const Context ctx{GetParam(), 1, true};
  const Array<bool> opts(Shape{9, 9, 9}, true);
  const auto chain = With<bool>()
                         .gen_incl_val({4, 4, 0}, {4, 4, 8}, false)
                         .gen_incl_val({4, 0, 3}, {4, 8, 3}, false)
                         .lazy_modarray(opts)
                         .map([](bool b) { return b ? 1 : 0; });
  EXPECT_EQ(chain.fold([](int a, int b) { return a + b; }, 0, ctx),
            chain.fold([](int a, int b) { return a + b; }, 0, kCompiled1));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, FusionParallel,
                         ::testing::Values(1U, 2U, 4U, 8U));
