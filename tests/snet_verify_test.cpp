/// Whole-topology shape-flow verification (verify.hpp): every diagnostic
/// class on a purpose-built fixture, zero diagnostics on the shipped
/// example topologies, the Options::verify wiring into Network
/// construction, and the DOT overlay.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "snet/check.hpp"
#include "snet/dot.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/router.hpp"
#include "snet/verify.hpp"
#include "sudoku/nets.hpp"

using namespace snet;

namespace {

const BoxFn kNop = [](const BoxInput&, BoxOutput&) {};

Net mkbox(const std::string& name, const std::string& sig) {
  return box(name, sig, kNop);
}

/// The negative fixture's topology (examples/networks/broken_dead_branch):
/// every record leaving `classify` is {x,a,b}; `wide` scores 3, `narrow`
/// scores 2 — narrow is never the best-match winner.
Net dead_branch_net() {
  return mkbox("classify", "(x) -> (x, a, b)") >>
         parallel(mkbox("wide", "(x, a, b) -> (x)"),
                  mkbox("narrow", "(x, a) -> (x)"));
}

const LintDiagnostic* find(const VerifyReport& report, LintCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) {
      return &d;
    }
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------- dead branch

TEST(Verify, DeadBranchReported) {
  const VerifyReport report = verify(dead_branch_net());
  ASSERT_EQ(report.count(LintCode::DeadBranch), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::DeadBranch);
  EXPECT_EQ(d->severity, LintSeverity::Warning);
  EXPECT_EQ(d->path, "net/parR");
  EXPECT_EQ(d->type, "narrow");
  EXPECT_NE(d->message.find("never the best-match winner"), std::string::npos);
  // Lower-bound semantics: a dead branch is a warning, not an error — a
  // wider-than-declared client record could still win it.
  EXPECT_FALSE(report.has_errors()) << report.to_string();
  EXPECT_NE(d->to_string().find("warning [dead-branch] net/parR:"),
            std::string::npos);
}

TEST(Verify, DeadBranchPathsFollowFlattening) {
  // Nested non-det parallels flatten; the dead branch is addressed by its
  // position in the binary tree: right child of the left parallel.
  const Net n = mkbox("classify", "(x) -> (x, a, b)") >>
                parallel(parallel(mkbox("wide", "(x, a, b) -> (x)"),
                                  mkbox("narrow", "(x, a) -> (x)")),
                         mkbox("other", "(y) -> (y)"));
  const VerifyReport report = verify(n);
  // `other` ({y}: no reachable record matches) and `narrow` are both dead.
  ASSERT_EQ(report.count(LintCode::DeadBranch), 2U) << report.to_string();
  std::vector<std::string> paths;
  for (const auto& d : report.diagnostics) {
    if (d.code == LintCode::DeadBranch) {
      paths.push_back(d.path);
    }
  }
  EXPECT_NE(std::find(paths.begin(), paths.end(), "net/parL/parR"), paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "net/parR"), paths.end());
}

// ---------------------------------------------------------- unroutable record

TEST(Verify, UnroutableAtParallelIsError) {
  // gen emits {y}; neither branch accepts it. `infer` throws on this
  // topology; the verifier reports the same defect as a diagnostic, plus
  // the branches it strands.
  const Net n = mkbox("gen", "(x) -> (y)") >>
                parallel(mkbox("a", "(x) -> (u)"), mkbox("b", "(z) -> (v)"));
  EXPECT_THROW(infer(n), TypeCheckError);
  const VerifyReport report = verify(n);
  EXPECT_TRUE(report.has_errors());
  ASSERT_EQ(report.count(LintCode::UnroutableRecord), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::UnroutableRecord);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->path, "net/par");
  EXPECT_EQ(d->type, "{y}");
  EXPECT_NE(d->message.find("match no branch"), std::string::npos);
  // Both branches are stranded by the dropped variant.
  EXPECT_EQ(report.count(LintCode::DeadBranch), 2U) << report.to_string();
}

TEST(Verify, UnroutableAtBoxNamesTheBox) {
  const Net n = mkbox("gen", "(x) -> (y)") >> mkbox("consume", "(q) -> (z)");
  const VerifyReport report = verify(n);
  ASSERT_EQ(report.count(LintCode::UnroutableRecord), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::UnroutableRecord);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->path, "net/box:consume");
  EXPECT_EQ(d->type, "{y}");
}

TEST(Verify, UnroutableAtSplitWithoutTag) {
  // {x} records reach the parallel replication without the <k> tag.
  const Net n = split(mkbox("w", "(x) -> (y)"), "k");
  const VerifyReport report =
      verify(n, VerifyOptions{MultiType({RecordType::of({"x"})}), 0, false, 0, 0});
  ASSERT_EQ(report.count(LintCode::UnroutableRecord), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::UnroutableRecord);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->path, "net/split");
  EXPECT_NE(d->message.find("lack the replication tag"), std::string::npos);
}

TEST(Verify, CleanSerialChainHasNoDiagnostics) {
  const Net n = mkbox("a", "(x) -> (y)") >> mkbox("b", "(y) -> (z)");
  EXPECT_TRUE(verify(n).empty());
}

// ---------------------------------------------------------- never-firing sync

TEST(Verify, NeverFiringSyncSlotReported) {
  // Only {a} records are reachable: the {b} slot can never be filled, so
  // the cell stores every {a} record forever and never fires.
  const Net n = mkbox("src", "(a) -> (a)") >> sync({"{a}", "{b}"});
  const VerifyReport report = verify(n);
  ASSERT_EQ(report.count(LintCode::NeverFiringSync), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::NeverFiringSync);
  EXPECT_EQ(d->severity, LintSeverity::Warning);
  EXPECT_EQ(d->path, "net/sync");
  EXPECT_EQ(d->type, "{b}");
  EXPECT_NE(d->message.find("can never fire"), std::string::npos);
  EXPECT_FALSE(report.has_errors()) << report.to_string();
}

TEST(Verify, FillableSyncIsClean) {
  // Seeded with both slot types the same cell is fine.
  const VerifyReport report = verify(
      sync({"{a}", "{b}"}),
      VerifyOptions{
          MultiType({RecordType::of({"a"}), RecordType::of({"b"})}), 0, false,
          0, 0});
  EXPECT_EQ(report.count(LintCode::NeverFiringSync), 0U) << report.to_string();
}

// ------------------------------------------------------------- star progress

TEST(Verify, StarNoProgressIsError) {
  // The replica maps {x} to {x}: the exit pattern {<done>} is unreachable
  // and records circulate forever. `infer` rejects this topology too;
  // the verifier pinpoints it.
  const Net n = star(mkbox("loop", "(x) -> (x)"), "{<done>}");
  EXPECT_THROW(infer(n), TypeCheckError);
  const VerifyReport report = verify(n);
  EXPECT_TRUE(report.has_errors());
  ASSERT_EQ(report.count(LintCode::StarNoProgress), 1U) << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::StarNoProgress);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->path, "net/star");
  EXPECT_EQ(d->type, "{<done>}");
}

TEST(Verify, StarWithReachableExitIsClean) {
  const Net n = star(
      mkbox("step", "(board, opts) -> (board, opts) | (board, <done>)"),
      "{<done>}");
  EXPECT_TRUE(verify(n).empty());
}

// --------------------------------------------------------------- config lint

TEST(Verify, SyncPrefillAboveDetCapacity) {
  const Net n = sync({"{a}", "{b}", "{c}"});
  VerifyOptions opts;
  opts.seed = MultiType({RecordType::of({"a"}), RecordType::of({"b"}),
                         RecordType::of({"c"})});
  opts.det_capacity = 1;  // the cell must buffer 2 records before firing
  opts.det_fail_fast = true;
  const VerifyReport fail_fast = verify(n, opts);
  ASSERT_EQ(fail_fast.count(LintCode::ConfigDetCapacity), 1U)
      << fail_fast.to_string();
  const LintDiagnostic* d = find(fail_fast, LintCode::ConfigDetCapacity);
  EXPECT_EQ(d->severity, LintSeverity::Error) << "FailFast wedge is an error";
  EXPECT_EQ(d->path, "net/sync");

  opts.det_fail_fast = false;
  const VerifyReport spilled = verify(n, opts);
  const LintDiagnostic* spill = find(spilled, LintCode::ConfigDetCapacity);
  ASSERT_NE(spill, nullptr);
  EXPECT_EQ(spill->severity, LintSeverity::Warning) << "Spill throttles only";

  opts.det_capacity = 2;  // exactly the prefill: fine
  EXPECT_EQ(verify(n, opts).count(LintCode::ConfigDetCapacity), 0U);
}

TEST(Verify, DetCapacityWithNothingToChargeIt) {
  VerifyOptions opts;
  opts.det_capacity = 4;
  const VerifyReport report = verify(mkbox("a", "(x) -> (y)"), opts);
  ASSERT_EQ(report.count(LintCode::ConfigDetUnused), 1U) << report.to_string();
  EXPECT_EQ(find(report, LintCode::ConfigDetUnused)->path, "net");
  // A det combinator in the topology legitimises the cap.
  const Net det = star_det(
      mkbox("step", "(x) -> (x) | (x, <done>)"), "{<done>}");
  EXPECT_EQ(verify(det, opts).count(LintCode::ConfigDetUnused), 0U);
}

TEST(Verify, OutputCreditBelowGuaranteedFanout) {
  // Three chained 2-output filters: one injected record is guaranteed to
  // produce 8 outputs.
  const Net n = filter("{x} -> {x}; {x}") >> filter("{x} -> {x}; {x}") >>
                filter("{x} -> {x}; {x}");
  VerifyOptions opts;
  opts.seed = MultiType({RecordType::of({"x"})});
  opts.output_capacity = 4;
  const VerifyReport report = verify(n, opts);
  ASSERT_EQ(report.count(LintCode::ConfigOutputCredit), 1U)
      << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::ConfigOutputCredit);
  EXPECT_EQ(d->severity, LintSeverity::Warning);
  EXPECT_NE(d->message.find("below the 8 outputs"), std::string::npos);

  opts.output_capacity = 8;
  EXPECT_EQ(verify(n, opts).count(LintCode::ConfigOutputCredit), 0U);

  // Boxes are opaque (guaranteed fan-out 0): no claim possible.
  VerifyOptions box_opts;
  box_opts.output_capacity = 1;
  EXPECT_EQ(verify(mkbox("a", "(x) -> (y)") >> n, box_opts)
                .count(LintCode::ConfigOutputCredit),
            0U);
}

TEST(Verify, InboxCapacityBelowFilterBurst) {
  const Net n = filter("{x} -> {x}; {x}; {x}");
  VerifyOptions opts;
  opts.seed = MultiType({RecordType::of({"x"})});
  opts.inbox_capacity = 2;
  const VerifyReport report = verify(n, opts);
  ASSERT_EQ(report.count(LintCode::ConfigInboxCapacity), 1U)
      << report.to_string();
  const LintDiagnostic* d = find(report, LintCode::ConfigInboxCapacity);
  EXPECT_EQ(d->severity, LintSeverity::Warning);
  EXPECT_EQ(d->path, "net/filter");

  opts.inbox_capacity = 3;
  EXPECT_EQ(verify(n, opts).count(LintCode::ConfigInboxCapacity), 0U);
}

// ------------------------------------- zero false positives on shipped nets

TEST(Verify, ShippedExampleTopologiesAreClean) {
  const struct {
    const char* name;
    Net net;
  } cases[] = {
      {"fig1", sudoku::fig1_net()},
      {"fig2", sudoku::fig2_net()},
      {"fig3", sudoku::fig3_net()},
      {"fig2_propagated", sudoku::fig2_propagated_net()},
  };
  for (const auto& c : cases) {
    const VerifyReport report = verify(c.net);
    EXPECT_TRUE(report.empty())
        << c.name << " should lint clean:\n" << report.to_string();
  }
}

// --------------------------------------------------------- Network wiring

TEST(Verify, StrictModeThrowsOnWarnings) {
  Options opts;
  opts.verify = VerifyMode::Strict;
  try {
    Network net(dead_branch_net(), opts);
    FAIL() << "strict mode must reject the dead branch";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.report().count(LintCode::DeadBranch), 1U);
    EXPECT_NE(std::string(e.what()).find("dead-branch"), std::string::npos);
  }
}

TEST(Verify, WarnAndOffModesConstruct) {
  for (const VerifyMode mode : {VerifyMode::Warn, VerifyMode::Off}) {
    Options opts;
    opts.verify = mode;
    Network net(dead_branch_net(), opts);
    net.input().close();
    net.wait();
  }
}

TEST(Verify, InferenceStillRejectsBrokenTopologiesWithVerifyOff) {
  // Options::verify is independent of the fail-fast inference: a topology
  // `infer` rejects never constructs, whatever the verify mode says.
  Options opts;
  opts.verify = VerifyMode::Off;
  const Net n = mkbox("a", "(x) -> (y)") >> mkbox("b", "(q) -> (z)");
  EXPECT_THROW(Network(n, opts), TypeCheckError);
}

// --------------------------------------------- static/dynamic agreement

TEST(Verify, TiedForMatchesDynamicRouting) {
  // The router's compile-time twin: tied_for over the branch input types
  // must produce the argmax set the runtime routes from. {x,a,b} → wide
  // only; {x,a} → narrow only; {x} → neither (empty set).
  const std::vector<MultiType> inputs = {
      MultiType({RecordType::of({"x", "a", "b"})}),
      MultiType({RecordType::of({"x", "a"})}),
  };
  using detail::ParallelRouter;
  const auto tied_wide =
      ParallelRouter::tied_for(inputs, RecordType::of({"x", "a", "b"}));
  ASSERT_EQ(tied_wide.size(), 1U);
  EXPECT_EQ(tied_wide[0], 0U);
  const auto tied_narrow =
      ParallelRouter::tied_for(inputs, RecordType::of({"x", "a"}));
  ASSERT_EQ(tied_narrow.size(), 1U);
  EXPECT_EQ(tied_narrow[0], 1U);
  EXPECT_TRUE(ParallelRouter::tied_for(inputs, RecordType::of({"x"})).empty());
  // Ties collect every best branch.
  const std::vector<MultiType> same = {
      MultiType({RecordType::of({"x"})}),
      MultiType({RecordType::of({"x"})}),
  };
  const auto both = ParallelRouter::tied_for(same, RecordType::of({"x"}));
  EXPECT_EQ(both.size(), 2U);
}

TEST(Verify, MatchScoreTypeAgreesWithRecordOverload) {
  // MultiType::match_score(RecordType) is the single scoring primitive
  // shared by check.cpp, verify.cpp and the runtime router; it must agree
  // with the record overload for records of exactly that type.
  const MultiType mt({RecordType::of({"x", "a"}), RecordType::of({"x"}, {"t"})});
  Record r;
  r.set_field("x", make_value(1));
  r.set_field("a", make_value(2));
  EXPECT_EQ(mt.match_score(RecordType::of({"x", "a"})), mt.match_score(r));
  Record r2;
  r2.set_field("x", make_value(1));
  r2.set_tag("t", 0);
  EXPECT_EQ(mt.match_score(RecordType::of({"x"}, {"t"})), mt.match_score(r2));
  Record r3;
  r3.set_field("q", make_value(1));
  EXPECT_EQ(mt.match_score(RecordType::of({"q"})), mt.match_score(r3));
  EXPECT_EQ(mt.match_score(RecordType::of({"q"})), -1);
}

// -------------------------------------------------------------- DOT overlay

TEST(Verify, DotOverlayPaintsDiagnosedNodes) {
  const Net n = dead_branch_net();
  const VerifyReport report = verify(n);
  const std::string plain = to_dot(n);
  EXPECT_EQ(plain.find("fillcolor"), std::string::npos);
  const std::string overlay = to_dot(n, report);
  // The dead `narrow` branch is painted in the warning colour; the live
  // nodes are not painted.
  EXPECT_NE(overlay.find("box narrow"), std::string::npos);
  EXPECT_NE(overlay.find("fillcolor=\"#ffd27f\""), std::string::npos);
  EXPECT_EQ(overlay.find("fillcolor=\"#ff9d9d\""), std::string::npos);
  const auto painted = overlay.find("fillcolor=\"#ffd27f\"");
  const auto line_start = overlay.rfind('\n', painted);
  const std::string line = overlay.substr(
      line_start + 1, overlay.find('\n', painted) - line_start - 1);
  EXPECT_NE(line.find("narrow"), std::string::npos)
      << "warning colour must be on the narrow node: " << line;
}

TEST(Verify, DotOverlayPaintsErrorsRed) {
  const Net n = star(mkbox("loop", "(x) -> (x)"), "{<done>}");
  const std::string overlay = to_dot(n, verify(n));
  EXPECT_NE(overlay.find("fillcolor=\"#ff9d9d\""), std::string::npos);
}

TEST(Verify, DotEscapesLabelMetacharacters) {
  // Box names and signature text must not break the DOT quoting.
  const Net n = mkbox("we\"ird\\name", "(x) -> (y)");
  const std::string dot = to_dot(n);
  EXPECT_EQ(dot.find("we\"ird"), std::string::npos) << "quote must be escaped";
  EXPECT_NE(dot.find("we\\\"ird\\\\name"), std::string::npos);
  // Multi-line labels use the escaped \n form, never a raw newline inside
  // a quoted string.
  size_t quotes = 0;
  bool in_string = false;
  for (size_t i = 0; i < dot.size(); ++i) {
    if (dot[i] == '"' && (i == 0 || dot[i - 1] != '\\')) {
      ++quotes;
      in_string = !in_string;
    } else if (dot[i] == '\n') {
      EXPECT_FALSE(in_string) << "raw newline inside a quoted label";
    }
  }
  EXPECT_EQ(quotes % 2, 0U);
}
