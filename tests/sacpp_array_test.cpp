/// Value arrays: rank-genericity, selection, copy-on-write sharing.

#include <gtest/gtest.h>

#include "sacpp/array.hpp"
#include "sacpp/io.hpp"

using sac::Array;
using sac::Shape;
using sac::ShapeError;

TEST(Array, ScalarIsRankZero) {
  const Array<int> s(42);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), 42);
  EXPECT_EQ(s.element_count(), 1);
  EXPECT_EQ(sac::to_string(s), "42");
}

TEST(Array, FillConstructorAndIndexing) {
  const Array<int> a(Shape{3, 5}, 9);
  EXPECT_EQ(a.dim(), 2);
  EXPECT_EQ((a[{2, 4}]), 9);
  EXPECT_THROW((a[{3, 0}]), ShapeError);
}

TEST(Array, DataConstructorChecksSize) {
  EXPECT_THROW(Array<int>(Shape{2, 2}, std::vector<int>{1, 2, 3}), ShapeError);
  const Array<int> a(Shape{2, 2}, std::vector<int>{1, 2, 3, 4});
  EXPECT_EQ((a[{1, 0}]), 3);
}

TEST(Array, ScalarThrowsOnNonScalar) {
  const Array<int> a(Shape{2}, 0);
  EXPECT_THROW(a.scalar(), ShapeError);
}

TEST(Array, CopyIsCheapAndShared) {
  Array<int> a(Shape{100}, 1);
  const Array<int> b = a;  // O(1) copy
  EXPECT_FALSE(a.unique());
  EXPECT_FALSE(b.unique());
  EXPECT_EQ(a, b);
}

TEST(Array, CopyOnWriteDetachesSharedBuffer) {
  Array<int> a(Shape{4}, 0);
  Array<int> b = a;
  b.set({2}, 7);
  EXPECT_EQ((a[{2}]), 0) << "mutation of a copy must not leak back";
  EXPECT_EQ((b[{2}]), 7);
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
}

TEST(Array, UniqueOwnerMutatesInPlace) {
  Array<int> a(Shape{4}, 0);
  const auto* before = a.data().data();
  a.set({1}, 5);
  EXPECT_EQ(a.data().data(), before) << "sole owner should not reallocate";
}

TEST(Array, SubarraySelection) {
  // a = [[1,2,3],[4,5,6]]; a[[1]] == [4,5,6]; a[[1,2]] == 6 (rank 0).
  const Array<int> a(Shape{2, 3}, std::vector<int>{1, 2, 3, 4, 5, 6});
  const Array<int> row = a.sel({1});
  EXPECT_EQ(row.shape(), Shape{3});
  EXPECT_EQ((row[{0}]), 4);
  EXPECT_EQ((row[{2}]), 6);
  const Array<int> cell = a.sel({1, 2});
  EXPECT_TRUE(cell.is_scalar());
  EXPECT_EQ(cell.scalar(), 6);
  const Array<int> whole = a.sel({});
  EXPECT_EQ(whole, a);
  EXPECT_THROW(a.sel({2}), ShapeError);
}

TEST(Array, BoolStorageIsByteBacked) {
  // std::vector<bool> packing would race under parallel writes; verify the
  // byte-backed storage contract.
  Array<bool> a(Shape{8}, false);
  a.set({3}, true);
  EXPECT_TRUE((a[{3}]));
  EXPECT_FALSE((a[{2}]));
  static_assert(std::is_same_v<Array<bool>::storage_type, unsigned char>);
}

TEST(Array, EqualityIsShapeAndContent) {
  const Array<int> a(Shape{2, 2}, std::vector<int>{1, 2, 3, 4});
  const Array<int> b(Shape{4}, std::vector<int>{1, 2, 3, 4});
  EXPECT_NE(a, b) << "same data, different shape";
  const Array<int> c(Shape{2, 2}, std::vector<int>{1, 2, 3, 4});
  EXPECT_EQ(a, c);
}

TEST(ArrayIo, NestedBracketRendering) {
  const Array<int> a(Shape{2, 2}, std::vector<int>{1, 2, 3, 4});
  EXPECT_EQ(sac::to_string(a), "[[1,2],[3,4]]");
  const Array<int> v(Shape{3}, std::vector<int>{0, 1, 2});
  EXPECT_EQ(sac::to_string(v), "[0,1,2]");
}

TEST(ArrayIo, FreeFunctionDimShape) {
  const Array<double> a(Shape{3, 2}, 0.5);
  EXPECT_EQ(sac::dim(a), 2);
  EXPECT_EQ(sac::shape(a), (Shape{3, 2}));
}
