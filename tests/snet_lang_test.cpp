/// The network-language frontend: parsing + elaboration + execution of
/// textual S-Net programs, including the paper's three sudoku networks.

#include <gtest/gtest.h>

#include "snet/lang.hpp"
#include "snet/network.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/rules.hpp"
#include "sudoku/solver.hpp"

using namespace snet;
using lang::Bindings;
using lang::LangError;
using lang::parse_network;
using lang::parse_network_named;

namespace {
Record int_rec(int v, std::initializer_list<std::pair<std::string_view, std::int64_t>>
                          tags = {}) {
  Record r;
  r.set_field("x", make_value(v));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

Bindings arithmetic_bindings() {
  const BoxFn inc = [](const BoxInput& in, BoxOutput& out) {
    out.out(1, make_value(in.get<int>("x") + 1));
  };
  const BoxFn dbl = [](const BoxInput& in, BoxOutput& out) {
    out.out(1, make_value(in.get<int>("x") * 2));
  };
  const BoxFn dec = [](const BoxInput& in, BoxOutput& out) {
    const int x = in.get<int>("x");
    if (x <= 0) {
      out.out(2, make_value(x), std::int64_t{1});
    } else {
      out.out(1, make_value(x - 1));
    }
  };
  Bindings b;
  // Box bindings serve `box name (...)` declarations inside net programs;
  // the net bindings make the same components usable in bare expressions.
  b.bind_box("inc", inc);
  b.bind_box("dbl", dbl);
  b.bind_box("dec", dec);
  b.bind_net("inc", box("inc", "(x) -> (x)", inc));
  b.bind_net("dbl", box("dbl", "(x) -> (x)", dbl));
  b.bind_net("dec", box("dec", "(x) -> (x) | (x, <done>)", dec));
  return b;
}
}  // namespace

TEST(Lang, BareExpressionOverBoundNets) {
  Bindings b;
  b.bind_net("A", box("A", "(x) -> (x)",
                      [](const BoxInput& in, BoxOutput& out) {
                        out.out(1, make_value(in.get<int>("x") + 1));
                      }));
  const Net n = parse_network("A .. A .. A", b);
  Network net(n);
  net.input().inject(int_rec(0));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 3);
}

TEST(Lang, FullNetDefinitionWithBoxDecls) {
  const std::string src = R"(
    net pipeline {
      box inc ((x) -> (x));
      box dbl ((x) -> (x));
      connect inc .. dbl .. inc;
    }
  )";
  const auto parsed = parse_network_named(src, arithmetic_bindings());
  EXPECT_EQ(parsed.name, "pipeline");
  Network net(parsed.topology);
  net.input().inject(int_rec(3));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), (3 + 1) * 2 + 1);
}

TEST(Lang, CombinatorPrecedenceSerialOverParallel) {
  // A .. B || C  ==  (A .. B) || C
  Bindings b = arithmetic_bindings();
  const Net n = parse_network("inc .. inc || dbl", b);
  EXPECT_EQ(describe(n), "(inc .. inc || dbl)");
}

TEST(Lang, ReplicationPostfixes) {
  Bindings b = arithmetic_bindings();
  const std::string src = R"(
    net countdown {
      box dec ((x) -> (x) | (x, <done>));
      connect dec ** {<done>};
    }
  )";
  Network net(parse_network(src, b));
  net.input().inject(int_rec(4));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 0);
  EXPECT_EQ(out[0].tag("done"), 1);
}

TEST(Lang, SplitAndDetVariants) {
  Bindings b = arithmetic_bindings();
  const Net nondet = parse_network("(inc !! <k>)", b);
  EXPECT_EQ(describe(nondet), "(inc !! <k>)");
  const Net det = parse_network("(inc ! <k>)", b);
  EXPECT_EQ(describe(det), "(inc ! <k>)");
  const Net detstar = parse_network("(dec * {<done>})", b);
  EXPECT_EQ(describe(detstar), "(dec * {<done>})");
  const Net detpar = parse_network("inc | dbl", b);
  EXPECT_EQ(describe(detpar), "(inc | dbl)");
}

TEST(Lang, FiltersInlineInExpressions) {
  Bindings b = arithmetic_bindings();
  const Net n = parse_network(
      "net f { box inc ((x) -> (x)); connect inc .. [{x} -> {y=x, <m>=1}]; }", b);
  Network net(n);
  net.input().inject(int_rec(1));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("y")), 2);
  EXPECT_EQ(out[0].tag("m"), 1);
}

TEST(Lang, SynchrocellLiteral) {
  Bindings b;
  const Net n = parse_network("[| {a}, {b} |]", b);
  Network net(n);
  Record ra;
  ra.set_field("a", make_value(1));
  Record rb;
  rb.set_field("b", make_value(2));
  net.input().inject(std::move(ra));
  net.input().inject(std::move(rb));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_TRUE(out[0].has_field("a"));
  EXPECT_TRUE(out[0].has_field("b"));
}

TEST(Lang, NestedNetDefinitions) {
  const std::string src = R"(
    net outer {
      box inc ((x) -> (x));
      net twice {
        box dbl ((x) -> (x));
        connect dbl;
      }
      connect inc .. twice;
    }
  )";
  Network net(parse_network(src, arithmetic_bindings()));
  net.input().inject(int_rec(5));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 12);
}

TEST(Lang, Errors) {
  Bindings b = arithmetic_bindings();
  EXPECT_THROW(parse_network("unknownBox", b), LangError);
  EXPECT_THROW(parse_network("inc ..", b), LangError);
  EXPECT_THROW(parse_network("net x { connect inc; } trailing", b), LangError);
  // Declared box without an implementation binding:
  EXPECT_THROW(parse_network("net x { box nosuch ((a) -> (a)); connect nosuch; }", b),
               LangError);
  // A name bound only as a box function is not usable as an operand
  // without a declaration (its signature is unknown):
  Bindings only_box;
  only_box.bind_box("f", [](const BoxInput&, BoxOutput&) {});
  EXPECT_THROW(parse_network("f", only_box), LangError);
}

TEST(Lang, CommentsAreIgnored) {
  const std::string src = R"(
    // the identity-ish pipeline
    net c {
      box inc ((x) -> (x));  // increment
      connect inc;
    }
  )";
  EXPECT_NO_THROW(parse_network(src, arithmetic_bindings()));
}

// ---- The paper's networks, written as S-Net programs --------------------

namespace {
Bindings sudoku_bindings() {
  Bindings b;
  b.bind_net("computeOpts", sudoku::compute_opts_box());
  b.bind_net("solve", sudoku::solve_box());
  return b;
}
}  // namespace

TEST(LangSudoku, Fig1Program) {
  Bindings b = sudoku_bindings();
  b.bind_net("solveOneLevel", sudoku::solve_one_level_box());
  const Net n = parse_network("computeOpts .. (solveOneLevel ** {<done>})", b);
  const auto puzzle = sudoku::corpus_board("mini4");
  const auto sol = sudoku::solve_with_net(n, puzzle);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sudoku::solves(puzzle, *sol));
}

TEST(LangSudoku, Fig2Program) {
  Bindings b = sudoku_bindings();
  b.bind_net("solveOneLevel", sudoku::solve_one_level_k_box());
  const Net n = parse_network(
      "computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>})", b);
  const auto puzzle = sudoku::corpus_board("easy");
  const auto sol = sudoku::solve_with_net(n, puzzle);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sudoku::solves(puzzle, *sol));
}

TEST(LangSudoku, Fig3Program) {
  Bindings b = sudoku_bindings();
  b.bind_net("solveOneLevel", sudoku::solve_one_level_kl_box());
  const Net n = parse_network(R"(
      computeOpts .. [{} -> {<k>=1}]
                  .. (([{<k>} -> {<k>=<k>%4}] .. (solveOneLevel !! <k>))
                      ** {<level>} if <level> > 40)
                  .. solve
  )", b);
  const auto puzzle = sudoku::corpus_board("easy");
  const auto records = sudoku::run_board(n, puzzle);
  const auto sols = sudoku::solutions_in(records);
  ASSERT_EQ(sols.size(), 1U);
  EXPECT_TRUE(sudoku::solves(puzzle, sols[0]));
}
