/// The hybrid SaC/S-Net solvers (paper §5): Figures 1-3 as running
/// networks, including the structural claims the paper makes about their
/// dynamic unfolding.

#include <gtest/gtest.h>

#include "sudoku/corpus.hpp"
#include "sudoku/generator.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {
snet::Options workers(unsigned w) {
  snet::Options o;
  o.workers = w;
  return o;
}
}  // namespace

TEST(Fig1, SignatureMatchesPaper) {
  const auto net = fig1_net();
  EXPECT_EQ(snet::describe(net), "computeOpts .. (solveOneLevel ** {<done>})");
  const auto sig = snet::infer(net);
  EXPECT_EQ(sig.input.to_string(), "{board}");
  EXPECT_EQ(sig.output.to_string(), "{board, <done>}");
}

TEST(Fig1, SolvesAndMatchesSequentialSolver) {
  const auto puzzle = corpus_board("easy");
  const auto seq = solve_board(puzzle);
  const auto sol = solve_with_net(fig1_net(), puzzle);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, seq.board);
}

TEST(Fig1, UniquePuzzleYieldsExactlyOneDoneRecord) {
  const auto records = run_board(fig1_net(), corpus_board("medium"));
  std::size_t done = 0;
  for (const auto& r : records) {
    done += r.has_tag("done") ? 1U : 0U;
  }
  EXPECT_EQ(done, 1U);
}

TEST(Fig1, UnsolvableBoardProducesNoOutput) {
  auto b = empty_board(3);
  for (int j = 0; j < 8; ++j) {
    b.set({0, j}, j + 1);
  }
  b.set({1, 8}, 9);
  const auto records = run_board(fig1_net(), b);
  EXPECT_TRUE(records.empty()) << "stuck branches die silently (paper Fig. 1)";
}

TEST(Fig1, SerialUnfoldingBoundedByEmptyCells) {
  // "this unfolding cannot lead to pipelines longer than 81 replicas" —
  // generally: one level per placed number, bounded by #empty cells (+1
  // tap that only ever forwards <done> records).
  const auto puzzle = corpus_board("easy");
  const int empties = 81 - level(puzzle);
  snet::Network net(fig1_net());
  net.input().inject(board_record(puzzle));
  net.output().collect();
  const auto stats = net.stats();
  const auto replicas = stats.count_containing("box:solveOneLevel");
  EXPECT_LE(replicas, static_cast<std::size_t>(empties) + 1);
  EXPECT_GT(replicas, 0U);
  EXPECT_LE(stats.count_containing("/stage"), static_cast<std::size_t>(empties) + 2);
}

TEST(Fig2, SignatureAndStructure) {
  const auto net = fig2_net();
  EXPECT_EQ(snet::describe(net),
            "computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>})");
  const auto sig = snet::infer(net);
  EXPECT_EQ(sig.input.to_string(), "{board}");
}

TEST(Fig2, SolvesAndMatchesSequentialSolver) {
  const auto puzzle = corpus_board("easy");
  const auto seq = solve_board(puzzle);
  const auto sol = solve_with_net(fig2_net(), puzzle, workers(2));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, seq.board);
}

TEST(Fig2, PerStageSplitBoundedByBoardSize) {
  // "no more than 9 replicas of the solveOneLevel box will be created
  //  [per stage] as the value of k is always between 0 and 8" (1..9 here:
  //  k is the number being examined).
  const auto puzzle = corpus_board("medium");
  snet::Network net(fig2_net(), workers(2));
  net.input().inject(board_record(puzzle));
  net.output().collect();
  const auto stats = net.stats();
  // Per split dispatcher: count distinct replica instances under it.
  for (const auto& e : stats.entities) {
    if (e.name.find("/split") != std::string::npos &&
        e.name.find("box:") == std::string::npos) {
      continue;  // dispatcher itself
    }
  }
  // Count solveOneLevel instances per stage prefix.
  std::map<std::string, int> per_stage;
  for (const auto& e : stats.entities) {
    const auto pos = e.name.find("box:solveOneLevel");
    if (pos == std::string::npos) {
      continue;
    }
    // name: net/star/repK/split[v]/box:solveOneLevel — key by repK.
    const auto rep = e.name.substr(0, e.name.find("/split"));
    per_stage[rep] += 1;
  }
  EXPECT_FALSE(per_stage.empty());
  for (const auto& [stage, count] : per_stage) {
    EXPECT_LE(count, 9) << stage;
  }
  // Global bound from the paper: 9 x 81 = 729.
  EXPECT_LE(stats.count_containing("box:solveOneLevel"), 729U);
}

TEST(Fig3, SignatureAndStructure) {
  const auto net = fig3_net();
  const auto sig = snet::infer(net);
  EXPECT_EQ(sig.input.to_string(), "{board}");
  // Output records carry board+opts (+k, level through inheritance).
  EXPECT_EQ(sig.output.variants().size(), 1U);
  EXPECT_TRUE(sig.output.variants()[0].contains(snet::field_label("board")));
  EXPECT_TRUE(sig.output.variants()[0].contains(snet::field_label("opts")));
  EXPECT_TRUE(sig.output.variants()[0].contains(snet::tag_label("level")));
}

TEST(Fig3, SolvesAndMatchesSequentialSolver) {
  const auto puzzle = corpus_board("easy");
  const auto seq = solve_board(puzzle);
  const auto sol = solve_with_net(fig3_net(), puzzle, workers(2));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, seq.board);
}

TEST(Fig3, ThrottleCapsParallelWidth) {
  // "we reduce all potential values for <k> to the range 0 to 3, which
  // implicitly limits the parallel unfolding to a maximum of 4 instances."
  for (const int m : {1, 2, 4}) {
    snet::Network net(fig3_net(Fig3Params{.throttle = m, .level_threshold = 40}),
                      workers(2));
    net.input().inject(board_record(corpus_board("medium")));
    net.output().collect();
    const auto stats = net.stats();
    std::map<std::string, int> per_stage;
    for (const auto& e : stats.entities) {
      if (e.name.find("box:solveOneLevel") == std::string::npos) {
        continue;
      }
      const auto rep = e.name.substr(0, e.name.find("/split"));
      per_stage[rep] += 1;
    }
    for (const auto& [stage, count] : per_stage) {
      EXPECT_LE(count, m) << "throttle " << m << " at " << stage;
    }
  }
}

TEST(Fig3, LevelGuardBoundsPipelineDepth) {
  // Exit guard <level> > T caps the chain at T - givens + 1 stages (the
  // first stage sees boards at level = #givens).
  const auto puzzle = corpus_board("easy");  // 30 givens
  const int threshold = 40;
  snet::Network net(fig3_net(Fig3Params{.throttle = 4, .level_threshold = threshold}),
                    workers(2));
  net.input().inject(board_record(puzzle));
  net.output().collect();
  const auto stats = net.stats();
  const auto stages = stats.count_containing("/stage");
  EXPECT_LE(stages, static_cast<std::size_t>(threshold - 30 + 2));
}

TEST(Fig3, ExactlyOneValidSolutionAmongOutputs) {
  const auto records = run_board(fig3_net(), corpus_board("medium"), workers(2));
  EXPECT_FALSE(records.empty());
  EXPECT_EQ(solutions_in(records).size(), 1U)
      << "unique puzzle: one completed board, other exits are stuck partials";
}

TEST(Nets, FourByFourAcrossAllThreeNetworks) {
  const auto puzzle = corpus_board("mini4");
  const auto seq = solve_board(puzzle);
  ASSERT_TRUE(seq.completed);
  for (const auto& [name, net] :
       {std::pair{"fig1", fig1_net()}, std::pair{"fig2", fig2_net()},
        std::pair{"fig3", fig3_net(Fig3Params{.throttle = 2, .level_threshold = 8})}}) {
    const auto sol = solve_with_net(net, puzzle);
    ASSERT_TRUE(sol.has_value()) << name;
    EXPECT_EQ(*sol, seq.board) << name;
  }
}

TEST(Nets, GeneratedPuzzlesSolveIdenticallyAcrossNetworks) {
  // Property sweep: every network agrees with the sequential solver on
  // generated unique-solution puzzles.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto puzzle =
        generate(GenOptions{.n = 3, .clues = 34, .seed = seed, .ensure_unique = true});
    const auto seq = solve_board(puzzle);
    ASSERT_TRUE(seq.completed);
    for (const auto& net : {fig1_net(), fig2_net(), fig3_net()}) {
      const auto sol = solve_with_net(net, puzzle, workers(2));
      ASSERT_TRUE(sol.has_value()) << "seed " << seed;
      EXPECT_EQ(*sol, seq.board) << "seed " << seed;
    }
  }
}

TEST(Nets, StreamObserverSeesBoards) {
  // "Debugging the concurrent behaviour becomes rather straightforward as
  // all streams can be observed individually."
  std::atomic<int> sightings{0};
  snet::Options opts;
  opts.trace = [&](const std::string& entity, const snet::Record& r) {
    if (entity.find("box:solveOneLevel") != std::string::npos &&
        r.has_field("board")) {
      sightings.fetch_add(1);
    }
  };
  snet::Network net(fig1_net(), opts);
  net.input().inject(board_record(corpus_board("mini4")));
  net.output().collect();
  EXPECT_GT(sightings.load(), 0);
}

TEST(Nets, MultipleBoardsThroughOneNetwork) {
  // The network is a reusable stream transformer, not a one-shot call.
  snet::Network net(fig1_net(), workers(2));
  const auto p1 = corpus_board("easy");
  const auto p2 = corpus_board("medium");
  net.input().inject(board_record(p1));
  net.input().inject(board_record(p2));
  const auto records = net.output().collect();
  const auto sols = solutions_in(records);
  ASSERT_EQ(sols.size(), 2U);
  EXPECT_TRUE((solves(p1, sols[0]) && solves(p2, sols[1])) ||
              (solves(p2, sols[0]) && solves(p1, sols[1])));
}
