/// Combinator composition: "These four combinators preserve the SISO
/// property, i.e., any network, regardless of its complexity, can be used
/// as an SISO component." This suite nests every combinator inside every
/// other and checks end-to-end semantics, including a reference-model
/// property test for deterministic regions.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record rec(int x, std::initializer_list<std::pair<std::string_view, std::int64_t>>
                      tags = {}) {
  Record r;
  r.set_field("x", make_value(x));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)",
             [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
}

Net add(const std::string& name, int delta) {
  return box(name, "(x) -> (x)",
             [delta](const BoxInput& in, BoxOutput& out) {
               out.out(1, make_value(in.get<int>("x") + delta));
             });
}

Options workers(unsigned w) {
  Options o;
  o.workers = w;
  return o;
}

std::multiset<int> values(const std::vector<Record>& rs) {
  std::multiset<int> out;
  for (const auto& r : rs) {
    out.insert(value_as<int>(r.field("x")));
  }
  return out;
}

}  // namespace

TEST(Compose, SplitInsideStar) {
  // The Fig. 2 shape: a parallel replicator inside a serial replicator.
  auto dec = box("dec", "(x, <k>) -> (x, <k>) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 0) {
                     out.out(2, in.field("x"), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1), in.tag("k"));
                   }
                 });
  Network net(star(split(dec, "k"), "{<done>}"), workers(2));
  for (int i = 0; i < 9; ++i) {
    net.input().inject(rec(i, {{"k", i % 3}}));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 9U);
  for (const auto& r : out) {
    EXPECT_EQ(value_as<int>(r.field("x")), 0);
    EXPECT_EQ(r.tag("done"), 1);
  }
}

TEST(Compose, StarInsideSplit) {
  // Per-tag-value pipelines, each its own serial replication.
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 0) {
                     out.out(2, in.field("x"), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1));
                   }
                 });
  Network net(split(star(dec, "{<done>}"), "k"), workers(2));
  net.input().inject(rec(3, {{"k", 0}}));
  net.input().inject(rec(5, {{"k", 1}}));
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 2U);
  // Two independent star chains were built, one per lane; the deeper
  // countdown (x=5) materialises at least as many stages.
  EXPECT_GE(net.stats().count_containing("/split[0]"), 1U);
  EXPECT_GE(net.stats().count_containing("/split[1]"),
            net.stats().count_containing("/split[0]"));
}

TEST(Compose, StarInsideStar) {
  // Outer star: each replica first runs a full *inner* replication chain
  // (counting <inner> down to its <idone> marker), then decrements
  // <outer>. <odone> records leave at the next outer tap before touching
  // any replica.
  auto inner_dec = box("innerDec", "(x, <inner>) -> (x, <inner>) | (x, <idone>)",
                       [](const BoxInput& in, BoxOutput& out) {
                         const std::int64_t i = in.tag("inner");
                         if (i <= 0) {
                           out.out(2, in.field("x"), std::int64_t{1});
                         } else {
                           out.out(1, in.field("x"), i - 1);
                         }
                       });
  auto outer_step =
      box("outerStep", "(x, <outer>) -> (x, <inner>, <outer>) | (x, <odone>)",
          [](const BoxInput& in, BoxOutput& out) {
            const std::int64_t o = in.tag("outer");
            if (o <= 0) {
              out.out(2, in.field("x"), std::int64_t{1});
            } else {
              out.out(1, in.field("x"), std::int64_t{2}, o - 1);
            }
          });
  const Net inner = star(inner_dec, "{<idone>}") >> filter("{<idone>} -> {}");
  // Leading identity filter: declares the full record shape up front
  // (required_input is inferred from the head of a serial chain).
  const Net declare = filter("{x, <inner>, <outer>} -> {x, <inner>, <outer>}");
  Network net(star(declare >> inner >> outer_step, "{<odone>}"), workers(2));
  net.input().inject(rec(7, {{"outer", 3}, {"inner", 2}}));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("odone"), 1);
  // Inner chains were materialised inside outer replicas.
  EXPECT_GT(net.stats().count_containing("box:innerDec"), 1U);
}

TEST(Compose, ParallelOfStars) {
  auto mk_dec = [](const std::string& name, const std::string& donetag) {
    return box(name, "(x, <" + donetag + "v>) -> (x, <" + donetag + "v>) | (x, <" + donetag + ">)",
               [donetag](const BoxInput& in, BoxOutput& out) {
                 const std::int64_t v = in.tag(donetag + "v");
                 if (v <= 0) {
                   out.out(2, in.field("x"), std::int64_t{1});
                 } else {
                   out.out(1, in.field("x"), v - 1);
                 }
               });
  };
  const Net left = star(mk_dec("L", "ld"), "{<ld>}");
  const Net right = star(mk_dec("R", "rd"), "{<rd>}");
  Network net(parallel(left, right), workers(2));
  net.input().inject(rec(1, {{"ldv", 3}}));
  net.input().inject(rec(2, {{"rdv", 2}}));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 2U);
  for (const auto& r : out) {
    EXPECT_TRUE(r.has_tag("ld") || r.has_tag("rd"));
  }
}

TEST(Compose, SplitInsideSplit) {
  Network net(split(split(ident("w"), "inner"), "outer"), workers(2));
  for (int o = 0; o < 2; ++o) {
    for (int i = 0; i < 3; ++i) {
      net.input().inject(rec(10 * o + i, {{"outer", o}, {"inner", i}}));
    }
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 6U);
  // 2 outer lanes x 3 inner lanes = 6 distinct box instances.
  EXPECT_EQ(net.stats().count_containing("box:w"), 6U);
}

TEST(Compose, DetRegionInsideNondetRegion) {
  // A deterministic parallel inside a non-deterministic one: inner
  // ordering must hold per record even though outer merge order is free.
  auto dup = box("dup", "(x, <d>) -> (x, <half>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   out.out(1, in.field("x"), std::int64_t{1});
                   out.out(1, in.field("x"), std::int64_t{2});
                 });
  auto solo = box("solo", "(x) -> (x, <half>)",
                  [](const BoxInput& in, BoxOutput& out) {
                    out.out(1, in.field("x"), std::int64_t{0});
                  });
  const Net inner_det = parallel_det(dup, solo);
  const Net outer = parallel(inner_det, ident("bypass"));
  Network net(outer, workers(4));
  for (int i = 0; i < 10; ++i) {
    net.input().inject(rec(i, {{"d", 1}}));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 20U);
  // Each det group's two halves must be adjacent in the final stream
  // relative to other det-routed records... outer nondet merge may
  // interleave bypass traffic, but here everything goes through the det
  // branch (d present => dup wins best-match), so order is total.
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    EXPECT_EQ(value_as<int>(out[i].field("x")), value_as<int>(out[i + 1].field("x")));
    EXPECT_EQ(out[i].tag("half"), 1);
    EXPECT_EQ(out[i + 1].tag("half"), 2);
  }
}

TEST(Compose, DetStarOfDetSplit) {
  // Fully deterministic Fig. 2 shape: output order == injection order.
  auto dec = box("dec", "(x, <k>) -> (x, <k>) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 0) {
                     out.out(2, in.field("x"), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1), in.tag("k"));
                   }
                 });
  Network net(star_det(split_det(dec, "k"), "{<done>}"), workers(4));
  const std::vector<int> depths{5, 0, 3, 7, 1, 4};
  for (std::size_t i = 0; i < depths.size(); ++i) {
    net.input().inject(rec(depths[i], {{"k", static_cast<std::int64_t>(i % 2)},
                               {"idx", static_cast<std::int64_t>(i)}}));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), depths.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].tag("idx"), static_cast<std::int64_t>(i));
  }
}

TEST(Compose, FilterFanoutIntoSplit) {
  // A filter that triples each record, fanned across split lanes.
  const Net n = filter("{x} -> {x, <k>=0}; {x, <k>=1}; {x, <k>=2}") >>
                split(add("inc", 1), "k");
  Network net(n, workers(2));
  for (int i = 0; i < 5; ++i) {
    net.input().inject(rec(i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 15U);
  EXPECT_EQ(net.stats().count_containing("box:inc"), 3U);
}

TEST(Compose, SyncInsidePipeline) {
  // Halves of a computation joined by a synchrocell mid-pipeline.
  auto splitter = box("halve", "(x) -> (lo) | (hi)",
                      [](const BoxInput& in, BoxOutput& out) {
                        const int x = in.get<int>("x");
                        out.out(1, make_value(x % 100));
                        out.out(2, make_value(x / 100));
                      });
  auto joiner = box("join", "(lo, hi) -> (x)",
                    [](const BoxInput& in, BoxOutput& out) {
                      out.out(1, make_value(in.get<int>("lo") +
                                            100 * in.get<int>("hi")));
                    });
  // A synchrocell's output type includes pass-through variants, so the
  // successor must be able to route them: joined records go to the join
  // box, stragglers to a bypass branch (none occur for a single pair).
  auto bypass = box("bypass", "() -> ()",
                    [](const BoxInput&, BoxOutput&) { /* swallow */ });
  Network net(splitter >> sync({"{lo}", "{hi}"}) >> parallel(joiner, bypass),
              workers(1));
  net.input().inject(rec(4217));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 4217);
}

TEST(Compose, DeepNestingStress) {
  // (((inc ** exit) !! k) | ident) .. inc — every combinator in one net.
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 0) {
                     out.out(2, in.field("x"), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1));
                   }
                 });
  const Net n = parallel(split(star(dec, "{<done>}"), "k"), ident("misc")) >>
                add("final", 100);
  Network net(n, workers(4));
  for (int i = 0; i < 30; ++i) {
    net.input().inject(rec(i % 6, {{"k", i % 3}}));
  }
  Record no_k;
  no_k.set_field("x", make_value(7));
  net.input().inject(std::move(no_k));  // routes to the ident branch
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 31U);
  std::multiset<int> vs = values(out);
  EXPECT_EQ(vs.count(100), 30U) << "all star outputs decremented to 0, then +100";
  EXPECT_EQ(vs.count(107), 1U);
}

// Reference-model property: for a det region, the output stream must be
// the concatenation of per-input groups in input order, where each group
// is what the subnet emits for that record alone.
class DetReferenceModel : public ::testing::TestWithParam<unsigned> {};

TEST_P(DetReferenceModel, MatchesSequentialSemantics) {
  // Box: emits x copies of the record, each with a <copy> index.
  auto fan = box("fan", "(x) -> (x, <copy>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   for (int c = 0; c < x; ++c) {
                     out.out(1, in.field("x"), static_cast<std::int64_t>(c));
                   }
                 });
  const Net inner = split_det(fan, "k");
  Network net(star_det(filter("{x, <go>, <k>} -> {x, <k>}") >> inner, "{<copy>}"),
              workers(GetParam()));
  // Input i emits i copies; expected output = groups in input order.
  std::vector<std::pair<int, std::int64_t>> expected;
  const std::vector<int> xs{3, 1, 4, 2};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    Record r = rec(xs[i], {{"k", static_cast<std::int64_t>(i % 2)}, {"go", 1}});
    net.input().inject(std::move(r));
    for (int c = 0; c < xs[i]; ++c) {
      expected.emplace_back(xs[i], c);
    }
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(value_as<int>(out[i].field("x")), expected[i].first) << i;
    EXPECT_EQ(out[i].tag("copy"), expected[i].second) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, DetReferenceModel, ::testing::Values(1U, 2U, 4U));
