/// n²×n² generalisation end-to-end (the paper's footnote: "sudokus can be
/// played on any board of size n² × n²"). 16×16 boards through the rules,
/// the solver and the networks.

#include <gtest/gtest.h>

#include "sudoku/generator.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/rules.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {
BoardArray dense16() {
  // 200 of 256 clues: a shallow search, fast enough for unit tests.
  return generate(GenOptions{.n = 4, .clues = 200, .seed = 31, .ensure_unique = false});
}
}  // namespace

TEST(Sudoku16, GeneratorProducesConsistentBoard) {
  const auto b = dense16();
  EXPECT_EQ(board_size(b), 16);
  EXPECT_EQ(board_box(b), 4);
  EXPECT_TRUE(is_consistent(b));
  EXPECT_EQ(level(b), 200);
}

TEST(Sudoku16, AddNumberGeneralisesTheWithLoop) {
  auto [board, opts] = compute_opts(empty_board(4));
  auto [b2, o2] = add_number(5, 9, 13, board, opts);
  EXPECT_EQ((b2[{5, 9}]), 13);
  const int k0 = 12;
  for (int t = 0; t < 16; ++t) {
    EXPECT_FALSE((o2[{5, 9, t}]));
    EXPECT_FALSE((o2[{5, t, k0}]));
    EXPECT_FALSE((o2[{t, 9, k0}]));
  }
  // The 4x4 box containing (5,9) spans rows 4..7, cols 8..11.
  for (int a = 4; a < 8; ++a) {
    for (int b = 8; b < 12; ++b) {
      EXPECT_FALSE((o2[{a, b, k0}]));
    }
  }
  EXPECT_TRUE((o2[{0, 0, k0}]));
}

TEST(Sudoku16, SequentialSolver) {
  const auto puzzle = dense16();
  const auto res = solve_board(puzzle);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(solves(puzzle, res.board));
}

TEST(Sudoku16, Fig1Network) {
  const auto puzzle = dense16();
  const auto sol = solve_with_net(fig1_net(), puzzle);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(solves(puzzle, *sol));
}

TEST(Sudoku16, Fig3NetworkWithScaledKnobs) {
  const auto puzzle = dense16();
  // T scaled to the board: exit once half the remaining cells are placed.
  const auto net = fig3_net(Fig3Params{.throttle = 4, .level_threshold = 228});
  const auto records = run_board(net, puzzle);
  const auto sols = solutions_in(records);
  ASSERT_GE(sols.size(), 1U);
  EXPECT_TRUE(solves(puzzle, sols[0]));
}

TEST(Sudoku16, LineFormatRoundTrip) {
  const auto b = dense16();
  const auto again = board_from_string(board_to_line(b));
  EXPECT_EQ(again, b);
}
