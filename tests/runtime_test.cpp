/// Tests for the threading substrate: thread pool, MPSC queue,
/// parallel_for chunking.

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/env.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = snetsac::runtime;

TEST(Env, FallbacksAndParsing) {
  EXPECT_EQ(rt::env_int("SNETSAC_SURELY_UNSET_VAR", 7), 7);
  ::setenv("SNETSAC_TEST_VAR", "13", 1);
  EXPECT_EQ(rt::env_int("SNETSAC_TEST_VAR", 7), 13);
  ::setenv("SNETSAC_TEST_VAR", "junk", 1);
  EXPECT_EQ(rt::env_int("SNETSAC_TEST_VAR", 7), 7);
  ::setenv("SNETSAC_TEST_VAR", "-3", 1);
  EXPECT_EQ(rt::env_int("SNETSAC_TEST_VAR", 7), 7);
  ::unsetenv("SNETSAC_TEST_VAR");
  EXPECT_GE(rt::hardware_threads(), 1U);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  rt::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  while (count.load() < 100) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.size(), 2U);
  EXPECT_GE(pool.tasks_executed(), 100U);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  rt::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1U);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    rt::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  // Destructor waits for workers, which drain the queue before exiting.
  EXPECT_EQ(count.load(), 50);
}

TEST(MpscQueue, FifoOrderSingleProducer) {
  rt::MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(1));   // was empty
  EXPECT_FALSE(q.push(2));  // was not
  EXPECT_EQ(q.size(), 2U);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, ManyProducersDeliverEverything) {
  rt::MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kEach = 500;
  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) {
        q.push(p * kEach + i);
      }
    });
  }
  producers.clear();  // join
  std::set<int> seen;
  while (auto v = q.try_pop()) {
    seen.insert(*v);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kEach));
}

TEST(MpscQueue, DrainIntoBatchesInFifoOrder) {
  rt::MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) {
    q.push(i);
  }
  std::vector<int> out;
  EXPECT_EQ(q.drain_into(out, 4), 4U);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6U);
  // Appends to existing contents; asking for more than available drains all.
  EXPECT_EQ(q.drain_into(out, 100), 6U);
  EXPECT_EQ(out.size(), 10U);
  EXPECT_EQ(out.back(), 9);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drain_into(out, 5), 0U);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  rt::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  rt::parallel_for_each(pool, 0, 1000, 10, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  rt::ThreadPool pool(2);
  int calls = 0;
  rt::parallel_for_chunks(pool, 5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  rt::parallel_for_each(pool, 41, 42, 1, [&](std::int64_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 41);
}

TEST(ParallelFor, RespectsGrainAsSequentialFallback) {
  rt::ThreadPool pool(4);
  // grain larger than extent => a single chunk on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids;
  rt::parallel_for_chunks(pool, 0, 100, 1000, [&](std::int64_t, std::int64_t) {
    ids.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(ids.size(), 1U);
  EXPECT_EQ(ids[0], caller);
}

TEST(ParallelFor, PropagatesFirstException) {
  rt::ThreadPool pool(2);
  EXPECT_THROW(
      rt::parallel_for_each(pool, 0, 100, 1,
                            [&](std::int64_t i) {
                              if (i == 37) {
                                throw std::runtime_error("boom");
                              }
                            }),
      std::runtime_error);
}

TEST(ParallelFor, ChunkBoundsPartitionRange) {
  rt::ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  rt::parallel_for_chunks(pool, 10, 210, 1, [&](std::int64_t lo, std::int64_t hi) {
    const std::lock_guard lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 210);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);  // contiguous, disjoint
  }
}

// Parameterised sweep: results identical for any worker/grain combination.
class ParallelForSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::int64_t>> {};

TEST_P(ParallelForSweep, SumMatchesSequential) {
  const auto [workers, grain] = GetParam();
  rt::ThreadPool pool(workers);
  std::atomic<std::int64_t> sum{0};
  rt::parallel_for_each(pool, 0, 10'000, grain,
                        [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10'000LL * 9'999 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelForSweep,
    ::testing::Combine(::testing::Values(1U, 2U, 4U, 8U),
                       ::testing::Values<std::int64_t>(1, 7, 128, 100'000)));
