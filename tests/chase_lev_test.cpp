/// Chase–Lev deque: owner LIFO / thief FIFO semantics, buffer growth, and
/// the exactly-once guarantee under concurrent stealing (the property the
/// memory-ordering contract in chase_lev.hpp exists to uphold).

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/chase_lev.hpp"
#include "runtime/executor.hpp"

namespace {

using snetsac::runtime::ChaseLevDeque;

TEST(ChaseLev, OwnerPopsLifo) {
  ChaseLevDeque<int*> dq;
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  for (int& it : items) {
    dq.push(&it);
  }
  for (int expect = 99; expect >= 0; --expect) {
    int* got = dq.pop();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(ChaseLev, ThiefStealsFifo) {
  ChaseLevDeque<int*> dq;
  std::vector<int> items(10);
  std::iota(items.begin(), items.end(), 0);
  for (int& it : items) {
    dq.push(&it);
  }
  // Single-threaded here, so no steal can spuriously fail.
  for (int expect = 0; expect < 10; ++expect) {
    int* got = dq.steal();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLev, GrowthPreservesAllItems) {
  ChaseLevDeque<int*> dq(8);  // force several growth episodes
  std::vector<int> items(10000);
  std::iota(items.begin(), items.end(), 0);
  for (int& it : items) {
    dq.push(&it);
  }
  std::vector<bool> seen(items.size(), false);
  while (int* got = dq.pop()) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(*got)]);
    seen[static_cast<std::size_t>(*got)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(ChaseLev, StealStressExactlyOnce) {
  // Owner pushes kItems (popping every third), thieves hammer steal().
  // Every item must be claimed exactly once across owner and thieves.
  constexpr int kItems = 200000;
  constexpr int kThieves = 4;
  ChaseLevDeque<int*> dq(16);
  std::vector<int> items(kItems);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::atomic<int>> claims(kItems);
  for (auto& c : claims) {
    c.store(0, std::memory_order_relaxed);
  }
  std::atomic<bool> owner_done{false};
  std::atomic<std::uint64_t> stolen{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!owner_done.load(std::memory_order_acquire) ||
             dq.size_approx() > 0) {
        if (int* got = dq.steal()) {
          claims[static_cast<std::size_t>(*got)].fetch_add(1,
                                                           std::memory_order_relaxed);
          stolen.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t popped = 0;
  for (int i = 0; i < kItems; ++i) {
    dq.push(&items[static_cast<std::size_t>(i)]);
    if (i % 3 == 2) {
      if (int* got = dq.pop()) {
        claims[static_cast<std::size_t>(*got)].fetch_add(1,
                                                         std::memory_order_relaxed);
        ++popped;
      }
    }
  }
  // Drain whatever the thieves have not taken yet.
  while (int* got = dq.pop()) {
    claims[static_cast<std::size_t>(*got)].fetch_add(1, std::memory_order_relaxed);
    ++popped;
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& th : thieves) {
    th.join();
  }

  std::uint64_t total = 0;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(claims[static_cast<std::size_t>(i)].load(), 1)
        << "item " << i << " claimed " << claims[static_cast<std::size_t>(i)].load()
        << " times";
    ++total;
  }
  EXPECT_EQ(popped + stolen.load(), total);
}

TEST(ChaseLev, ExecutorDrainsNestedSubmitsThroughLockFreeDeques) {
  // Executor-level smoke of the same structure: external submits fan out
  // into worker-local (Chase–Lev) submits; destruction drains everything.
  constexpr int kOuter = 2000;
  constexpr int kInner = 4;
  std::atomic<int> ran{0};
  {
    snetsac::runtime::Executor exec(4);
    for (int i = 0; i < kOuter; ++i) {
      exec.submit([&] {
        for (int j = 0; j < kInner; ++j) {
          exec.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
  }  // destructor = full drain
  EXPECT_EQ(ran.load(), kOuter * kInner);
}

}  // namespace
