/// The constraint-propagation extension (naked singles) and the
/// propagation-enhanced Fig. 2 network.

#include <gtest/gtest.h>

#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/rules.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

TEST(Propagate, FillsForcedCellsOnly) {
  auto [board, opts] = compute_opts(corpus_board("easy"));
  auto [b2, o2] = propagate_singles(board, opts);
  EXPECT_GT(level(b2), level(board)) << "easy has naked singles";
  EXPECT_TRUE(is_consistent(b2));
  // Deduction preserves the solution: solving the propagated board gives
  // the same grid.
  const auto s1 = solve_board(corpus_board("easy"));
  const auto s2 = solve(b2, o2);
  ASSERT_TRUE(s2.completed);
  EXPECT_EQ(s1.board, s2.board);
}

TEST(Propagate, EasyPuzzleSolvedByDeductionAlone) {
  // The classic 'easy' instance is fully solvable by naked singles.
  auto [board, opts] = compute_opts(corpus_board("easy"));
  auto [b2, o2] = propagate_singles(std::move(board), std::move(opts));
  EXPECT_TRUE(is_completed(b2));
  EXPECT_TRUE(is_valid_solution(b2));
}

TEST(Propagate, FixpointOnBoardsWithoutSingles) {
  // An empty board has no forced cells: propagation is the identity.
  auto [board, opts] = compute_opts(empty_board(3));
  auto [b2, o2] = propagate_singles(board, opts);
  EXPECT_EQ(b2, board);
  EXPECT_EQ(o2, opts);
}

TEST(Propagate, HardPuzzleNeedsSearchAfterPropagation) {
  auto [board, opts] = compute_opts(corpus_board("escargot"));
  auto [b2, o2] = propagate_singles(board, opts);
  EXPECT_FALSE(is_completed(b2)) << "escargot is not singles-solvable";
  const auto res = solve(b2, o2);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.board, solve_board(corpus_board("escargot")).board);
}

TEST(Fig2Propagated, SolvesCorpus) {
  for (const auto& name : {"mini4", "easy", "medium", "hard"}) {
    const auto puzzle = corpus_board(name);
    const auto seq = solve_board(puzzle);
    const auto sol = solve_with_net(fig2_propagated_net(), puzzle);
    ASSERT_TRUE(sol.has_value()) << name;
    EXPECT_EQ(*sol, seq.board) << name;
  }
}

TEST(Fig2Propagated, ShrinksTheUnfolding) {
  // Ablation: propagation must reduce the number of solveOneLevel records
  // (branching levels) the coordination layer processes.
  const auto puzzle = corpus_board("medium");
  std::uint64_t plain = 0;
  std::uint64_t propagated = 0;
  {
    snet::Network net(fig2_net());
    net.input().inject(board_record(puzzle));
    net.output().collect();
    plain = net.stats().records_in_containing("box:solveOneLevel");
  }
  {
    snet::Network net(fig2_propagated_net());
    net.input().inject(board_record(puzzle));
    net.output().collect();
    propagated = net.stats().records_in_containing("box:solveOneLevel");
  }
  EXPECT_LT(propagated, plain);
}

TEST(Fig2Propagated, DeductionCompletedBoardsStillEmerge) {
  // 'easy' solves by deduction inside the network: the <done> record must
  // still reach the output through the bypass branch.
  const auto records = run_board(fig2_propagated_net(), corpus_board("easy"));
  EXPECT_EQ(solutions_in(records).size(), 1U);
}
