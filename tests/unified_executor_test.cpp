/// The unified work-stealing executor: both concurrency layers on one
/// worker set. Covers the executor primitives (submission, drain,
/// cooperative nested joins, stealing), a flood stress where hundreds of
/// entities run data-parallel with-loops inside box quanta, and a
/// regression pinning deterministic-combinator ordering under the
/// work-stealing scheduler.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/parallel_for.hpp"
#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

namespace rt = snetsac::runtime;
using namespace snet;

namespace {

Record rec_xk(int x, std::int64_t k) {
  Record r;
  r.set_field(field_label("x"), make_value(x));
  r.set_tag(tag_label("k"), k);
  return r;
}

}  // namespace

TEST(Executor, RunsTasksFromExternalThreads) {
  rt::Executor exec(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    exec.submit([&count] { count.fetch_add(1); });
  }
  while (count.load() < 200) {
    std::this_thread::yield();
  }
  EXPECT_EQ(exec.size(), 2U);
  EXPECT_GE(exec.tasks_executed(), 200U);
}

TEST(Executor, DrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    rt::Executor exec(1);
    for (int i = 0; i < 100; ++i) {
      exec.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(Executor, TasksSpawningTasksDuringDrain) {
  std::atomic<int> count{0};
  {
    rt::Executor exec(2);
    exec.submit([&] {
      for (int i = 0; i < 50; ++i) {
        exec.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  // Destructor drains recursively spawned work too.
  EXPECT_EQ(count.load(), 50);
}

TEST(Executor, NestedParallelForOnSingleWorkerDoesNotDeadlock) {
  // The killer case for the old dual-pool design: a fork-join region
  // opened from inside a pool task, on a pool of size one. The cooperative
  // join must let the worker execute its own chunks.
  rt::Executor exec(1);
  std::atomic<std::int64_t> sum{0};
  std::atomic<bool> done{false};
  exec.submit([&] {
    rt::parallel_for_each(exec, 0, 1000, 1,
                          [&](std::int64_t i) { sum.fetch_add(i); });
    done.store(true);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done.load()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "nested join hung";
    std::this_thread::yield();
  }
  EXPECT_EQ(sum.load(), 1000LL * 999 / 2);
}

TEST(Executor, DeeplyNestedJoins) {
  rt::Executor exec(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    rt::parallel_for_each(exec, 0, 2, 1, [&](std::int64_t) { recurse(depth - 1); });
  };
  // From an external thread: joins block; inner joins run cooperatively.
  recurse(6);
  EXPECT_EQ(leaves.load(), 64);
}

TEST(Executor, WorkerSubmissionsAreStealable) {
  rt::Executor exec(4);
  std::atomic<int> count{0};
  constexpr int kTasks = 200;
  exec.submit([&] {
    // All land on this worker's deque; idle workers must steal them.
    for (int i = 0; i < kTasks; ++i) {
      exec.submit([&count] {
        count.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
  });
  while (count.load() < kTasks) {
    std::this_thread::yield();
  }
  EXPECT_GE(exec.tasks_executed(), static_cast<std::uint64_t>(kTasks) + 1);
  // Not asserted > 0 on principle (a 1-core box may finish unstolen), but
  // the counter must at least be wired.
  EXPECT_LE(exec.steals(), exec.tasks_executed());
}

TEST(UnifiedExecutor, FloodStressSacInsideBoxes) {
  // Hundreds of entities (two nested !! splits unfold a replica per (k, j)
  // pair), each box quantum opening a data-parallel with-loop whose chunks
  // run on the *same* executor as the entity quanta. Asserts quiescence is
  // reached, every record is accounted for, and per-box record
  // conservation holds network-wide.
  const sac::Context ctx{4, 1};  // force chunk splitting, grain 1
  auto work = box("work", "(x) -> (x)",
                  [ctx](const BoxInput& in, BoxOutput& out) {
                    const int x = in.get<int>("x");
                    const auto sum = sac::With<std::int64_t>()
                                         .gen({0}, {128},
                                              [&](const sac::Index& iv) {
                                                return iv[0] + x;
                                              })
                                         .fold([](std::int64_t a, std::int64_t b) {
                                           return a + b;
                                         }, 0, ctx);
                    out.out(1, make_value(static_cast<int>(sum % 1000)));
                  });
  // work !! <j> !! <k>: records with distinct (k, j) go to distinct replicas.
  Options opts;
  opts.workers = 8;
  Network net(split(split(work, "j"), "k"), std::move(opts));

  constexpr int kRecords = 400;
  for (int i = 0; i < kRecords; ++i) {
    Record r = rec_xk(i, i % 16);
    r.set_tag(tag_label("j"), (i / 16) % 16);
    net.input().inject(std::move(r));
  }
  const auto out = net.output().collect();  // quiescence: returns only when drained
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kRecords));

  const auto stats = net.stats();
  EXPECT_EQ(stats.injected, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(stats.produced, static_cast<std::uint64_t>(kRecords));
  // Hundreds of entities actually unfolded.
  EXPECT_GE(stats.count_containing("box:work"), 100U);
  // Network-wide conservation: every 1->1 box consumed exactly what it
  // emitted, and box traffic sums to the injected volume.
  std::uint64_t box_in = 0;
  for (const auto& e : stats.entities) {
    if (e.name.find("box:work") != std::string::npos) {
      EXPECT_EQ(e.records_in, e.records_out) << e.name;
      box_in += e.records_in;
    }
  }
  EXPECT_EQ(box_in, static_cast<std::uint64_t>(kRecords));
}

TEST(UnifiedExecutor, NestedNetworkInsideBox) {
  // A box that runs a whole sub-network per record and collects its
  // output. On the shared fixed-size executor this only works because
  // Network::collect waits cooperatively (the worker drives the nested
  // network's quanta itself instead of blocking its slot).
  auto inner_box = box("inner", "(x) -> (x)",
                       [](const BoxInput& in, BoxOutput& out) {
                         out.out(1, make_value(in.get<int>("x") * 2));
                       });
  auto outer = box("outer", "(x) -> (x)",
                   [inner_box](const BoxInput& in, BoxOutput& out) {
                     Options opts;
                     opts.workers = 2;
                     Network sub(inner_box, std::move(opts));
                     sub.input().inject(rec_xk(in.get<int>("x"), 0));
                     const auto res = sub.output().collect();
                     ASSERT_EQ(res.size(), 1U);
                     out.out(1, res[0].field("x"));
                   });
  Network net(outer);
  for (int i = 0; i < 20; ++i) {
    net.input().inject(rec_xk(i, 0));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 20U);
  std::multiset<int> got;
  for (const auto& r : out) {
    got.insert(value_as<int>(r.field("x")));
  }
  std::multiset<int> want;
  for (int i = 0; i < 20; ++i) {
    want.insert(i * 2);
  }
  EXPECT_EQ(got, want);
}

TEST(UnifiedExecutor, DetOrderingSurvivesWorkStealing) {
  // Regression: the deterministic parallel-replication variant must
  // restore injection order no matter how the work-stealing scheduler
  // interleaves quanta. Per-record busy work varies pseudo-randomly to
  // scramble completion order.
  auto work = box("scramble", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    const int x = in.get<int>("x");
                    volatile std::int64_t sink = 0;
                    const int spin = 100 + (x * 2654435761U) % 20000;
                    for (int i = 0; i < spin; ++i) {
                      sink = sink + i;
                    }
                    out.out(1, make_value(x));
                  });
  Options opts;
  opts.workers = 8;
  Network net(split_det(work, "k"), std::move(opts));

  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(rec_xk(i, i % 8));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i)
        << "det region released group " << i << " out of order";
  }
}
