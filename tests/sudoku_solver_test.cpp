/// The sequential solver (paper §3), solution counting, the puzzle
/// generator, and the corpus.

#include <gtest/gtest.h>

#include "sudoku/corpus.hpp"
#include "sudoku/generator.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

TEST(Solver, SolvesEveryCorpusPuzzle) {
  for (const auto& entry : corpus()) {
    const auto puzzle = board_from_string(entry.cells);
    const auto res = solve_board(puzzle);
    EXPECT_TRUE(res.completed) << entry.name;
    EXPECT_TRUE(solves(puzzle, res.board)) << entry.name;
  }
}

TEST(Solver, CorpusPuzzlesHaveUniqueSolutions) {
  for (const auto& entry : corpus()) {
    const auto puzzle = board_from_string(entry.cells);
    EXPECT_EQ(count_solutions(puzzle, 3), 1) << entry.name;
  }
}

TEST(Solver, ReturnsStuckBoardWhenUnsolvable) {
  // An inconsistent-by-options puzzle: (0,8) has no candidates.
  auto b = empty_board(3);
  for (int j = 0; j < 8; ++j) {
    b.set({0, j}, j + 1);
  }
  b.set({1, 8}, 9);
  const auto res = solve_board(b);
  EXPECT_FALSE(res.completed);
  EXPECT_FALSE(is_completed(res.board)) << "paper: returns the stuck board";
}

TEST(Solver, AlreadyCompleteBoardIsFixpoint) {
  const auto full = random_full_board(3, 7);
  const auto res = solve_board(full);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.board, full);
}

TEST(Solver, FirstEmptyAndMinOptionsAgreeOnSolution) {
  const auto puzzle = corpus_board("easy");
  const auto a = solve_board(puzzle, Pick::FirstEmpty);
  const auto b = solve_board(puzzle, Pick::MinOptions);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_EQ(a.board, b.board) << "unique solution: strategies agree";
}

TEST(Solver, MinOptionsSearchesNoMoreNodesOnCorpus) {
  // The paper's motivation for findMinTrues: smaller search tree. Verify
  // on the harder corpus entries.
  for (const auto& name : {"hard", "escargot"}) {
    SolveStats first, mins;
    const auto puzzle = corpus_board(name);
    ASSERT_TRUE(solve_board(puzzle, Pick::FirstEmpty, &first).completed);
    ASSERT_TRUE(solve_board(puzzle, Pick::MinOptions, &mins).completed);
    EXPECT_LE(mins.nodes, first.nodes) << name;
  }
}

TEST(Solver, StatsAreFilled) {
  SolveStats st;
  ASSERT_TRUE(solve_board(corpus_board("easy"), Pick::MinOptions, &st).completed);
  EXPECT_GT(st.nodes, 0U);
  EXPECT_GT(st.placements, 0U);
  EXPECT_GE(st.max_depth, 51) << "easy has 51 blanks: depth reaches the leaf";
}

TEST(Solver, CountSolutionsHonoursLimit) {
  const auto empty = empty_board(2);  // 4x4 empty board: many solutions
  EXPECT_EQ(count_solutions(empty, 1), 1);
  EXPECT_EQ(count_solutions(empty, 5), 5);
}

TEST(Solver, CountSolutionsZeroForContradiction) {
  auto b = empty_board(3);
  for (int j = 0; j < 8; ++j) {
    b.set({0, j}, j + 1);
  }
  b.set({1, 8}, 9);
  EXPECT_EQ(count_solutions(b, 2), 0);
}

TEST(Generator, RandomFullBoardIsValidAndSeeded) {
  const auto a = random_full_board(3, 123);
  EXPECT_TRUE(is_valid_solution(a));
  const auto b = random_full_board(3, 123);
  EXPECT_EQ(a, b) << "same seed, same board";
  const auto c = random_full_board(3, 124);
  EXPECT_NE(a, c) << "different seed should give a different board";
}

TEST(Generator, GeneratesUniqueSolvablePuzzles) {
  const GenOptions opt{.n = 3, .clues = 32, .seed = 9, .ensure_unique = true};
  const auto puzzle = generate(opt);
  EXPECT_TRUE(is_consistent(puzzle));
  EXPECT_GE(level(puzzle), opt.clues);
  EXPECT_EQ(count_solutions(puzzle, 2), 1);
  const auto res = solve_board(puzzle);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(solves(puzzle, res.board));
}

TEST(Generator, FourByFourPuzzles) {
  const GenOptions opt{.n = 2, .clues = 6, .seed = 5, .ensure_unique = true};
  const auto puzzle = generate(opt);
  EXPECT_EQ(board_size(puzzle), 4);
  EXPECT_EQ(count_solutions(puzzle, 2), 1);
}

TEST(Generator, NonUniqueModeReachesClueTarget) {
  const GenOptions opt{.n = 3, .clues = 20, .seed = 11, .ensure_unique = false};
  const auto puzzle = generate(opt);
  EXPECT_EQ(level(puzzle), 20);
  EXPECT_GE(count_solutions(puzzle, 1), 1) << "still solvable";
}

TEST(Generator, RejectsBadClueTargets) {
  EXPECT_THROW(generate(GenOptions{.n = 2, .clues = 17, .seed = 1}), SudokuError);
  EXPECT_THROW(generate(GenOptions{.n = 2, .clues = -1, .seed = 1}), SudokuError);
}

TEST(Corpus, LookupByName) {
  EXPECT_NO_THROW(corpus_board("easy"));
  EXPECT_THROW(corpus_board("nope"), SudokuError);
  EXPECT_GE(corpus().size(), 5U);
}
