/// The S-Net tokeniser: tag-vs-comparison disambiguation, combinator
/// glyphs, diagnostics.

#include <gtest/gtest.h>

#include "snet/text.hpp"

using namespace snet::text;

namespace {
std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : tokenize(src)) {
    out.push_back(t.kind);
  }
  return out;
}
}  // namespace

TEST(Tokenize, TagVersusLessThan) {
  // `<level>` is a tag; `<` followed by space/number is an operator.
  EXPECT_EQ(kinds("<level>"), (std::vector<Tok>{Tok::Tag, Tok::End}));
  EXPECT_EQ(kinds("a < b"), (std::vector<Tok>{Tok::Ident, Tok::Lt, Tok::Ident, Tok::End}));
  EXPECT_EQ(kinds("<level> > 40"),
            (std::vector<Tok>{Tok::Tag, Tok::Gt, Tok::Int, Tok::End}));
  EXPECT_EQ(kinds("1 < 2"), (std::vector<Tok>{Tok::Int, Tok::Lt, Tok::Int, Tok::End}));
  EXPECT_EQ(kinds("<a><b>"), (std::vector<Tok>{Tok::Tag, Tok::Tag, Tok::End}));
}

TEST(Tokenize, TagNameCaptured) {
  const auto toks = tokenize("<done>");
  EXPECT_EQ(toks[0].text, "done");
}

TEST(Tokenize, CombinatorGlyphs) {
  EXPECT_EQ(kinds(".. ** * !! ! || |"),
            (std::vector<Tok>{Tok::DotDot, Tok::StarStar, Tok::Star, Tok::BangBang,
                              Tok::Bang, Tok::BarBar, Tok::Bar, Tok::End}));
}

TEST(Tokenize, ComparisonOperators) {
  EXPECT_EQ(kinds("<= >= == != && !"),
            (std::vector<Tok>{Tok::Le, Tok::Ge, Tok::EqEq, Tok::Ne, Tok::AndAnd,
                              Tok::Bang, Tok::End}));
}

TEST(Tokenize, ArrowVersusMinus) {
  EXPECT_EQ(kinds("-> - 3"),
            (std::vector<Tok>{Tok::Arrow, Tok::Minus, Tok::Int, Tok::End}));
}

TEST(Tokenize, KeywordsAndIdents) {
  EXPECT_EQ(kinds("net box connect filter sync if boxy"),
            (std::vector<Tok>{Tok::KwNet, Tok::KwBox, Tok::KwConnect, Tok::KwFilter,
                              Tok::KwSync, Tok::KwIf, Tok::Ident, Tok::End}));
}

TEST(Tokenize, IntegersAndPositions) {
  const auto toks = tokenize("  42 x");
  EXPECT_EQ(toks[0].kind, Tok::Int);
  EXPECT_EQ(toks[0].ival, 42);
  EXPECT_EQ(toks[0].pos, 2U);
  EXPECT_EQ(toks[1].pos, 5U);
}

TEST(Tokenize, CommentsSkipped) {
  EXPECT_EQ(kinds("a // rest of line ignored\n b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(Tokenize, Errors) {
  EXPECT_THROW(tokenize("a & b"), ParseError);
  EXPECT_THROW(tokenize("a . b"), ParseError);
  EXPECT_THROW(tokenize("€"), ParseError);
}

TEST(Cursor, ExpectAndAccept) {
  Cursor cur(tokenize("a , b"));
  EXPECT_TRUE(cur.at(Tok::Ident));
  EXPECT_EQ(cur.advance().text, "a");
  EXPECT_TRUE(cur.accept(Tok::Comma));
  EXPECT_FALSE(cur.accept(Tok::Comma));
  EXPECT_EQ(cur.expect(Tok::Ident, "test").text, "b");
  EXPECT_TRUE(cur.done());
  EXPECT_THROW(cur.expect(Tok::Ident, "test"), ParseError);
}

TEST(Cursor, PeekAheadClampsAtEnd) {
  Cursor cur(tokenize("a"));
  EXPECT_EQ(cur.peek(0).kind, Tok::Ident);
  EXPECT_EQ(cur.peek(1).kind, Tok::End);
  EXPECT_EQ(cur.peek(99).kind, Tok::End);
}
