/// Execution-context plumbing for the data-parallel layer, plus the
/// copy-on-write behaviour of with-loop results under sharing.

#include <gtest/gtest.h>

#include "sacpp/context.hpp"
#include "sacpp/with_loop.hpp"

using sac::Array;
using sac::Context;
using sac::Index;
using sac::Shape;
using sac::With;

TEST(Context, DefaultIsProcessWide) {
  Context& ctx = sac::default_context();
  EXPECT_GE(ctx.threads, 1U);
  EXPECT_GE(ctx.grain, 1);
  // It is the same object every time (mutable global knob).
  EXPECT_EQ(&sac::default_context(), &ctx);
}

TEST(Context, PoolIsShared) {
  auto& p1 = sac::sac_pool();
  auto& p2 = sac::sac_pool();
  EXPECT_EQ(&p1, &p2);
  EXPECT_GE(p1.size(), 1U);
}

TEST(Context, GrainSuppressesParallelismForSmallLoops) {
  // With a huge grain, even a multi-thread context runs sequentially —
  // results must be identical either way.
  const Context par{8, 1};
  const Context coarse{8, 1 << 30};
  const auto body = [](const Index& iv) { return static_cast<int>(iv[0] * 3); };
  const auto a = With<int>().gen({0}, {1000}, body).genarray(Shape{1000}, 0, par);
  const auto b = With<int>().gen({0}, {1000}, body).genarray(Shape{1000}, 0, coarse);
  EXPECT_EQ(a, b);
}

TEST(ContextCow, ModarrayOnSharedSourceDoesNotMutateIt) {
  const Array<int> src(Shape{64}, 1);
  const Array<int> alias = src;  // shared buffer
  const auto out = With<int>().gen_val({0}, {64}, 2).modarray(src);
  EXPECT_EQ((alias[{0}]), 1);
  EXPECT_EQ((out[{0}]), 2);
}

TEST(ContextCow, ModarrayOnUniqueSourceMayReuseBuffer) {
  // Value semantics permit (not mandate) in-place update of a uniquely
  // owned argument passed by value — the SaC reference-counting trick.
  Array<int> src(Shape{64}, 1);
  const auto* before = src.data().data();
  const auto out = With<int>().gen_val({0}, {64}, 2).modarray(std::move(src));
  EXPECT_EQ(out.data().data(), before) << "unique buffer reused, no copy";
}

TEST(ContextCow, ParallelWriteDetachesOnce) {
  const Context ctx{4, 1};
  const Array<int> base(Shape{256}, 0);
  const Array<int> keep = base;
  const auto out = With<int>()
                       .gen({0}, {256},
                            [](const Index& iv) { return static_cast<int>(iv[0]); })
                       .modarray(base, ctx);
  EXPECT_EQ((keep[{10}]), 0);
  EXPECT_EQ((out[{10}]), 10);
}
