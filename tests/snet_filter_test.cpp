/// Filters: the paper's §4 example, flow inheritance, validation rules,
/// and the textual notation. Also signature and pattern parsing.

#include <gtest/gtest.h>

#include "snet/filter.hpp"
#include "snet/pattern.hpp"
#include "snet/signature.hpp"
#include "snet/text.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {
Record rec(std::initializer_list<std::pair<std::string_view, int>> fields,
           std::initializer_list<std::pair<std::string_view, std::int64_t>> tags = {}) {
  Record r;
  for (const auto& [n, v] : fields) {
    r.set_field(field_label(n), make_value(v));
  }
  for (const auto& [n, v] : tags) {
    r.set_tag(tag_label(n), v);
  }
  return r;
}
}  // namespace

// ---- the paper's exact filter example -----------------------------------

TEST(Filter, PaperExampleTwoOutputRecords) {
  // [{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]
  const auto f = FilterSpec::parse("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]");
  const auto in = rec({{"a", 10}, {"b", 20}}, {{"c", 5}});
  const auto out = f.apply(in);
  ASSERT_EQ(out.size(), 2U);

  // First: field a (original), field z (same value), tag <t> = 0.
  const Record& r1 = out[0];
  EXPECT_EQ(value_as<int>(r1.field("a")), 10);
  EXPECT_EQ(value_as<int>(r1.field("z")), 10);
  EXPECT_EQ(r1.tag("t"), 0) << "new tags default to zero";
  EXPECT_FALSE(r1.has_field("b")) << "pattern labels not in the spec are consumed";
  EXPECT_FALSE(r1.has_tag("c"));

  // Second: field b, field a = b's value, <c> incremented.
  const Record& r2 = out[1];
  EXPECT_EQ(value_as<int>(r2.field("b")), 20);
  EXPECT_EQ(value_as<int>(r2.field("a")), 20);
  EXPECT_EQ(r2.tag("c"), 6);
}

TEST(Filter, FlowInheritanceAttachesExcessLabels) {
  // The paper's Fig. 2 filter: [{} -> {<k>=1}] applied to {board, opts}
  // keeps board and opts through flow inheritance.
  const auto f = FilterSpec::parse("{} -> {<k>=1}");
  const auto out = f.apply(rec({{"board", 1}, {"opts", 2}}));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("k"), 1);
  EXPECT_TRUE(out[0].has_field("board"));
  EXPECT_TRUE(out[0].has_field("opts"));
}

TEST(Filter, InheritanceDoesNotOverwriteProducedLabels) {
  // Excess tag <t> must be discarded when the spec already sets <t>.
  const auto f = FilterSpec::parse("{a} -> {a, <t>=9}");
  const auto out = f.apply(rec({{"a", 1}}, {{"t", 5}}));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("t"), 9);
}

TEST(Filter, PatternLabelsConsumedEvenIfUnreferenced) {
  const auto f = FilterSpec::parse("{a, b} -> {a}");
  const auto out = f.apply(rec({{"a", 1}, {"b", 2}, {"extra", 3}}));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_TRUE(out[0].has_field("a"));
  EXPECT_FALSE(out[0].has_field("b")) << "b consumed by the pattern";
  EXPECT_TRUE(out[0].has_field("extra")) << "extra flow-inherits";
}

TEST(Filter, BareTagCopiesWhenPresentDefaultsOtherwise) {
  const auto f = FilterSpec::parse("{<c>} -> {<c>, <t>}");
  const auto out = f.apply(rec({}, {{"c", 7}}));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("c"), 7);
  EXPECT_EQ(out[0].tag("t"), 0);
}

TEST(Filter, ThrottleFilterSemantics) {
  // {<k>} -> {<k>=<k>%4}
  const auto f = FilterSpec::parse("{<k>} -> {<k>=<k>%4}");
  for (std::int64_t k = 1; k <= 9; ++k) {
    const auto out = f.apply(rec({{"board", 0}}, {{"k", k}}));
    ASSERT_EQ(out.size(), 1U);
    EXPECT_EQ(out[0].tag("k"), k % 4);
    EXPECT_TRUE(out[0].has_field("board"));
  }
}

TEST(Filter, MultiplicationOfRecords) {
  // One record in, three out.
  const auto f = FilterSpec::parse("{x} -> {x}; {y=x}; {}");
  const auto out = f.apply(rec({{"x", 3}}));
  ASSERT_EQ(out.size(), 3U);
  EXPECT_TRUE(out[0].has_field("x"));
  EXPECT_TRUE(out[1].has_field("y"));
  EXPECT_FALSE(out[1].has_field("x"));
  EXPECT_TRUE(out[2].empty());
}

TEST(Filter, NonMatchingRecordThrows) {
  const auto f = FilterSpec::parse("{a} -> {a}");
  EXPECT_THROW(f.apply(rec({{"b", 1}})), FilterError);
}

TEST(Filter, GuardedPattern) {
  const auto f = FilterSpec::parse("{<k>} if <k> > 2 -> {<k>}");
  EXPECT_NO_THROW(f.apply(rec({}, {{"k", 3}})));
  EXPECT_THROW(f.apply(rec({}, {{"k", 1}})), FilterError);
}

// ---- validation ----------------------------------------------------------

TEST(FilterValidation, CopyOfFieldOutsidePatternRejected) {
  EXPECT_THROW(FilterSpec::parse("{a} -> {b}"), FilterError);
}

TEST(FilterValidation, BindSourceOutsidePatternRejected) {
  EXPECT_THROW(FilterSpec::parse("{a} -> {z=b}"), FilterError);
}

TEST(FilterValidation, TagExprOverNonPatternTagRejected) {
  // "Each tag label occurring in the expression must also occur in the
  // pattern."
  EXPECT_THROW(FilterSpec::parse("{<a>} -> {<x>=<b>+1}"), FilterError);
  EXPECT_NO_THROW(FilterSpec::parse("{<a>} -> {<x>=<a>+1}"));
}

TEST(Filter, OutputTypeIsDeclaredLabels) {
  const auto f = FilterSpec::parse("{a,b,<c>} -> {a, z=a, <t>}; {b}");
  const auto t = f.output_type();
  ASSERT_EQ(t.variants().size(), 2U);
  EXPECT_EQ(t.variants()[0], RecordType::of({"a", "z"}, {"t"}));
  EXPECT_EQ(t.variants()[1], RecordType::of({"b"}));
}

TEST(Filter, RoundTripToString) {
  const auto f = FilterSpec::parse("{a,<c>} -> {a, <c>=<c>+1}");
  const auto again = FilterSpec::parse(f.to_string());
  EXPECT_EQ(again.to_string(), f.to_string());
}

// ---- compiled copy plans --------------------------------------------------

TEST(Filter, RandomizedPlannedMatchesReferenceAcrossShapes) {
  // The runtime replays one compiled plan per input ShapeId; the plan must
  // reproduce the per-label reference path bit for bit over *every* record
  // of that shape — including flow-inherited labels the specifier never
  // names. Deterministic LCG so failures replay.
  const std::vector<FilterSpec> specs = {
      FilterSpec::parse("{a} -> {a}"),
      FilterSpec::parse("{a, b} -> {z=a, b, <t>}"),
      FilterSpec::parse("[{a, <c>} -> {a, <c>=<c>+1}; {w=a, <c>}]"),
      FilterSpec::parse("{<c>} -> {<c>=<c>*2, <u>=0}"),
  };
  const std::vector<std::string> extra_fields = {"p", "q", "r"};
  const std::vector<std::string> extra_tags = {"s", "u2"};
  std::uint64_t rng = 0x2545F4914F6CDD1DULL;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  for (int iter = 0; iter < 200; ++iter) {
    const FilterSpec& f = specs[next() % specs.size()];
    // Base labels the pattern needs, plus a random inherited subset.
    Record r = rec({{"a", static_cast<int>(next() % 100)},
                    {"b", static_cast<int>(next() % 100)}},
                   {{"c", static_cast<std::int64_t>(next() % 50)}});
    for (const auto& name : extra_fields) {
      if (next() % 2 == 0) {
        r.set_field(field_label(name), make_value(static_cast<int>(next() % 10)));
      }
    }
    for (const auto& name : extra_tags) {
      if (next() % 2 == 0) {
        r.set_tag(tag_label(name), static_cast<std::int64_t>(next() % 10));
      }
    }
    if (!f.pattern().matches(r)) {
      continue;
    }
    const auto reference = f.apply_matched(r);
    const auto planned = f.apply_planned(r, f.compile(r));
    ASSERT_EQ(planned.size(), reference.size()) << f.to_string();
    for (std::size_t i = 0; i < planned.size(); ++i) {
      EXPECT_EQ(planned[i].to_string(), reference[i].to_string())
          << f.to_string() << " on " << r.to_string();
      EXPECT_EQ(planned[i].shape(), reference[i].shape())
          << "assembled shape diverges from incrementally built shape";
    }
  }
}

TEST(Filter, IdentityPlanDetectedOnlyForPureForwarding) {
  // A single-output plan that moves every input slot to the same rank is
  // flagged identity — FilterEntity then forwards the record without
  // assembling a copy. Anything that renames, drops or adds must not be.
  const auto ident = FilterSpec::parse("{a, b, <c>} -> {a, b, <c>}");
  const Record r = rec({{"a", 1}, {"b", 2}}, {{"c", 3}});
  const auto ident_plans = ident.compile(r);
  ASSERT_EQ(ident_plans.outputs.size(), 1U);
  EXPECT_TRUE(ident_plans.outputs[0].identity);
  // Identity holds through flow inheritance: pattern {} forwards any shape.
  const auto fwd = FilterSpec::parse("{} -> {}");
  EXPECT_TRUE(fwd.compile(r).outputs[0].identity);

  const auto rename = FilterSpec::parse("{a} -> {z=a}");
  const Record ra = rec({{"a", 1}});
  EXPECT_FALSE(rename.compile(ra).outputs[0].identity);
  const auto drop = FilterSpec::parse("{a, b} -> {a}");
  EXPECT_FALSE(drop.compile(r).outputs[0].identity);
  const auto add = FilterSpec::parse("{a} -> {a, <t>}");
  EXPECT_FALSE(add.compile(ra).outputs[0].identity);
}

// ---- patterns & signatures ------------------------------------------------

TEST(Pattern, ParseAndMatch) {
  const auto p = Pattern::parse("{board, <k>}");
  EXPECT_TRUE(p.matches(rec({{"board", 0}}, {{"k", 1}})));
  EXPECT_FALSE(p.matches(rec({{"board", 0}})));
}

TEST(Pattern, GuardedParse) {
  const auto p = Pattern::parse("{<level>} if <level> > 40");
  EXPECT_FALSE(p.matches(rec({}, {{"level", 40}})));
  EXPECT_TRUE(p.matches(rec({}, {{"level", 41}})));
  EXPECT_EQ(p.to_string(), "{<level>} if (<level> > 40)");
}

TEST(Pattern, EmptyPatternMatchesEverything) {
  const auto p = Pattern::parse("{}");
  EXPECT_TRUE(p.matches(rec({})));
  EXPECT_TRUE(p.matches(rec({{"x", 1}}, {{"y", 2}})));
}

TEST(Signature, ParsePaperBoxFoo) {
  // box foo (a,<b>) -> (c) | (c,d,<e>)
  const auto sig = Signature::parse("(a,<b>) -> (c) | (c,d,<e>)");
  ASSERT_EQ(sig.input.labels.size(), 2U);
  EXPECT_EQ(sig.input.labels[0], field_label("a"));
  EXPECT_EQ(sig.input.labels[1], tag_label("b"));
  ASSERT_EQ(sig.outputs.size(), 2U);
  EXPECT_EQ(sig.outputs[0].labels.size(), 1U);
  EXPECT_EQ(sig.outputs[1].labels.size(), 3U);
  // Type signature view: {a,<b>} -> {c} | {c,d,<e>}
  EXPECT_EQ(sig.input_type().to_string(), "{a, <b>}");
  EXPECT_EQ(sig.output_type().to_string(), "{c} | {c, d, <e>}");
}

TEST(Signature, OrderPreservedForBinding) {
  const auto sig = Signature::parse("(x, y) -> (y, x)");
  EXPECT_EQ(sig.outputs[0].labels[0], field_label("y"));
  EXPECT_EQ(sig.outputs[0].labels[1], field_label("x"));
}

TEST(Signature, ParseErrors) {
  EXPECT_THROW(Signature::parse("(a) ->"), text::ParseError);
  EXPECT_THROW(Signature::parse("a -> (b)"), text::ParseError);
  EXPECT_THROW(Signature::parse("(a) -> (b) trailing"), text::ParseError);
}
