/// The deprecated single-funnel shims (inject/close_input/next_output/
/// collect) must keep working as thin wrappers over the default session —
/// this is the one translation unit allowed to use them, with the
/// deprecation diagnostics silenced locally. Everything else in the tree
/// compiles against the port API only.

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

Net adder(const std::string& name, int delta) {
  return box(name, "(x) -> (x)",
             [delta](const BoxInput& in, BoxOutput& out) {
               out.out(1, make_value(in.get<int>("x") + delta));
             });
}

}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Compat, LegacyInjectCollectRidesTheDefaultSession) {
  Network net(adder("inc", 1));
  for (int i = 0; i < 10; ++i) {
    net.inject(int_rec(i));
  }
  const auto out = net.collect();
  EXPECT_EQ(out.size(), 10U);
  EXPECT_EQ(net.stats().injected, 10U);
}

TEST(Compat, LegacyNextOutputAndCloseInput) {
  Network net(adder("inc", 1));
  net.inject(int_rec(41));
  net.close_input();
  const auto r = net.next_output();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(value_as<int>(r->field("x")), 42);
  EXPECT_FALSE(net.next_output().has_value());
}

TEST(Compat, LegacyAndPortApiTargetTheSameStream) {
  Network net(adder("inc", 1));
  net.inject(int_rec(1));               // legacy shim
  net.input().inject(int_rec(2));       // port API
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 2U);
}

TEST(Compat, LegacyInjectAfterCloseStillThrows) {
  Network net(adder("inc", 1));
  net.close_input();
  EXPECT_THROW(net.inject(int_rec(0)), std::logic_error);
}

#pragma GCC diagnostic pop
