/// With-loop semantics: every concrete example from the paper's Section 2,
/// generator precedence, modarray, folds, striding, and the central
/// data-parallel property (results independent of thread count).

#include <gtest/gtest.h>

#include <random>

#include "sacpp/io.hpp"
#include "sacpp/with_loop.hpp"

using sac::Array;
using sac::Context;
using sac::Index;
using sac::Shape;
using sac::ShapeError;
using sac::With;

// ---- The paper's Section 2 examples, verbatim -------------------------

TEST(WithLoopPaper, UniformMatrix42) {
  // with { ([0,0] <= iv < [3,5]) : 42 } : genarray([3,5], 0)
  const auto a = With<int>().gen_val({0, 0}, {3, 5}, 42).genarray(Shape{3, 5}, 0);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ((a[{i, j}]), 42);
    }
  }
}

TEST(WithLoopPaper, IndexVectorBody) {
  // with { ([0] <= iv < [5]) : iv[0] } : genarray([5], 0)  ==  [0,1,2,3,4]
  const auto a = With<int>()
                     .gen({0}, {5}, [](const Index& iv) { return static_cast<int>(iv[0]); })
                     .genarray(Shape{5}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,1,2,3,4]");
}

TEST(WithLoopPaper, DefaultFillsUncoveredCells) {
  // with { ([1] <= iv < [4]) : 42 } : genarray([5], 0)  ==  [0,42,42,42,0]
  const auto a = With<int>().gen_val({1}, {4}, 42).genarray(Shape{5}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,42,42,42,0]");
}

TEST(WithLoopPaper, OverlappingGeneratorsLaterWins) {
  // with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 } : genarray([6], 0)
  //   ==  [0,1,1,2,2,0]  — "the array's value at index location [3] ...
  //   is set to 2 rather than to 1".
  const auto a =
      With<int>().gen_val({1}, {4}, 1).gen_val({3}, {5}, 2).genarray(Shape{6}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,1,1,2,2,0]");
}

TEST(WithLoopPaper, ModarrayKeepsUncoveredElements) {
  // A = [0,1,1,2,2,0];  with { ([0] <= iv < [3]) : 3 } : modarray(A)
  //   ==  [3,3,3,2,2,0]
  const auto A =
      With<int>().gen_val({1}, {4}, 1).gen_val({3}, {5}, 2).genarray(Shape{6}, 0);
  const auto B = With<int>().gen_val({0}, {3}, 3).modarray(A);
  EXPECT_EQ(sac::to_string(B), "[3,3,3,2,2,0]");
  EXPECT_EQ(sac::to_string(A), "[0,1,1,2,2,0]") << "modarray must not mutate A";
}

// ---- General genarray/modarray behaviour -------------------------------

TEST(WithLoop, InclusiveBoundsMatchPaperAddNumberStyle) {
  // ([1,1] <= iv <= [2,2]) covers a 2x2 block.
  const auto a =
      With<int>().gen_incl_val({1, 1}, {2, 2}, 5).genarray(Shape{4, 4}, 0);
  EXPECT_EQ((a[{1, 1}]), 5);
  EXPECT_EQ((a[{2, 2}]), 5);
  EXPECT_EQ((a[{0, 0}]), 0);
  EXPECT_EQ((a[{3, 3}]), 0);
}

TEST(WithLoop, EmptyGeneratorTouchesNothing) {
  const auto a = With<int>().gen_val({3}, {3}, 9).genarray(Shape{5}, 1);
  EXPECT_EQ(sac::to_string(a), "[1,1,1,1,1]");
}

TEST(WithLoop, NoGeneratorsYieldsDefaultArray) {
  const auto a = With<int>().genarray(Shape{2, 2}, 7);
  EXPECT_EQ(sac::to_string(a), "[[7,7],[7,7]]");
}

TEST(WithLoop, GeneratorOutOfBoundsRejected) {
  EXPECT_THROW(With<int>().gen_val({0}, {6}, 1).genarray(Shape{5}, 0), ShapeError);
  EXPECT_THROW(With<int>().gen_val({-1}, {2}, 1).genarray(Shape{5}, 0), ShapeError);
}

TEST(WithLoop, GeneratorRankMismatchRejected) {
  EXPECT_THROW(With<int>().gen_val({0, 0}, {2, 2}, 1).genarray(Shape{5}, 0),
               ShapeError);
  EXPECT_THROW(With<int>().gen({0}, {2, 2}, [](const Index&) { return 1; }),
               ShapeError);
}

TEST(WithLoop, ModarrayPreservesSourceShape) {
  const Array<int> src(Shape{3, 3}, 1);
  const auto out = With<int>().gen_val({1, 1}, {2, 2}, 9).modarray(src);
  EXPECT_EQ(out.shape(), src.shape());
  EXPECT_EQ((out[{1, 1}]), 9);
  EXPECT_EQ((out[{0, 0}]), 1);
}

TEST(WithLoop, RankZeroGenarray) {
  // A rank-0 with-loop assigns the single scalar position.
  const auto s = With<int>().gen_val({}, {}, 5).genarray(Shape{}, 0);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), 5);
}

TEST(WithLoop, BodySeesIndexVector) {
  const auto a = With<int>()
                     .gen({0, 0}, {3, 4},
                          [](const Index& iv) {
                            return static_cast<int>(10 * iv[0] + iv[1]);
                          })
                     .genarray(Shape{3, 4}, -1);
  EXPECT_EQ((a[{2, 3}]), 23);
  EXPECT_EQ((a[{0, 0}]), 0);
}

// ---- Striding (SaC step/width) -----------------------------------------

TEST(WithLoopStride, StepSelectsEveryNth) {
  const auto a =
      With<int>().gen_val({0}, {10}, 1).step({3}).genarray(Shape{10}, 0);
  EXPECT_EQ(sac::to_string(a), "[1,0,0,1,0,0,1,0,0,1]");
}

TEST(WithLoopStride, WidthSelectsBlocks) {
  const auto a = With<int>()
                     .gen_val({0}, {10}, 1)
                     .step({4})
                     .width({2})
                     .genarray(Shape{10}, 0);
  EXPECT_EQ(sac::to_string(a), "[1,1,0,0,1,1,0,0,1,1]");
}

TEST(WithLoopStride, InvalidStrideRejected) {
  EXPECT_THROW(
      With<int>().gen_val({0}, {4}, 1).step({0}).genarray(Shape{4}, 0),
      ShapeError);
  EXPECT_THROW(With<int>()
                   .gen_val({0}, {4}, 1)
                   .step({2})
                   .width({3})
                   .genarray(Shape{4}, 0),
               ShapeError);
  EXPECT_THROW(With<int>().step({2}), std::logic_error)
      << "step before any generator";
}

// ---- Folds --------------------------------------------------------------

TEST(WithLoopFold, SumOverGenerator) {
  const int sum = With<int>()
                      .gen({0}, {100}, [](const Index& iv) { return static_cast<int>(iv[0]); })
                      .fold([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 4950);
}

TEST(WithLoopFold, MultipleGeneratorsAccumulate) {
  const int sum = With<int>()
                      .gen_val({0}, {3}, 1)
                      .gen_val({0}, {4}, 10)
                      .fold([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 3 + 40);
}

TEST(WithLoopFold, BoolConjunction) {
  const bool all = With<bool>()
                       .gen({0}, {10}, [](const Index& iv) { return iv[0] < 10; })
                       .fold([](bool a, bool b) { return a && b; }, true);
  EXPECT_TRUE(all);
  const bool any = With<bool>()
                       .gen({0}, {10}, [](const Index& iv) { return iv[0] == 11; })
                       .fold([](bool a, bool b) { return a || b; }, false);
  EXPECT_FALSE(any);
}

TEST(WithLoopFold, EmptyGeneratorYieldsNeutral) {
  const int sum =
      With<int>().gen_val({2}, {2}, 5).fold([](int a, int b) { return a + b; }, 17);
  EXPECT_EQ(sum, 17);
}

// ---- Data parallelism: thread-count invariance (the SaC property) -------

class WithLoopParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(WithLoopParallel, GenarrayResultIndependentOfThreads) {
  Context ctx{GetParam(), 1};  // grain 1 forces splitting
  const std::int64_t R = 64;
  const std::int64_t C = 37;
  const auto body = [](const Index& iv) {
    return static_cast<int>(iv[0] * 131 + iv[1] * 17);
  };
  const auto par = With<int>().gen({0, 0}, {R, C}, body).genarray(Shape{R, C}, -1, ctx);
  Context seq{1, 1};
  const auto ref = With<int>().gen({0, 0}, {R, C}, body).genarray(Shape{R, C}, -1, seq);
  EXPECT_EQ(par, ref);
}

TEST_P(WithLoopParallel, OverlappingGeneratorsStayOrderedUnderParallelism) {
  Context ctx{GetParam(), 1};
  const auto a = With<int>()
                     .gen_val({0, 0}, {50, 50}, 1)
                     .gen_val({10, 10}, {40, 40}, 2)
                     .gen_val({20, 20}, {30, 30}, 3)
                     .genarray(Shape{50, 50}, 0, ctx);
  EXPECT_EQ((a[{0, 0}]), 1);
  EXPECT_EQ((a[{10, 10}]), 2);
  EXPECT_EQ((a[{25, 25}]), 3);
}

TEST_P(WithLoopParallel, FoldResultIndependentOfThreads) {
  Context ctx{GetParam(), 1};
  const std::int64_t N = 10'000;
  const auto sum = With<std::int64_t>()
                       .gen({0}, {N}, [](const Index& iv) { return iv[0]; })
                       .fold([](std::int64_t a, std::int64_t b) { return a + b; }, 0,
                             ctx);
  EXPECT_EQ(sum, N * (N - 1) / 2);
}

TEST_P(WithLoopParallel, BoolGenarrayUnderParallelism) {
  // Byte-backed bool storage: concurrent chunk writes must not interfere.
  Context ctx{GetParam(), 1};
  const auto a = With<bool>()
                     .gen({0}, {1024}, [](const Index& iv) { return iv[0] % 3 == 0; })
                     .genarray(Shape{1024}, false, ctx);
  for (std::int64_t i = 0; i < 1024; ++i) {
    EXPECT_EQ((a[{i}]), i % 3 == 0) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, WithLoopParallel,
                         ::testing::Values(1U, 2U, 3U, 4U, 8U));

// ---- Typed kernel API (compiled engine) ---------------------------------

namespace {
const Context kCompiled1{1, 1024, true};
const Context kReference1{1, 1024, false};
}  // namespace

TEST(WithLoopKernel, CoordinateBodyRank1) {
  const auto a = With<int>()
                     .gen_kernel({2}, {9}, [](std::int64_t j) { return static_cast<int>(j * j); })
                     .genarray(Shape{10}, -1, kCompiled1);
  const auto r = With<int>()
                     .gen_kernel({2}, {9}, [](std::int64_t j) { return static_cast<int>(j * j); })
                     .genarray(Shape{10}, -1, kReference1);
  EXPECT_EQ((a[{0}]), -1);
  EXPECT_EQ((a[{2}]), 4);
  EXPECT_EQ((a[{8}]), 64);
  EXPECT_EQ(a, r) << "compiled and reference kernel paths must agree";
}

TEST(WithLoopKernel, CoordinateBodyRank2) {
  const auto w = With<int>().gen_kernel({0, 0}, {7, 5}, [](std::int64_t i, std::int64_t j) {
    return static_cast<int>(10 * i + j);
  });
  const auto a = w.genarray(Shape{7, 5}, -1, kCompiled1);
  EXPECT_EQ(a, w.genarray(Shape{7, 5}, -1, kReference1));
  EXPECT_EQ((a[{6, 4}]), 64);
}

TEST(WithLoopKernel, CoordinateBodyRank3) {
  const auto w = With<int>().gen_kernel(
      {0, 0, 0}, {3, 4, 5},
      [](std::int64_t i, std::int64_t j, std::int64_t k) {
        return static_cast<int>(100 * i + 10 * j + k);
      });
  const auto a = w.genarray(Shape{3, 4, 5}, -1, kCompiled1);
  EXPECT_EQ(a, w.genarray(Shape{3, 4, 5}, -1, kReference1));
  EXPECT_EQ((a[{2, 3, 4}]), 234);
}

TEST(WithLoopKernel, RawSegmentKernel) {
  // The full-control form: writes out[base + (j - col_lo)] directly.
  const auto w = With<int>().gen_kernel(
      {0, 0}, {6, 8},
      [](int* out, std::int64_t base, const Index& pre, std::int64_t lo,
         std::int64_t hi) {
        int* p = out + base;
        for (std::int64_t j = lo; j < hi; ++j) {
          p[j - lo] = static_cast<int>(pre[0] * 100 + j);
        }
      });
  const auto a = w.genarray(Shape{6, 8}, -1, kCompiled1);
  EXPECT_EQ(a, w.genarray(Shape{6, 8}, -1, kReference1));
  EXPECT_EQ((a[{5, 7}]), 507);
}

TEST(WithLoopKernel, CoordinateArityMustMatchRank) {
  EXPECT_THROW(With<int>()
                   .gen_kernel({0, 0}, {3, 3}, [](std::int64_t j) { return static_cast<int>(j); })
                   .genarray(Shape{3, 3}, 0, kCompiled1),
               ShapeError);
  EXPECT_THROW(With<int>()
                   .gen_kernel({0}, {3},
                               [](std::int64_t i, std::int64_t j) {
                                 return static_cast<int>(i + j);
                               })
                   .genarray(Shape{3}, 0, kReference1),
               ShapeError);
}

TEST(WithLoopKernel, KernelInFold) {
  const auto w = With<std::int64_t>().gen_kernel(
      {0, 0}, {100, 50}, [](std::int64_t i, std::int64_t j) { return i + j; });
  const auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
  EXPECT_EQ(w.fold(plus, 0, kCompiled1), w.fold(plus, 0, kReference1));
}

TEST(WithLoopKernel, KernelWithStriding) {
  const auto w = With<int>()
                     .gen_kernel({0, 0}, {9, 9},
                                 [](std::int64_t i, std::int64_t j) {
                                   return static_cast<int>(i * 9 + j);
                                 })
                     .step({2, 3})
                     .width({1, 2});
  EXPECT_EQ(w.genarray(Shape{9, 9}, -1, kCompiled1),
            w.genarray(Shape{9, 9}, -1, kReference1));
}

// ---- Randomized compiled-vs-reference equivalence -----------------------
//
// The two engines share nothing but the generator list: the reference path
// walks elements recursively through std::function bodies; the compiled
// path decomposes into row segments with setup-time overlap resolution.
// Bit-identical results over random shapes/generators/striding are the
// strongest cheap evidence the decomposition is right.

namespace {

struct RandomCase {
  With<int> with;
  Shape shape;
};

RandomCase random_case(std::mt19937& rng) {
  std::uniform_int_distribution<int> rank_d(0, 3);
  std::uniform_int_distribution<int> ext_d(1, 9);
  std::uniform_int_distribution<int> gens_d(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  const int rank = rank_d(rng);
  std::vector<std::int64_t> dims;
  for (int a = 0; a < rank; ++a) {
    dims.push_back(ext_d(rng));
  }
  const Shape shape{std::vector<std::int64_t>(dims)};
  With<int> w;
  const int ngens = gens_d(rng);
  for (int g = 0; g < ngens; ++g) {
    Index lb;
    Index ub;
    for (int a = 0; a < rank; ++a) {
      std::uniform_int_distribution<std::int64_t> lo_d(0, dims[static_cast<std::size_t>(a)]);
      const std::int64_t lo = lo_d(rng);
      std::uniform_int_distribution<std::int64_t> hi_d(lo, dims[static_cast<std::size_t>(a)]);
      lb.push_back(lo);
      ub.push_back(hi_d(rng));
    }
    if (coin(rng)) {
      w.gen_val(lb, ub, 1000 + g);
    } else {
      // Deterministic iv-dependent body, distinct per generator ordinal.
      w.gen(lb, ub, [g](const Index& iv) {
        std::int64_t h = g * 7919;
        for (std::size_t a = 0; a < iv.size(); ++a) {
          h = h * 31 + iv[a] * static_cast<std::int64_t>(a + 1);
        }
        return static_cast<int>(h % 1000);
      });
    }
    if (rank > 0 && coin(rng)) {
      Index st;
      Index wd;
      std::uniform_int_distribution<std::int64_t> st_d(1, 3);
      for (int a = 0; a < rank; ++a) {
        st.push_back(st_d(rng));
      }
      for (int a = 0; a < rank; ++a) {
        std::uniform_int_distribution<std::int64_t> wd_d(1, st[static_cast<std::size_t>(a)]);
        wd.push_back(wd_d(rng));
      }
      w.step(st).width(wd);
    }
  }
  return RandomCase{std::move(w), shape};
}

}  // namespace

TEST(WithLoopEquivalence, RandomGenarrayCompiledMatchesReference) {
  std::mt19937 rng(20260808);
  const Context par4{4, 1, true};
  for (int trial = 0; trial < 300; ++trial) {
    const RandomCase c = random_case(rng);
    const auto ref = c.with.genarray(c.shape, -7, kReference1);
    const auto com = c.with.genarray(c.shape, -7, kCompiled1);
    ASSERT_EQ(com, ref) << "trial " << trial << " shape " << c.shape.to_string();
    ASSERT_EQ(c.with.genarray(c.shape, -7, par4), ref)
        << "parallel trial " << trial;
  }
}

TEST(WithLoopEquivalence, RandomModarrayCompiledMatchesReference) {
  std::mt19937 rng(977);
  const Context par4{4, 1, true};
  for (int trial = 0; trial < 200; ++trial) {
    const RandomCase c = random_case(rng);
    Array<int> src(c.shape, 0);
    auto& buf = src.mutable_data();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<int>(rng() % 100);
    }
    const auto ref = c.with.modarray(src, kReference1);
    ASSERT_EQ(c.with.modarray(src, kCompiled1), ref) << "trial " << trial;
    ASSERT_EQ(c.with.modarray(src, par4), ref) << "parallel trial " << trial;
  }
}

TEST(WithLoopEquivalence, RandomFoldCompiledMatchesReference) {
  // Fold must see every member of every generator (no overlap resolution);
  // + over int is associative with identity 0 (parallel partials each start
  // from the neutral, so it must be the combine identity, as in SaC).
  std::mt19937 rng(4242);
  const Context par4{4, 1, true};
  const auto plus = [](int a, int b) { return a + b; };
  for (int trial = 0; trial < 200; ++trial) {
    const RandomCase c = random_case(rng);
    const int ref = c.with.fold(plus, 0, kReference1);
    ASSERT_EQ(c.with.fold(plus, 0, kCompiled1), ref) << "trial " << trial;
    ASSERT_EQ(c.with.fold(plus, 0, par4), ref) << "parallel trial " << trial;
  }
}

TEST(WithLoopEquivalence, RandomBoolGenarrayCompiledMatchesReference) {
  // bool is stored as one byte per element; the compiled engine must cast
  // through the storage type identically to the reference engine.
  std::mt19937 rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    std::uniform_int_distribution<std::int64_t> ext_d(1, 40);
    const std::int64_t n = ext_d(rng);
    std::uniform_int_distribution<std::int64_t> cut_d(0, n);
    const std::int64_t cut = cut_d(rng);
    const auto w = With<bool>()
                       .gen({0}, {cut}, [](const Index& iv) { return iv[0] % 2 == 0; })
                       .gen_val({cut / 2}, {cut}, true);
    const auto ref = w.genarray(Shape{n}, false, kReference1);
    ASSERT_EQ(w.genarray(Shape{n}, false, kCompiled1), ref) << "trial " << trial;
  }
}
