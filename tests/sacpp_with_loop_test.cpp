/// With-loop semantics: every concrete example from the paper's Section 2,
/// generator precedence, modarray, folds, striding, and the central
/// data-parallel property (results independent of thread count).

#include <gtest/gtest.h>

#include "sacpp/io.hpp"
#include "sacpp/with_loop.hpp"

using sac::Array;
using sac::Context;
using sac::Index;
using sac::Shape;
using sac::ShapeError;
using sac::With;

// ---- The paper's Section 2 examples, verbatim -------------------------

TEST(WithLoopPaper, UniformMatrix42) {
  // with { ([0,0] <= iv < [3,5]) : 42 } : genarray([3,5], 0)
  const auto a = With<int>().gen_val({0, 0}, {3, 5}, 42).genarray(Shape{3, 5}, 0);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ((a[{i, j}]), 42);
    }
  }
}

TEST(WithLoopPaper, IndexVectorBody) {
  // with { ([0] <= iv < [5]) : iv[0] } : genarray([5], 0)  ==  [0,1,2,3,4]
  const auto a = With<int>()
                     .gen({0}, {5}, [](const Index& iv) { return static_cast<int>(iv[0]); })
                     .genarray(Shape{5}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,1,2,3,4]");
}

TEST(WithLoopPaper, DefaultFillsUncoveredCells) {
  // with { ([1] <= iv < [4]) : 42 } : genarray([5], 0)  ==  [0,42,42,42,0]
  const auto a = With<int>().gen_val({1}, {4}, 42).genarray(Shape{5}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,42,42,42,0]");
}

TEST(WithLoopPaper, OverlappingGeneratorsLaterWins) {
  // with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 } : genarray([6], 0)
  //   ==  [0,1,1,2,2,0]  — "the array's value at index location [3] ...
  //   is set to 2 rather than to 1".
  const auto a =
      With<int>().gen_val({1}, {4}, 1).gen_val({3}, {5}, 2).genarray(Shape{6}, 0);
  EXPECT_EQ(sac::to_string(a), "[0,1,1,2,2,0]");
}

TEST(WithLoopPaper, ModarrayKeepsUncoveredElements) {
  // A = [0,1,1,2,2,0];  with { ([0] <= iv < [3]) : 3 } : modarray(A)
  //   ==  [3,3,3,2,2,0]
  const auto A =
      With<int>().gen_val({1}, {4}, 1).gen_val({3}, {5}, 2).genarray(Shape{6}, 0);
  const auto B = With<int>().gen_val({0}, {3}, 3).modarray(A);
  EXPECT_EQ(sac::to_string(B), "[3,3,3,2,2,0]");
  EXPECT_EQ(sac::to_string(A), "[0,1,1,2,2,0]") << "modarray must not mutate A";
}

// ---- General genarray/modarray behaviour -------------------------------

TEST(WithLoop, InclusiveBoundsMatchPaperAddNumberStyle) {
  // ([1,1] <= iv <= [2,2]) covers a 2x2 block.
  const auto a =
      With<int>().gen_incl_val({1, 1}, {2, 2}, 5).genarray(Shape{4, 4}, 0);
  EXPECT_EQ((a[{1, 1}]), 5);
  EXPECT_EQ((a[{2, 2}]), 5);
  EXPECT_EQ((a[{0, 0}]), 0);
  EXPECT_EQ((a[{3, 3}]), 0);
}

TEST(WithLoop, EmptyGeneratorTouchesNothing) {
  const auto a = With<int>().gen_val({3}, {3}, 9).genarray(Shape{5}, 1);
  EXPECT_EQ(sac::to_string(a), "[1,1,1,1,1]");
}

TEST(WithLoop, NoGeneratorsYieldsDefaultArray) {
  const auto a = With<int>().genarray(Shape{2, 2}, 7);
  EXPECT_EQ(sac::to_string(a), "[[7,7],[7,7]]");
}

TEST(WithLoop, GeneratorOutOfBoundsRejected) {
  EXPECT_THROW(With<int>().gen_val({0}, {6}, 1).genarray(Shape{5}, 0), ShapeError);
  EXPECT_THROW(With<int>().gen_val({-1}, {2}, 1).genarray(Shape{5}, 0), ShapeError);
}

TEST(WithLoop, GeneratorRankMismatchRejected) {
  EXPECT_THROW(With<int>().gen_val({0, 0}, {2, 2}, 1).genarray(Shape{5}, 0),
               ShapeError);
  EXPECT_THROW(With<int>().gen({0}, {2, 2}, [](const Index&) { return 1; }),
               ShapeError);
}

TEST(WithLoop, ModarrayPreservesSourceShape) {
  const Array<int> src(Shape{3, 3}, 1);
  const auto out = With<int>().gen_val({1, 1}, {2, 2}, 9).modarray(src);
  EXPECT_EQ(out.shape(), src.shape());
  EXPECT_EQ((out[{1, 1}]), 9);
  EXPECT_EQ((out[{0, 0}]), 1);
}

TEST(WithLoop, RankZeroGenarray) {
  // A rank-0 with-loop assigns the single scalar position.
  const auto s = With<int>().gen_val({}, {}, 5).genarray(Shape{}, 0);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), 5);
}

TEST(WithLoop, BodySeesIndexVector) {
  const auto a = With<int>()
                     .gen({0, 0}, {3, 4},
                          [](const Index& iv) {
                            return static_cast<int>(10 * iv[0] + iv[1]);
                          })
                     .genarray(Shape{3, 4}, -1);
  EXPECT_EQ((a[{2, 3}]), 23);
  EXPECT_EQ((a[{0, 0}]), 0);
}

// ---- Striding (SaC step/width) -----------------------------------------

TEST(WithLoopStride, StepSelectsEveryNth) {
  const auto a =
      With<int>().gen_val({0}, {10}, 1).step({3}).genarray(Shape{10}, 0);
  EXPECT_EQ(sac::to_string(a), "[1,0,0,1,0,0,1,0,0,1]");
}

TEST(WithLoopStride, WidthSelectsBlocks) {
  const auto a = With<int>()
                     .gen_val({0}, {10}, 1)
                     .step({4})
                     .width({2})
                     .genarray(Shape{10}, 0);
  EXPECT_EQ(sac::to_string(a), "[1,1,0,0,1,1,0,0,1,1]");
}

TEST(WithLoopStride, InvalidStrideRejected) {
  EXPECT_THROW(
      With<int>().gen_val({0}, {4}, 1).step({0}).genarray(Shape{4}, 0),
      ShapeError);
  EXPECT_THROW(With<int>()
                   .gen_val({0}, {4}, 1)
                   .step({2})
                   .width({3})
                   .genarray(Shape{4}, 0),
               ShapeError);
  EXPECT_THROW(With<int>().step({2}), std::logic_error)
      << "step before any generator";
}

// ---- Folds --------------------------------------------------------------

TEST(WithLoopFold, SumOverGenerator) {
  const int sum = With<int>()
                      .gen({0}, {100}, [](const Index& iv) { return static_cast<int>(iv[0]); })
                      .fold([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 4950);
}

TEST(WithLoopFold, MultipleGeneratorsAccumulate) {
  const int sum = With<int>()
                      .gen_val({0}, {3}, 1)
                      .gen_val({0}, {4}, 10)
                      .fold([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 3 + 40);
}

TEST(WithLoopFold, BoolConjunction) {
  const bool all = With<bool>()
                       .gen({0}, {10}, [](const Index& iv) { return iv[0] < 10; })
                       .fold([](bool a, bool b) { return a && b; }, true);
  EXPECT_TRUE(all);
  const bool any = With<bool>()
                       .gen({0}, {10}, [](const Index& iv) { return iv[0] == 11; })
                       .fold([](bool a, bool b) { return a || b; }, false);
  EXPECT_FALSE(any);
}

TEST(WithLoopFold, EmptyGeneratorYieldsNeutral) {
  const int sum =
      With<int>().gen_val({2}, {2}, 5).fold([](int a, int b) { return a + b; }, 17);
  EXPECT_EQ(sum, 17);
}

// ---- Data parallelism: thread-count invariance (the SaC property) -------

class WithLoopParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(WithLoopParallel, GenarrayResultIndependentOfThreads) {
  Context ctx{GetParam(), 1};  // grain 1 forces splitting
  const std::int64_t R = 64;
  const std::int64_t C = 37;
  const auto body = [](const Index& iv) {
    return static_cast<int>(iv[0] * 131 + iv[1] * 17);
  };
  const auto par = With<int>().gen({0, 0}, {R, C}, body).genarray(Shape{R, C}, -1, ctx);
  Context seq{1, 1};
  const auto ref = With<int>().gen({0, 0}, {R, C}, body).genarray(Shape{R, C}, -1, seq);
  EXPECT_EQ(par, ref);
}

TEST_P(WithLoopParallel, OverlappingGeneratorsStayOrderedUnderParallelism) {
  Context ctx{GetParam(), 1};
  const auto a = With<int>()
                     .gen_val({0, 0}, {50, 50}, 1)
                     .gen_val({10, 10}, {40, 40}, 2)
                     .gen_val({20, 20}, {30, 30}, 3)
                     .genarray(Shape{50, 50}, 0, ctx);
  EXPECT_EQ((a[{0, 0}]), 1);
  EXPECT_EQ((a[{10, 10}]), 2);
  EXPECT_EQ((a[{25, 25}]), 3);
}

TEST_P(WithLoopParallel, FoldResultIndependentOfThreads) {
  Context ctx{GetParam(), 1};
  const std::int64_t N = 10'000;
  const auto sum = With<std::int64_t>()
                       .gen({0}, {N}, [](const Index& iv) { return iv[0]; })
                       .fold([](std::int64_t a, std::int64_t b) { return a + b; }, 0,
                             ctx);
  EXPECT_EQ(sum, N * (N - 1) / 2);
}

TEST_P(WithLoopParallel, BoolGenarrayUnderParallelism) {
  // Byte-backed bool storage: concurrent chunk writes must not interfere.
  Context ctx{GetParam(), 1};
  const auto a = With<bool>()
                     .gen({0}, {1024}, [](const Index& iv) { return iv[0] % 3 == 0; })
                     .genarray(Shape{1024}, false, ctx);
  for (std::int64_t i = 0; i < 1024; ++i) {
    EXPECT_EQ((a[{i}]), i % 3 == 0) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, WithLoopParallel,
                         ::testing::Values(1U, 2U, 3U, 4U, 8U));
