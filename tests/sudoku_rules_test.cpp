/// Board representation and the paper's Section 3 rule functions.

#include <gtest/gtest.h>

#include "sudoku/corpus.hpp"
#include "sudoku/generator.hpp"
#include "sudoku/rules.hpp"

using namespace sudoku;

TEST(Board, EmptyBoardShape) {
  const auto b = empty_board(3);
  EXPECT_EQ(board_size(b), 9);
  EXPECT_EQ(board_box(b), 3);
  EXPECT_EQ(level(b), 0);
  EXPECT_FALSE(is_completed(b));
  EXPECT_TRUE(is_consistent(b));
}

TEST(Board, RejectsBadShapes) {
  EXPECT_THROW(empty_board(1), SudokuError);
  EXPECT_THROW(board_size(BoardArray(sac::Shape{4, 5}, 0)), SudokuError);
  EXPECT_THROW(board_size(BoardArray(sac::Shape{5, 5}, 0)), SudokuError)
      << "5 is not a perfect square";
}

TEST(Board, ParseCharacterFormat) {
  const auto b = corpus_board("easy");
  EXPECT_EQ(board_size(b), 9);
  EXPECT_EQ((b[{0, 0}]), 5);
  EXPECT_EQ((b[{0, 2}]), 0);
  EXPECT_EQ(level(b), 30);
}

TEST(Board, ParseNumericFormat) {
  // 4x4 in whitespace-separated form, with a zero and double digits absent.
  const std::string txt = "1 0 4 0  0 0 1 0  0 2 0 0  0 3 0 2";
  const auto b = board_from_string(txt);
  EXPECT_EQ(board_size(b), 4);
  EXPECT_EQ((b[{0, 2}]), 4);
}

TEST(Board, ParseRejectsGarbage) {
  EXPECT_THROW(board_from_string("12x"), SudokuError);
  EXPECT_THROW(board_from_string("123"), SudokuError) << "not square";
  EXPECT_THROW(board_from_string("11.."), SudokuError) << "rule violation";
}

TEST(Board, LineRoundTrip) {
  const auto b = corpus_board("easy");
  EXPECT_EQ(board_from_string(board_to_line(b)), b);
}

TEST(Board, ConsistencyDetectsViolations) {
  auto b = empty_board(2);
  b.set({0, 0}, 1);
  EXPECT_TRUE(is_consistent(b));
  b.set({0, 3}, 1);  // same row
  EXPECT_FALSE(is_consistent(b));
  b.set({0, 3}, 0);
  b.set({3, 0}, 1);  // same column
  EXPECT_FALSE(is_consistent(b));
  b.set({3, 0}, 0);
  b.set({1, 1}, 1);  // same 2x2 box
  EXPECT_FALSE(is_consistent(b));
}

TEST(Rules, InitialOptsAllTrue) {
  const auto o = initial_opts(4);
  EXPECT_EQ(o.shape(), (sac::Shape{4, 4, 4}));
  EXPECT_EQ(options_at(o, 0, 0), 4);
}

TEST(Rules, AddNumberEliminatesExactlyTheRuleAffectedOptions) {
  // Mirror of the paper's description for 9x9: placing k at (i,j) falsifies
  //  - all options at (i,j),
  //  - option k along row i and column j,
  //  - option k in the 3x3 box.
  const int N = 9;
  auto [board, opts] = compute_opts(empty_board(3));
  auto [b2, o2] = add_number(4, 5, 7, board, opts);
  EXPECT_EQ((b2[{4, 5}]), 7);
  const int k0 = 6;
  for (int t = 0; t < N; ++t) {
    EXPECT_FALSE((o2[{4, 5, t}])) << "all options at the cell";
    EXPECT_FALSE((o2[{4, t, k0}])) << "k in row";
    EXPECT_FALSE((o2[{t, 5, k0}])) << "k in column";
  }
  for (int a = 3; a < 6; ++a) {
    for (int b = 3; b < 6; ++b) {
      EXPECT_FALSE((o2[{a, b, k0}])) << "k in the box";
    }
  }
  // Untouched example positions:
  EXPECT_TRUE((o2[{0, 0, k0}]));
  EXPECT_TRUE((o2[{4, 0, 0}])) << "other numbers in the row survive";
  EXPECT_TRUE((o2[{3, 3, 0}])) << "other numbers in the box survive";
}

TEST(Rules, AddNumberIsValueSemantics) {
  auto [board, opts] = compute_opts(empty_board(3));
  const auto before = opts;
  auto [b2, o2] = add_number(0, 0, 1, board, opts);
  EXPECT_EQ(opts, before) << "inputs are unchanged (SaC value semantics)";
  EXPECT_NE(o2, before);
}

TEST(Rules, AddNumberRangeChecks) {
  auto [board, opts] = compute_opts(empty_board(2));
  EXPECT_THROW(add_number(4, 0, 1, board, opts), SudokuError);
  EXPECT_THROW(add_number(0, 0, 5, board, opts), SudokuError);
  EXPECT_THROW(add_number(0, 0, 0, board, opts), SudokuError);
}

TEST(Rules, ComputeOptsMatchesIncrementalConstruction) {
  // compute_opts(board) must equal the result of adding the givens one by
  // one starting from an empty board.
  const auto puzzle = corpus_board("mini4");
  auto [b1, o1] = compute_opts(puzzle);
  auto board = empty_board(2);
  auto opts = initial_opts(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (puzzle[{i, j}] != 0) {
        auto [b, o] = add_number(i, j, puzzle[{i, j}], board, opts);
        board = b;
        opts = o;
      }
    }
  }
  EXPECT_EQ(o1, opts);
  EXPECT_EQ(b1, puzzle);
}

TEST(Rules, IsStuckDetectsDeadEnds) {
  auto [board, opts] = compute_opts(corpus_board("easy"));
  EXPECT_FALSE(is_stuck(board, opts));
  // Manufacture a dead end: a cell whose row+column+box cover all digits.
  auto b = empty_board(3);
  // Row 0: 1..8 in columns 0..7; column 8 gets 9 via column constraint.
  for (int j = 0; j < 8; ++j) {
    b.set({0, j}, j + 1);
  }
  b.set({1, 8}, 9);  // same column as (0,8)
  auto [bb, oo] = compute_opts(b);
  EXPECT_EQ(options_at(oo, 0, 8), 0);
  EXPECT_TRUE(is_stuck(bb, oo));
}

TEST(Rules, FindFirstRowMajor) {
  auto b = corpus_board("easy");
  const auto pos = find_first(b);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, std::make_pair(0, 2)) << "first empty cell of 'easy'";
  // Full board: no position.
  const auto full = random_full_board(2, 1);
  EXPECT_FALSE(find_first(full).has_value());
}

TEST(Rules, FindMinTruesPicksMostConstrainedCell) {
  auto [board, opts] = compute_opts(corpus_board("easy"));
  const auto pos = find_min_trues(board, opts);
  ASSERT_TRUE(pos.has_value());
  const auto [i, j] = *pos;
  EXPECT_EQ((board[{i, j}]), 0) << "must be a free cell";
  const int best = options_at(opts, i, j);
  for (int a = 0; a < 9; ++a) {
    for (int bcol = 0; bcol < 9; ++bcol) {
      if (board[{a, bcol}] == 0) {
        EXPECT_LE(best, options_at(opts, a, bcol));
      }
    }
  }
}

TEST(Rules, LevelCountsPlacedNumbers) {
  auto b = empty_board(2);
  EXPECT_EQ(level(b), 0);
  b.set({0, 0}, 1);
  b.set({2, 2}, 3);
  EXPECT_EQ(level(b), 2);
}
