/// Shape-interning invariants: interning stability under add/remove
/// round-trips, bloom-mask consistency and false-positive fallback, and
/// route-table memoization vs. fresh matching (property-style loops over
/// randomized label sets).

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "snet/record.hpp"
#include "snet/router.hpp"
#include "snet/rtypes.hpp"
#include "snet/shapes.hpp"
#include "snet/value.hpp"

namespace snet {
namespace {

// A fixed pool of labels shared by the property loops (interning is
// process-wide, so reusing names across tests is intentional).
std::vector<Label> label_pool() {
  std::vector<Label> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(field_label("shp_f" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    pool.push_back(tag_label("shp_t" + std::to_string(i)));
  }
  return pool;
}

void add_label(Record& r, Label l) {
  if (l.kind == LabelKind::Field) {
    r.set_field(l, make_value(1));
  } else {
    r.set_tag(l, 1);
  }
}

void remove_label(Record& r, Label l) {
  if (l.kind == LabelKind::Field) {
    r.remove_field(l);
  } else {
    r.remove_tag(l);
  }
}

/// The matcher the shapes replaced: a per-label presence scan.
bool naive_matches(const RecordType& t, const Record& r) {
  return std::all_of(t.labels().begin(), t.labels().end(),
                     [&](Label l) { return r.has(l); });
}

TEST(Shapes, EmptyRecordHasShapeZero) {
  const Record r;
  EXPECT_EQ(r.shape(), 0U);
  EXPECT_EQ(r.shape_mask(), 0U);
}

TEST(Shapes, SameLabelSetSameShapeRegardlessOfOrder) {
  Record a;
  a.set_field("shp_f0", make_value(1));
  a.set_field("shp_f1", make_value(2));
  a.set_tag("shp_t0", 3);

  Record b;
  b.set_tag("shp_t0", 9);
  b.set_field("shp_f1", make_value(8));
  b.set_field("shp_f0", make_value(7));

  EXPECT_NE(a.shape(), 0U);
  EXPECT_EQ(a.shape(), b.shape());
  EXPECT_EQ(a.shape_mask(), b.shape_mask());
}

TEST(Shapes, InterningStableUnderAddRemoveRoundTrip) {
  Record r;
  r.set_field("shp_f0", make_value(1));
  r.set_tag("shp_t0", 2);
  const ShapeId before = r.shape();
  const std::uint64_t mask_before = r.shape_mask();

  r.set_field("shp_f1", make_value(3));
  EXPECT_NE(r.shape(), before);
  r.remove_field(field_label("shp_f1"));
  EXPECT_EQ(r.shape(), before);
  EXPECT_EQ(r.shape_mask(), mask_before);

  // Overwriting an existing label is a no-op transition.
  r.set_field("shp_f0", make_value(42));
  EXPECT_EQ(r.shape(), before);
  // Removing an absent label too.
  r.remove_tag(tag_label("shp_t5"));
  EXPECT_EQ(r.shape(), before);
}

TEST(Shapes, MaskIsUnionOfLabelBits) {
  Record r;
  std::uint64_t expect = 0;
  for (const Label l : label_pool()) {
    add_label(r, l);
    expect |= label_bit(l);
    EXPECT_EQ(r.shape_mask(), expect);
  }
  EXPECT_EQ(ShapeRegistry::instance().mask(r.shape()), expect);
}

TEST(Shapes, ShapeTracksRandomMutationSequences) {
  const std::vector<Label> pool = label_pool();
  std::mt19937 rng(20260730);
  Record r;
  std::set<Label> model;
  for (int step = 0; step < 3000; ++step) {
    const Label l = pool[rng() % pool.size()];
    if (rng() % 2 == 0) {
      add_label(r, l);
      model.insert(l);
    } else {
      remove_label(r, l);
      model.erase(l);
    }
    // The record's incremental shape must equal interning its labels fresh.
    const ShapeRef fresh = ShapeRegistry::instance().intern(
        std::vector<Label>(model.begin(), model.end()));
    ASSERT_EQ(r.shape(), fresh.id) << "step " << step;
    ASSERT_EQ(r.shape_mask(), fresh.mask) << "step " << step;
    // And the registry must reproduce the exact label set.
    const std::vector<Label> ls = ShapeRegistry::instance().labels(r.shape());
    ASSERT_TRUE(std::equal(ls.begin(), ls.end(), model.begin(), model.end()))
        << "step " << step;
  }
}

TEST(Shapes, MatchEquivalenceRandomized) {
  const std::vector<Label> pool = label_pool();
  std::mt19937 rng(4242);
  for (int iter = 0; iter < 2000; ++iter) {
    Record r;
    for (const Label l : pool) {
      if (rng() % 2 == 0) {
        add_label(r, l);
      }
    }
    std::vector<Label> type_labels;
    for (const Label l : pool) {
      if (rng() % 3 == 0) {
        type_labels.push_back(l);
      }
    }
    const RecordType t(std::move(type_labels));
    ASSERT_EQ(t.matches(r), naive_matches(t, r)) << "iter " << iter;
  }
}

TEST(Shapes, MaskFalsePositiveFallsBackToSubsetTest) {
  // Find two distinct field labels sharing a bloom bit: the mask cannot
  // distinguish them, so matching must fall through to the exact test.
  const Label a = field_label("shp_fp_base");
  Label b{};
  bool found = false;
  for (int i = 0; i < 4096 && !found; ++i) {
    b = field_label("shp_fp_cand" + std::to_string(i));
    found = label_bit(b) == label_bit(a);
  }
  ASSERT_TRUE(found) << "no bloom collision in 4096 probes (64 buckets)";

  Record r;
  r.set_field(a, make_value(1));
  const RecordType needs_b({b});
  // Mask reject passes (identical bits) — the exact test must still say no.
  ASSERT_EQ(needs_b.shape_mask() & ~r.shape_mask(), 0U);
  EXPECT_FALSE(needs_b.matches(r));
  // And the memoized verdict must be stable on re-query.
  EXPECT_FALSE(needs_b.matches(r));
}

TEST(Shapes, RouterAgreesWithFreshMatchScores) {
  const std::vector<Label> pool = label_pool();
  std::mt19937 rng(777);
  for (int round = 0; round < 200; ++round) {
    // Random 4-branch inputs, 1-2 variants each.
    std::vector<MultiType> inputs;
    for (int bi = 0; bi < 4; ++bi) {
      MultiType mt;
      const int variants = 1 + static_cast<int>(rng() % 2);
      for (int v = 0; v < variants; ++v) {
        std::vector<Label> ls;
        for (const Label l : pool) {
          if (rng() % 3 == 0) {
            ls.push_back(l);
          }
        }
        mt.add(RecordType(std::move(ls)));
      }
      inputs.push_back(std::move(mt));
    }
    detail::ParallelRouter router{inputs};
    for (int rec = 0; rec < 20; ++rec) {
      Record r;
      for (const Label l : pool) {
        if (rng() % 2 == 0) {
          add_label(r, l);
        }
      }
      // Fresh (unmemoized) argmax set.
      int best = -1;
      for (const auto& mt : inputs) {
        best = std::max(best, mt.match_score(r));
      }
      const std::size_t chosen = router.route(r);
      if (best < 0) {
        ASSERT_EQ(chosen, detail::ParallelRouter::npos);
      } else {
        ASSERT_NE(chosen, detail::ParallelRouter::npos);
        ASSERT_EQ(inputs[chosen].match_score(r), best)
            << "router picked a non-best branch";
      }
    }
  }
}

TEST(Shapes, RouterRotatesTies) {
  const MultiType both{RecordType::of({"shp_f0"})};
  detail::ParallelRouter router{{both, both}};
  Record r;
  r.set_field("shp_f0", make_value(1));
  const std::size_t first = router.route(r);
  const std::size_t second = router.route(r);
  const std::size_t third = router.route(r);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

// Adversarial shape churn: route tables are capped, evict wholesale on
// overflow, and under sustained churn disable caching — decisions stay
// correct either way, and memory stays bounded (ROADMAP follow-up, PR 2).

namespace {

/// A record with a distinct label subset per \p seed (12 pool labels →
/// 4096 distinct shapes, far beyond the small caps used below).
Record churn_record(const std::vector<Label>& pool, unsigned seed) {
  Record r;
  r.set_field("shp_f0", make_value(1));  // keep every record matchable
  for (std::size_t i = 1; i < pool.size(); ++i) {
    if ((seed >> (i - 1)) & 1U) {
      add_label(r, pool[i]);
    }
  }
  return r;
}

}  // namespace

TEST(Shapes, RouterTableStaysBoundedUnderShapeChurn) {
  const std::vector<Label> pool = label_pool();
  const MultiType input{RecordType::of({"shp_f0"})};
  constexpr std::size_t kCap = 8;
  detail::ParallelRouter router{{input}, kCap};
  for (unsigned seed = 0; seed < 2048; ++seed) {
    Record r = churn_record(pool, seed);
    ASSERT_EQ(router.route(r), 0U);  // still routes correctly every time
    ASSERT_LE(router.table_size(), kCap);
  }
  // 2048 distinct shapes through a cap of 8 blows through every reset:
  // the router must have fallen back to uncached matching.
  EXPECT_TRUE(router.caching_disabled());
  EXPECT_EQ(router.table_size(), 0U);
  // Still correct after the fallback, including the no-match path.
  Record miss;
  miss.set_tag("shp_t0", 1);
  EXPECT_EQ(router.route(miss), detail::ParallelRouter::npos);
}

TEST(Shapes, RouterEvictsAndRecoversUnderMildDrift) {
  const MultiType input{RecordType::of({"shp_f0"})};
  constexpr std::size_t kCap = 16;
  detail::ParallelRouter router{{input}, kCap};
  const std::vector<Label> pool = label_pool();
  // One eviction's worth of drift, then a steady state: caching must
  // survive (resets below the churn threshold) and keep memoizing.
  for (unsigned seed = 0; seed < kCap + 4; ++seed) {
    ASSERT_EQ(router.route(churn_record(pool, seed)), 0U);
  }
  EXPECT_FALSE(router.caching_disabled());
  EXPECT_GE(router.resets(), 1U);
  Record steady = churn_record(pool, 1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(router.route(steady), 0U);
  }
  EXPECT_LE(router.table_size(), kCap);
}

TEST(Shapes, ShapeMemoStaysBoundedAndFallsBackUnderChurn) {
  const std::vector<Label> pool = label_pool();
  const RecordType want = RecordType::of({"shp_f0"});
  constexpr std::size_t kCap = 8;
  detail::ShapeMemo<bool> memo(kCap);
  int fills = 0;
  for (unsigned seed = 0; seed < 2048; ++seed) {
    Record r = churn_record(pool, seed);
    const bool got = memo.get_or(r.shape(), [&] {
      ++fills;
      return naive_matches(want, r);
    });
    ASSERT_EQ(got, naive_matches(want, r));
    ASSERT_LE(memo.size(), kCap);
  }
  EXPECT_TRUE(memo.caching_disabled());
  EXPECT_GT(fills, 0);
  // Disabled caching means every call fills — but stays correct.
  Record probe = churn_record(pool, 3);
  const int before = fills;
  memo.get_or(probe.shape(), [&] {
    ++fills;
    return naive_matches(want, probe);
  });
  EXPECT_EQ(fills, before + 1);
}

}  // namespace
}  // namespace snet
