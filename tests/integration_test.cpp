/// Whole-system integration: both concurrency layers active at once —
/// data-parallel with-loops executing *inside* boxes that the S-Net
/// scheduler runs concurrently (the paper's actual deployment model:
/// "addNumber and findMinTrues can be executed in a data-parallel fashion,
/// and the recursive calls in solve can be done concurrently").

#include <gtest/gtest.h>

#include "sacpp/context.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/generator.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {

/// RAII guard for the process-wide SaC context.
class SacThreadsGuard {
 public:
  explicit SacThreadsGuard(unsigned threads, std::int64_t grain) {
    saved_ = sac::default_context();
    sac::default_context() = sac::Context{threads, grain};
  }
  ~SacThreadsGuard() { sac::default_context() = saved_; }

 private:
  sac::Context saved_;
};

}  // namespace

TEST(Integration, DataParallelBoxesUnderConcurrentScheduling) {
  // Force with-loop splitting (grain 1) while multiple S-Net workers run
  // boxes concurrently: the shared SaC pool must serve nested fork-join
  // regions from several worker threads at once.
  SacThreadsGuard guard(4, 1);
  const auto puzzle = corpus_board("medium");
  const auto seq = solve_board(puzzle);
  snet::Options opts;
  opts.workers = 4;
  const auto sol = solve_with_net(fig2_net(), puzzle, std::move(opts));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, seq.board);
}

TEST(Integration, AllSolversAgreeOnFreshPuzzles) {
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    const auto puzzle =
        generate(GenOptions{.n = 3, .clues = 30, .seed = seed, .ensure_unique = true});
    const auto seq = solve_board(puzzle);
    ASSERT_TRUE(seq.completed) << seed;
    const std::vector<std::pair<const char*, snet::Net>> nets = {
        {"fig1", fig1_net()},
        {"fig2", fig2_net()},
        {"fig3", fig3_net()},
        {"fig2p", fig2_propagated_net()},
    };
    for (const auto& [name, topo] : nets) {
      const auto sol = solve_with_net(topo, puzzle);
      ASSERT_TRUE(sol.has_value()) << name << " seed " << seed;
      EXPECT_EQ(*sol, seq.board) << name << " seed " << seed;
    }
  }
}

TEST(Integration, TraceObserverReconstructsPipelineActivity) {
  // "All streams can be observed individually": reconstruct per-kind
  // record flows from the observer and cross-check against stats().
  std::mutex mu;
  std::map<std::string, int> per_entity;
  snet::Options opts;
  opts.trace = [&](const std::string& entity, const snet::Record&) {
    const std::lock_guard lock(mu);
    ++per_entity[entity];
  };
  snet::Network net(fig1_net(), std::move(opts));
  net.input().inject(board_record(corpus_board("mini4")));
  net.output().collect();
  const auto stats = net.stats();
  std::uint64_t from_stats = 0;
  int from_trace = 0;
  for (const auto& e : stats.entities) {
    from_stats += e.records_in;
  }
  for (const auto& [name, count] : per_entity) {
    from_trace += count;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(from_trace), from_stats);
}

TEST(Integration, SequentialAndNetworkShareTheRulesSubstrate) {
  // The networks use the exact same addNumber/with-loop substrate as the
  // sequential solver: a board solved by hand-rolled addNumber calls must
  // match the computeOpts box output. (Catches divergence between layers.)
  const auto puzzle = corpus_board("mini4");
  auto [b_direct, o_direct] = compute_opts(puzzle);
  snet::Network net(compute_opts_box());
  net.input().inject(board_record(puzzle));
  auto records = net.output().collect();
  ASSERT_EQ(records.size(), 1U);
  const auto& b_net = snet::value_as<BoardArray>(records[0].field("board"));
  const auto& o_net = snet::value_as<OptsArray>(records[0].field("opts"));
  EXPECT_EQ(b_net, b_direct);
  EXPECT_EQ(o_net, o_direct);
}
