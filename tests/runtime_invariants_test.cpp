/// The checked-build invariant layer and the deterministic SimExecutor:
/// schedule determinism (same seed == same schedule), wedge detection
/// (a join no pending task can satisfy throws with the decision trace),
/// a deliberately injected lost wakeup caught by the detector the
/// protocol checks use, conservation checks passing on live and
/// quiescent networks, and — in SNETSAC_CHECKED builds — the dynamic
/// lock-order registry rejecting rank inversions and recursive
/// acquisition.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/invariants.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/sim_executor.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

using snetsac::runtime::Mutex;
using snetsac::runtime::ProtocolInvariantError;
using snetsac::runtime::SimExecutor;

namespace {

/// Runs `count` cross-submitting tasks to completion and returns the
/// schedule (task ids in execution order).
std::vector<std::uint64_t> run_schedule(std::uint64_t seed,
                                        SimExecutor::Strategy strategy) {
  SimExecutor::Options opts;
  opts.seed = seed;
  opts.strategy = strategy;
  SimExecutor sim(opts);
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    sim.submit([&sim, &order, i] {
      order.push_back(static_cast<std::uint64_t>(i));
      if (i % 2 == 0) {
        sim.submit([&order, i] {
          order.push_back(static_cast<std::uint64_t>(100 + i));
        });
      }
    });
  }
  sim.drain();
  return order;
}

}  // namespace

TEST(SimExecutor, SameSeedReplaysTheIdenticalSchedule) {
  for (const auto strategy :
       {SimExecutor::Strategy::kPct, SimExecutor::Strategy::kRandom}) {
    const auto a = run_schedule(42, strategy);
    const auto b = run_schedule(42, strategy);
    EXPECT_EQ(a, b) << "one seed produced two different schedules";
    ASSERT_EQ(a.size(), 9U);  // 6 roots + 3 children, none lost
  }
}

TEST(SimExecutor, SeedsActuallyPerturbTheSchedule) {
  // Not a per-pair guarantee (two seeds may collide), but across a handful
  // of seeds the strategy must produce more than one distinct order —
  // otherwise the sweep explores nothing.
  std::vector<std::vector<std::uint64_t>> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    seen.push_back(run_schedule(seed, SimExecutor::Strategy::kRandom));
  }
  bool any_different = false;
  for (const auto& s : seen) {
    any_different = any_different || s != seen.front();
  }
  EXPECT_TRUE(any_different) << "8 seeds, one schedule: the RNG is not wired";
}

TEST(SimExecutor, ReplayFollowsTheRecordedChoices) {
  SimExecutor::Options opts;
  opts.seed = 7;
  opts.strategy = SimExecutor::Strategy::kRandom;
  std::vector<std::uint32_t> choices;
  {
    SimExecutor sim(opts);
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 4; ++i) {
      sim.submit([&order, i] { order.push_back(static_cast<std::uint64_t>(i)); });
    }
    sim.drain();
    choices = sim.choice_log();
  }
  SimExecutor::Options replay_opts;
  replay_opts.strategy = SimExecutor::Strategy::kReplay;
  replay_opts.replay = choices;
  SimExecutor sim(replay_opts);
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    sim.submit([&order, i] { order.push_back(static_cast<std::uint64_t>(i)); });
  }
  sim.drain();
  // Rebuild the original order from the recorded choices independently.
  std::vector<std::uint64_t> expect_order;
  {
    std::vector<std::uint64_t> pending{0, 1, 2, 3};
    for (const std::uint32_t c : choices) {
      expect_order.push_back(pending[c]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(c));
    }
  }
  EXPECT_EQ(order, expect_order);
}

TEST(SimExecutor, WedgedJoinThrowsWithTheDecisionTrace) {
  SimExecutor::Options opts;
  opts.seed = 3;
  SimExecutor sim(opts);
  sim.submit([] {});  // one task, then the pending set is dry
  Mutex mu;
  snetsac::runtime::CondVar cv;
  try {
    sim.help_until(mu, cv, [] { return false; });
    FAIL() << "an unsatisfiable join did not wedge";
  } catch (const ProtocolInvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lost wakeup"), std::string::npos) << what;
    EXPECT_NE(what.find("schedule trace"), std::string::npos)
        << "wedge report lacks the decision trace: " << what;
    EXPECT_NE(what.find("seed 3"), std::string::npos)
        << "wedge report lacks the reproducing seed: " << what;
  }
}

TEST(Invariants, InjectedLostWakeupIsCaughtByTheDetector) {
  // The classic bug, injected deliberately: a consumer drains a bounded
  // queue but "forgets" take_released, leaving a registered credit waiter
  // sleeping on credit that already exists. lost_wakeup_suspected — the
  // exact query Network::check_protocol_invariants runs over staging
  // queues and entity inboxes — must flag the state.
  snetsac::runtime::MpscQueue<int> q;
  q.set_capacity(4);
  for (int i = 0; i < 4; ++i) {
    q.push(i);
  }
  bool fired = false;
  ASSERT_TRUE(q.wait_for_credit([&fired] { fired = true; }))
      << "queue at capacity refused to register a credit waiter";
  EXPECT_FALSE(q.lost_wakeup_suspected()) << "no drain happened yet";

  std::vector<int> drained;
  EXPECT_EQ(q.drain_into(drained, 4), 4U);
  // BUG (injected): no take_released after the drain.
  ASSERT_TRUE(q.lost_wakeup_suspected())
      << "drained-below-watermark queue with a sleeping waiter not flagged";
  EXPECT_FALSE(fired);
  // And the invariant layer turns the detection into the standard report.
  EXPECT_THROW(snetsac::runtime::invariant_failure(
                   "no lost wakeups", "injected: drain without take_released"),
               ProtocolInvariantError);

  // The fix: collecting released waiters clears the suspicion and wakes
  // the producer.
  std::vector<std::function<void()>> released;
  q.take_released(released);
  for (const auto& cb : released) {
    cb();
  }
  EXPECT_TRUE(fired);
  EXPECT_FALSE(q.lost_wakeup_suspected());
}

TEST(Invariants, ProtocolChecksPassOnLiveAndQuiescentNetworks) {
  using namespace snet;
  Options o;
  o.workers = 2;
  // Unbounded output account: all 32 records are injected before any are
  // popped, which under a bound would (correctly) block the inject gate
  // with nobody draining. The bounded-credit laws are exercised by the
  // schedcheck scenarios, where pumping interleaves injects and pops.
  Network net(box("inc", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    out.out(1, make_value(in.get<int>("x") + 1));
                  }),
              std::move(o));
  Session s = net.open_session();
  for (int i = 0; i < 32; ++i) {
    Record r;
    r.set_field(field_label("x"), make_value(i));
    s.input().inject(std::move(r));
    if (i % 8 == 0) {
      // Mid-flight: conservation must hold at any safe point, not only
      // at quiescence.
      net.check_protocol_invariants(/*expect_quiescent=*/false);
    }
  }
  s.close();
  EXPECT_EQ(s.output().collect().size(), 32U);
  net.wait();
  net.check_protocol_invariants(/*expect_quiescent=*/true);
}

#if SNETSAC_CHECKED

TEST(LockOrder, RankInversionIsRejected) {
  Mutex low;
  low.set_order(10, "test.low");
  Mutex high;
  high.set_order(20, "test.high");
  high.lock();
  EXPECT_THROW(low.lock(), ProtocolInvariantError)
      << "rank 10 acquired under rank 20 without complaint";
  high.unlock();
  // The legal order is clean.
  low.lock();
  high.lock();
  high.unlock();
  low.unlock();
}

TEST(LockOrder, RecursiveAcquisitionIsRejected) {
  Mutex mu;
  mu.set_order(0, "test.recursive");
  mu.lock();
  EXPECT_THROW(snetsac::runtime::checked::note_lock_attempt(
                   &mu, 0, "test.recursive"),
               ProtocolInvariantError);
  mu.unlock();
}

TEST(LockOrder, AssertHeldVerifiesDynamically) {
  Mutex mu;
  EXPECT_THROW(mu.assert_held(), ProtocolInvariantError);
  mu.lock();
  mu.assert_held();  // must not throw
  mu.unlock();
}

TEST(LockOrder, ThreadRoleCatchesQuantumReentry) {
  snetsac::runtime::ThreadRole role;
  const snetsac::runtime::RoleGuard outer(role);
  role.assert_held();
  EXPECT_THROW(role.acquire(), ProtocolInvariantError)
      << "same-thread re-entry into a held role not detected";
}

#else

TEST(LockOrder, RegistryRequiresCheckedBuild) {
  GTEST_SKIP() << "dynamic lock-order registry is compiled only with "
                  "-DSNETSAC_CHECKED=ON";
}

#endif  // SNETSAC_CHECKED
