/// Port/session client API: independent logical sessions over one shared
/// instantiated topology. Records are session-stamped on entry and
/// demultiplexed back to the owning session's OutputPort — two interleaved
/// clients must each receive exactly their own outputs, including through
/// deterministic regions, synchrocells, and dynamically unfolding stars.

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
    out.out(1, in.field("x"));
  });
}

Net adder(const std::string& name, int delta) {
  return box(name, "(x) -> (x)",
             [delta](const BoxInput& in, BoxOutput& out) {
               out.out(1, make_value(in.get<int>("x") + delta));
             });
}

std::multiset<int> xs_of(const std::vector<Record>& recs) {
  std::multiset<int> out;
  for (const auto& r : recs) {
    out.insert(value_as<int>(r.field("x")));
  }
  return out;
}

Options workers(unsigned w) {
  Options o;
  o.workers = w;
  return o;
}

}  // namespace

TEST(Session, TwoInterleavedSessionsReceiveExactlyTheirOwnOutputs) {
  Network net(adder("inc", 1), workers(4));
  Session a = net.open_session();
  Session b = net.open_session();
  std::multiset<int> want_a;
  std::multiset<int> want_b;
  for (int i = 0; i < 200; ++i) {
    a.input().inject(int_rec(i));
    want_a.insert(i + 1);
    b.input().inject(int_rec(1000 + i));
    want_b.insert(1000 + i + 1);
  }
  a.close();
  b.close();
  // Collect b first: demux must not depend on consumption order.
  EXPECT_EQ(xs_of(b.output().collect()), want_b);
  EXPECT_EQ(xs_of(a.output().collect()), want_a);
}

TEST(Session, DemuxHoldsUnderDetCombinator) {
  // A deterministic region's collector restores *per-group* order across
  // the session mix; the session demux must still split the merged stream
  // correctly, and each session must see its own records in injection
  // order (det order is global, sessions interleave it — but within one
  // session the relative order is preserved).
  Network net(parallel_det(adder("even", 0), ident("bypass")), workers(4));
  Session a = net.open_session();
  Session b = net.open_session();
  for (int i = 0; i < 100; ++i) {
    a.input().inject(int_rec(2 * i));
    b.input().inject(int_rec(2 * i + 1));
  }
  a.close();
  b.close();
  const auto out_a = a.output().collect();
  const auto out_b = b.output().collect();
  ASSERT_EQ(out_a.size(), 100U);
  ASSERT_EQ(out_b.size(), 100U);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(value_as<int>(out_a[static_cast<std::size_t>(i)].field("x")), 2 * i);
    EXPECT_EQ(value_as<int>(out_b[static_cast<std::size_t>(i)].field("x")),
              2 * i + 1);
  }
}

TEST(Session, ConcurrentClientThreadsShareOneTopology) {
  // The multi-tenant serving scenario: N client threads, one network.
  constexpr int kClients = 8;
  constexpr int kEach = 250;
  Network net(adder("inc", 1) >> adder("inc2", 1), workers(4));
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&net, &mismatches, c] {
        Session s = net.open_session();
        const int base = c * 10000;
        for (int i = 0; i < kEach; ++i) {
          s.input().inject(int_rec(base + i));
        }
        const auto out = s.output().collect();
        if (out.size() != static_cast<std::size_t>(kEach)) {
          mismatches.fetch_add(1);
          return;
        }
        std::multiset<int> got = xs_of(out);
        for (int i = 0; i < kEach; ++i) {
          if (got.count(base + i + 2) != 1) {
            mismatches.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  // The shared topology served every client: one entity graph, not one
  // per request (the default session is lazy — never touched, never
  // counted, and wait() does not require closing it).
  EXPECT_EQ(net.stats().sessions, static_cast<std::uint64_t>(kClients));
  net.wait();
}

TEST(Session, OnOutputCallbackStreamsRecordsWithoutBuffering) {
  Network net(adder("inc", 1), workers(2));
  Session s = net.open_session();
  std::mutex mu;
  std::vector<int> seen;
  s.output().on_output([&](Record r) {
    const std::lock_guard lock(mu);
    seen.push_back(value_as<int>(r.field("x")));
  });
  for (int i = 0; i < 50; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  net.wait();  // the default session is lazy: only s gates quiescence
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 50U);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(Session, OutputPortIsRangeIterable) {
  Network net(adder("inc", 1), workers(2));
  for (int i = 0; i < 20; ++i) {
    net.input().inject(int_rec(i));
  }
  net.input().close();
  std::multiset<int> got;
  for (Record& r : net.output()) {
    got.insert(value_as<int>(r.field("x")));
  }
  std::multiset<int> want;
  for (int i = 0; i < 20; ++i) {
    want.insert(i + 1);
  }
  EXPECT_EQ(got, want);
}

TEST(Session, DroppedHandleReleasesTheSessionAndNetworkStillQuiesces) {
  Network net(ident("id"), workers(2));
  {
    Session s = net.open_session();
    s.input().inject(int_rec(7));
    // Handle goes out of scope without close or drain: the release
    // closes the input and discards the output, so wait() below cannot
    // wedge on the forgotten session.
  }
  net.wait();
}

TEST(Session, AbandonedSessionDoesNotWedgeOtherSessions) {
  // A dropped handle with a *bounded*, never-consumed output buffer must
  // not leave the shared output entity stalled: released sessions drop
  // their outputs, so other clients' streams keep flowing.
  Options o;
  o.workers = 2;
  o.output_capacity = 2;
  Network net(adder("inc", 1), std::move(o));
  {
    Session ghost = net.open_session();
    for (int i = 0; i < 50; ++i) {
      ghost.input().inject(int_rec(i));
    }
    // Dropped with (up to) 50 results nobody will ever read.
  }
  Session alive = net.open_session();
  std::jthread feeder([&] {
    for (int i = 0; i < 100; ++i) {
      alive.input().inject(int_rec(1000 + i));
    }
    alive.input().close();
  });
  std::multiset<int> got;
  while (auto r = alive.output().next()) {
    got.insert(value_as<int>(r->field("x")));
  }
  feeder.join();
  ASSERT_EQ(got.size(), 100U);
  EXPECT_EQ(*got.begin(), 1001);
  net.wait();  // ghost's records drained (dropped), alive closed: quiesced
}

TEST(Session, DefaultSessionAndExplicitSessionsCoexist) {
  Network net(adder("inc", 1), workers(2));
  Session s = net.open_session();
  net.input().inject(int_rec(10));
  s.input().inject(int_rec(20));
  s.close();
  const auto session_out = s.output().collect();
  ASSERT_EQ(session_out.size(), 1U);
  EXPECT_EQ(value_as<int>(session_out[0].field("x")), 21);
  const auto default_out = net.output().collect();
  ASSERT_EQ(default_out.size(), 1U);
  EXPECT_EQ(value_as<int>(default_out[0].field("x")), 11);
}

TEST(Session, InjectAfterCloseThrowsPerSession) {
  Network net(ident("id"), workers(1));
  Session a = net.open_session();
  Session b = net.open_session();
  a.close();
  EXPECT_THROW(a.input().inject(int_rec(1)), std::logic_error);
  // Closing one session must not close its siblings.
  b.input().inject(int_rec(2));
  b.close();
  EXPECT_EQ(b.output().collect().size(), 1U);
  net.input().close();
  net.wait();
}

TEST(Session, SessionsUnderBoundedStreams) {
  // Sessions and backpressure compose: both clients keep their streams
  // intact while the shared bounded pipeline throttles them.
  Options o;
  o.workers = 2;
  o.inbox_capacity = 4;
  o.output_capacity = 4;
  Network net(adder("inc", 1), std::move(o));
  Session a = net.open_session();
  Session b = net.open_session();
  std::jthread feed_a([&] {
    for (int i = 0; i < 300; ++i) {
      a.input().inject(int_rec(i));
    }
    a.close();
  });
  std::jthread feed_b([&] {
    for (int i = 0; i < 300; ++i) {
      b.input().inject(int_rec(100000 + i));
    }
    b.close();
  });
  std::vector<Record> got_a;
  std::vector<Record> got_b;
  // Drain with next(), not collect(): collect() closes the input, which
  // would race the feeder threads still injecting.
  std::jthread drain_a([&] {
    while (auto r = a.output().next()) {
      got_a.push_back(std::move(*r));
    }
  });
  std::jthread drain_b([&] {
    while (auto r = b.output().next()) {
      got_b.push_back(std::move(*r));
    }
  });
  drain_a.join();
  drain_b.join();
  EXPECT_EQ(got_a.size(), 300U);
  EXPECT_EQ(got_b.size(), 300U);
  for (const auto& r : got_a) {
    EXPECT_LT(value_as<int>(r.field("x")), 100000);
  }
  for (const auto& r : got_b) {
    EXPECT_GE(value_as<int>(r.field("x")), 100000);
  }
}
