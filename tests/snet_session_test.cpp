/// Port/session client API: independent logical sessions over one shared
/// instantiated topology. Records are session-stamped on entry and
/// demultiplexed back to the owning session's OutputPort — two interleaved
/// clients must each receive exactly their own outputs, including through
/// deterministic regions, synchrocells, and dynamically unfolding stars.
/// Per-session QoS: a slow reader must only throttle itself (output
/// credit), a hot injector must not monopolise admission (weighted DRR),
/// and a det-heavy tenant must hit its interior cap policy (Spill keeps
/// ordering, FailFast errors only the offender).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
    out.out(1, in.field("x"));
  });
}

Net adder(const std::string& name, int delta) {
  return box(name, "(x) -> (x)",
             [delta](const BoxInput& in, BoxOutput& out) {
               out.out(1, make_value(in.get<int>("x") + delta));
             });
}

/// `(x) -> (x)` box burning ~\p spin_iters of CPU per record: makes one
/// parallel branch (or a pipeline stage) measurably slow.
Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;  // unsigned: the sum may wrap
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

std::multiset<int> xs_of(const std::vector<Record>& recs) {
  std::multiset<int> out;
  for (const auto& r : recs) {
    out.insert(value_as<int>(r.field("x")));
  }
  return out;
}

Options workers(unsigned w) {
  Options o;
  o.workers = w;
  return o;
}

/// The stats row of session \p id (empty row if reclaimed).
SessionStats stats_of(const Network& net, std::uint32_t id) {
  for (const auto& row : net.stats().session_stats) {
    if (row.id == id) {
      return row;
    }
  }
  return {};
}

/// Polls (bounded) until \p pred on the session's stats row holds.
bool poll_session(const Network& net, std::uint32_t id,
                  const std::function<bool(const SessionStats&)>& pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred(stats_of(net, id))) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

}  // namespace

TEST(Session, TwoInterleavedSessionsReceiveExactlyTheirOwnOutputs) {
  Network net(adder("inc", 1), workers(4));
  Session a = net.open_session();
  Session b = net.open_session();
  std::multiset<int> want_a;
  std::multiset<int> want_b;
  for (int i = 0; i < 200; ++i) {
    a.input().inject(int_rec(i));
    want_a.insert(i + 1);
    b.input().inject(int_rec(1000 + i));
    want_b.insert(1000 + i + 1);
  }
  a.close();
  b.close();
  // Collect b first: demux must not depend on consumption order.
  EXPECT_EQ(xs_of(b.output().collect()), want_b);
  EXPECT_EQ(xs_of(a.output().collect()), want_a);
}

TEST(Session, DemuxHoldsUnderDetCombinator) {
  // A deterministic region's collector restores *per-group* order across
  // the session mix; the session demux must still split the merged stream
  // correctly, and each session must see its own records in injection
  // order (det order is global, sessions interleave it — but within one
  // session the relative order is preserved).
  Network net(parallel_det(adder("even", 0), ident("bypass")), workers(4));
  Session a = net.open_session();
  Session b = net.open_session();
  for (int i = 0; i < 100; ++i) {
    a.input().inject(int_rec(2 * i));
    b.input().inject(int_rec(2 * i + 1));
  }
  a.close();
  b.close();
  const auto out_a = a.output().collect();
  const auto out_b = b.output().collect();
  ASSERT_EQ(out_a.size(), 100U);
  ASSERT_EQ(out_b.size(), 100U);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(value_as<int>(out_a[static_cast<std::size_t>(i)].field("x")), 2 * i);
    EXPECT_EQ(value_as<int>(out_b[static_cast<std::size_t>(i)].field("x")),
              2 * i + 1);
  }
}

TEST(Session, ConcurrentClientThreadsShareOneTopology) {
  // The multi-tenant serving scenario: N client threads, one network.
  constexpr int kClients = 8;
  constexpr int kEach = 250;
  Network net(adder("inc", 1) >> adder("inc2", 1), workers(4));
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&net, &mismatches, c] {
        Session s = net.open_session();
        const int base = c * 10000;
        for (int i = 0; i < kEach; ++i) {
          s.input().inject(int_rec(base + i));
        }
        const auto out = s.output().collect();
        if (out.size() != static_cast<std::size_t>(kEach)) {
          mismatches.fetch_add(1);
          return;
        }
        std::multiset<int> got = xs_of(out);
        for (int i = 0; i < kEach; ++i) {
          if (got.count(base + i + 2) != 1) {
            mismatches.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  // The shared topology served every client: one entity graph, not one
  // per request (the default session is lazy — never touched, never
  // counted, and wait() does not require closing it).
  EXPECT_EQ(net.stats().sessions, static_cast<std::uint64_t>(kClients));
  net.wait();
}

TEST(Session, OnOutputCallbackStreamsRecordsWithoutBuffering) {
  Network net(adder("inc", 1), workers(2));
  Session s = net.open_session();
  std::mutex mu;
  std::vector<int> seen;
  s.output().on_output([&](Record r) {
    const std::lock_guard lock(mu);
    seen.push_back(value_as<int>(r.field("x")));
  });
  for (int i = 0; i < 50; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  net.wait();  // the default session is lazy: only s gates quiescence
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 50U);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(Session, OutputPortIsRangeIterable) {
  Network net(adder("inc", 1), workers(2));
  for (int i = 0; i < 20; ++i) {
    net.input().inject(int_rec(i));
  }
  net.input().close();
  std::multiset<int> got;
  for (Record& r : net.output()) {
    got.insert(value_as<int>(r.field("x")));
  }
  std::multiset<int> want;
  for (int i = 0; i < 20; ++i) {
    want.insert(i + 1);
  }
  EXPECT_EQ(got, want);
}

TEST(Session, DroppedHandleReleasesTheSessionAndNetworkStillQuiesces) {
  Network net(ident("id"), workers(2));
  {
    Session s = net.open_session();
    s.input().inject(int_rec(7));
    // Handle goes out of scope without close or drain: the release
    // closes the input and discards the output, so wait() below cannot
    // wedge on the forgotten session.
  }
  net.wait();
}

TEST(Session, AbandonedSessionDoesNotWedgeOtherSessions) {
  // A dropped handle with a *bounded*, never-consumed output buffer must
  // not hold the shared output path: released sessions drop their outputs
  // and their credit, so other clients' streams keep flowing. The gate
  // itself must be visible first: once the ghost's results occupy its
  // whole credit account, try_inject reports "full" instead of blocking.
  Options o;
  o.workers = 2;
  o.output_capacity = 2;
  Network net(adder("inc", 1), std::move(o));
  {
    Session ghost = net.open_session();
    for (int i = 0; i < 2; ++i) {
      ghost.input().inject(int_rec(i));
    }
    ASSERT_TRUE(poll_session(
        net, ghost.id(),
        [](const SessionStats& s) { return s.output_account >= 2; }))
        << "ghost's results never charged its credit account";
    Record extra = int_rec(99);
    EXPECT_FALSE(ghost.input().try_inject(extra))
        << "exhausted output credit must refuse non-blocking injects";
    // Dropped with 2 buffered results nobody will ever read.
  }
  Session alive = net.open_session();
  std::jthread feeder([&] {
    for (int i = 0; i < 100; ++i) {
      alive.input().inject(int_rec(1000 + i));
    }
    alive.input().close();
  });
  std::multiset<int> got;
  while (auto r = alive.output().next()) {
    got.insert(value_as<int>(r->field("x")));
  }
  feeder.join();
  ASSERT_EQ(got.size(), 100U);
  EXPECT_EQ(*got.begin(), 1001);
  net.wait();  // ghost's records drained (dropped), alive closed: quiesced
}

TEST(Session, DefaultSessionAndExplicitSessionsCoexist) {
  Network net(adder("inc", 1), workers(2));
  Session s = net.open_session();
  net.input().inject(int_rec(10));
  s.input().inject(int_rec(20));
  s.close();
  const auto session_out = s.output().collect();
  ASSERT_EQ(session_out.size(), 1U);
  EXPECT_EQ(value_as<int>(session_out[0].field("x")), 21);
  const auto default_out = net.output().collect();
  ASSERT_EQ(default_out.size(), 1U);
  EXPECT_EQ(value_as<int>(default_out[0].field("x")), 11);
}

TEST(Session, InjectAfterCloseThrowsPerSession) {
  Network net(ident("id"), workers(1));
  Session a = net.open_session();
  Session b = net.open_session();
  a.close();
  EXPECT_THROW(a.input().inject(int_rec(1)), std::logic_error);
  // Closing one session must not close its siblings.
  b.input().inject(int_rec(2));
  b.close();
  EXPECT_EQ(b.output().collect().size(), 1U);
  net.input().close();
  net.wait();
}

TEST(Session, SessionsUnderBoundedStreams) {
  // Sessions and backpressure compose: both clients keep their streams
  // intact while the shared bounded pipeline throttles them.
  Options o;
  o.workers = 2;
  o.inbox_capacity = 4;
  o.output_capacity = 4;
  Network net(adder("inc", 1), std::move(o));
  Session a = net.open_session();
  Session b = net.open_session();
  std::jthread feed_a([&] {
    for (int i = 0; i < 300; ++i) {
      a.input().inject(int_rec(i));
    }
    a.close();
  });
  std::jthread feed_b([&] {
    for (int i = 0; i < 300; ++i) {
      b.input().inject(int_rec(100000 + i));
    }
    b.close();
  });
  std::vector<Record> got_a;
  std::vector<Record> got_b;
  // Drain with next(), not collect(): collect() closes the input, which
  // would race the feeder threads still injecting.
  std::jthread drain_a([&] {
    while (auto r = a.output().next()) {
      got_a.push_back(std::move(*r));
    }
  });
  std::jthread drain_b([&] {
    while (auto r = b.output().next()) {
      got_b.push_back(std::move(*r));
    }
  });
  drain_a.join();
  drain_b.join();
  EXPECT_EQ(got_a.size(), 300U);
  EXPECT_EQ(got_b.size(), 300U);
  for (const auto& r : got_a) {
    EXPECT_LT(value_as<int>(r.field("x")), 100000);
  }
  for (const auto& r : got_b) {
    EXPECT_GE(value_as<int>(r.field("x")), 100000);
  }
}

TEST(Session, SlowReaderDoesNotHeadOfLineBlockOtherSessions) {
  // Regression for the PR-3 known limitation: a slow-but-live session
  // whose bounded output buffer filled used to stall the *shared* output
  // entity, head-of-line blocking every other session's results until the
  // slow client consumed. With per-session output credit the slow
  // reader's surplus records defer on its own (entity, session) credit
  // key and its injects block on its own account — nobody else notices.
  Options o;
  o.workers = 2;
  o.inbox_capacity = 8;
  o.output_capacity = 4;
  // Every record fans out to 8: a single slow-session inject overwhelms
  // its own credit account (cap 4), so surplus records *must* defer at
  // the shared output entity — the deterministic head-of-line setup the
  // old design answered by stalling that entity for everyone.
  auto fan = box("fan", "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
    for (int k = 0; k < 8; ++k) {
      out.out(1, in.field("x"));
    }
  });
  Network net(fan, std::move(o));
  Session slow = net.open_session();
  Session fast = net.open_session();
  // The slow session's feeder outruns a client that reads nothing: its
  // account fills mid-fan-out and the feeder blocks on the credit gate.
  std::jthread slow_feeder([&] {
    for (int i = 0; i < 40; ++i) {
      slow.input().inject(int_rec(i));
    }
    slow.close();
  });
  ASSERT_TRUE(poll_session(net, slow.id(), [](const SessionStats& s) {
    return s.output_stalls > 0;
  })) << "slow session's surplus records never deferred at the output entity";
  // The fast session must stream through, full rate, while slow is wedged.
  std::jthread fast_feeder([&] {
    for (int i = 0; i < 50; ++i) {
      fast.input().inject(int_rec(1000 + i));
    }
    fast.close();
  });
  std::size_t got_fast = 0;
  while (fast.output().next().has_value()) {
    ++got_fast;
  }
  EXPECT_EQ(got_fast, 400U);  // old design: wedged right here
  // Now the slow client finally reads: every record arrives, in
  // per-session order, through the deferred-flush path.
  std::vector<int> got_slow;
  while (auto r = slow.output().next()) {
    got_slow.push_back(value_as<int>(r->field("x")));
  }
  slow_feeder.join();
  ASSERT_EQ(got_slow.size(), 320U);
  for (std::size_t i = 0; i < got_slow.size(); ++i) {
    EXPECT_EQ(got_slow[i], static_cast<int>(i / 8))
        << "deferral reordered the slow session's stream";
  }
  const SessionStats slow_row = stats_of(net, slow.id());
  EXPECT_GT(slow_row.output_stalls, 0U);
  net.wait();
}

TEST(Session, WeightedDispatchKeepsMeekSessionProgressingUnderFlood) {
  // A hot tenant floods the shared entry while a (heavier-weighted) meek
  // tenant submits a finite batch: deficit-round-robin at the input
  // dispatcher must keep admitting the meek session's records, so it
  // completes while the flood is still running.
  Options o;
  o.workers = 2;
  o.inbox_capacity = 8;  // small staging queues: the DRR engages
  Network net(slow_box("grind", 300), std::move(o));
  Session hot = net.open_session();  // weight 1
  SessionOptions heavy;
  heavy.weight = 4;
  Session meek = net.open_session(heavy);
  EXPECT_EQ(meek.weight(), 4U);
  std::atomic<bool> stop{false};
  std::jthread hot_drain([&] {
    while (hot.output().next().has_value()) {
    }
  });
  std::jthread flood([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Record r = int_rec(i++);
      if (!hot.input().try_inject(r)) {
        std::this_thread::yield();  // staging full: the DRR is arbitrating
      }
    }
    hot.close();
  });
  for (int i = 0; i < 200; ++i) {
    meek.input().inject(int_rec(100000 + i));
  }
  meek.close();
  const auto out = meek.output().collect();  // must not starve
  EXPECT_EQ(out.size(), 200U);
  const SessionStats meek_row = stats_of(net, meek.id());
  EXPECT_EQ(meek_row.weight, 4U) << "per-session stats lost the DRR weight";
  stop.store(true, std::memory_order_release);
  flood.join();
  hot_drain.join();
  net.wait();
}

TEST(Session, DetSpillKeepsOrderingOverTheCap) {
  // A deterministic parallel region with one slow branch: later (fast
  // branch) groups pile up in the collector while the head group grinds,
  // blowing through Options::det_capacity. Under Spill the overflow goes
  // to the secondary list and the session's admission is throttled — but
  // release order must stay exactly the injection order.
  Options o;
  o.workers = 4;
  o.det_capacity = 8;
  o.det_overflow = OverflowPolicy::Spill;
  Network net(parallel_det(slow_box("L", 3000), ident("R")), std::move(o));
  Session s = net.open_session();
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    s.input().inject(int_rec(i));
  }
  s.close();
  const auto out = s.output().collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i)
        << "spill reordered the deterministic stream";
  }
  const SessionStats row = stats_of(net, s.id());
  EXPECT_GT(row.spilled, 0U) << "the det cap never engaged — test is vacuous";
}

TEST(Session, DetFailFastErrorsOnlyTheOffendingSession) {
  // FailFast: the tenant whose det buffering exceeds the cap gets a
  // SessionOverflowError on its ports; an innocent concurrent session
  // completes untouched (the cap is per session, not per network).
  Options o;
  o.workers = 4;
  o.det_capacity = 8;
  o.det_overflow = OverflowPolicy::FailFast;
  Network net(parallel_det(slow_box("L", 3000), ident("R")), std::move(o));
  Session victim = net.open_session();
  Session hog = net.open_session();
  // The fail-fast can land while the hog is still injecting, in which
  // case inject itself rethrows the session error — equally correct.
  try {
    for (int i = 0; i < 300; ++i) {
      hog.input().inject(int_rec(i));
    }
  } catch (const SessionOverflowError&) {
  }
  hog.close();
  EXPECT_THROW(hog.output().collect(), SessionOverflowError);
  // The victim's handful of records stays far under the per-session cap.
  for (int i = 0; i < 5; ++i) {
    victim.input().inject(int_rec(1000 + i));
  }
  victim.close();
  const auto out = victim.output().collect();
  ASSERT_EQ(out.size(), 5U);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")),
              1000 + i);
  }
  const SessionStats hog_row = stats_of(net, hog.id());
  EXPECT_TRUE(hog_row.errored);
  const SessionStats victim_row = stats_of(net, victim.id());
  EXPECT_FALSE(victim_row.errored);
  net.wait();
}

TEST(Session, SyncStorageChargesTheInteriorAccount) {
  // Synchrocell slot storage is charged against the same per-session
  // interior account as det buffering: with a FailFast cap of one record,
  // the second *stored* (not merged, not passed-through) record errors
  // the session.
  Options o;
  o.workers = 2;
  o.det_capacity = 1;
  o.det_overflow = OverflowPolicy::FailFast;
  Network net(sync({"{a}", "{b}", "{c}"}), std::move(o));
  Session s = net.open_session();
  // {a} stores (charge 1, at the cap); {b} stores (charge 2 -- overflow).
  Record ra;
  ra.set_field(field_label("a"), make_value(1));
  s.input().inject(std::move(ra));
  Record rb;
  rb.set_field(field_label("b"), make_value(2));
  s.input().inject(std::move(rb));
  s.close();
  EXPECT_THROW(s.output().collect(), SessionOverflowError);
  // The {a} record stored in the shared cell is evicted when its session
  // fails fast (its accounting unwound), so the network still quiesces.
  net.wait();
}

TEST(Session, ReleasedSessionsSyncSlotIsEvictedAndNetworkQuiesces) {
  // A record stored in a synchrocell keeps its session live by design
  // (the cell may fire later) — but when the handle is *released*, the
  // dead tenant's contribution is evicted from the shared cell, so a
  // forgotten session cannot wedge network quiescence through a cell
  // that never fires.
  Network net(sync({"{a}", "{b}"}), workers(2));
  {
    Session s = net.open_session();
    Record ra;
    ra.set_field(field_label("a"), make_value(1));
    s.input().inject(std::move(ra));
    // Dropped with {a} (possibly already) stored in the shared cell.
  }
  net.wait();
}
