/// Batched-quantum pipeline (Options::batching): emission buffers, the
/// push_all flush path and the coalesced live/det delta accounting must be
/// invisible to clients — same records, same per-stream FIFO order, same
/// det order — under backpressure stalls that park an entity mid-batch,
/// and the scalar ablation mode must produce identical outputs.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(int v, std::initializer_list<std::pair<std::string_view, std::int64_t>> tags = {}) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

/// `(x) -> (x)` box burning ~\p spin_iters of CPU per record.
Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

std::vector<int> xs_in_order(const std::vector<Record>& out) {
  std::vector<int> xs;
  xs.reserve(out.size());
  for (const auto& r : out) {
    xs.push_back(value_as<int>(r.field("x")));
  }
  return xs;
}

}  // namespace

TEST(Batch, StallMidBatchPreservesOrderAndLosesNothing) {
  // A tiny inbox bound under a fast producer forces the upstream entity to
  // park with records still staged in its emission buffers; the flush
  // before the stall plus the batch-remainder rule must keep the stream's
  // FIFO order intact and lose nothing.
  constexpr int kRecords = 3000;
  Options opts;
  opts.workers = 2;
  opts.batching = true;
  opts.inbox_capacity = 4;
  opts.quantum = 64;  // quantum >> inbox bound: stalls land mid-batch
  Network net(slow_box("a", 50) >> slow_box("b", 400), std::move(opts));
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(int_rec(i));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  const auto xs = xs_in_order(out);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(xs[static_cast<std::size_t>(i)], i) << "FIFO order broken at " << i;
  }
  EXPECT_GT(net.stats().suspensions, 0U)
      << "bound never engaged: the test did not exercise a mid-batch stall";
}

TEST(Batch, DetOrderHoldsUnderCoalescedDeltas) {
  // Deterministic merge depends on det-group counts reaching zero in the
  // right order; the batched path applies those counts as coalesced
  // add/sub deltas per quantum. A slow left branch, a bounded det region
  // (spill engaged) and batching on must still restore injection order.
  auto slow = box("slowL", "(x, <left>) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    volatile unsigned sink = 0;
                    for (int i = 0; i < 100000; ++i) {
                      sink = sink + static_cast<unsigned>(i);
                    }
                    out.out(1, in.field("x"));
                  });
  auto fast = box("fastR", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  Options opts;
  opts.workers = 4;
  opts.batching = true;
  opts.det_capacity = 8;  // small interior bound: collector spills mid-run
  Network net(parallel_det(std::move(slow), std::move(fast)), std::move(opts));
  constexpr int kRecords = 60;
  for (int i = 0; i < kRecords; ++i) {
    if (i % 3 == 0) {
      net.input().inject(int_rec(i, {{"left", 1}}));
    } else {
      net.input().inject(int_rec(i));
    }
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  const auto xs = xs_in_order(out);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(xs[static_cast<std::size_t>(i)], i)
        << "det merge out of order under coalesced deltas";
  }
}

TEST(Batch, BatchedAndScalarProduceIdenticalOutputs) {
  // The ablation axis itself: one topology (a 4-branch parallel of
  // dual-output filters with disjoint branch types — no non-det ties, so
  // the output multiset is fully determined), run once per mode. Record
  // sets must match exactly.
  constexpr int kBranches = 4;
  constexpr int kRecords = 2000;
  auto build = [] {
    Net branches;
    for (int i = 0; i < kBranches; ++i) {
      const std::string f = "f" + std::to_string(i);
      Net leaf = filter("[{" + f + ", payload} -> {y=" + f +
                        ", payload}; {y2=" + f + ", payload, <copy>=1}]");
      branches = branches ? parallel(std::move(branches), std::move(leaf))
                          : std::move(leaf);
    }
    return branches;
  };
  auto run = [&](bool batching) {
    Options opts;
    opts.workers = 2;
    opts.batching = batching;
    Network net(build(), std::move(opts));
    for (int i = 0; i < kRecords; ++i) {
      Record r;
      r.set_field(field_label("f" + std::to_string(i % kBranches)), make_value(i));
      r.set_field(field_label("payload"), make_value(i * 31));
      net.input().inject(std::move(r));
    }
    std::vector<std::string> texts;
    for (const auto& r : net.output().collect()) {
      texts.push_back(r.to_string());
    }
    std::sort(texts.begin(), texts.end());
    return texts;
  };
  const auto batched = run(true);
  const auto scalar = run(false);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(2 * kRecords));
  EXPECT_EQ(batched, scalar) << "batched pipeline changed the output set";
}
