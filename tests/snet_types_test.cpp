/// The S-Net type system: record types as label sets, structural
/// subtyping ("t1 is a subtype of t2 iff t2 ⊆ t1"), multivariant
/// subtyping, match scoring.

#include <gtest/gtest.h>

#include "snet/rtypes.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {
Record rec(std::initializer_list<std::string_view> fields,
           std::initializer_list<std::pair<std::string_view, std::int64_t>> tags = {}) {
  Record r;
  for (const auto f : fields) {
    r.set_field(field_label(f), make_value(0));
  }
  for (const auto& [t, v] : tags) {
    r.set_tag(tag_label(t), v);
  }
  return r;
}
}  // namespace

TEST(RecordType, SetSemanticsDeduplicateAndSort) {
  const RecordType t({field_label("b"), field_label("a"), field_label("a")});
  EXPECT_EQ(t.size(), 2U);
  EXPECT_TRUE(t.contains(field_label("a")));
  EXPECT_TRUE(t.contains(field_label("b")));
}

TEST(RecordType, PaperSubtypingDirection) {
  // {a,<b>,d} <= {a,<b>}: more labels = more specific = subtype.
  const auto wide = RecordType::of({"a", "d"}, {"b"});
  const auto narrow = RecordType::of({"a"}, {"b"});
  EXPECT_TRUE(wide.subtype_of(narrow));
  EXPECT_FALSE(narrow.subtype_of(wide));
}

TEST(RecordType, SubtypingIsReflexiveAndTransitive) {
  const auto a = RecordType::of({"x"});
  const auto b = RecordType::of({"x", "y"});
  const auto c = RecordType::of({"x", "y", "z"});
  EXPECT_TRUE(a.subtype_of(a));
  EXPECT_TRUE(b.subtype_of(a));
  EXPECT_TRUE(c.subtype_of(b));
  EXPECT_TRUE(c.subtype_of(a)) << "transitivity";
}

TEST(RecordType, EmptyTypeIsTopOfTheLattice) {
  const RecordType top;
  EXPECT_TRUE(RecordType::of({"a"}).subtype_of(top));
  EXPECT_TRUE(top.matches(rec({})));
  EXPECT_TRUE(top.matches(rec({"anything"})));
}

TEST(RecordType, MatchesRequiresAllLabels) {
  // "foo accepts any input record that has at least field a and tag <b>".
  const auto t = RecordType::of({"a"}, {"b"});
  EXPECT_TRUE(t.matches(rec({"a"}, {{"b", 0}})));
  EXPECT_TRUE(t.matches(rec({"a", "d"}, {{"b", 0}})));  // subtyping in action
  EXPECT_FALSE(t.matches(rec({"a"})));
  EXPECT_FALSE(t.matches(rec({}, {{"b", 0}})));
}

TEST(RecordType, FieldTagDistinctionInMatching) {
  const auto wants_field = RecordType::of({"k"});
  const auto wants_tag = RecordType::of({}, {"k"});
  const auto has_tag = rec({}, {{"k", 1}});
  EXPECT_FALSE(wants_field.matches(has_tag));
  EXPECT_TRUE(wants_tag.matches(has_tag));
}

TEST(RecordType, SetAlgebra) {
  const auto ab = RecordType::of({"a", "b"});
  const auto bc = RecordType::of({"b", "c"});
  EXPECT_EQ(ab.union_with(bc), RecordType::of({"a", "b", "c"}));
  EXPECT_EQ(ab.minus(bc), RecordType::of({"a"}));
  auto t = ab;
  t.add(field_label("z"));
  t.remove(field_label("a"));
  EXPECT_EQ(t, RecordType::of({"b", "z"}));
}

TEST(RecordType, TypeOfRecord) {
  const auto r = rec({"x"}, {{"t", 3}});
  const auto t = type_of(r);
  EXPECT_TRUE(t.contains(field_label("x")));
  EXPECT_TRUE(t.contains(tag_label("t")));
  EXPECT_EQ(t.size(), 2U);
}

TEST(RecordType, ToString) {
  EXPECT_EQ(RecordType::of({"board"}, {"k"}).to_string(), "{board, <k>}");
  EXPECT_EQ(RecordType().to_string(), "{}");
}

TEST(MultiType, PaperMultivariantSubtyping) {
  // "x is a subtype of y if every variant v ∈ x is a subtype of some
  // variant w ∈ y."
  const MultiType x({RecordType::of({"c", "d"}, {"e"}), RecordType::of({"c", "d"})});
  const MultiType y({RecordType::of({"c"}), RecordType::of({"c", "d", "z"})});
  EXPECT_TRUE(x.subtype_of(y));
  EXPECT_FALSE(y.subtype_of(x));
}

TEST(MultiType, AcceptsAnyMatchingVariant) {
  const MultiType t({RecordType::of({"a"}), RecordType::of({}, {"k"})});
  EXPECT_TRUE(t.accepts(rec({"a"})));
  EXPECT_TRUE(t.accepts(rec({}, {{"k", 0}})));
  EXPECT_FALSE(t.accepts(rec({"b"})));
}

TEST(MultiType, MatchScoreIsLargestMatchingVariant) {
  // Best match = most specific accepted variant (routing rule for ||).
  const MultiType t({RecordType::of({"a"}), RecordType::of({"a", "b"})});
  EXPECT_EQ(t.match_score(rec({"a"})), 1);
  EXPECT_EQ(t.match_score(rec({"a", "b"})), 2);
  EXPECT_EQ(t.match_score(rec({"c"})), -1);
  EXPECT_EQ(MultiType({RecordType()}).match_score(rec({})), 0)
      << "empty variant matches everything with score 0";
}

TEST(MultiType, UnionDeduplicates) {
  const MultiType a({RecordType::of({"x"})});
  const MultiType b({RecordType::of({"x"}), RecordType::of({"y"})});
  EXPECT_EQ(a.union_with(b).variants().size(), 2U);
}

TEST(MultiType, ToString) {
  const MultiType t({RecordType::of({"c"}), RecordType::of({"c", "d"}, {"e"})});
  EXPECT_EQ(t.to_string(), "{c} | {c, d, <e>}");
}
