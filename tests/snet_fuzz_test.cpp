/// Randomised property tests.
///
/// 1. Type-system laws on randomly generated record types (seeded,
///    reproducible): subtyping is a preorder anti-monotone in label sets;
///    match scores agree with matching.
/// 2. Topology fuzz: random compositions of record-preserving components
///    (identity boxes, pass-through filters, splits, bounded stars,
///    parallel pairs — optionally deterministic) must deliver exactly one
///    output per injected record, under any worker count. This pins the
///    runtime's conservation and quiescence invariants on shapes no
///    hand-written test would try.

#include <random>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

// ---------- type-law fuzzing ----------

RecordType random_type(std::mt19937_64& rng, int max_labels) {
  std::uniform_int_distribution<int> count(0, max_labels);
  std::uniform_int_distribution<int> pick(0, 9);
  std::uniform_int_distribution<int> kind(0, 1);
  RecordType t;
  const int n = count(rng);
  for (int i = 0; i < n; ++i) {
    std::string name = "l";
    name += std::to_string(pick(rng));
    t.add(kind(rng) == 0 ? field_label(name) : tag_label(name));
  }
  return t;
}

Record record_of(const RecordType& t) {
  Record r;
  for (const Label l : t.labels()) {
    if (l.kind == LabelKind::Field) {
      r.set_field(l, make_value(0));
    } else {
      r.set_tag(l, 0);
    }
  }
  return r;
}

// ---------- topology fuzzing ----------

// Every fuzz component declares the full record shape {x, <k>, <hop>} so
// any composition order type-checks under forward signature inference.
Net ident_box(int id) {
  std::string name = "id";
  name += std::to_string(id);
  return box(name, "(x, <k>, <hop>) -> (x, <k>, <hop>)",
             [](const BoxInput& in, BoxOutput& out) {
               out.out(1, in.field("x"), in.tag("k"), in.tag("hop"));
             });
}

/// Star child: decrements <hop>; exits via {<fin>} when it hits zero.
Net hop_box(int id) {
  std::string name = "hop";
  name += std::to_string(id);
  return box(name,
             "(x, <k>, <hop>) -> (x, <k>, <hop>) | (x, <k>, <fin>)",
             [](const BoxInput& in, BoxOutput& out) {
               const std::int64_t h = in.tag("hop");
               if (h <= 0) {
                 out.out(2, in.field("x"), in.tag("k"), std::int64_t{1});
               } else {
                 out.out(1, in.field("x"), in.tag("k"), h - 1);
               }
             });
}

/// Random record-preserving topology of the given depth. Every generated
/// net maps one input record to exactly one output record.
Net random_net(std::mt19937_64& rng, int depth, int& id) {
  std::uniform_int_distribution<int> pick(0, 5);
  if (depth <= 0) {
    return ident_box(id++);
  }
  switch (pick(rng)) {
    case 0:
      return serial(random_net(rng, depth - 1, id), random_net(rng, depth - 1, id));
    case 1:
      return parallel(random_net(rng, depth - 1, id), random_net(rng, depth - 1, id));
    case 2:
      return parallel_det(random_net(rng, depth - 1, id),
                          random_net(rng, depth - 1, id));
    case 3: {
      // Split over <k>; inner net preserves records.
      return split(random_net(rng, depth - 1, id), "k");
    }
    case 4: {
      // Bounded star: reset <hop> first so depth stays small, then count
      // down to <fin>, strip the marker to restore the record shape.
      const Net inner = star(hop_box(id++), "{<fin>}");
      return filter("{x, <k>, <hop>} -> {x, <k>, <hop>=2}") >> inner >>
             filter("{x, <k>, <fin>} -> {x, <k>, <hop>=0}");
    }
    default:
      return ident_box(id++) >> random_net(rng, depth - 1, id);
  }
}

}  // namespace

class TypeLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(TypeLaws, SubtypingIsAPreorderAntiMonotoneInLabels) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const RecordType a = random_type(rng, 6);
    const RecordType b = random_type(rng, 6);
    const RecordType c = random_type(rng, 6);
    // Reflexivity.
    EXPECT_TRUE(a.subtype_of(a));
    // Subtype iff superset of labels.
    EXPECT_EQ(a.subtype_of(b), b.included_in(a));
    // Transitivity.
    if (a.subtype_of(b) && b.subtype_of(c)) {
      EXPECT_TRUE(a.subtype_of(c));
    }
    // Adding labels never breaks subtyping towards the same supertype.
    RecordType wider = a.union_with(c);
    if (a.subtype_of(b)) {
      EXPECT_TRUE(wider.subtype_of(b));
    }
    // Matching coincides with type-of subtyping.
    const Record r = record_of(a);
    EXPECT_EQ(b.matches(r), type_of(r).subtype_of(b));
  }
}

TEST_P(TypeLaws, MatchScoreConsistentWithAccepts) {
  std::mt19937_64 rng(GetParam() * 7919U + 1);
  for (int round = 0; round < 200; ++round) {
    const MultiType mt({random_type(rng, 4), random_type(rng, 4), random_type(rng, 4)});
    const Record r = record_of(random_type(rng, 6));
    EXPECT_EQ(mt.accepts(r), mt.match_score(r) >= 0);
    if (mt.match_score(r) >= 0) {
      // The score equals the size of some matching variant and no larger
      // matching variant exists.
      bool found = false;
      for (const auto& v : mt.variants()) {
        if (v.matches(r)) {
          EXPECT_LE(static_cast<int>(v.size()), mt.match_score(r));
          found |= static_cast<int>(v.size()) == mt.match_score(r);
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeLaws, ::testing::Values(1U, 2U, 3U, 4U));

class TopologyFuzz : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TopologyFuzz, RecordConservationAndQuiescence) {
  const auto [seed, workers] = GetParam();
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 10; ++round) {
    int id = 0;
    const Net topo = random_net(rng, 3, id);
    Options opts;
    opts.workers = workers;
    Network net(topo, std::move(opts));
    constexpr int kRecords = 40;
    for (int i = 0; i < kRecords; ++i) {
      Record r;
      r.set_field("x", make_value(i));
      r.set_tag("k", i % 3);
      r.set_tag("hop", 0);
      net.input().inject(std::move(r));
    }
    const auto out = net.output().collect();
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords))
        << "seed " << seed << " round " << round << " net: " << describe(topo);
    // Payloads are conserved as a multiset.
    std::multiset<int> xs;
    for (const auto& r : out) {
      xs.insert(value_as<int>(r.field("x")));
    }
    for (int i = 0; i < kRecords; ++i) {
      EXPECT_EQ(xs.count(i), 1U);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWorkers, TopologyFuzz,
    ::testing::Combine(::testing::Values(11U, 22U, 33U, 44U, 55U),
                       ::testing::Values(1U, 2U, 4U)));
