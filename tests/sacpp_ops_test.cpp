/// Universal array operations, including the paper's `++` (vector
/// concatenation) example.

#include <gtest/gtest.h>

#include "sacpp/io.hpp"
#include "sacpp/ops.hpp"

using sac::Array;
using sac::Shape;
using sac::ShapeError;

namespace {
Array<int> vec(std::vector<int> v) {
  const auto n = static_cast<std::int64_t>(v.size());
  return Array<int>(Shape{n}, std::move(v));
}
}  // namespace

TEST(Ops, ConcatIsThePaperExample) {
  // int[.] (++) (int[.] a, int[.] b) — two-generator genarray.
  const auto a = vec({1, 2, 3});
  const auto b = vec({4, 5});
  EXPECT_EQ(sac::to_string(sac::concat(a, b)), "[1,2,3,4,5]");
  EXPECT_EQ(sac::to_string(sac::concat(b, a)), "[4,5,1,2,3]");
}

TEST(Ops, ConcatWithEmpty) {
  const auto a = vec({1, 2});
  const auto e = vec({});
  EXPECT_EQ(sac::concat(a, e), a);
  EXPECT_EQ(sac::concat(e, a), a);
}

TEST(Ops, ConcatRequiresVectors) {
  const Array<int> m(Shape{2, 2}, 0);
  EXPECT_THROW(sac::concat(m, m), ShapeError);
}

TEST(Ops, MapAndZipWith) {
  const auto a = vec({1, 2, 3});
  const auto doubled = sac::map(a, [](int x) { return 2 * x; });
  EXPECT_EQ(sac::to_string(doubled), "[2,4,6]");
  const auto summed = sac::zip_with(a, doubled, [](int x, int y) { return x + y; });
  EXPECT_EQ(sac::to_string(summed), "[3,6,9]");
  EXPECT_THROW(sac::zip_with(a, vec({1, 2}), [](int x, int y) { return x + y; }),
               ShapeError);
}

TEST(Ops, MapCanChangeElementType) {
  const auto a = vec({0, 1, 2});
  const Array<bool> nz = sac::map(a, [](int x) { return x != 0; });
  EXPECT_FALSE((nz[{0}]));
  EXPECT_TRUE((nz[{2}]));
}

TEST(Ops, Reductions) {
  const auto a = vec({3, 1, 4, 1, 5});
  EXPECT_EQ(sac::sum(a), 14);
  EXPECT_EQ(sac::min_val(a), 1);
  EXPECT_EQ(sac::max_val(a), 5);
  EXPECT_EQ(sac::count(a, 1), 2);
  EXPECT_THROW(sac::min_val(vec({})), ShapeError);
}

TEST(Ops, BoolReductions) {
  const Array<bool> t(Shape{3}, true);
  Array<bool> mixed(Shape{3}, false);
  mixed.set({1}, true);
  EXPECT_TRUE(sac::all_true(t));
  EXPECT_FALSE(sac::all_true(mixed));
  EXPECT_TRUE(sac::any_true(mixed));
  EXPECT_FALSE(sac::any_true(Array<bool>(Shape{3}, false)));
  EXPECT_TRUE(sac::all_true(Array<bool>(Shape{0}, false))) << "vacuous truth";
}

TEST(Ops, Iota) {
  EXPECT_EQ(sac::to_string(sac::iota(4)), "[0,1,2,3]");
  EXPECT_EQ(sac::iota(0).element_count(), 0);
}

TEST(Ops, Reshape) {
  const auto a = vec({1, 2, 3, 4, 5, 6});
  const auto m = sac::reshape(a, Shape{2, 3});
  EXPECT_EQ(sac::to_string(m), "[[1,2,3],[4,5,6]]");
  EXPECT_THROW(sac::reshape(a, Shape{4}), ShapeError);
}

TEST(Ops, TakeAndDrop) {
  const auto a = vec({1, 2, 3, 4, 5});
  EXPECT_EQ(sac::to_string(sac::take(2, a)), "[1,2]");
  EXPECT_EQ(sac::to_string(sac::take(-2, a)), "[4,5]");
  EXPECT_EQ(sac::to_string(sac::drop(2, a)), "[3,4,5]");
  EXPECT_EQ(sac::to_string(sac::drop(-2, a)), "[1,2,3]");
  EXPECT_EQ(sac::take(9, a), a) << "over-taking clamps";
  EXPECT_EQ(sac::drop(9, a).element_count(), 0);
}

TEST(Ops, TakeDropOnMatrixRows) {
  const Array<int> m(Shape{3, 2}, std::vector<int>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sac::to_string(sac::take(1, m)), "[[1,2]]");
  EXPECT_EQ(sac::to_string(sac::drop(2, m)), "[[5,6]]");
}

TEST(Ops, Transpose) {
  const Array<int> m(Shape{2, 3}, std::vector<int>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sac::to_string(sac::transpose(m)), "[[1,4],[2,5],[3,6]]");
  EXPECT_EQ(sac::transpose(sac::transpose(m)), m);
  EXPECT_THROW(sac::transpose(vec({1})), ShapeError);
}

TEST(Ops, ReduceGeneric) {
  const auto a = vec({1, 2, 3});
  const int prod = sac::reduce(a, [](int acc, int x) { return acc * x; }, 1);
  EXPECT_EQ(prod, 6);
}

TEST(Ops, RotateCyclic) {
  const auto a = vec({1, 2, 3, 4, 5});
  EXPECT_EQ(sac::to_string(sac::rotate(1, a)), "[5,1,2,3,4]");
  EXPECT_EQ(sac::to_string(sac::rotate(-1, a)), "[2,3,4,5,1]");
  EXPECT_EQ(sac::rotate(5, a), a) << "full rotation is identity";
  EXPECT_EQ(sac::rotate(7, a), sac::rotate(2, a)) << "modular offsets";
  EXPECT_THROW(sac::rotate(1, Array<int>(3)), ShapeError);
}

TEST(Ops, RotateMatrixRows) {
  const Array<int> m(Shape{3, 2}, std::vector<int>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sac::to_string(sac::rotate(1, m)), "[[5,6],[1,2],[3,4]]");
}

TEST(Ops, ShiftFillsVacated) {
  const auto a = vec({1, 2, 3, 4});
  EXPECT_EQ(sac::to_string(sac::shift(1, 0, a)), "[0,1,2,3]");
  EXPECT_EQ(sac::to_string(sac::shift(-2, 9, a)), "[3,4,9,9]");
  EXPECT_EQ(sac::to_string(sac::shift(10, 0, a)), "[0,0,0,0]");
}

TEST(Ops, WhereSelectsByMask) {
  const auto a = vec({1, 2, 3});
  const auto b = vec({9, 8, 7});
  Array<bool> mask(Shape{3}, false);
  mask.set({1}, true);
  EXPECT_EQ(sac::to_string(sac::where(mask, a, b)), "[9,2,7]");
  EXPECT_THROW(sac::where(mask, a, vec({1, 2})), ShapeError);
}

TEST(Ops, SumAxis0) {
  const Array<int> m(Shape{3, 2}, std::vector<int>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sac::to_string(sac::sum_axis0(m)), "[9,12]");
  const auto v = vec({1, 2, 3});
  const auto s = sac::sum_axis0(v);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), 6);
}
