/// The S-Net runtime: boxes, filters, combinators, deterministic regions,
/// dynamic unfolding, flow inheritance at run time, quiescence and error
/// propagation.

#include <algorithm>
#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(std::string_view field, int v,
               std::initializer_list<std::pair<std::string_view, std::int64_t>> tags = {}) {
  Record r;
  r.set_field(field_label(field), make_value(v));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

/// `(x) -> (x)` box adding \p delta to its integer payload.
Net adder(const std::string& name, int delta) {
  return box(name, "(x) -> (x)",
             [delta](const BoxInput& in, BoxOutput& out) {
               out.out(1, make_value(in.get<int>("x") + delta));
             });
}

void benchmark_guard(int v) {
  // Defeats optimisation of busy-wait loops without volatile writes.
  static std::atomic<int> sink{0};
  sink.store(v, std::memory_order_relaxed);
}

Options workers(unsigned w) {
  Options o;
  o.workers = w;
  return o;
}

std::multiset<int> xs_of(const std::vector<Record>& recs) {
  std::multiset<int> out;
  for (const auto& r : recs) {
    out.insert(value_as<int>(r.field("x")));
  }
  return out;
}

}  // namespace

TEST(Runtime, SingleBoxPipeline) {
  Network net(adder("inc", 1));
  for (int i = 0; i < 10; ++i) {
    net.input().inject(int_rec("x", i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 10U);
  EXPECT_EQ(xs_of(out), (std::multiset<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(Runtime, SerialCompositionPipelines) {
  Network net(adder("a", 1) >> adder("b", 10) >> adder("c", 100));
  net.input().inject(int_rec("x", 0));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 111);
}

TEST(Runtime, BoxMayEmitZeroOrManyRecords) {
  auto fan = box("fan", "(x) -> (x)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int n = in.get<int>("x");
                   for (int i = 0; i < n; ++i) {
                     out.out(1, make_value(i));
                   }
                 });
  Network net(fan);
  net.input().inject(int_rec("x", 0));  // emits nothing: record dies
  net.input().inject(int_rec("x", 3));
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 3U);
}

TEST(Runtime, FlowInheritanceAtBoxes) {
  // Box declares (x) only; an extra field and tag must reappear on output.
  Network net(adder("inc", 1));
  Record r = int_rec("x", 1, {{"extra", 7}});
  r.set_field("payload", make_value(std::string("keep")));
  net.input().inject(std::move(r));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("extra"), 7);
  EXPECT_EQ(value_as<std::string>(out[0].field("payload")), "keep");
}

TEST(Runtime, FlowInheritanceDiscardsWhenLabelProduced) {
  auto b = box("b", "(x) -> (x, <t>)",
               [](const BoxInput& in, BoxOutput& out) {
                 out.out(1, in.field("x"), std::int64_t{99});
               });
  Network net(b);
  net.input().inject(int_rec("x", 1, {{"t", 5}}));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tag("t"), 99) << "produced label wins over inherited";
}

TEST(Runtime, BoxCannotSeeUndeclaredLabels) {
  auto nosy = box("nosy", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    (void)in.get<int>("hidden");  // not declared -> error
                    out.out(1, make_value(0));
                  });
  Network net(nosy);
  Record r = int_rec("x", 1);
  r.set_field("hidden", make_value(42));
  net.input().inject(std::move(r));
  EXPECT_THROW(net.output().collect(), BoxError);
}

TEST(Runtime, FilterEntityAppliesSpec) {
  Network net(adder("inc", 1) >> filter("{x} -> {y=x, <m>=1}; {y=x, <m>=2}"));
  net.input().inject(int_rec("x", 4));
  auto out = net.output().collect();
  ASSERT_EQ(out.size(), 2U);
  std::multiset<std::int64_t> ms{out[0].tag("m"), out[1].tag("m")};
  EXPECT_EQ(ms, (std::multiset<std::int64_t>{1, 2}));
  EXPECT_EQ(value_as<int>(out[0].field("y")), 5);
}

TEST(Runtime, ParallelRoutesByBestMatch) {
  // Branch L wants {x}, branch R wants {x,<hi>}: tagged records must go R.
  auto l = box("L", "(x) -> (x, side)",
               [](const BoxInput& in, BoxOutput& out) {
                 out.out(1, in.field("x"), make_value(std::string("L")));
               });
  auto r = box("R", "(x, <hi>) -> (x, side)",
               [](const BoxInput& in, BoxOutput& out) {
                 out.out(1, in.field("x"), make_value(std::string("R")));
               });
  Network net(parallel(l, r));
  net.input().inject(int_rec("x", 1));
  net.input().inject(int_rec("x", 2, {{"hi", 1}}));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 2U);
  for (const auto& rec : out) {
    const int x = value_as<int>(rec.field("x"));
    const auto side = value_as<std::string>(rec.field("side"));
    EXPECT_EQ(side, x == 1 ? "L" : "R");
  }
}

TEST(Runtime, ParallelTieAlternates) {
  // Identical branch types: non-deterministic choice — both branches must
  // see traffic under the alternating tie-break.
  std::atomic<int> l_count{0};
  std::atomic<int> r_count{0};
  auto l = box("L", "(x) -> (x)", [&](const BoxInput& in, BoxOutput& out) {
    l_count.fetch_add(1);
    out.out(1, in.field("x"));
  });
  auto r = box("R", "(x) -> (x)", [&](const BoxInput& in, BoxOutput& out) {
    r_count.fetch_add(1);
    out.out(1, in.field("x"));
  });
  Network net(parallel(l, r));
  for (int i = 0; i < 20; ++i) {
    net.input().inject(int_rec("x", i));
  }
  EXPECT_EQ(net.output().collect().size(), 20U);
  EXPECT_GT(l_count.load(), 0);
  EXPECT_GT(r_count.load(), 0);
  EXPECT_EQ(l_count.load() + r_count.load(), 20);
}

TEST(Runtime, ParallelNoMatchFailsNetwork) {
  Network net(parallel(adder("a", 1), adder("b", 2)));
  Record r;
  r.set_field("unrelated", make_value(0));
  net.input().inject(std::move(r));
  EXPECT_THROW(net.output().collect(), NetTypeError);
}

TEST(Runtime, StarUnfoldsOnDemandAndTapsExit) {
  // Counter box: decrements x; emits {x,<done>} at zero. The replicator
  // taps <done>-records out before every replica.
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 1) {
                     out.out(2, make_value(0), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1));
                   }
                 });
  Network net(star(dec, "{<done>}"));
  net.input().inject(int_rec("x", 5));
  net.input().inject(int_rec("x", 2));
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 2U);
  // Unfolding is demand-driven: the deepest chain (5 steps) bounds stages.
  const auto stats = net.stats();
  const auto stages = stats.count_containing("/stage");
  EXPECT_GE(stages, 5U);
  EXPECT_LE(stages, 7U) << "one tap per materialised replica plus the last";
}

TEST(Runtime, StarRecordMatchingExitImmediatelyBypasses) {
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   out.out(2, in.field("x"), std::int64_t{1});
                 });
  Network net(star(dec, "{<done>}"));
  Record pre = int_rec("x", 9, {{"done", 1}});
  net.input().inject(std::move(pre));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(value_as<int>(out[0].field("x")), 9) << "never touched a replica";
  EXPECT_EQ(net.stats().count_containing("box:dec"), 0U);
}

TEST(Runtime, SplitRoutesSameTagToSameReplica) {
  // Each replica instance is a distinct entity; records with equal <k>
  // must hit the same instance.
  auto ident = box("w", "(x) -> (x)",
                   [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  Network net(split(ident, "k"));
  for (int i = 0; i < 12; ++i) {
    net.input().inject(int_rec("x", i, {{"k", i % 3}}));
  }
  EXPECT_EQ(net.output().collect().size(), 12U);
  const auto stats = net.stats();
  EXPECT_EQ(stats.count_containing("box:w"), 3U) << "exactly one replica per tag value";
  for (const auto& e : stats.entities) {
    if (e.name.find("box:w") != std::string::npos) {
      EXPECT_EQ(e.records_in, 4U) << e.name;
    }
  }
}

TEST(Runtime, SplitMissingTagFailsNetwork) {
  Network net(split(adder("a", 0), "k"));
  net.input().inject(int_rec("x", 1));
  EXPECT_THROW(net.output().collect(), NetTypeError);
}

TEST(Runtime, DetParallelPreservesInputOrder) {
  // Slow left branch vs fast right; deterministic merge must still emit in
  // injection order.
  auto slow = box("slow", "(x, <left>) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    const int x = in.get<int>("x");
                    // Busy work to skew timing.
                    int sink = 0;
                    for (int i = 0; i < 200000; ++i) {
                      sink += i;
                    }
                    benchmark_guard(sink);
                    out.out(1, make_value(x));
                  });
  auto fast = box("fast", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  Network net(parallel_det(slow, fast), workers(4));
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      net.input().inject(int_rec("x", i, {{"left", 1}}));
    } else {
      net.input().inject(int_rec("x", i));
    }
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 12U);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i)
        << "deterministic merge must restore input order";
  }
}

TEST(Runtime, NondetParallelDoesNotGuaranteeOrderButDeliversAll) {
  auto l = adder("l", 0);
  auto r = adder("r", 0);
  Network net(parallel(l, r), workers(4));
  for (int i = 0; i < 50; ++i) {
    net.input().inject(int_rec("x", i));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 50U);
  std::multiset<int> expect;
  for (int i = 0; i < 50; ++i) {
    expect.insert(i);
  }
  EXPECT_EQ(xs_of(out), expect);
}

TEST(Runtime, DetParallelGroupsKeepMultiEmissionsTogether) {
  // Left duplicates each record; det merge must keep duplicates adjacent
  // and groups in order.
  auto dup = box("dup", "(x, <left>) -> (x)",
                 [](const BoxInput& in, BoxOutput& out) {
                   out.out(1, in.field("x"));
                   out.out(1, in.field("x"));
                 });
  auto one = box("one", "(x) -> (x)",
                 [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  Network net(parallel_det(dup, one), workers(4));
  net.input().inject(int_rec("x", 0, {{"left", 1}}));
  net.input().inject(int_rec("x", 1));
  net.input().inject(int_rec("x", 2, {{"left", 1}}));
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 5U);
  std::vector<int> xs;
  for (const auto& r : out) {
    xs.push_back(value_as<int>(r.field("x")));
  }
  EXPECT_EQ(xs, (std::vector<int>{0, 0, 1, 2, 2}));
}

TEST(Runtime, DetSplitOrdersGroups) {
  auto ident = box("w", "(x) -> (x)",
                   [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  Network net(split_det(ident, "k"), workers(4));
  for (int i = 0; i < 20; ++i) {
    net.input().inject(int_rec("x", i, {{"k", i % 4}}));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 20U);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i);
  }
}

TEST(Runtime, DetStarOrdersGroups) {
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const int x = in.get<int>("x");
                   if (x <= 0) {
                     out.out(2, make_value(0), std::int64_t{1});
                   } else {
                     out.out(1, make_value(x - 1));
                   }
                 });
  Network net(star_det(dec, "{<done>}"), workers(4));
  // Different depths: without det, short chains would overtake long ones.
  const std::vector<int> depths{9, 1, 5, 0, 7};
  for (std::size_t i = 0; i < depths.size(); ++i) {
    net.input().inject(int_rec("x", depths[i], {{"idx", static_cast<std::int64_t>(i)}}));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), depths.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].tag("idx"), static_cast<std::int64_t>(i));
  }
}

TEST(Runtime, SyncCellJoinsThenIdentity) {
  Network net(sync({"{a}", "{b}"}));
  Record ra;
  ra.set_field("a", make_value(1));
  Record rb;
  rb.set_field("b", make_value(2));
  net.input().inject(std::move(ra));
  net.input().inject(std::move(rb));
  Record rc;
  rc.set_field("a", make_value(3));
  net.input().inject(std::move(rc));  // after firing: identity
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), 2U);
  // One merged record {a,b}, one passed-through {a}.
  const bool first_merged = out[0].has_field("a") && out[0].has_field("b");
  const Record& merged = first_merged ? out[0] : out[1];
  const Record& passed = first_merged ? out[1] : out[0];
  EXPECT_TRUE(merged.has_field("a"));
  EXPECT_TRUE(merged.has_field("b"));
  EXPECT_TRUE(passed.has_field("a"));
  EXPECT_FALSE(passed.has_field("b"));
}

TEST(Runtime, ErrorsInBoxesSurfaceAtCollect) {
  auto bomb = box("bomb", "(x) -> (x)",
                  [](const BoxInput&, BoxOutput&) { throw std::runtime_error("kaboom"); });
  Network net(bomb);
  net.input().inject(int_rec("x", 1));
  EXPECT_THROW(net.output().collect(), std::runtime_error);
}

TEST(Runtime, InjectAfterCloseRejected) {
  Network net(adder("a", 1));
  net.input().close();
  EXPECT_THROW(net.input().inject(int_rec("x", 1)), std::logic_error);
}

TEST(Runtime, EmptyNetworkQuiescesImmediately) {
  Network net(adder("a", 1));
  net.input().close();
  net.wait();
  EXPECT_FALSE(net.output().next().has_value());
}

TEST(Runtime, TraceObserverSeesEveryDelivery) {
  std::atomic<int> deliveries{0};
  Options opts;
  opts.trace = [&](const std::string&, const Record&) { deliveries.fetch_add(1); };
  Network net(adder("a", 1) >> adder("b", 1), opts);
  net.input().inject(int_rec("x", 0));
  net.output().collect();
  // At least: entry box, second box, output entity.
  EXPECT_GE(deliveries.load(), 3);
}

TEST(Runtime, StatsCountersAreConsistent) {
  Network net(adder("a", 1) >> adder("b", 1));
  for (int i = 0; i < 5; ++i) {
    net.input().inject(int_rec("x", i));
  }
  net.output().collect();
  const auto stats = net.stats();
  EXPECT_EQ(stats.injected, 5U);
  EXPECT_EQ(stats.produced, 5U);
  EXPECT_GE(stats.peak_live, 1);
  EXPECT_EQ(stats.records_in_containing("box:a"), 5U);
  EXPECT_EQ(stats.records_in_containing("box:b"), 5U);
}

// Stress: a deep pipeline with fan-out under a multi-worker scheduler.
class RuntimeStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(RuntimeStress, PipelineWithFanOutDeliversExactly) {
  auto duplicate = box("dup", "(x) -> (x)",
                       [](const BoxInput& in, BoxOutput& out) {
                         out.out(1, in.field("x"));
                         out.out(1, in.field("x"));
                       });
  // x2 fan-out at each of 3 stages: 8 outputs per input.
  Network net(duplicate >> duplicate >> duplicate,
              workers(GetParam()));
  constexpr int kInputs = 200;
  for (int i = 0; i < kInputs; ++i) {
    net.input().inject(int_rec("x", i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kInputs * 8));
}

INSTANTIATE_TEST_SUITE_P(Workers, RuntimeStress, ::testing::Values(1U, 2U, 4U, 8U));
