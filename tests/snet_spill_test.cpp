/// Disk-backed `OverflowPolicy::Spill` (wire::SpillStore + the det
/// collector / synchrocell overflow paths in entities.cpp): overflow past
/// Options::det_capacity must leave live memory — the in-memory interior
/// gauge (NetworkStats::det_buffered_peak) stays near the cap while the
/// throttle-only configuration buffers its whole overflow in RAM — without
/// perturbing deterministic release order, and every spilled record must
/// come back pointer-exact (det scope, session identity) when its group
/// releases. Also covers SpillStore directly: frames restore bit-identical
/// records, the file is a valid wire stream, and it is reclaimed with the
/// network.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snet/detscope.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"
#include "snet/wire.hpp"

using namespace snet;

namespace {

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
    out.out(1, in.field("x"));
  });
}

/// `(x) -> (x)` box burning ~\p spin_iters of CPU per record: the slow
/// branch that makes the head det group grind while fast-branch groups
/// pile up in the collector.
Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

/// Runs the det-pressure workload and returns the network's stats after
/// the deterministic stream fully drained (order is asserted here too).
NetworkStats run_pressure(bool disk, int records) {
  Options o;
  o.workers = 4;
  o.det_capacity = 4;
  o.det_overflow = OverflowPolicy::Spill;
  o.spill_to_disk = disk;
  Network net(parallel_det(slow_box("L", 20000), ident("R")), std::move(o));
  for (int i = 0; i < records; ++i) {
    net.input().inject(int_rec(i));
  }
  net.input().close();
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(records));
  for (int i = 0; i < static_cast<int>(out.size()); ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i)
        << (disk ? "disk spill" : "throttle-only")
        << " reordered the deterministic stream";
  }
  const NetworkStats stats = net.stats();
  net.wait();
  return stats;
}

}  // namespace

TEST(Spill, DiskSpillCutsPeakLiveMemoryAtLeastFiveFold) {
  constexpr int kRecords = 400;
  // Throttle-only (spill_to_disk=false): the entire overflow of the capped
  // det region is held in memory, so the in-memory interior peak tracks
  // the pile-up behind the slow head group.
  const NetworkStats throttled = run_pressure(false, kRecords);
  // Disk spill: overflow records are serialized out and only restored at
  // release, so the gauge stays pinned near det_capacity.
  const NetworkStats spilled = run_pressure(true, kRecords);

  ASSERT_GT(throttled.det_buffered_peak, 0);
  ASSERT_GT(spilled.det_buffered_peak, 0);
  EXPECT_GT(spilled.spill_bytes, 0U)
      << "the disk run never spilled — pressure test is vacuous";
  EXPECT_GE(throttled.det_buffered_peak, 5 * spilled.det_buffered_peak)
      << "disk spill did not release memory: throttle-only peak "
      << throttled.det_buffered_peak << " vs disk peak "
      << spilled.det_buffered_peak;

  // Everything restored and accounted: nothing left buffered or on disk.
  EXPECT_EQ(spilled.det_buffered, 0);
  EXPECT_EQ(spilled.spill_on_disk, 0);
  EXPECT_EQ(throttled.det_buffered, 0);
  EXPECT_EQ(throttled.spill_bytes, 0U)
      << "spill_to_disk=false must never touch the disk";
}

TEST(Spill, SpillStoreRestoresBitIdenticalRecords) {
  wire::SpillStore store("");
  DetScope scope("region");
  std::vector<wire::SpillFrame> frames;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    Record r = int_rec(i);
    r.set_tag("k", i * 3);
    r.det_stack().push_back(DetStamp{&scope, static_cast<std::uint64_t>(i)});
    keys.push_back(wire::encode_standalone(r));
    frames.push_back(store.spill(r));
  }
  EXPECT_EQ(store.on_disk(), 64);
  EXPECT_GT(store.bytes_written(), 0U);

  // Restore out of order: frames are random-access handles.
  for (int i = 63; i >= 0; --i) {
    const Record back = store.restore(frames[static_cast<std::size_t>(i)]);
    EXPECT_EQ(wire::encode_standalone(back), keys[static_cast<std::size_t>(i)]);
    ASSERT_EQ(back.det_stack().size(), 1U);
    EXPECT_EQ(back.det_stack()[0].scope, &scope)
        << "restore lost det-scope pointer identity";
    EXPECT_EQ(back.det_stack()[0].seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(store.on_disk(), 0);
}

TEST(Spill, SpillFileIsAValidWireStreamAndIsReclaimed) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "snetsac_spill_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    wire::SpillStore store(dir.string());
    store.spill(int_rec(1));
    store.spill(int_rec(2));
    // The spill file is an ordinary wire stream: any reader (snetrec dump,
    // post-mortem tooling) can walk it. No end marker while live — the
    // store is still appending.
    bool found = false;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      found = true;
      std::ifstream in(entry.path(), std::ios::binary);
      wire::WireReader reader(in);
      std::size_t n = 0;
      while (reader.next()) {
        ++n;
      }
      EXPECT_EQ(n, 2U);
      EXPECT_FALSE(reader.at_clean_end());
    }
    EXPECT_TRUE(found) << "no spill file created in " << dir;
  }
  // Destruction reclaims the file.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}
