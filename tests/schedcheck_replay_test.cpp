/// Pinned-seed schedule regressions: one known-interesting SimExecutor
/// schedule per protocol scenario, replayed on every test run. The
/// schedcheck sweep explores fresh seeds; these pins make sure the
/// specific interleavings that exercise the tricky transitions —
/// a producer stalling mid-batch, a deferred-output flush chain, a
/// FailFast landing with records still in flight — never silently stop
/// being covered (a schedule drifting to triviality shows up as a step-
/// count collapse, a protocol regression as the violation itself).

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "runtime/sim_executor.hpp"
#include "snet/simcheck.hpp"

using snetsac::runtime::SimExecutor;

namespace {

snet::simcheck::RunResult run_pinned(const std::string& scenario,
                                     std::uint64_t seed,
                                     SimExecutor::Strategy strategy) {
  SimExecutor::Options opts;
  opts.seed = seed;
  opts.strategy = strategy;
  // Throws ProtocolInvariantError — failing the test with the full
  // decision trace — on any violation under this exact schedule.
  return snet::simcheck::run_scenario(scenario, opts);
}

}  // namespace

TEST(SchedcheckReplay, StallMidBatchPinnedSchedule) {
  const auto r =
      run_pinned("stall-mid-batch", 1717, SimExecutor::Strategy::kPct);
  // The scenario moves 6 records through a 4-way fanout into a bounded
  // inbox: a schedule that somehow bypassed the stall machinery entirely
  // would collapse far below this many yield points.
  EXPECT_GT(r.steps, 30U) << "pinned schedule degenerated — re-pin the seed";
}

TEST(SchedcheckReplay, DeferredFlushPinnedSchedule) {
  const auto r =
      run_pinned("deferred-flush", 421, SimExecutor::Strategy::kRandom);
  EXPECT_GT(r.steps, 10U) << "pinned schedule degenerated — re-pin the seed";
}

TEST(SchedcheckReplay, SyncFailFastPinnedSchedule) {
  const auto r =
      run_pinned("sync-failfast", 97, SimExecutor::Strategy::kPct);
  EXPECT_GT(r.steps, 5U) << "pinned schedule degenerated — re-pin the seed";
}

TEST(SchedcheckReplay, PinnedSchedulesAreDeterministic) {
  // The reproducibility contract the failure reports rely on: the same
  // seed must execute the identical decision sequence.
  const auto a = run_pinned("det-spill", 7, SimExecutor::Strategy::kPct);
  const auto b = run_pinned("det-spill", 7, SimExecutor::Strategy::kPct);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.option_counts, b.option_counts);
}

TEST(SchedcheckReplay, ChoiceLogReplayReproducesTheSchedule) {
  // A recorded PCT run handed back as a replay prefix must execute the
  // very same schedule — this is what "reproduce from the printed seed"
  // and the DFS sibling walk are built on.
  const auto ref = run_pinned("drr-flood", 33, SimExecutor::Strategy::kPct);
  SimExecutor::Options replay;
  replay.strategy = SimExecutor::Strategy::kReplay;
  replay.replay = ref.choices;
  const auto again = snet::simcheck::run_scenario("drr-flood", replay);
  EXPECT_EQ(again.choices, ref.choices);
  EXPECT_EQ(again.steps, ref.steps);
}
