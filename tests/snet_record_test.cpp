/// Records, labels and values — the S-Net data model (paper, §4).

#include <gtest/gtest.h>

#include "snet/record.hpp"
#include "snet/value.hpp"

using namespace snet;

TEST(Labels, InterningIsStable) {
  const Label a1 = field_label("alpha");
  const Label a2 = field_label("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(label_name(a1), "alpha");
}

TEST(Labels, FieldsAndTagsAreDistinctNamespaces) {
  const Label f = field_label("k");
  const Label t = tag_label("k");
  EXPECT_NE(f, t);
  EXPECT_EQ(label_display(f), "k");
  EXPECT_EQ(label_display(t), "<k>");
}

TEST(Labels, EmptyNameRejected) {
  EXPECT_THROW(field_label(""), std::invalid_argument);
}

TEST(Value, RoundTripsTypedPayloads) {
  const Value v = make_value(std::string("hello"));
  EXPECT_EQ(value_as<std::string>(v), "hello");
  EXPECT_THROW(value_as<int>(v), ValueError);
  EXPECT_THROW(value_as<int>(Value{}), ValueError);
}

TEST(Value, SharesPayloadAcrossCopies) {
  const Value v = make_value(std::vector<int>(1000, 7));
  const Value w = v;  // aliases, no deep copy
  EXPECT_EQ(&value_as<std::vector<int>>(v), &value_as<std::vector<int>>(w));
}

TEST(Record, FieldAccessAndRemoval) {
  Record r;
  r.set_field("board", make_value(1));
  EXPECT_TRUE(r.has_field("board"));
  EXPECT_EQ(r.get<int>("board"), 1);
  r.set_field("board", make_value(2));  // overwrite
  EXPECT_EQ(r.get<int>("board"), 2);
  EXPECT_EQ(r.field_count(), 1U);
  r.remove_field(field_label("board"));
  EXPECT_FALSE(r.has_field("board"));
  EXPECT_THROW(r.field("board"), std::out_of_range);
}

TEST(Record, TagAccessAndRemoval) {
  Record r;
  r.set_tag("k", 3);
  EXPECT_TRUE(r.has_tag("k"));
  EXPECT_EQ(r.tag("k"), 3);
  r.set_tag("k", 5);
  EXPECT_EQ(r.tag("k"), 5);
  r.remove_tag(tag_label("k"));
  EXPECT_THROW(r.tag("k"), std::out_of_range);
}

TEST(Record, KindMismatchRejected) {
  Record r;
  EXPECT_THROW(r.set_field(tag_label("k"), make_value(1)), std::invalid_argument);
  EXPECT_THROW(r.set_tag(field_label("board"), 1), std::invalid_argument);
}

TEST(Record, LabelsEnumeratesFieldsThenTags) {
  const Record r = record_with({{"b", make_value(1)}, {"a", make_value(2)}},
                               {{"t", 9}});
  const auto labels = r.labels();
  ASSERT_EQ(labels.size(), 3U);
  EXPECT_EQ(labels[0].kind, LabelKind::Field);
  EXPECT_EQ(labels[1].kind, LabelKind::Field);
  EXPECT_EQ(labels[2].kind, LabelKind::Tag);
  EXPECT_EQ(label_name(labels[2]), "t");
}

TEST(Record, HasDispatchesOnKind) {
  const Record r = record_with({{"x", make_value(0)}}, {{"y", 1}});
  EXPECT_TRUE(r.has(field_label("x")));
  EXPECT_TRUE(r.has(tag_label("y")));
  EXPECT_FALSE(r.has(field_label("y")));
  EXPECT_FALSE(r.has(tag_label("x")));
}

TEST(Record, ToStringShowsTagValues) {
  const Record r = record_with({{"board", make_value(0)}}, {{"k", 4}});
  EXPECT_EQ(r.to_string(), "{board, <k>=4}");
}

TEST(Record, CopyIsIndependent) {
  Record r = record_with({{"x", make_value(1)}}, {{"t", 1}});
  Record s = r;
  s.set_tag("t", 2);
  s.set_field("x", make_value(9));
  EXPECT_EQ(r.tag("t"), 1);
  EXPECT_EQ(r.get<int>("x"), 1);
  EXPECT_EQ(s.get<int>("x"), 9);
}

TEST(Record, MetaInheritanceCopiesDetStack) {
  Record parent;
  parent.det_stack().push_back(DetStamp{nullptr, 42});
  Record child;
  child.inherit_meta(parent);
  ASSERT_EQ(child.det_stack().size(), 1U);
  EXPECT_EQ(child.det_stack()[0].seq, 42U);
}

TEST(Record, EmptyRecord) {
  const Record r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.to_string(), "{}");
  EXPECT_TRUE(r.labels().empty());
}
