/// Static signature inference over topologies, including flow-inheritance
/// propagation (the property the paper highlights for Fig. 2's filter).

#include <gtest/gtest.h>

#include "snet/check.hpp"
#include "snet/net.hpp"

using namespace snet;

namespace {
const BoxFn kNop = [](const BoxInput&, BoxOutput&) {};

Net mkbox(const std::string& name, const std::string& sig) {
  return box(name, sig, kNop);
}
}  // namespace

TEST(Check, BoxSignatureIsItsType) {
  const auto sig = infer(mkbox("foo", "(a,<b>) -> (c) | (c,d,<e>)"));
  EXPECT_EQ(sig.to_string(), "{a, <b>} -> {c} | {c, d, <e>}");
}

TEST(Check, SerialComposesWhenTypesConnect) {
  const auto n = mkbox("a", "(x) -> (y)") >> mkbox("b", "(y) -> (z)");
  const auto sig = infer(n);
  EXPECT_EQ(sig.input.to_string(), "{x}");
  EXPECT_EQ(sig.output.to_string(), "{z}");
}

TEST(Check, SerialMismatchRejected) {
  const auto n = mkbox("a", "(x) -> (y)") >> mkbox("b", "(q) -> (z)");
  EXPECT_THROW(infer(n), TypeCheckError);
}

TEST(Check, SerialAcceptsViaSubtyping) {
  // a produces {y,extra}; b needs only {y}: subtype acceptance.
  const auto n = mkbox("a", "(x) -> (y, extra)") >> mkbox("b", "(y) -> (z)");
  const auto sig = infer(n);
  // b's output inherits `extra` through flow inheritance.
  ASSERT_EQ(sig.output.variants().size(), 1U);
  EXPECT_EQ(sig.output.variants()[0], RecordType::of({"z", "extra"}));
}

TEST(Check, FlowInheritancePropagatesThroughBoxes) {
  // The §4 example: foo receives {a,<b>,d}; d flows onto variant {c} but
  // is discarded on {c,d,<e>} (d already present).
  const Net foo = mkbox("foo", "(a,<b>) -> (c) | (c,d,<e>)");
  const MultiType out =
      propagate(foo, MultiType({RecordType::of({"a", "d"}, {"b"})}));
  ASSERT_EQ(out.variants().size(), 2U);
  EXPECT_EQ(out.variants()[0], RecordType::of({"c", "d"}));
  EXPECT_EQ(out.variants()[1], RecordType::of({"c", "d"}, {"e"}));
}

TEST(Check, FilterInheritancePaperFig2) {
  // [{} -> {<k>=1}] on {board, opts}: result {board, opts, <k>} — "the
  // filter has the desired effect ... although its fields do not occur in
  // the filter."
  const Net f = filter("{} -> {<k>=1}");
  const MultiType out = propagate(f, MultiType({RecordType::of({"board", "opts"})}));
  ASSERT_EQ(out.variants().size(), 1U);
  EXPECT_EQ(out.variants()[0], RecordType::of({"board", "opts"}, {"k"}));
}

TEST(Check, ParallelUnionsBranches) {
  const auto n = parallel(mkbox("a", "(x) -> (u)"), mkbox("b", "(y) -> (v)"));
  const auto sig = infer(n);
  EXPECT_EQ(sig.input.variants().size(), 2U);
  EXPECT_EQ(sig.output.to_string(), "{u} | {v}");
}

TEST(Check, ParallelRoutesVariantsToBestBranch) {
  const auto n = parallel(mkbox("a", "(x) -> (u)"), mkbox("b", "(x, y) -> (v)"));
  // {x,y} scores higher on branch b; {x} only matches a.
  const MultiType out = propagate(
      n, MultiType({RecordType::of({"x"}), RecordType::of({"x", "y"})}));
  EXPECT_EQ(out.to_string(), "{u} | {v}");
}

TEST(Check, ParallelUnroutableVariantRejected) {
  const auto n = parallel(mkbox("a", "(x) -> (u)"), mkbox("b", "(y) -> (v)"));
  EXPECT_THROW(propagate(n, MultiType({RecordType::of({"z"})})), TypeCheckError);
}

TEST(Check, StarFig1Shape) {
  // solveOneLevel ** {<done>}.
  const Net sol = mkbox("solveOneLevel",
                        "(board, opts) -> (board, opts) | (board, <done>)");
  const auto sig = infer(star(sol, "{<done>}"));
  // Input: the replica's input; output: only the <done>-carrying variant
  // escapes the replicator.
  ASSERT_EQ(sig.input.variants().size(), 1U);
  EXPECT_EQ(sig.input.variants()[0], RecordType::of({"board", "opts"}));
  ASSERT_EQ(sig.output.variants().size(), 1U);
  EXPECT_EQ(sig.output.variants()[0], RecordType::of({"board"}, {"done"}));
}

TEST(Check, StarRejectsDeadVariants) {
  // Box output {q} neither matches {<done>} nor re-enters (input {x}).
  const Net bad = mkbox("bad", "(x) -> (q)");
  EXPECT_THROW(infer(star(bad, "{<done>}")), TypeCheckError);
}

TEST(Check, StarWithGuardKeepsVariantCirculating) {
  // With a guard, an exit-type-matching variant may also re-enter, so it
  // must be acceptable to the child as well.
  const Net b = mkbox("step", "(board, <level>) -> (board, <level>)");
  const auto sig = infer(star(b, Pattern::parse("{<level>} if <level> > 40")));
  ASSERT_EQ(sig.output.variants().size(), 1U);
  EXPECT_EQ(sig.output.variants()[0], RecordType::of({"board"}, {"level"}));
  // Guarded exits do not make the bare exit type an input variant.
  ASSERT_EQ(sig.input.variants().size(), 1U);
  EXPECT_EQ(sig.input.variants()[0], RecordType::of({"board"}, {"level"}));
}

TEST(Check, SplitRequiresTag) {
  const Net b = mkbox("w", "(x) -> (y)");
  const auto sig = infer(split(b, "k"));
  EXPECT_EQ(sig.input.to_string(), "{x, <k>}");
  // Propagating variants without the tag is an error.
  EXPECT_THROW(propagate(split(b, "k"), MultiType({RecordType::of({"x"})})),
               TypeCheckError);
}

TEST(Check, SyncSignature) {
  const auto n = sync({"{a}", "{b}"});
  const auto sig = infer(n);
  EXPECT_EQ(sig.input.variants().size(), 2U);
  // Output includes the merged variant {a,b}.
  bool has_merged = false;
  for (const auto& v : sig.output.variants()) {
    has_merged |= v == RecordType::of({"a", "b"});
  }
  EXPECT_TRUE(has_merged);
}

TEST(Check, DescribeRendersAlgebraicNotation) {
  const auto n = mkbox("A", "(x) -> (y)") >>
                 star(split(mkbox("B", "(y) -> (y) | (z, <done>)"), "t"),
                      "{<done>}");
  EXPECT_EQ(describe(n), "A .. ((B !! <t>) ** {<done>})");
  const auto d = parallel_det(mkbox("A", "(x) -> (y)"), mkbox("C", "(q) -> (y)"));
  EXPECT_EQ(describe(d), "(A | C)");
}

TEST(Check, NullOperandsRejected) {
  EXPECT_THROW(serial(nullptr, mkbox("a", "(x) -> (y)")), std::invalid_argument);
  EXPECT_THROW(infer(nullptr), TypeCheckError);
  EXPECT_THROW(sync({"{a}"}), std::invalid_argument) << "sync needs >= 2 patterns";
}
