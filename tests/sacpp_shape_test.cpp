/// Shape and index-vector arithmetic (SaC Section 2 foundations).

#include <gtest/gtest.h>

#include "sacpp/shape.hpp"

using sac::Index;
using sac::Shape;
using sac::ShapeError;

TEST(Shape, ScalarHasEmptyShapeVector) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.element_count(), 1);
  EXPECT_EQ(s.to_string(), "[]");
}

TEST(Shape, ElementCountAndExtents) {
  const Shape s{3, 5};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.extent(0), 3);
  EXPECT_EQ(s.extent(1), 5);
  EXPECT_EQ(s.element_count(), 15);
  EXPECT_EQ(s.to_string(), "[3,5]");
}

TEST(Shape, ZeroExtentMeansEmptyArray) {
  const Shape s{4, 0, 2};
  EXPECT_EQ(s.element_count(), 0);
}

TEST(Shape, NegativeExtentRejected) {
  EXPECT_THROW(Shape({-1, 2}), ShapeError);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto st = s.strides();
  ASSERT_EQ(st.size(), 3U);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, LinearizeRoundTrip) {
  const Shape s{3, 4, 5};
  for (std::int64_t off = 0; off < s.element_count(); ++off) {
    const Index iv = s.delinearize(off);
    EXPECT_EQ(s.linearize(iv), off);
  }
}

TEST(Shape, LinearizeChecksRankAndBounds) {
  const Shape s{3, 4};
  EXPECT_THROW(s.linearize({1}), ShapeError);
  EXPECT_THROW(s.linearize({1, 2, 3}), ShapeError);
  EXPECT_THROW(s.linearize({3, 0}), ShapeError);
  EXPECT_THROW(s.linearize({0, -1}), ShapeError);
  EXPECT_EQ(s.linearize({2, 3}), 11);
}

TEST(Shape, Contains) {
  const Shape s{2, 2};
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({1, 1}));
  EXPECT_FALSE(s.contains({2, 0}));
  EXPECT_FALSE(s.contains({0}));
}

TEST(Shape, SuffixSelectsTrailingAxes) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.suffix(0), s);
  EXPECT_EQ(s.suffix(1), (Shape{3, 4}));
  EXPECT_EQ(s.suffix(3), Shape{});
  EXPECT_THROW(s.suffix(4), ShapeError);
  EXPECT_THROW(s.suffix(-1), ShapeError);
}

TEST(Shape, ConcatShapes) {
  EXPECT_EQ(sac::concat_shapes(Shape{2}, Shape{3, 4}), (Shape{2, 3, 4}));
  EXPECT_EQ(sac::concat_shapes(Shape{}, Shape{}), Shape{});
}

TEST(Shape, EqualityAndIndexToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(sac::index_to_string({0, 7}), "[0,7]");
}
